//! Command-line front end (`mhm2rs`): dataset simulation and assembly from
//! FASTQ files on disk.
//!
//! Argument parsing is hand-rolled (no CLI dependency): subcommand followed
//! by `--flag value` pairs and boolean `--flag`s. The heavy lifting lives
//! in [`run_simulate`] / [`run_assemble`], which are plain functions over a
//! parsed [`CliArgs`] so the test suite can drive them against temporary
//! directories.

use crate::iterative::{default_schedule, run_iterative};
use crate::pipeline::{run_pipeline, EngineChoice, PipelineConfig};
use crate::report::{render_breakdown, render_overlap, render_recovery, render_sanitizer};
use crate::stats::{evaluate_against_refs, AssemblyStats};
use bioseq::fastq::{self, NPolicy};
use bioseq::DnaSeq;
use datagen::{arcticsynth_like, wa_like};
use gpusim::{DeviceConfig, SanitizerConfig};
use locassm::gpu::KernelVersion;
use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

/// Parsed command line.
#[derive(Debug, Clone, Default)]
pub struct CliArgs {
    pub subcommand: String,
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

impl CliArgs {
    /// Parse `argv[1..]`: first token is the subcommand, then `--key value`
    /// pairs and bare `--switch`es.
    pub fn parse(args: &[String]) -> Result<CliArgs, String> {
        let mut it = args.iter();
        let subcommand = it.next().ok_or("missing subcommand")?.clone();
        if subcommand.starts_with("--") {
            return Err(format!("expected subcommand, got flag {subcommand}"));
        }
        let mut flags = HashMap::new();
        let mut switches = Vec::new();
        let rest: Vec<&String> = it.collect();
        let mut i = 0;
        while i < rest.len() {
            let tok = rest[i];
            let key =
                tok.strip_prefix("--").ok_or_else(|| format!("expected --flag, got {tok}"))?;
            if i + 1 < rest.len() && !rest[i + 1].starts_with("--") {
                flags.insert(key.to_string(), rest[i + 1].clone());
                i += 2;
            } else {
                switches.push(key.to_string());
                i += 1;
            }
        }
        Ok(CliArgs { subcommand, flags, switches })
    }

    /// String flag value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// Required flag or error.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing required --{key}"))
    }

    /// Parsed numeric flag with default.
    pub fn get_num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: cannot parse {v:?}")),
        }
    }

    /// Boolean switch.
    pub fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }
}

/// Usage text.
pub const USAGE: &str = "\
mhm2rs — MetaHipMer-like metagenome assembler (Rust reproduction of SC'21 GPU local assembly)

USAGE:
  mhm2rs simulate --out DIR [--preset arctic|wa] [--scale F]
      Generate a synthetic community: reads_1.fastq, reads_2.fastq, refs.fasta.

  mhm2rs assemble --r1 FILE --r2 FILE --out DIR
      [--k N] [--gpu] [--kernel v1|v2] [--iterative] [--refs FILE] [--sanitize]
      [--overlap] [--cpu-bin2-fraction F] [--calibrate] [--cpu-words-per-s R]
      [--per-bin-rates] [--adaptive-batch]
      Assemble paired FASTQ into contigs.fasta + scaffolds.fasta.
      --sanitize runs the GPU engine under gpucheck (memcheck + racecheck +
      synccheck) and appends its findings to the report; implies --gpu.
      --overlap runs local assembly on the CPU/GPU overlap driver with the
      work-stealing scheduler; --cpu-bin2-fraction F switches it to the
      static split keeping fraction F of bin-2 tasks on the CPU (implies
      --overlap; F must be in [0,1]).
      --cpu-words-per-s R pins the scheduler's CPU-throughput model to R
      words/s and turns the online rate calibration OFF — R is an explicit
      override, trusted as-is. Add --calibrate to use R only as the seed
      and let observed batch times take over.
      --per-bin-rates resolves the calibrated rates per bin (bin-2 vs
      bin-3 estimators with the pooled EWMA as prior; implies --calibrate).
      --adaptive-batch shrinks steal batches geometrically near the drain
      point so the last batch cannot strand an engine idle.
      Any of these scheduler flags implies --overlap; all conflict with
      --cpu-bin2-fraction (the static split has no rate model or deque).
";

/// Entry point shared by main() and the tests.
pub fn run(args: &[String]) -> Result<String, String> {
    let cli = CliArgs::parse(args)?;
    match cli.subcommand.as_str() {
        "simulate" => run_simulate(&cli),
        "assemble" => run_assemble(&cli),
        other => Err(format!("unknown subcommand {other}\n{USAGE}")),
    }
}

/// `simulate`: write a preset dataset to disk.
pub fn run_simulate(cli: &CliArgs) -> Result<String, String> {
    let out = PathBuf::from(cli.require("out")?);
    let scale: f64 = cli.get_num("scale", 0.05)?;
    let preset = match cli.get("preset").unwrap_or("arctic") {
        "arctic" => arcticsynth_like(scale),
        "wa" => wa_like(scale),
        other => return Err(format!("unknown preset {other} (arctic|wa)")),
    };
    std::fs::create_dir_all(&out).map_err(|e| e.to_string())?;
    let (community, pairs) = preset.generate();

    let r1: Vec<bioseq::Read> = pairs.iter().map(|p| p.r1.clone()).collect();
    let r2: Vec<bioseq::Read> = pairs.iter().map(|p| p.r2.clone()).collect();
    write_fastq_file(&out.join("reads_1.fastq"), &r1)?;
    write_fastq_file(&out.join("reads_2.fastq"), &r2)?;
    let refs = community.genomes.iter().map(|g| (g.id.clone(), g.seq.clone()));
    let f = File::create(out.join("refs.fasta")).map_err(|e| e.to_string())?;
    fastq::write_fasta(BufWriter::new(f), refs, 80).map_err(|e| e.to_string())?;

    Ok(format!(
        "wrote {} read pairs from {} ({} genomes) to {}",
        pairs.len(),
        preset.name,
        community.genomes.len(),
        out.display()
    ))
}

/// `assemble`: FASTQ in, FASTA out.
pub fn run_assemble(cli: &CliArgs) -> Result<String, String> {
    let r1_path = cli.require("r1")?;
    let r2_path = cli.require("r2")?;
    let out = PathBuf::from(cli.require("out")?);
    std::fs::create_dir_all(&out).map_err(|e| e.to_string())?;

    let (r1, r1_stats) = read_fastq_file(Path::new(r1_path))?;
    let (r2, r2_stats) = read_fastq_file(Path::new(r2_path))?;
    let ingest_malformed = r1_stats.skipped_malformed + r2_stats.skipped_malformed;
    let ingest_ambiguous = r1_stats.dropped_ambiguous + r2_stats.dropped_ambiguous;
    let pairs = fastq::pair_up(r1, r2).map_err(|e| e.to_string())?;

    let mut cfg = PipelineConfig { k: cli.get_num("k", 31)?, ..Default::default() };
    let sanitize = cli.has("sanitize");
    let calibrate = cli.has("calibrate");
    let rate_override = match cli.get("cpu-words-per-s") {
        None => None,
        Some(v) => {
            let rate: f64 =
                v.parse().map_err(|_| format!("--cpu-words-per-s: cannot parse {v:?}"))?;
            if !rate.is_finite() || rate <= 0.0 {
                return Err(format!("--cpu-words-per-s must be a positive rate, got {rate}"));
            }
            Some(rate)
        }
    };
    let per_bin = cli.has("per-bin-rates");
    let adaptive = cli.has("adaptive-batch");
    if (calibrate || rate_override.is_some() || per_bin || adaptive)
        && cli.get("cpu-bin2-fraction").is_some()
    {
        return Err("--calibrate/--cpu-words-per-s/--per-bin-rates/--adaptive-batch need the \
             work-stealing scheduler and cannot be combined with the static \
             --cpu-bin2-fraction split"
            .to_string());
    }
    let overlap = cli.has("overlap")
        || cli.get("cpu-bin2-fraction").is_some()
        || calibrate
        || rate_override.is_some()
        || per_bin
        || adaptive;
    if sanitize || overlap || cli.has("gpu") || cli.get("kernel").is_some() {
        let version = match cli.get("kernel").unwrap_or("v2") {
            "v1" => KernelVersion::V1,
            "v2" => KernelVersion::V2,
            other => return Err(format!("unknown kernel {other} (v1|v2)")),
        };
        let mut device = DeviceConfig::v100();
        if sanitize {
            device = device.with_sanitizer(SanitizerConfig::full());
        }
        cfg.engine = if overlap {
            let schedule = match cli.get("cpu-bin2-fraction") {
                Some(v) => {
                    let frac: f64 = v
                        .parse()
                        .map_err(|_| format!("--cpu-bin2-fraction: cannot parse {v:?}"))?;
                    if !frac.is_finite() || !(0.0..=1.0).contains(&frac) {
                        return Err(format!("--cpu-bin2-fraction must be in [0, 1], got {frac}"));
                    }
                    locassm::SchedulePolicy::Static { cpu_bin2_fraction: frac }
                }
                None => {
                    let mut steal = locassm::StealConfig::default();
                    if let Some(rate) = rate_override {
                        steal.cpu_words_per_s = rate;
                        // An explicit rate is a statement of fact: hold it
                        // unless the user also asked for the feedback loop
                        // (--per-bin-rates implies it — per-bin resolution
                        // is meaningless without observations).
                        if !calibrate && !per_bin {
                            steal.calibration = locassm::CalibrationConfig::off();
                        }
                    }
                    if per_bin {
                        steal.calibration.enabled = true;
                        steal.calibration.per_bin = true;
                    }
                    steal.adaptive_batch = adaptive;
                    locassm::SchedulePolicy::WorkSteal(steal)
                }
            };
            EngineChoice::Overlap { device, version, schedule }
        } else {
            EngineChoice::Gpu { device, version }
        };
    }

    let mut report = String::new();
    let (contigs, scaffolds) = if cli.has("iterative") {
        let max_read = pairs.iter().map(|p| p.r1.len().max(p.r2.len())).max().unwrap_or(150);
        let mut schedule = default_schedule(max_read);
        if schedule.is_empty() {
            schedule = vec![cfg.k];
        }
        let result = run_iterative(&pairs, &cfg, &schedule);
        for r in &result.rounds {
            report.push_str(&format!("round k={}: {}\n", r.k, r.stats.render()));
        }
        report.push('\n');
        report.push_str(&render_breakdown("iterative pipeline", &result.timings));
        let seqs: Vec<DnaSeq> =
            result.scaffolds.iter().map(|s| s.render(&result.contigs)).collect();
        (result.contigs, seqs)
    } else {
        let mut result = run_pipeline(&pairs, &cfg).map_err(|e| e.to_string())?;
        result.stats.merge.malformed_skipped = ingest_malformed;
        result.stats.merge.ambiguous_dropped = ingest_ambiguous;
        if ingest_malformed > 0 {
            report
                .push_str(&format!("ingest: skipped {ingest_malformed} malformed FASTQ records\n"));
        }
        report.push_str(&render_breakdown("pipeline", &result.timings));
        if result.degraded() {
            report.push_str(&render_recovery(&result.stats));
        }
        report.push_str(&render_overlap(&result.stats));
        report.push_str(&render_sanitizer(&result.stats));
        let seqs: Vec<DnaSeq> =
            result.scaffolds.iter().map(|s| s.render(&result.contigs)).collect();
        (result.contigs, seqs)
    };

    let stats = AssemblyStats::of(&contigs);
    report.push_str(&format!("\ncontigs:   {}\n", stats.render()));
    let sstats = AssemblyStats::of(&scaffolds);
    report.push_str(&format!("scaffolds: {}\n", sstats.render()));

    if let Some(refs_path) = cli.get("refs") {
        let f = File::open(refs_path).map_err(|e| e.to_string())?;
        let (refs, _) =
            fastq::parse_fasta(BufReader::new(f), NPolicy::Drop).map_err(|e| e.to_string())?;
        let ref_seqs: Vec<DnaSeq> = refs.into_iter().map(|(_, s)| s).collect();
        let eval = evaluate_against_refs(&contigs, &ref_seqs, 31.min(cfg.k));
        report.push_str(&format!(
            "vs refs:   genome fraction {:.1}%, precision {:.1}% (k={})\n",
            eval.genome_fraction * 100.0,
            eval.precision * 100.0,
            eval.k
        ));
    }

    let f = File::create(out.join("contigs.fasta")).map_err(|e| e.to_string())?;
    fastq::write_fasta(
        BufWriter::new(f),
        contigs.iter().enumerate().map(|(i, c)| (format!("contig_{i}"), c.clone())),
        80,
    )
    .map_err(|e| e.to_string())?;
    let f = File::create(out.join("scaffolds.fasta")).map_err(|e| e.to_string())?;
    fastq::write_fasta(
        BufWriter::new(f),
        scaffolds.iter().enumerate().map(|(i, s)| (format!("scaffold_{i}"), s.clone())),
        80,
    )
    .map_err(|e| e.to_string())?;

    Ok(report)
}

fn write_fastq_file(path: &Path, reads: &[bioseq::Read]) -> Result<(), String> {
    let f = File::create(path).map_err(|e| e.to_string())?;
    let mut w = BufWriter::new(f);
    fastq::write_fastq(&mut w, reads).map_err(|e| e.to_string())?;
    w.flush().map_err(|e| e.to_string())
}

fn read_fastq_file(path: &Path) -> Result<(Vec<bioseq::Read>, fastq::FastqParseStats), String> {
    let f = File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
    // Lenient ingest: a corrupt record is skipped and counted, never fatal
    // to the whole lane.
    let (reads, stats) =
        fastq::parse_fastq_with(BufReader::new(f), NPolicy::Drop, fastq::ParseMode::Lenient)
            .map_err(|e| e.to_string())?;
    if stats.dropped_ambiguous > 0 {
        eprintln!("note: dropped {} reads with ambiguous bases", stats.dropped_ambiguous);
    }
    if stats.skipped_malformed > 0 {
        eprintln!(
            "note: skipped {} malformed FASTQ records in {}",
            stats.skipped_malformed,
            path.display()
        );
    }
    Ok((reads, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_flags_and_switches() {
        let cli = CliArgs::parse(&argv("assemble --r1 a.fq --r2 b.fq --gpu --k 41")).unwrap();
        assert_eq!(cli.subcommand, "assemble");
        assert_eq!(cli.get("r1"), Some("a.fq"));
        assert_eq!(cli.get_num::<usize>("k", 31).unwrap(), 41);
        assert!(cli.has("gpu"));
        assert!(!cli.has("iterative"));
    }

    #[test]
    fn parse_rejects_missing_subcommand() {
        assert!(CliArgs::parse(&[]).is_err());
        assert!(CliArgs::parse(&argv("--out x")).is_err());
    }

    #[test]
    fn require_reports_missing() {
        let cli = CliArgs::parse(&argv("simulate")).unwrap();
        let err = cli.require("out").unwrap_err();
        assert!(err.contains("--out"));
    }

    #[test]
    fn bad_number_reported() {
        let cli = CliArgs::parse(&argv("assemble --k abc")).unwrap();
        assert!(cli.get_num::<usize>("k", 31).is_err());
    }

    #[test]
    fn unknown_subcommand_shows_usage() {
        let err = run(&argv("frobnicate")).unwrap_err();
        assert!(err.contains("USAGE"));
    }

    #[test]
    fn simulate_then_assemble_round_trip() {
        let dir = std::env::temp_dir().join(format!("mhm2rs_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let out = dir.to_string_lossy().to_string();

        let msg = run(&argv(&format!("simulate --out {out} --preset arctic --scale 0.01")))
            .expect("simulate");
        assert!(msg.contains("read pairs"));
        assert!(dir.join("reads_1.fastq").exists());
        assert!(dir.join("refs.fasta").exists());

        let report = run(&argv(&format!(
            "assemble --r1 {out}/reads_1.fastq --r2 {out}/reads_2.fastq --out {out}/asm \
             --refs {out}/refs.fasta"
        )))
        .expect("assemble");
        assert!(report.contains("contigs:"), "{report}");
        assert!(report.contains("genome fraction"), "{report}");
        assert!(dir.join("asm/contigs.fasta").exists());
        assert!(dir.join("asm/scaffolds.fasta").exists());

        // GPU engine must produce identical contigs on disk.
        let cpu = std::fs::read_to_string(dir.join("asm/contigs.fasta")).unwrap();
        run(&argv(&format!(
            "assemble --r1 {out}/reads_1.fastq --r2 {out}/reads_2.fastq --out {out}/asm_gpu --gpu"
        )))
        .expect("gpu assemble");
        let gpu = std::fs::read_to_string(dir.join("asm_gpu/contigs.fasta")).unwrap();
        assert_eq!(cpu, gpu);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sanitize_flag_reports_clean_gpu_run() {
        let dir = std::env::temp_dir().join(format!("mhm2rs_sanitize_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let out = dir.to_string_lossy().to_string();
        run(&argv(&format!("simulate --out {out} --preset arctic --scale 0.01")))
            .expect("simulate");

        // --sanitize implies the GPU engine; a healthy run must come back
        // clean and byte-identical to the unsanitized assembly.
        let report = run(&argv(&format!(
            "assemble --r1 {out}/reads_1.fastq --r2 {out}/reads_2.fastq --out {out}/asm \
             --sanitize"
        )))
        .expect("sanitized assemble");
        assert!(report.contains("gpucheck: clean"), "{report}");
        let sanitized = std::fs::read_to_string(dir.join("asm/contigs.fasta")).unwrap();

        let plain = run(&argv(&format!(
            "assemble --r1 {out}/reads_1.fastq --r2 {out}/reads_2.fastq --out {out}/asm_gpu \
             --gpu"
        )))
        .expect("gpu assemble");
        let env_forced =
            std::env::var(gpusim::SANITIZE_ENV).is_ok_and(|v| !v.is_empty() && v != "0");
        if !env_forced {
            assert!(!plain.contains("gpucheck"), "plain runs must not print the section: {plain}");
        }
        let unsanitized = std::fs::read_to_string(dir.join("asm_gpu/contigs.fasta")).unwrap();
        assert_eq!(sanitized, unsanitized);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn overlap_flag_matches_cpu_and_reports_scheduler() {
        let dir = std::env::temp_dir().join(format!("mhm2rs_overlap_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let out = dir.to_string_lossy().to_string();
        run(&argv(&format!("simulate --out {out} --preset arctic --scale 0.01")))
            .expect("simulate");

        run(&argv(&format!(
            "assemble --r1 {out}/reads_1.fastq --r2 {out}/reads_2.fastq --out {out}/asm"
        )))
        .expect("cpu assemble");
        let cpu = std::fs::read_to_string(dir.join("asm/contigs.fasta")).unwrap();

        // Work-stealing overlap driver: identical contigs, scheduler section.
        let report = run(&argv(&format!(
            "assemble --r1 {out}/reads_1.fastq --r2 {out}/reads_2.fastq --out {out}/asm_ws \
             --overlap"
        )))
        .expect("overlap assemble");
        assert!(report.contains("overlap scheduler (work-steal)"), "{report}");
        let ws = std::fs::read_to_string(dir.join("asm_ws/contigs.fasta")).unwrap();
        assert_eq!(cpu, ws);

        // Static split via --cpu-bin2-fraction (implies --overlap).
        let report = run(&argv(&format!(
            "assemble --r1 {out}/reads_1.fastq --r2 {out}/reads_2.fastq --out {out}/asm_st \
             --cpu-bin2-fraction 0.5"
        )))
        .expect("static overlap assemble");
        assert!(report.contains("overlap scheduler (static)"), "{report}");
        let st = std::fs::read_to_string(dir.join("asm_st/contigs.fasta")).unwrap();
        assert_eq!(cpu, st);

        // Out-of-range fraction is rejected up front.
        let err = run(&argv(&format!(
            "assemble --r1 {out}/reads_1.fastq --r2 {out}/reads_2.fastq --out {out}/asm_bad \
             --cpu-bin2-fraction 1.5"
        )))
        .expect_err("bad fraction must be rejected");
        assert!(err.contains("cpu-bin2-fraction"), "{err}");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn calibration_flags_drive_the_scheduler() {
        let dir = std::env::temp_dir().join(format!("mhm2rs_calibrate_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let out = dir.to_string_lossy().to_string();
        run(&argv(&format!("simulate --out {out} --preset arctic --scale 0.01")))
            .expect("simulate");

        run(&argv(&format!(
            "assemble --r1 {out}/reads_1.fastq --r2 {out}/reads_2.fastq --out {out}/asm"
        )))
        .expect("cpu assemble");
        let cpu = std::fs::read_to_string(dir.join("asm/contigs.fasta")).unwrap();

        // --cpu-words-per-s alone: implies --overlap, pins the rate, and
        // switches calibration OFF. Contigs stay byte-identical.
        let report = run(&argv(&format!(
            "assemble --r1 {out}/reads_1.fastq --r2 {out}/reads_2.fastq --out {out}/asm_pin \
             --cpu-words-per-s 1e6"
        )))
        .expect("pinned-rate assemble");
        assert!(report.contains("overlap scheduler (work-steal)"), "{report}");
        assert!(report.contains("off (seed rate held)"), "{report}");
        assert!(report.contains("seed 1.000e6"), "{report}");
        let pinned = std::fs::read_to_string(dir.join("asm_pin/contigs.fasta")).unwrap();
        assert_eq!(cpu, pinned);

        // --calibrate on top: the same rate becomes only the seed.
        let report = run(&argv(&format!(
            "assemble --r1 {out}/reads_1.fastq --r2 {out}/reads_2.fastq --out {out}/asm_cal \
             --cpu-words-per-s 1e6 --calibrate"
        )))
        .expect("calibrated assemble");
        assert!(report.contains("on (EWMA feedback)"), "{report}");
        let cal = std::fs::read_to_string(dir.join("asm_cal/contigs.fasta")).unwrap();
        assert_eq!(cpu, cal);

        // Bad rates and the static-split conflict are rejected up front.
        for bad in ["0", "-5", "nan", "inf", "squid"] {
            let err = run(&argv(&format!(
                "assemble --r1 {out}/reads_1.fastq --r2 {out}/reads_2.fastq \
                 --out {out}/asm_bad --cpu-words-per-s {bad}"
            )))
            .expect_err("bad rate must be rejected");
            assert!(err.contains("cpu-words-per-s"), "{bad}: {err}");
        }
        let err = run(&argv(&format!(
            "assemble --r1 {out}/reads_1.fastq --r2 {out}/reads_2.fastq --out {out}/asm_bad \
             --calibrate --cpu-bin2-fraction 0.5"
        )))
        .expect_err("static split has no rate model");
        assert!(err.contains("static"), "{err}");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn per_bin_and_adaptive_flags_drive_the_scheduler() {
        let dir = std::env::temp_dir().join(format!("mhm2rs_perbin_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let out = dir.to_string_lossy().to_string();
        run(&argv(&format!("simulate --out {out} --preset arctic --scale 0.01")))
            .expect("simulate");

        run(&argv(&format!(
            "assemble --r1 {out}/reads_1.fastq --r2 {out}/reads_2.fastq --out {out}/asm"
        )))
        .expect("cpu assemble");
        let cpu = std::fs::read_to_string(dir.join("asm/contigs.fasta")).unwrap();

        // --per-bin-rates alone: implies --overlap and --calibrate; the
        // report shows bin-resolved pricing; contigs stay byte-identical.
        let report = run(&argv(&format!(
            "assemble --r1 {out}/reads_1.fastq --r2 {out}/reads_2.fastq --out {out}/asm_pb \
             --per-bin-rates"
        )))
        .expect("per-bin assemble");
        assert!(report.contains("overlap scheduler (work-steal)"), "{report}");
        assert!(report.contains("on (EWMA feedback)"), "{report}");
        assert!(report.contains("per-bin rates"), "{report}");
        let pb = std::fs::read_to_string(dir.join("asm_pb/contigs.fasta")).unwrap();
        assert_eq!(cpu, pb);

        // --per-bin-rates with a pinned rate: the override seeds the model
        // but per-bin resolution forces the feedback loop back on.
        let report = run(&argv(&format!(
            "assemble --r1 {out}/reads_1.fastq --r2 {out}/reads_2.fastq --out {out}/asm_pbr \
             --per-bin-rates --cpu-words-per-s 1e6"
        )))
        .expect("per-bin + pinned-seed assemble");
        assert!(report.contains("on (EWMA feedback)"), "{report}");
        assert!(report.contains("seed 1.000e6"), "{report}");

        // --adaptive-batch: implies --overlap; the report carries the
        // drain-split line; contigs stay byte-identical.
        let report = run(&argv(&format!(
            "assemble --r1 {out}/reads_1.fastq --r2 {out}/reads_2.fastq --out {out}/asm_ab \
             --adaptive-batch"
        )))
        .expect("adaptive assemble");
        assert!(report.contains("overlap scheduler (work-steal)"), "{report}");
        assert!(report.contains("adaptive batches"), "{report}");
        let ab = std::fs::read_to_string(dir.join("asm_ab/contigs.fasta")).unwrap();
        assert_eq!(cpu, ab);

        // Both conflict with the static split.
        for flag in ["--per-bin-rates", "--adaptive-batch"] {
            let err = run(&argv(&format!(
                "assemble --r1 {out}/reads_1.fastq --r2 {out}/reads_2.fastq \
                 --out {out}/asm_bad {flag} --cpu-bin2-fraction 0.5"
            )))
            .expect_err("static split conflict must be rejected");
            assert!(err.contains("static"), "{flag}: {err}");
        }

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn assemble_survives_corrupt_fastq_records() {
        let dir = std::env::temp_dir().join(format!("mhm2rs_corrupt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let out = dir.to_string_lossy().to_string();
        run(&argv(&format!("simulate --out {out} --preset arctic --scale 0.01")))
            .expect("simulate");

        // Corrupt one record in each mate file the same way (missing '+'),
        // so pairing stays aligned and ingest must skip one record per file.
        for mate in ["reads_1.fastq", "reads_2.fastq"] {
            let p = dir.join(mate);
            let txt = std::fs::read_to_string(&p).unwrap();
            let corrupted = txt.replacen("\n+\n", "\nBROKEN\n", 1);
            assert_ne!(corrupted, txt, "corruption must apply");
            std::fs::write(&p, corrupted).unwrap();
        }

        let report = run(&argv(&format!(
            "assemble --r1 {out}/reads_1.fastq --r2 {out}/reads_2.fastq --out {out}/asm"
        )))
        .expect("assemble must survive corrupt records");
        assert!(report.contains("skipped 2 malformed FASTQ records"), "{report}");
        assert!(dir.join("asm/contigs.fasta").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
