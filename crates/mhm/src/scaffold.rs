//! Scaffolding: join contigs using read-pair links.
//!
//! Each contig is a node with two ends. A proper pair whose mates align to
//! different contigs witnesses a junction between a specific end of each.
//! Ends with a unique, reciprocal, well-supported partner are joined;
//! chains of joins become scaffolds.

use align::{align_read, AlignParams, SeedIndex};
use bioseq::{DnaSeq, PairedRead};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Scaffolding parameters.
#[derive(Debug, Clone)]
pub struct ScaffoldParams {
    /// Minimum read-pair support for a junction.
    pub min_links: usize,
    /// Seed k for the contig index.
    pub seed_k: usize,
    /// Repeat-masking occurrence cap for the index.
    pub max_occ: usize,
    /// Alignment parameters for mate placement.
    pub align: AlignParams,
}

impl Default for ScaffoldParams {
    fn default() -> Self {
        ScaffoldParams { min_links: 2, seed_k: 17, max_occ: 200, align: AlignParams::default() }
    }
}

/// A contig end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
enum End {
    Left,
    Right,
}

/// An ordered pair of contig ends joined by read-pair evidence.
type Junction = ((usize, End), (usize, End));

impl End {
    fn other(self) -> End {
        match self {
            End::Left => End::Right,
            End::Right => End::Left,
        }
    }
}

/// An ordered, oriented chain of contigs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scaffold {
    /// `(contig index, flipped?)` in scaffold order.
    pub members: Vec<(usize, bool)>,
}

impl Scaffold {
    /// Render the scaffold sequence by concatenating oriented members.
    /// (Gap sizes are not modeled — a documented simplification; MetaHipMer
    /// writes `N` runs here.)
    pub fn render(&self, contigs: &[DnaSeq]) -> DnaSeq {
        let mut out = DnaSeq::new();
        for &(ci, flipped) in &self.members {
            if flipped {
                out.extend_from(&contigs[ci].revcomp());
            } else {
                out.extend_from(&contigs[ci]);
            }
        }
        out
    }
}

/// Build scaffolds from read pairs. Returns the scaffolds (singletons
/// included, so every contig appears exactly once).
pub fn scaffold_contigs(
    contigs: &[DnaSeq],
    pairs: &[PairedRead],
    params: &ScaffoldParams,
) -> Vec<Scaffold> {
    let idx = SeedIndex::build(contigs, params.seed_k, params.max_occ);

    // Parallel link extraction.
    let links: Vec<((usize, End), (usize, End))> = pairs
        .par_iter()
        .filter_map(|p| {
            let h1 = best_hit(&idx, contigs, p, false, params)?;
            let h2 = best_hit(&idx, contigs, p, true, params)?;
            if h1.contig == h2.contig {
                return None;
            }
            // Fragment-forward reasoning (see module docs):
            // mate 1 forward on c1 ⇒ junction at c1.Right, else c1.Left;
            // mate 2 rc on c2 ⇒ junction at c2.Left, else c2.Right.
            let e1 = (h1.contig as usize, if h1.rc { End::Left } else { End::Right });
            let e2 = (h2.contig as usize, if h2.rc { End::Left } else { End::Right });
            Some(order_link(e1, e2))
        })
        .collect();

    // Count support per junction.
    let mut support: HashMap<Junction, usize> = HashMap::new();
    for l in links {
        *support.entry(l).or_insert(0) += 1;
    }

    // For each end, pick its best partner; keep only reciprocal bests with
    // enough support and no ambiguity at either end.
    let mut best: HashMap<(usize, End), ((usize, End), usize)> = HashMap::new();
    let mut sorted: Vec<_> = support.into_iter().collect();
    sorted.sort(); // deterministic iteration
    for ((a, b), n) in sorted {
        if n < params.min_links {
            continue;
        }
        for (x, y) in [(a, b), (b, a)] {
            match best.get(&x) {
                Some(&(_, m)) if m >= n => {}
                _ => {
                    best.insert(x, (y, n));
                }
            }
        }
    }
    let mut partner: HashMap<(usize, End), (usize, End)> = HashMap::new();
    for (&x, &(y, _)) in &best {
        if best.get(&y).map(|&(back, _)| back) == Some(x) {
            partner.insert(x, y);
        }
    }

    // Walk chains.
    let mut visited = vec![false; contigs.len()];
    let mut scaffolds = Vec::new();
    // Deterministic seed order; start from chain endpoints first so chains
    // are walked end-to-end.
    let mut seeds: Vec<usize> = (0..contigs.len()).collect();
    seeds.sort_by_key(|&ci| {
        let l = partner.contains_key(&(ci, End::Left));
        let r = partner.contains_key(&(ci, End::Right));
        match (l, r) {
            (false, false) => 0,                // singleton
            (false, true) | (true, false) => 1, // chain endpoint
            (true, true) => 2,                  // interior
        }
    });
    for &start in &seeds {
        if visited[start] {
            continue;
        }
        // Choose entry orientation: enter through an end with no partner if
        // possible (so we walk the full chain).
        let enter = if !partner.contains_key(&(start, End::Left)) { End::Left } else { End::Right };
        let mut members = Vec::new();
        let mut cur = start;
        let mut entry = enter;
        loop {
            visited[cur] = true;
            members.push((cur, entry == End::Right));
            let exit = entry.other();
            let Some(&(next_contig, next_end)) = partner.get(&(cur, exit)) else {
                break;
            };
            if visited[next_contig] {
                break; // cycle guard
            }
            cur = next_contig;
            entry = next_end;
        }
        scaffolds.push(Scaffold { members });
    }
    scaffolds
}

fn order_link(a: (usize, End), b: (usize, End)) -> Junction {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

fn best_hit(
    idx: &SeedIndex,
    contigs: &[DnaSeq],
    pair: &PairedRead,
    mate2: bool,
    params: &ScaffoldParams,
) -> Option<align::AlignHit> {
    let read = if mate2 { &pair.r2 } else { &pair.r1 };
    let hits = align_read(idx, contigs, read, &params.align);
    hits.into_iter().max_by_key(|h| h.overlap - h.mismatches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioseq::Read;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_seq(len: usize, sd: u64) -> DnaSeq {
        let mut rng = StdRng::seed_from_u64(sd);
        (0..len).map(|_| bioseq::Base::from_code(rng.gen_range(0..4))).collect()
    }

    /// Pairs spanning a genome with the given insert size.
    fn spanning_pairs(
        genome: &DnaSeq,
        n: usize,
        insert: usize,
        read_len: usize,
    ) -> Vec<PairedRead> {
        let mut rng = StdRng::seed_from_u64(99);
        (0..n)
            .map(|i| {
                let start = rng.gen_range(0..genome.len() - insert);
                let frag = genome.subseq(start, insert);
                let r1 = Read::with_uniform_qual(format!("p{i}/1"), frag.subseq(0, read_len), 30);
                let r2 = Read::with_uniform_qual(
                    format!("p{i}/2"),
                    frag.subseq(insert - read_len, read_len).revcomp(),
                    30,
                );
                PairedRead::new(r1, r2)
            })
            .collect()
    }

    #[test]
    fn two_adjacent_contigs_join() {
        // Genome split into two contigs with a tiny unassembled gap; pairs
        // spanning the gap must link c0.Right to c1.Left.
        let genome = random_seq(1200, 1);
        let c0 = genome.subseq(0, 590);
        let c1 = genome.subseq(610, 590);
        let contigs = vec![c0, c1];
        let pairs = spanning_pairs(&genome, 150, 400, 100);
        let scaffolds = scaffold_contigs(&contigs, &pairs, &ScaffoldParams::default());
        assert_eq!(scaffolds.len(), 1, "both contigs in one scaffold");
        let s = &scaffolds[0];
        assert_eq!(s.members.len(), 2);
        // Order is 0 then 1 (or the reverse walk), both unflipped together.
        let ids: Vec<usize> = s.members.iter().map(|m| m.0).collect();
        assert!(ids == vec![0, 1] || ids == vec![1, 0]);
        let rendered = s.render(&contigs);
        assert_eq!(rendered.len(), 590 * 2);
    }

    #[test]
    fn flipped_contig_detected() {
        let genome = random_seq(1200, 2);
        let c0 = genome.subseq(0, 590);
        let c1 = genome.subseq(610, 590).revcomp(); // assembler emitted rc
        let contigs = vec![c0, c1];
        let pairs = spanning_pairs(&genome, 150, 400, 100);
        let scaffolds = scaffold_contigs(&contigs, &pairs, &ScaffoldParams::default());
        assert_eq!(scaffolds.len(), 1);
        let s = &scaffolds[0];
        assert_eq!(s.members.len(), 2);
        // Exactly one member is flipped relative to the other.
        assert_ne!(s.members[0].1, s.members[1].1);
    }

    #[test]
    fn unrelated_contigs_stay_apart() {
        let contigs = vec![random_seq(500, 3), random_seq(500, 4)];
        let pairs = spanning_pairs(&contigs[0], 50, 300, 100);
        let scaffolds = scaffold_contigs(&contigs, &pairs, &ScaffoldParams::default());
        assert_eq!(scaffolds.len(), 2);
        assert!(scaffolds.iter().all(|s| s.members.len() == 1));
    }

    #[test]
    fn insufficient_support_ignored() {
        let genome = random_seq(1200, 5);
        let contigs = vec![genome.subseq(0, 590), genome.subseq(610, 590)];
        // Only one spanning pair < min_links=2.
        let pairs = spanning_pairs(&genome, 1, 400, 100);
        let scaffolds = scaffold_contigs(&contigs, &pairs, &ScaffoldParams::default());
        assert_eq!(scaffolds.len(), 2);
    }

    #[test]
    fn three_contig_chain_in_order() {
        let genome = random_seq(1800, 6);
        let contigs =
            vec![genome.subseq(0, 580), genome.subseq(600, 580), genome.subseq(1200, 580)];
        let pairs = spanning_pairs(&genome, 300, 400, 100);
        let scaffolds = scaffold_contigs(&contigs, &pairs, &ScaffoldParams::default());
        assert_eq!(scaffolds.len(), 1);
        let ids: Vec<usize> = scaffolds[0].members.iter().map(|m| m.0).collect();
        assert!(ids == vec![0, 1, 2] || ids == vec![2, 1, 0], "chain order wrong: {ids:?}");
    }

    #[test]
    fn every_contig_appears_once() {
        let genome = random_seq(1200, 7);
        let contigs = vec![genome.subseq(0, 590), genome.subseq(610, 590), random_seq(400, 8)];
        let pairs = spanning_pairs(&genome, 100, 400, 100);
        let scaffolds = scaffold_contigs(&contigs, &pairs, &ScaffoldParams::default());
        let mut seen: Vec<usize> =
            scaffolds.iter().flat_map(|s| s.members.iter().map(|m| m.0)).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
    }
}
