//! `mhm2rs` — command-line metagenome assembler (see `mhm::cli`).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "help" {
        println!("{}", mhm::cli::USAGE);
        return;
    }
    match mhm::cli::run(&args) {
        Ok(report) => println!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
