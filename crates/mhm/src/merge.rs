//! Paired-read merging — the pipeline's first phase.
//!
//! When a fragment is shorter than twice the read length the two mates
//! overlap; merging them yields one longer, higher-confidence read. We scan
//! overlap lengths largest-first and accept the first overlap whose
//! mismatch fraction is under the threshold, taking the higher-quality base
//! at each overlapped position.

use bioseq::{DnaSeq, PairedRead, Read};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Merge parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MergeParams {
    /// Minimum overlap between mate 1 and rc(mate 2).
    pub min_overlap: usize,
    /// Maximum mismatch fraction within the overlap.
    pub max_mismatch_frac: f64,
}

impl Default for MergeParams {
    fn default() -> Self {
        MergeParams { min_overlap: 16, max_mismatch_frac: 0.08 }
    }
}

/// Outcome statistics.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct MergeStats {
    pub pairs_in: usize,
    pub merged: usize,
    pub unmerged: usize,
    /// Malformed FASTQ records skipped during lenient ingest, upstream of
    /// pairing (set by I/O front ends; 0 for in-memory pipelines).
    pub malformed_skipped: usize,
    /// Records dropped at ingest for ambiguous bases (`NPolicy::Drop`).
    pub ambiguous_dropped: usize,
}

/// Try to merge one pair; `None` if no acceptable overlap exists.
pub fn merge_pair(pair: &PairedRead, params: &MergeParams) -> Option<Read> {
    let r1 = &pair.r1;
    let r2rc = pair.r2.revcomp();
    let max_ov = r1.len().min(r2rc.len());
    for ov in (params.min_overlap..=max_ov).rev() {
        let allowed = (params.max_mismatch_frac * ov as f64) as usize;
        let mut mism = 0usize;
        let off = r1.len() - ov;
        let mut ok = true;
        for i in 0..ov {
            if r1.seq.code(off + i) != r2rc.seq.code(i) {
                mism += 1;
                if mism > allowed {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }
        // Build the merged read: r1 prefix + consensus overlap + r2rc suffix.
        let total = r1.len() + r2rc.len() - ov;
        let mut seq = DnaSeq::with_capacity(total);
        let mut quals = Vec::with_capacity(total);
        for i in 0..off {
            seq.push(r1.seq.base(i));
            quals.push(r1.quals[i]);
        }
        for i in 0..ov {
            let (q1, q2) = (r1.quals[off + i], r2rc.quals[i]);
            if q1 >= q2 {
                seq.push(r1.seq.base(off + i));
            } else {
                seq.push(r2rc.seq.base(i));
            }
            // Agreement boosts confidence; disagreement keeps the winner's q.
            let q = if r1.seq.code(off + i) == r2rc.seq.code(i) {
                q1.saturating_add(q2).min(bioseq::qual::MAX_QUAL)
            } else {
                q1.max(q2)
            };
            quals.push(q);
        }
        for i in ov..r2rc.len() {
            seq.push(r2rc.seq.base(i));
            quals.push(r2rc.quals[i]);
        }
        return Some(Read::new(format!("{}_merged", r1.id), seq, quals));
    }
    None
}

/// Merge all pairs in parallel; unmerged pairs contribute both mates as-is.
pub fn merge_reads(pairs: &[PairedRead], params: &MergeParams) -> (Vec<Read>, MergeStats) {
    let results: Vec<Option<Read>> = pairs.par_iter().map(|p| merge_pair(p, params)).collect();
    let mut reads = Vec::with_capacity(pairs.len() * 2);
    let mut stats = MergeStats { pairs_in: pairs.len(), ..Default::default() };
    for (pair, merged) in pairs.iter().zip(results) {
        match merged {
            Some(r) => {
                reads.push(r);
                stats.merged += 1;
            }
            None => {
                reads.push(pair.r1.clone());
                reads.push(pair.r2.clone());
                stats.unmerged += 1;
            }
        }
    }
    (reads, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test params tolerant of the short overlaps in these fixtures.
    fn test_params() -> MergeParams {
        MergeParams { min_overlap: 8, max_mismatch_frac: 0.12 }
    }

    fn seq(s: &str) -> DnaSeq {
        DnaSeq::from_str_strict(s).unwrap()
    }

    /// A fragment and the two mates an ideal sequencer would produce.
    fn pair_from_fragment(frag: &DnaSeq, read_len: usize) -> PairedRead {
        let r1 = Read::with_uniform_qual("f/1", frag.subseq(0, read_len), 30);
        let r2 = Read::with_uniform_qual(
            "f/2",
            frag.subseq(frag.len() - read_len, read_len).revcomp(),
            30,
        );
        PairedRead::new(r1, r2)
    }

    #[test]
    fn overlapping_pair_merges_to_fragment() {
        // 30-base fragment, 20-base reads → 10-base overlap.
        let frag = seq("ACGGTTCAAGTACCGGTTAAGGCCAATTGG");
        let pair = pair_from_fragment(&frag, 20);
        let merged = merge_pair(&pair, &test_params()).expect("must merge");
        assert_eq!(merged.seq, frag);
        assert_eq!(merged.len(), 30);
    }

    #[test]
    fn non_overlapping_pair_does_not_merge() {
        let frag: DnaSeq = seq("ACGGTTCAAGTACCGGTTAAGGCCAATTGGACGTTGCAGT");
        let pair = pair_from_fragment(&frag, 15); // 40-base frag, no overlap
        assert!(merge_pair(&pair, &MergeParams::default()).is_none());
    }

    #[test]
    fn mismatches_within_threshold_tolerated() {
        let frag = seq("ACGGTTCAAGTACCGGTTAAGGCCAATTGG");
        let mut pair = pair_from_fragment(&frag, 20);
        // Corrupt one base inside the overlap of r1 (position 15) at LOW
        // quality; r2's copy (high quality) must win in the consensus.
        let mut codes = pair.r1.seq.codes().to_vec();
        codes[15] ^= 1;
        pair.r1 = Read::new(
            "f/1",
            DnaSeq::from_codes(codes),
            (0..20).map(|i| if i == 15 { 5 } else { 30 }).collect(),
        );
        let merged = merge_pair(&pair, &test_params()).expect("one mismatch ok");
        assert_eq!(merged.seq, frag, "consensus must repair the error");
    }

    #[test]
    fn quality_boost_on_agreement() {
        let frag = seq("ACGGTTCAAGTACCGGTTAAGGCCAATTGG");
        let pair = pair_from_fragment(&frag, 20);
        let merged = merge_pair(&pair, &test_params()).unwrap();
        // Overlap positions (10..20 of the merged read) agree → boosted q.
        assert!(merged.quals[15] > 30);
        assert_eq!(merged.quals[0], 30);
    }

    #[test]
    fn merge_reads_keeps_unmerged_mates() {
        let frag_short = seq("ACGGTTCAAGTACCGGTTAAGGCCAATTGG");
        let frag_long = seq("ACGGTTCAAGTACCGGTTAAGGCCAATTGGACGTTGCAGT");
        let pairs = vec![pair_from_fragment(&frag_short, 20), pair_from_fragment(&frag_long, 15)];
        let (reads, stats) = merge_reads(&pairs, &test_params());
        assert_eq!(stats.pairs_in, 2);
        assert_eq!(stats.merged, 1);
        assert_eq!(stats.unmerged, 1);
        assert_eq!(reads.len(), 3); // merged + two unmerged mates
    }

    #[test]
    fn spurious_overlap_rejected() {
        // Unrelated mates must not merge even at min_overlap.
        let r1 = Read::with_uniform_qual("a", seq("ACGGTTCAAGTACCGGTTAA"), 30);
        let r2 = Read::with_uniform_qual("b", seq("GGCCAATTGGACGTTGCAGT"), 30);
        let pair = PairedRead::new(r1, r2);
        assert!(merge_pair(&pair, &MergeParams::default()).is_none());
    }
}
