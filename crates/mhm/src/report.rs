//! Text rendering of breakdowns and series tables for the figure harnesses.

use crate::pipeline::{PhaseTimings, PipelineStats};

/// Render a phase breakdown as a fixed-width table with percentage bars —
//  the textual equivalent of the paper's pie charts (Fig. 2, Fig. 12).
pub fn render_breakdown(title: &str, timings: &PhaseTimings) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!("{:-<70}\n", ""));
    for (phase, secs, frac) in timings.breakdown() {
        let bar_len = (frac * 40.0).round() as usize;
        out.push_str(&format!(
            "{:<18} {:>10.3} s {:>6.1}% |{:<40}|\n",
            phase.name(),
            secs,
            frac * 100.0,
            "#".repeat(bar_len)
        ));
    }
    out.push_str(&format!("{:<18} {:>10.3} s  100.0%\n", "TOTAL", timings.total()));
    out
}

/// Render the degraded-run section: which rungs of the local-assembly
/// recovery ladder fired, and how many tasks were ultimately skipped.
/// Empty when the run was fault-free.
pub fn render_recovery(stats: &PipelineStats) -> String {
    let mut out = String::new();
    let mut line = |label: &str, value: String| {
        out.push_str(&format!("  {label:<24} {value}\n"));
    };
    if let Some(rec) = &stats.recovery {
        if rec.launch_retries > 0 {
            line("launch retries", rec.launch_retries.to_string());
        }
        if rec.batch_splits > 0 {
            line("batch splits", rec.batch_splits.to_string());
        }
        if rec.device_resets > 0 {
            line(
                "device resets",
                format!("{} ({:.3} s backoff)", rec.device_resets, rec.backoff_s),
            );
        }
        if rec.cpu_fallback_tasks > 0 {
            line("CPU-fallback tasks", rec.cpu_fallback_tasks.to_string());
        }
        if rec.device_lost {
            line("device lost", "yes (abandoned after reset budget)".to_string());
        }
    }
    if stats.la_failed_tasks > 0 {
        line("tasks skipped", stats.la_failed_tasks.to_string());
    }
    if out.is_empty() {
        return out;
    }
    format!("DEGRADED RUN — local-assembly recovery ladder fired:\n{out}")
}

/// Render the `gpucheck` section of a `--sanitize` run: per-kind finding
/// counts and the sampled reports, or a one-line all-clear. Empty when the
/// run never enabled the sanitizer (CPU engine, or plain GPU run).
pub fn render_sanitizer(stats: &PipelineStats) -> String {
    let Some(summary) = stats.gpu.as_ref().map(|g| &g.sanitizer) else {
        return String::new();
    };
    if !summary.enabled {
        return String::new();
    }
    format!("\n{}", summary.render())
}

/// Render the overlap-scheduler section: engine shares, steal counts, and
/// the double-buffer savings. Empty when the run did not use the overlap
/// driver.
pub fn render_overlap(stats: &PipelineStats) -> String {
    let Some(sched) = &stats.overlap else {
        return String::new();
    };
    let mut out = format!("\noverlap scheduler ({})\n", sched.policy);
    let mut line = |label: &str, value: String| {
        out.push_str(&format!("  {label:<24} {value}\n"));
    };
    line(
        "shares (est words)",
        format!(
            "cpu {} / gpu {} (balance {:.2})",
            sched.cpu_est_words,
            sched.gpu_est_words,
            sched.word_balance()
        ),
    );
    line(
        "batches",
        format!("cpu {} / gpu {} of {}", sched.cpu_batches, sched.gpu_batches, sched.batches),
    );
    if sched.cpu_stole_heavy > 0 {
        line("bin-3 stolen by CPU", sched.cpu_stole_heavy.to_string());
    }
    if sched.gpu_absorbed_light > 0 {
        line("bin-2 absorbed by GPU", sched.gpu_absorbed_light.to_string());
    }
    if sched.adaptive_batch {
        line(
            "adaptive batches",
            format!(
                "{} drain splits, min issued {} w",
                sched.drain_splits, sched.min_issued_batch_words
            ),
        );
    }
    if sched.makespan_model_s() > 0.0 {
        line("model makespan", format!("{:.6} s", sched.makespan_model_s()));
    }
    if let Some(cal) = &sched.calibration {
        line(
            "calibration",
            if cal.enabled { "on (EWMA feedback)" } else { "off (seed rate held)" }.to_string(),
        );
        line(
            "cpu rate (words/s)",
            format!(
                "seed {:.3e} -> {:.3e} ({} updates)",
                cal.cpu_seed_words_per_s, cal.cpu_words_per_s, cal.cpu_updates
            ),
        );
        if cal.gpu_updates > 0 {
            line(
                "gpu rate (words/s)",
                format!("{:.3e} ({} updates)", cal.gpu_words_per_s, cal.gpu_updates),
            );
        }
        if cal.per_bin {
            line("per-bin rates", "on (bin-resolved clock pricing)".to_string());
            if cal.cpu_bin2_updates > 0 {
                line(
                    "cpu bin-2 rate",
                    format!("{:.3e} ({} updates)", cal.cpu_bin2_words_per_s, cal.cpu_bin2_updates),
                );
            }
            if cal.cpu_bin3_updates > 0 {
                line(
                    "cpu bin-3 rate",
                    format!("{:.3e} ({} updates)", cal.cpu_bin3_words_per_s, cal.cpu_bin3_updates),
                );
            }
            if cal.gpu_bin2_updates > 0 {
                line(
                    "gpu bin-2 rate",
                    format!("{:.3e} ({} updates)", cal.gpu_bin2_words_per_s, cal.gpu_bin2_updates),
                );
            }
            if cal.gpu_bin3_updates > 0 {
                line(
                    "gpu bin-3 rate",
                    format!("{:.3e} ({} updates)", cal.gpu_bin3_words_per_s, cal.gpu_bin3_updates),
                );
            }
        }
        if cal.realized_makespan_s() > 0.0 {
            line(
                "realized makespan",
                format!(
                    "{:.6} s (model err {:.1}%)",
                    cal.realized_makespan_s(),
                    100.0 * cal.rel_err_vs_realized
                ),
            );
        }
    }
    if let Some(gpu) = &stats.gpu {
        if gpu.pack_s > 0.0 {
            line(
                "pack overlap",
                format!("{:.6} s hidden of {:.6} s pack", gpu.overlap_saved_s, gpu.pack_s),
            );
        }
    }
    out
}

/// Render a generic aligned table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "row width mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            line.push_str(&format!("{:>width$}  ", c, width = widths[i]));
        }
        line.trim_end().to_string() + "\n"
    };
    out.push_str(&fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(), &widths));
    out.push_str(&format!("{}\n", "-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1))));
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Phase;

    #[test]
    fn breakdown_renders_all_phases() {
        let mut t = PhaseTimings::new();
        t.add(Phase::MergeReads, 1.0);
        t.add(Phase::LocalAssembly, 3.0);
        let s = render_breakdown("demo", &t);
        assert!(s.contains("merge reads"));
        assert!(s.contains("local assembly"));
        assert!(s.contains("75.0%"));
        assert!(s.contains("TOTAL"));
    }

    #[test]
    fn table_aligns_columns() {
        let s = render_table(
            &["nodes", "speedup"],
            &[vec!["64".into(), "7.00".into()], vec!["1024".into(), "2.65".into()]],
        );
        assert!(s.contains("nodes"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_rows_rejected() {
        render_table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn recovery_section_empty_for_clean_run() {
        let stats = PipelineStats::default();
        assert_eq!(render_recovery(&stats), "");
    }

    #[test]
    fn sanitizer_section_empty_without_gpu_or_sanitizer() {
        let stats = PipelineStats::default();
        assert_eq!(render_sanitizer(&stats), "");
        let stats =
            PipelineStats { gpu: Some(locassm::gpu::GpuRunStats::default()), ..Default::default() };
        assert_eq!(render_sanitizer(&stats), "", "sanitizer-off GPU runs print nothing");
    }

    #[test]
    fn sanitizer_section_reports_clean_run() {
        let mut gpu = locassm::gpu::GpuRunStats::default();
        gpu.sanitizer.enabled = true;
        let stats = PipelineStats { gpu: Some(gpu), ..Default::default() };
        let s = render_sanitizer(&stats);
        assert!(s.contains("gpucheck: clean"), "{s}");
    }

    #[test]
    fn overlap_section_empty_without_overlap_driver() {
        let stats = PipelineStats::default();
        assert_eq!(render_overlap(&stats), "");
    }

    #[test]
    fn overlap_section_reports_shares_and_steals() {
        let stats = PipelineStats {
            overlap: Some(locassm::ScheduleReport {
                policy: "work-steal",
                batches: 6,
                gpu_batches: 4,
                cpu_batches: 2,
                cpu_stole_heavy: 1,
                cpu_est_words: 900,
                gpu_est_words: 1100,
                cpu_model_s: 0.5,
                gpu_model_s: 0.4,
                ..Default::default()
            }),
            ..Default::default()
        };
        let s = render_overlap(&stats);
        assert!(s.contains("work-steal"), "{s}");
        assert!(s.contains("cpu 900 / gpu 1100"), "{s}");
        assert!(s.contains("bin-3 stolen by CPU"), "{s}");
        assert!(s.contains("model makespan"), "{s}");
        assert!(!s.contains("bin-2 absorbed"), "unfired counters stay silent: {s}");
    }

    #[test]
    fn overlap_section_reports_calibration() {
        let stats = PipelineStats {
            overlap: Some(locassm::ScheduleReport {
                policy: "work-steal",
                batches: 4,
                gpu_batches: 2,
                cpu_batches: 2,
                cpu_est_words: 500,
                gpu_est_words: 500,
                calibration: Some(locassm::CalibrationReport {
                    enabled: true,
                    cpu_seed_words_per_s: 1.0e6,
                    cpu_words_per_s: 4.2e6,
                    gpu_words_per_s: 9.0e6,
                    cpu_updates: 7,
                    gpu_updates: 3,
                    cpu_realized_s: 0.25,
                    gpu_realized_s: 0.75,
                    rel_err_vs_realized: 0.05,
                    ..Default::default()
                }),
                ..Default::default()
            }),
            ..Default::default()
        };
        let s = render_overlap(&stats);
        assert!(s.contains("on (EWMA feedback)"), "{s}");
        assert!(s.contains("1.000e6 -> 4.200e6 (7 updates)"), "{s}");
        assert!(s.contains("9.000e6 (3 updates)"), "{s}");
        assert!(s.contains("0.750000 s (model err 5.0%)"), "{s}");

        // Calibration off: the section says so and hides unfired parts.
        let mut off = stats;
        if let Some(sched) = &mut off.overlap {
            let cal = sched.calibration.as_mut().unwrap();
            cal.enabled = false;
            cal.gpu_updates = 0;
            cal.cpu_realized_s = 0.0;
            cal.gpu_realized_s = 0.0;
        }
        let s = render_overlap(&off);
        assert!(s.contains("off (seed rate held)"), "{s}");
        assert!(!s.contains("gpu rate"), "{s}");
        assert!(!s.contains("realized makespan"), "{s}");
    }

    #[test]
    fn overlap_section_reports_per_bin_and_adaptive() {
        let stats = PipelineStats {
            overlap: Some(locassm::ScheduleReport {
                policy: "work-steal",
                batches: 8,
                gpu_batches: 5,
                cpu_batches: 5,
                cpu_est_words: 400,
                gpu_est_words: 600,
                adaptive_batch: true,
                drain_splits: 2,
                min_issued_batch_words: 128,
                calibration: Some(locassm::CalibrationReport {
                    enabled: true,
                    per_bin: true,
                    cpu_seed_words_per_s: 1.0e6,
                    cpu_words_per_s: 2.0e6,
                    cpu_updates: 5,
                    cpu_bin2_words_per_s: 1.5e6,
                    cpu_bin2_updates: 3,
                    cpu_bin3_words_per_s: 6.0e6,
                    cpu_bin3_updates: 2,
                    gpu_words_per_s: 9.0e6,
                    gpu_updates: 5,
                    gpu_bin3_words_per_s: 9.5e6,
                    gpu_bin3_updates: 5,
                    ..Default::default()
                }),
                ..Default::default()
            }),
            ..Default::default()
        };
        let s = render_overlap(&stats);
        assert!(s.contains("2 drain splits, min issued 128 w"), "{s}");
        assert!(s.contains("per-bin rates"), "{s}");
        assert!(s.contains("cpu bin-2 rate"), "{s}");
        assert!(s.contains("1.500e6 (3 updates)"), "{s}");
        assert!(s.contains("cpu bin-3 rate"), "{s}");
        assert!(s.contains("gpu bin-3 rate"), "{s}");
        assert!(!s.contains("gpu bin-2 rate"), "unfired bins stay silent: {s}");

        // Per-bin off, adaptive off: the new lines vanish entirely.
        let mut off = stats;
        if let Some(sched) = &mut off.overlap {
            sched.adaptive_batch = false;
            sched.calibration.as_mut().unwrap().per_bin = false;
        }
        let s = render_overlap(&off);
        assert!(!s.contains("adaptive batches"), "{s}");
        assert!(!s.contains("per-bin rates"), "{s}");
        assert!(!s.contains("bin-2 rate"), "{s}");
    }

    #[test]
    fn recovery_section_lists_fired_rungs() {
        use locassm::gpu::RecoveryStats;
        let stats = PipelineStats {
            recovery: Some(RecoveryStats {
                batch_splits: 2,
                device_resets: 1,
                backoff_s: 0.001,
                cpu_fallback_tasks: 3,
                ..Default::default()
            }),
            la_failed_tasks: 1,
            ..Default::default()
        };
        let s = render_recovery(&stats);
        assert!(s.contains("DEGRADED RUN"), "{s}");
        assert!(s.contains("batch splits"), "{s}");
        assert!(s.contains("device resets"), "{s}");
        assert!(s.contains("CPU-fallback tasks"), "{s}");
        assert!(s.contains("tasks skipped"), "{s}");
        assert!(!s.contains("launch retries"), "unfired rungs stay silent: {s}");
    }
}
