//! Iterative-k assembly — the outer loop of Figure 1 ("Iterate for
//! k = k₁, k₂, …").
//!
//! MetaHipMer assembles at a small k first (sensitive at low coverage,
//! repeat-fragile), then re-assembles at progressively larger k with the
//! previous round's contigs injected as *pseudo-reads*: regions that only
//! small-k evidence could assemble survive into the large-k rounds, while
//! large k resolves repeats the small rounds forked on. Alignment + local
//! assembly run inside every round, exactly as in the paper's pipeline
//! diagram; scaffolding runs once at the end.

use crate::merge::merge_reads;
use crate::pipeline::{EngineChoice, Phase, PhaseTimings, PipelineConfig};
use crate::scaffold::{scaffold_contigs, Scaffold};
use crate::stats::AssemblyStats;
use align::{collect_candidates, SeedIndex};
use bioseq::{DnaSeq, PairedRead, Read};
use dbg::{count_kmers, generate_contigs, DbgGraph};
use gpusim::DeviceConfig;
use locassm::gpu::{GpuLocalAssembler, KernelVersion};
use locassm::{apply_extensions, extend_all_cpu_isolated, make_tasks, ExtResult, TaskOutcome};
use std::time::Instant;

/// Per-round statistics.
#[derive(Debug, Clone)]
pub struct RoundStats {
    pub k: usize,
    pub contigs: usize,
    pub stats: AssemblyStats,
    pub bases_appended: usize,
}

/// Result of an iterative assembly.
#[derive(Debug)]
pub struct IterativeResult {
    pub contigs: Vec<DnaSeq>,
    pub scaffolds: Vec<Scaffold>,
    pub rounds: Vec<RoundStats>,
    pub timings: PhaseTimings,
}

/// Weight given to contig pseudo-reads when re-counting k-mers (so contig
/// sequence passes the singleton filter on its own).
const CONTIG_PSEUDO_WEIGHT: usize = 2;

/// Run the iterative pipeline over `k_schedule` (ascending).
pub fn run_iterative(
    pairs: &[PairedRead],
    cfg: &PipelineConfig,
    k_schedule: &[usize],
) -> IterativeResult {
    assert!(!k_schedule.is_empty(), "empty k schedule");
    let mut timings = PhaseTimings::new();

    let t = Instant::now();
    let (reads, _) = merge_reads(pairs, &cfg.merge);
    timings.add(Phase::MergeReads, t.elapsed().as_secs_f64());

    let mut contigs: Vec<DnaSeq> = Vec::new();
    let mut rounds = Vec::new();

    for &k in k_schedule {
        // k-mer analysis over reads + previous contigs as pseudo-reads.
        let t = Instant::now();
        let mut round_reads: Vec<Read> = reads.clone();
        for (i, c) in contigs.iter().enumerate() {
            for w in 0..CONTIG_PSEUDO_WEIGHT {
                round_reads.push(Read::with_uniform_qual(
                    format!("__contig_{i}_{w}"),
                    c.clone(),
                    40,
                ));
            }
        }
        let counts = count_kmers(&round_reads, k, cfg.min_kmer_count);
        timings.add(Phase::KmerAnalysis, t.elapsed().as_secs_f64());

        // contig generation
        let t = Instant::now();
        let graph = DbgGraph::new(k, counts);
        contigs = generate_contigs(&graph, cfg.min_votes)
            .into_iter()
            .filter(|c| c.len() >= cfg.min_contig_len)
            .map(|c| c.seq)
            .collect();
        timings.add(Phase::ContigGeneration, t.elapsed().as_secs_f64());

        // alignment (candidates from the real reads only — contigs must not
        // vote on their own extension)
        let t = Instant::now();
        let idx = SeedIndex::build(&contigs, cfg.scaffold.seed_k, cfg.scaffold.max_occ);
        let cands = collect_candidates(&contigs, &reads, &idx, &cfg.candidates);
        timings.add(Phase::Alignment, t.elapsed().as_secs_f64());

        // local assembly
        let t = Instant::now();
        let cand_pairs: Vec<(Vec<Read>, Vec<Read>)> =
            cands.into_iter().map(|c| (c.right, c.left)).collect();
        let tasks = make_tasks(&contigs, &cand_pairs, &cfg.locassm);
        // Per-task isolation on both engines: a task that fails every
        // recovery rung is skipped for this round, never fatal.
        let results: Vec<ExtResult> = match &cfg.engine {
            EngineChoice::Cpu => extend_all_cpu_isolated(&tasks, &cfg.locassm)
                .into_iter()
                .map(TaskOutcome::into_result)
                .collect(),
            EngineChoice::Gpu { device, version } => {
                let mut engine =
                    GpuLocalAssembler::new(device.clone(), cfg.locassm.clone(), *version);
                engine
                    .extend_tasks_outcomes(&tasks)
                    .0
                    .into_iter()
                    .map(TaskOutcome::into_result)
                    .collect()
            }
            EngineChoice::Overlap { device, version, schedule } => {
                let driver = locassm::OverlapDriver {
                    device: device.clone(),
                    version: *version,
                    schedule: schedule.clone(),
                };
                match driver.run(&tasks, &cfg.locassm) {
                    Ok(out) => out.results,
                    // An invariant violation in one round degrades to the
                    // CPU reference rather than aborting the whole ladder.
                    Err(_e) => extend_all_cpu_isolated(&tasks, &cfg.locassm)
                        .into_iter()
                        .map(TaskOutcome::into_result)
                        .collect(),
                }
            }
        };
        let appended: usize = results.iter().map(|r| r.appended.len()).sum();
        contigs = apply_extensions(&contigs, &tasks, &results);
        timings.add(Phase::LocalAssembly, t.elapsed().as_secs_f64());

        rounds.push(RoundStats {
            k,
            contigs: contigs.len(),
            stats: AssemblyStats::of(&contigs),
            bases_appended: appended,
        });
    }

    // scaffolding on the final round's contigs
    let t = Instant::now();
    let scaffolds = scaffold_contigs(&contigs, pairs, &cfg.scaffold);
    timings.add(Phase::Scaffolding, t.elapsed().as_secs_f64());

    IterativeResult { contigs, scaffolds, rounds, timings }
}

/// Default MetaHipMer-style schedule clipped to the observed read length.
pub fn default_schedule(max_read_len: usize) -> Vec<usize> {
    [21usize, 33, 55, 77, 99].into_iter().filter(|&k| k + 1 < max_read_len).collect()
}

/// Convenience wrapper for the GPU engine.
pub fn gpu_engine_choice() -> EngineChoice {
    EngineChoice::Gpu { device: DeviceConfig::v100(), version: KernelVersion::V2 }
}

/// Convenience wrapper for the work-stealing overlap driver.
pub fn overlap_engine_choice() -> EngineChoice {
    EngineChoice::Overlap {
        device: DeviceConfig::v100(),
        version: KernelVersion::V2,
        schedule: locassm::SchedulePolicy::WorkSteal(locassm::StealConfig::default()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate_community, simulate_reads, CommunityConfig, ReadSimConfig};

    fn dataset(seed: u64, repeat_prob: f64) -> (datagen::Community, Vec<PairedRead>) {
        let community = generate_community(&CommunityConfig {
            n_species: 2,
            genome_len: (9_000, 12_000),
            abundance_sigma: 0.4,
            repeat_prob,
            repeat_period: 61,
            seed,
        });
        let pairs = simulate_reads(
            &community,
            &ReadSimConfig {
                n_pairs: 4_000,
                read_len: 100,
                insert_mean: 260.0,
                insert_sd: 20.0,
                lo_frac: 0.01,
                seed: seed + 1,
                ..Default::default()
            },
        );
        (community, pairs)
    }

    #[test]
    fn schedule_clips_to_read_length() {
        assert_eq!(default_schedule(150), vec![21, 33, 55, 77, 99]);
        assert_eq!(default_schedule(60), vec![21, 33, 55]);
        assert_eq!(default_schedule(20), Vec::<usize>::new());
    }

    #[test]
    fn iterative_runs_all_rounds() {
        let (_, pairs) = dataset(42, 0.0);
        let cfg = PipelineConfig::default();
        let result = run_iterative(&pairs, &cfg, &[21, 31, 41]);
        assert_eq!(result.rounds.len(), 3);
        assert!(result.rounds.iter().all(|r| r.contigs > 0));
        // Each contig appears in exactly one scaffold.
        let members: usize = result.scaffolds.iter().map(|s| s.members.len()).sum();
        assert_eq!(members, result.contigs.len());
    }

    #[test]
    fn iterating_does_not_hurt_contiguity_on_repeats() {
        // On repeat-bearing genomes the final (large-k) round should be at
        // least as contiguous as the first (small-k) round.
        let (_, pairs) = dataset(7, 0.25);
        let cfg = PipelineConfig::default();
        let result = run_iterative(&pairs, &cfg, &[21, 31, 41]);
        let first = &result.rounds[0].stats;
        let last = &result.rounds[result.rounds.len() - 1].stats;
        assert!(
            last.n50 * 10 >= first.n50 * 9,
            "iterating collapsed N50: {} -> {}",
            first.n50,
            last.n50
        );
    }

    #[test]
    fn final_assembly_covers_genomes() {
        let (community, pairs) = dataset(11, 0.1);
        let cfg = PipelineConfig::default();
        let result = run_iterative(&pairs, &cfg, &[21, 31]);
        let refs: Vec<DnaSeq> = community.genomes.iter().map(|g| g.seq.clone()).collect();
        let eval = crate::stats::evaluate_against_refs(&result.contigs, &refs, 31);
        assert!(eval.genome_fraction > 0.7, "genome fraction {:.3}", eval.genome_fraction);
        assert!(eval.precision > 0.9, "precision {:.3}", eval.precision);
    }

    #[test]
    fn deterministic() {
        let (_, pairs) = dataset(3, 0.1);
        let cfg = PipelineConfig::default();
        let a = run_iterative(&pairs, &cfg, &[21, 31]);
        let b = run_iterative(&pairs, &cfg, &[21, 31]);
        assert_eq!(a.contigs, b.contigs);
    }
}
