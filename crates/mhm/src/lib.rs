//! The MetaHipMer-like assembly pipeline (Figure 1 of the paper) and the
//! Summit strong-scaling model used to regenerate its evaluation figures.
//!
//! Pipeline phases, in order:
//!
//! 1. **merge reads** ([`merge`]) — overlap-merge paired ends;
//! 2. **k-mer analysis** (`dbg::count_kmers`) — count + filter singletons;
//! 3. **contig generation** (`dbg::generate_contigs`) — UU-path traversal;
//! 4. **alignment** (`align`) — map reads to contig ends, collect candidate
//!    read sets; the banded-SW rescoring pass is the "aln kernel" slice;
//! 5. **local assembly** (`locassm`) — CPU or simulated-GPU engine;
//! 6. **scaffolding** ([`scaffold`]) — read-pair links join contigs;
//! 7. **file I/O** — FASTA serialization.
//!
//! [`pipeline::run_pipeline`] runs all of it on real data and reports
//! per-phase wall times ([`pipeline::PhaseTimings`]). [`scaling`] projects
//! measured profiles onto Summit node counts (64–1024) with the α–β
//! communication model and the paper-anchored GPU-overhead model, producing
//! the series behind Figures 2, 12, 13 and 14.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod cli;
pub mod errors;
pub mod iterative;
pub mod merge;
pub mod pipeline;
pub mod report;
pub mod scaffold;
pub mod scaling;
pub mod stats;

pub use errors::{ErrorKind, PipelineError};
pub use iterative::{run_iterative, IterativeResult};
pub use merge::{merge_reads, MergeParams, MergeStats};
pub use pipeline::{
    run_pipeline, EngineChoice, Phase, PhaseTimings, PipelineConfig, PipelineResult,
};
pub use scaffold::{scaffold_contigs, Scaffold, ScaffoldParams};
pub use scaling::{PaperAnchors, ScalingError, ScalingModel};
pub use stats::{evaluate_against_refs, AssemblyStats, RefEval};
