//! End-to-end pipeline orchestration with per-phase timing.

use crate::errors::PipelineError;
use crate::merge::{merge_reads, MergeParams, MergeStats};
use crate::scaffold::{scaffold_contigs, Scaffold, ScaffoldParams};
use align::sw::{banded_sw, SwScoring};
use align::{collect_candidates, CandidateParams, SeedIndex};
use bioseq::{DnaSeq, PairedRead};
use dbg::{count_kmers, count_kmers_with_spectrum, generate_contigs, DbgGraph};
use gpusim::DeviceConfig;
use locassm::gpu::{GpuLocalAssembler, GpuRunStats, KernelVersion, RecoveryStats};
use locassm::{
    apply_extensions, bin_tasks, extend_all_cpu_isolated, make_tasks, summarize, BinStats,
    ExtResult, ExtSummary, LocalAssemblyParams, TaskOutcome,
};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Pipeline phases, named as in the paper's run-time breakdowns (Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    MergeReads,
    KmerAnalysis,
    ContigGeneration,
    Alignment,
    AlnKernel,
    LocalAssembly,
    Scaffolding,
    FileIo,
}

impl Phase {
    /// All phases in pipeline order.
    pub const ALL: [Phase; 8] = [
        Phase::MergeReads,
        Phase::KmerAnalysis,
        Phase::ContigGeneration,
        Phase::Alignment,
        Phase::AlnKernel,
        Phase::LocalAssembly,
        Phase::Scaffolding,
        Phase::FileIo,
    ];

    /// Display name matching the paper's legends.
    pub fn name(self) -> &'static str {
        match self {
            Phase::MergeReads => "merge reads",
            Phase::KmerAnalysis => "k-mer analysis",
            Phase::ContigGeneration => "contig generation",
            Phase::Alignment => "alignment",
            Phase::AlnKernel => "aln kernel",
            Phase::LocalAssembly => "local assembly",
            Phase::Scaffolding => "scaffolding",
            Phase::FileIo => "file I/O",
        }
    }
}

/// Seconds per phase.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PhaseTimings {
    entries: Vec<(Phase, f64)>,
}

impl PhaseTimings {
    /// Empty timings.
    pub fn new() -> PhaseTimings {
        PhaseTimings::default()
    }

    /// Record (accumulate) seconds for a phase.
    pub fn add(&mut self, phase: Phase, seconds: f64) {
        if let Some(e) = self.entries.iter_mut().find(|(p, _)| *p == phase) {
            e.1 += seconds;
        } else {
            self.entries.push((phase, seconds));
        }
    }

    /// Seconds recorded for a phase (0 if absent).
    pub fn get(&self, phase: Phase) -> f64 {
        self.entries.iter().find(|(p, _)| *p == phase).map_or(0.0, |(_, s)| *s)
    }

    /// Replace a phase's time (used when substituting the simulated GPU
    /// time for the measured host time).
    pub fn set(&mut self, phase: Phase, seconds: f64) {
        if let Some(e) = self.entries.iter_mut().find(|(p, _)| *p == phase) {
            e.1 = seconds;
        } else {
            self.entries.push((phase, seconds));
        }
    }

    /// Total across phases.
    pub fn total(&self) -> f64 {
        self.entries.iter().map(|(_, s)| s).sum()
    }

    /// `(phase, seconds, fraction)` rows in pipeline order.
    pub fn breakdown(&self) -> Vec<(Phase, f64, f64)> {
        let total = self.total().max(f64::MIN_POSITIVE);
        Phase::ALL.iter().map(|&p| (p, self.get(p), self.get(p) / total)).collect()
    }
}

/// Which local-assembly engine the pipeline uses.
#[derive(Debug, Clone)]
pub enum EngineChoice {
    /// Multicore CPU reference.
    Cpu,
    /// Simulated-GPU engine with the given device and kernel version.
    Gpu { device: DeviceConfig, version: KernelVersion },
    /// CPU/GPU overlap driver (paper §4.3): both engines share the task
    /// list under a [`locassm::SchedulePolicy`] — work-stealing by
    /// default, or the static `cpu_bin2_fraction` split.
    Overlap { device: DeviceConfig, version: KernelVersion, schedule: locassm::SchedulePolicy },
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Contig-generation k.
    pub k: usize,
    /// Minimum k-mer count (singleton filter).
    pub min_kmer_count: u32,
    /// Minimum extension votes during contig generation.
    pub min_votes: u16,
    /// Discard contigs shorter than this before downstream phases.
    pub min_contig_len: usize,
    pub merge: MergeParams,
    pub candidates: CandidateParams,
    pub locassm: LocalAssemblyParams,
    pub scaffold: ScaffoldParams,
    pub engine: EngineChoice,
    /// Fraction of accepted candidate alignments rescored with banded SW
    /// (the "aln kernel" phase; 0 disables).
    pub sw_rescore_frac: f64,
    /// Derive the singleton-filter cutoff from the k-mer spectrum's error
    /// valley instead of using `min_kmer_count` directly.
    pub auto_min_count: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            k: 31,
            min_kmer_count: 2,
            min_votes: 2,
            min_contig_len: 100,
            merge: MergeParams::default(),
            candidates: CandidateParams::default(),
            locassm: LocalAssemblyParams::for_tests(),
            scaffold: ScaffoldParams::default(),
            engine: EngineChoice::Cpu,
            sw_rescore_frac: 0.25,
            auto_min_count: false,
        }
    }
}

/// Everything a pipeline run produces.
#[derive(Debug)]
pub struct PipelineResult {
    /// Contigs after local-assembly extension.
    pub contigs: Vec<DnaSeq>,
    /// Scaffolds over the extended contigs.
    pub scaffolds: Vec<Scaffold>,
    /// Wall-clock seconds per phase. For the GPU engine, the LocalAssembly
    /// entry is the *simulated device time*; the host wall time is in
    /// `stats.la_wall_seconds`.
    pub timings: PhaseTimings,
    pub stats: PipelineStats,
}

impl PipelineResult {
    /// Whether local assembly had to exercise any rung of the recovery
    /// ladder (retry, batch shrink, device reset, CPU fallback, or skip).
    pub fn degraded(&self) -> bool {
        self.stats.recovery.as_ref().is_some_and(RecoveryStats::any_recovery)
            || self.stats.la_failed_tasks > 0
    }
}

/// Run statistics.
#[derive(Debug, Default)]
pub struct PipelineStats {
    pub pairs_in: usize,
    pub merge: MergeStats,
    pub reads_for_assembly: usize,
    pub distinct_kmers: usize,
    /// The singleton cutoff actually used (spectrum-derived when
    /// `auto_min_count` is set).
    pub min_count_used: u32,
    pub contigs_initial: usize,
    pub contigs_kept: usize,
    pub bins: BinStats,
    pub tasks: usize,
    pub bases_appended: usize,
    /// Walk-outcome telemetry (states, iterations, extension lengths).
    pub ext_summary: ExtSummary,
    /// Host wall seconds spent in local assembly (whichever engine).
    pub la_wall_seconds: f64,
    /// Simulated device seconds (GPU engine only).
    pub la_gpu_sim_seconds: Option<f64>,
    /// GPU engine run stats (GPU engine only).
    pub gpu: Option<GpuRunStats>,
    /// Recovery-ladder counters from the GPU engine (GPU engine only);
    /// all-zero for a fault-free run.
    pub recovery: Option<RecoveryStats>,
    /// Tasks skipped after every recovery rung failed (their contigs keep
    /// their unextended sequence).
    pub la_failed_tasks: usize,
    /// Overlap-scheduler report (Overlap engine only): shares, steal
    /// counts, and the virtual-time makespan model.
    pub overlap: Option<locassm::ScheduleReport>,
    pub scaffolds: usize,
    pub fasta_bytes: usize,
}

/// Run the full pipeline on a set of read pairs.
///
/// Recoverable device faults (injected or genuine OOM/launch failures) are
/// absorbed by the local-assembly recovery ladder and reported as counters
/// in [`PipelineStats::recovery`]; an `Err` means the run could not
/// produce a result at all.
pub fn run_pipeline(
    pairs: &[PairedRead],
    cfg: &PipelineConfig,
) -> Result<PipelineResult, PipelineError> {
    let mut timings = PhaseTimings::new();
    let mut stats = PipelineStats { pairs_in: pairs.len(), ..Default::default() };

    // 1. merge reads
    let t = Instant::now();
    let (reads, merge_stats) = merge_reads(pairs, &cfg.merge);
    timings.add(Phase::MergeReads, t.elapsed().as_secs_f64());
    stats.merge = merge_stats;
    stats.reads_for_assembly = reads.len();

    // 2. k-mer analysis
    let t = Instant::now();
    let counts = if cfg.auto_min_count {
        let (mut map, spectrum) = count_kmers_with_spectrum(&reads, cfg.k, 1, 128);
        let cutoff = spectrum.error_cutoff().unwrap_or(cfg.min_kmer_count);
        stats.min_count_used = cutoff.max(cfg.min_kmer_count);
        let mc = stats.min_count_used;
        map.retain(|_, v| v.count >= mc);
        map
    } else {
        stats.min_count_used = cfg.min_kmer_count;
        count_kmers(&reads, cfg.k, cfg.min_kmer_count)
    };
    timings.add(Phase::KmerAnalysis, t.elapsed().as_secs_f64());
    stats.distinct_kmers = counts.len();

    // 3. contig generation
    let t = Instant::now();
    let graph = DbgGraph::new(cfg.k, counts);
    let raw_contigs = generate_contigs(&graph, cfg.min_votes);
    stats.contigs_initial = raw_contigs.len();
    let contigs: Vec<DnaSeq> =
        raw_contigs.into_iter().filter(|c| c.len() >= cfg.min_contig_len).map(|c| c.seq).collect();
    stats.contigs_kept = contigs.len();
    timings.add(Phase::ContigGeneration, t.elapsed().as_secs_f64());

    // 4. alignment (+ aln kernel rescoring)
    let t = Instant::now();
    let idx = SeedIndex::build(&contigs, cfg.scaffold.seed_k, cfg.scaffold.max_occ);
    let cands = collect_candidates(&contigs, &reads, &idx, &cfg.candidates);
    timings.add(Phase::Alignment, t.elapsed().as_secs_f64());

    let t = Instant::now();
    if cfg.sw_rescore_frac > 0.0 {
        let mut budget =
            (cands.iter().map(|c| c.total()).sum::<usize>() as f64 * cfg.sw_rescore_frac) as usize;
        'outer: for (ci, c) in cands.iter().enumerate() {
            for r in c.right.iter().chain(c.left.iter()) {
                if budget == 0 {
                    break 'outer;
                }
                let _ = banded_sw(&r.seq, &contigs[ci], SwScoring::default(), 16, 0);
                budget -= 1;
            }
        }
    }
    timings.add(Phase::AlnKernel, t.elapsed().as_secs_f64());

    // 5. local assembly
    let cand_pairs: Vec<(Vec<bioseq::Read>, Vec<bioseq::Read>)> =
        cands.into_iter().map(|c| (c.right, c.left)).collect();
    let tasks = make_tasks(&contigs, &cand_pairs, &cfg.locassm);
    stats.tasks = tasks.len();
    stats.bins = bin_tasks(&tasks);
    let t = Instant::now();
    // Either engine yields per-task outcomes: a task that fails every rung
    // of the recovery ladder is skipped (contig keeps its sequence), never
    // fatal to the run.
    let (results, la_failed): (Vec<ExtResult>, usize) = match &cfg.engine {
        EngineChoice::Cpu => {
            let outcomes = extend_all_cpu_isolated(&tasks, &cfg.locassm);
            let failed = outcomes.iter().filter(|o| o.is_failed()).count();
            (outcomes.into_iter().map(TaskOutcome::into_result).collect(), failed)
        }
        EngineChoice::Gpu { device, version } => {
            let mut engine = GpuLocalAssembler::new(device.clone(), cfg.locassm.clone(), *version);
            let (outcomes, gpu_stats) = engine.extend_tasks_outcomes(&tasks);
            stats.la_gpu_sim_seconds = Some(gpu_stats.seconds);
            stats.recovery = Some(gpu_stats.recovery.clone());
            stats.gpu = Some(gpu_stats);
            let failed = outcomes.iter().filter(|o| o.is_failed()).count();
            (outcomes.into_iter().map(TaskOutcome::into_result).collect(), failed)
        }
        EngineChoice::Overlap { device, version, schedule } => {
            let driver = locassm::OverlapDriver {
                device: device.clone(),
                version: *version,
                schedule: schedule.clone(),
            };
            let out = driver
                .run(&tasks, &cfg.locassm)
                .map_err(|e| PipelineError::engine(Phase::LocalAssembly, e))?;
            stats.la_gpu_sim_seconds = out.gpu_stats.as_ref().map(|s| s.seconds);
            stats.recovery = out.gpu_stats.as_ref().map(|s| s.recovery.clone());
            stats.gpu = out.gpu_stats;
            stats.overlap = Some(out.schedule);
            (out.results, out.failed_tasks)
        }
    };
    stats.la_failed_tasks = la_failed;
    stats.la_wall_seconds = t.elapsed().as_secs_f64();
    stats.bases_appended = results.iter().map(|r| r.appended.len()).sum();
    stats.ext_summary = summarize(&results);
    let extended = apply_extensions(&contigs, &tasks, &results);
    match stats.la_gpu_sim_seconds {
        Some(sim) => timings.add(Phase::LocalAssembly, sim),
        None => timings.add(Phase::LocalAssembly, stats.la_wall_seconds),
    }

    // 6. scaffolding
    let t = Instant::now();
    let scaffolds = scaffold_contigs(&extended, pairs, &cfg.scaffold);
    stats.scaffolds = scaffolds.len();
    timings.add(Phase::Scaffolding, t.elapsed().as_secs_f64());

    // 7. file I/O (serialize to an in-memory sink; callers persist if they
    // want a file — the cost is the serialization itself).
    let t = Instant::now();
    let mut sink = Vec::new();
    let records =
        scaffolds.iter().enumerate().map(|(i, s)| (format!("scaffold_{i}"), s.render(&extended)));
    bioseq::fastq::write_fasta(&mut sink, records, 80)
        .map_err(|e| PipelineError::io(Phase::FileIo, e))?;
    stats.fasta_bytes = sink.len();
    timings.add(Phase::FileIo, t.elapsed().as_secs_f64());

    Ok(PipelineResult { contigs: extended, scaffolds, timings, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{
        arcticsynth_like, generate_community, simulate_reads, CommunityConfig, ReadSimConfig,
    };

    fn tiny_dataset() -> (datagen::Community, Vec<PairedRead>) {
        let community = generate_community(&CommunityConfig {
            n_species: 2,
            genome_len: (8_000, 9_000),
            abundance_sigma: 0.3,
            seed: 11,
            ..Default::default()
        });
        let pairs = simulate_reads(
            &community,
            &ReadSimConfig {
                n_pairs: 3_000,
                read_len: 100,
                insert_mean: 240.0,
                insert_sd: 15.0,
                lo_frac: 0.01,
                ..Default::default()
            },
        );
        (community, pairs)
    }

    #[test]
    fn cpu_pipeline_assembles_genomes() {
        let (community, pairs) = tiny_dataset();
        let cfg = PipelineConfig::default();
        let result = run_pipeline(&pairs, &cfg).expect("pipeline runs");
        assert!(result.stats.contigs_kept > 0, "no contigs survived");
        assert!(result.stats.distinct_kmers > 1000);
        // Longest contig should cover a large chunk of some genome.
        let longest = result.contigs.iter().map(DnaSeq::len).max().unwrap();
        let min_genome = community.genomes.iter().map(|g| g.seq.len()).min().unwrap();
        assert!(
            longest as f64 > 0.5 * min_genome as f64,
            "longest contig {longest} vs smallest genome {min_genome}"
        );
        // All phases ticked.
        for p in Phase::ALL {
            assert!(result.timings.get(p) >= 0.0);
        }
        assert!(result.timings.get(Phase::LocalAssembly) > 0.0);
    }

    #[test]
    fn gpu_pipeline_matches_cpu_contigs() {
        let (_, pairs) = tiny_dataset();
        let cpu_cfg = PipelineConfig::default();
        let gpu_cfg = PipelineConfig {
            engine: EngineChoice::Gpu { device: DeviceConfig::v100(), version: KernelVersion::V2 },
            ..PipelineConfig::default()
        };
        let cpu = run_pipeline(&pairs, &cpu_cfg).expect("pipeline runs");
        let gpu = run_pipeline(&pairs, &gpu_cfg).expect("pipeline runs");
        assert_eq!(cpu.contigs, gpu.contigs, "engines must produce identical assemblies");
        assert!(gpu.stats.la_gpu_sim_seconds.unwrap() > 0.0);
        assert!(gpu.stats.gpu.as_ref().unwrap().counters.warp_insts() > 0);
    }

    #[test]
    fn local_assembly_extends_contigs() {
        // Repeat-bearing genomes with the default (wider) insert
        // distribution: the global graph forks at the repeats, so the
        // assembly fragments and local assembly has ends to extend.
        let community = generate_community(&CommunityConfig {
            n_species: 2,
            genome_len: (8_000, 9_000),
            abundance_sigma: 0.3,
            repeat_prob: 0.3,
            repeat_period: 97,
            seed: 11,
        });
        let pairs = simulate_reads(
            &community,
            &ReadSimConfig { n_pairs: 3_000, read_len: 100, seed: 12, ..Default::default() },
        );
        let result = run_pipeline(&pairs, &PipelineConfig::default()).expect("pipeline runs");
        assert!(result.stats.bases_appended > 0, "local assembly appended nothing");
    }

    #[test]
    fn preset_smoke() {
        let (_, pairs) = arcticsynth_like(0.02).generate();
        let result = run_pipeline(&pairs, &PipelineConfig::default()).expect("pipeline runs");
        assert!(result.stats.reads_for_assembly > 0);
        assert_eq!(result.stats.pairs_in, pairs.len());
    }

    #[test]
    fn ext_summary_consistent_with_stats() {
        let (_, pairs) = tiny_dataset();
        let result = run_pipeline(&pairs, &PipelineConfig::default()).expect("pipeline runs");
        assert_eq!(result.stats.ext_summary.tasks, result.stats.tasks);
        assert_eq!(result.stats.ext_summary.bases_appended, result.stats.bases_appended);
    }

    #[test]
    fn auto_min_count_uses_spectrum() {
        let (_, pairs) = tiny_dataset();
        let cfg = PipelineConfig { auto_min_count: true, ..PipelineConfig::default() };
        let result = run_pipeline(&pairs, &cfg).expect("pipeline runs");
        assert!(result.stats.min_count_used >= 2, "cutoff {}", result.stats.min_count_used);
        assert!(result.stats.contigs_kept > 0);
    }

    #[test]
    fn timings_breakdown_sums_to_one() {
        let (_, pairs) = tiny_dataset();
        let result = run_pipeline(&pairs, &PipelineConfig::default()).expect("pipeline runs");
        let frac_sum: f64 = result.timings.breakdown().iter().map(|(_, _, f)| f).sum();
        assert!((frac_sum - 1.0).abs() < 1e-9);
    }
}
