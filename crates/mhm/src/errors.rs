//! Structured pipeline errors with per-phase context.
//!
//! Written in the `thiserror` idiom with the derive spelled out by hand —
//! this workspace vendors every dependency and carries no proc macros —
//! so each variant gets a `#[error("...")]`-style [`Display`](std::fmt::Display) message and
//! a [`source`](std::error::Error::source) where an underlying error
//! exists.
//!
//! A [`PipelineError`] means the run could not produce a result at all.
//! Recoverable device faults never surface here: they are absorbed by the
//! local-assembly recovery ladder (retry → shrink → reset → CPU fallback →
//! skip) and reported as counters in
//! [`PipelineStats`](crate::pipeline::PipelineStats).

use crate::pipeline::Phase;
use std::fmt;

/// A fatal pipeline failure, tagged with the phase it occurred in.
#[derive(Debug)]
pub struct PipelineError {
    /// The phase that failed.
    pub phase: Phase,
    /// What went wrong.
    pub kind: ErrorKind,
}

/// The failure itself.
#[derive(Debug)]
pub enum ErrorKind {
    /// Serialization or file I/O failed.
    Io(std::io::Error),
    /// The local-assembly driver violated an internal invariant.
    Engine(locassm::DriverError),
    /// Structurally invalid input.
    InvalidInput(String),
}

impl PipelineError {
    /// An I/O failure during `phase`.
    pub fn io(phase: Phase, source: std::io::Error) -> PipelineError {
        PipelineError { phase, kind: ErrorKind::Io(source) }
    }

    /// An engine invariant violation during `phase`.
    pub fn engine(phase: Phase, source: locassm::DriverError) -> PipelineError {
        PipelineError { phase, kind: ErrorKind::Engine(source) }
    }

    /// Invalid input detected during `phase`.
    pub fn invalid_input(phase: Phase, detail: impl Into<String>) -> PipelineError {
        PipelineError { phase, kind: ErrorKind::InvalidInput(detail.into()) }
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pipeline failed during {}: ", self.phase.name())?;
        match &self.kind {
            ErrorKind::Io(e) => write!(f, "I/O error: {e}"),
            ErrorKind::Engine(e) => write!(f, "engine error: {e}"),
            ErrorKind::InvalidInput(d) => write!(f, "invalid input: {d}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.kind {
            ErrorKind::Io(e) => Some(e),
            ErrorKind::Engine(e) => Some(e),
            ErrorKind::InvalidInput(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_phase_name() {
        let e = PipelineError::invalid_input(Phase::MergeReads, "empty read set");
        let s = e.to_string();
        assert!(s.contains("merge reads"), "{s}");
        assert!(s.contains("empty read set"), "{s}");
    }

    #[test]
    fn io_errors_carry_a_source() {
        use std::error::Error;
        let e = PipelineError::io(Phase::FileIo, std::io::Error::other("disk gone"));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("file I/O"));
    }
}
