//! Summit strong-scaling model — the machinery behind Figures 2, 13 and 14.
//!
//! We cannot run on 64–1024 Summit nodes, so the node-count series are
//! produced by a documented analytic model with two kinds of inputs:
//!
//! * **paper anchors** (one breakdown + two speedup points) taken from the
//!   paper itself: total 2128 s at 64 nodes with local assembly at 34%
//!   (Fig. 2a), local-assembly GPU speedup 7× at 64 nodes and 2.65× at
//!   1024 nodes (Fig. 13);
//! * **mechanistic forms**: compute phases strong-scale as `64/N`;
//!   communication-heavy phases split into a `64/N` part and a
//!   `log₂N/log₂64` part (α–β collectives); the GPU local-assembly time is
//!   `K/N + F` — per-node work plus a fixed per-node offload overhead,
//!   which is exactly the paper's explanation for the speedup decay
//!   ("a decrease in the amount of work that can be offloaded to one GPU…
//!   causes larger GPU overheads").
//!
//! `K` and `F` are solved from the two anchored speedups; every
//! intermediate node count is then a *prediction*, compared against the
//! paper in EXPERIMENTS.md. The same model reproduces Figure 2b's observed
//! post-offload breakdown (local assembly 34% → ~6%, total ≈ 1.5 ks) with
//! no additional fitting — a useful consistency check.

use crate::pipeline::{Phase, PhaseTimings};
use serde::{Deserialize, Serialize};

/// Why a scaling-model query was rejected. The model is *anchored*, not a
/// general law: it can only interpolate between its calibration points, so
/// out-of-domain queries return an error instead of a silently
/// extrapolated number (the `Comm` log term reaches 0 at N=1, and a phase
/// missing from the anchor table used to evaluate to 0 s with no signal).
#[derive(Debug, Clone, PartialEq)]
pub enum ScalingError {
    /// The queried phase has no entry in the anchor table.
    UnknownPhase { phase: Phase },
    /// `nodes` is outside the anchored range `[nodes_anchor, nodes_far]`
    /// (or not finite).
    NodesOutOfRange { nodes: f64, lo: f64, hi: f64 },
}

impl std::fmt::Display for ScalingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScalingError::UnknownPhase { phase } => {
                write!(f, "phase {:?} has no anchor entry in the scaling model", phase)
            }
            ScalingError::NodesOutOfRange { nodes, lo, hi } => {
                write!(f, "node count {nodes} outside the anchored range [{lo}, {hi}]")
            }
        }
    }
}

impl std::error::Error for ScalingError {}

/// How a phase scales with node count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PhaseScaling {
    /// Node-local compute: `t(N) = t64 · 64/N`.
    Local,
    /// Mixed compute + communication: `t(N) = t64·((1−c)·64/N + c·log₂N/log₂64)`.
    Comm(f64),
    /// Constant with scale (serial I/O, fixed setup).
    Fixed,
}

/// Anchors lifted from the paper.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PaperAnchors {
    /// Anchor node count (64).
    pub nodes_anchor: f64,
    /// Total pipeline seconds at the anchor, CPU local assembly (Fig. 2a).
    pub total_anchor_s: f64,
    /// Fraction of total in each phase at the anchor (Fig. 2a), plus its
    /// scaling class.
    pub phases: Vec<(Phase, f64, PhaseScaling)>,
    /// Local-assembly GPU speedup at the anchor (Fig. 13).
    pub la_speedup_anchor: f64,
    /// Local-assembly GPU speedup at `nodes_far` (Fig. 13).
    pub la_speedup_far: f64,
    /// The far node count (1024).
    pub nodes_far: f64,
}

impl Default for PaperAnchors {
    fn default() -> Self {
        PaperAnchors {
            nodes_anchor: 64.0,
            total_anchor_s: 2128.0,
            // Fractions estimated from the Fig. 2a pie (local assembly 34%
            // is stated in the text; the rest are read off the chart and
            // sum to 1).
            phases: vec![
                (Phase::MergeReads, 0.06, PhaseScaling::Local),
                (Phase::KmerAnalysis, 0.16, PhaseScaling::Comm(0.35)),
                (Phase::ContigGeneration, 0.08, PhaseScaling::Comm(0.2)),
                (Phase::Alignment, 0.12, PhaseScaling::Comm(0.35)),
                (Phase::AlnKernel, 0.06, PhaseScaling::Local),
                (Phase::LocalAssembly, 0.34, PhaseScaling::Local),
                (Phase::Scaffolding, 0.14, PhaseScaling::Comm(0.45)),
                (Phase::FileIo, 0.04, PhaseScaling::Fixed),
            ],
            la_speedup_anchor: 7.0,
            la_speedup_far: 2.65,
            nodes_far: 1024.0,
        }
    }
}

/// The solved scaling model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalingModel {
    pub anchors: PaperAnchors,
    /// Node-seconds of CPU local-assembly work (`C` in the derivation).
    pub la_work_node_seconds: f64,
    /// GPU kernel node-seconds (`K`).
    pub gpu_work_node_seconds: f64,
    /// Fixed per-node GPU overhead seconds (`F`).
    pub gpu_overhead_s: f64,
}

impl ScalingModel {
    /// Solve `K` and `F` from the two anchored speedups.
    pub fn from_anchors(anchors: PaperAnchors) -> ScalingModel {
        let la_frac = anchors
            .phases
            .iter()
            .find(|(p, _, _)| *p == Phase::LocalAssembly)
            .map(|(_, f, _)| *f)
            .expect("local assembly fraction required");
        let la64 = anchors.total_anchor_s * la_frac;
        let c = la64 * anchors.nodes_anchor; // node-seconds of CPU LA work
                                             // speedup(N) = C / (K + F·N)
        let s1 = anchors.la_speedup_anchor;
        let s2 = anchors.la_speedup_far;
        let n1 = anchors.nodes_anchor;
        let n2 = anchors.nodes_far;
        let f = c * (1.0 / s2 - 1.0 / s1) / (n2 - n1);
        let k = c / s1 - n1 * f;
        assert!(f > 0.0 && k > 0.0, "anchors produce a degenerate model");
        ScalingModel {
            anchors,
            la_work_node_seconds: c,
            gpu_work_node_seconds: k,
            gpu_overhead_s: f,
        }
    }

    /// Reject queries outside the anchored node range. Every public
    /// evaluation goes through this: the anchors calibrate the model on
    /// `[nodes_anchor, nodes_far]` only, and below the anchor the `Comm`
    /// log term turns negative-curvature nonsense (0 at N=1).
    fn check_nodes(&self, nodes: f64) -> Result<(), ScalingError> {
        let (lo, hi) = (self.anchors.nodes_anchor, self.anchors.nodes_far);
        if !nodes.is_finite() || nodes < lo || nodes > hi {
            return Err(ScalingError::NodesOutOfRange { nodes, lo, hi });
        }
        Ok(())
    }

    /// CPU local-assembly seconds at `nodes`.
    pub fn la_cpu_s(&self, nodes: f64) -> Result<f64, ScalingError> {
        self.check_nodes(nodes)?;
        Ok(self.la_work_node_seconds / nodes)
    }

    /// GPU local-assembly seconds at `nodes` (work + fixed overhead).
    pub fn la_gpu_s(&self, nodes: f64) -> Result<f64, ScalingError> {
        self.check_nodes(nodes)?;
        Ok(self.gpu_work_node_seconds / nodes + self.gpu_overhead_s)
    }

    /// Local-assembly speedup at `nodes` (the Fig. 13 triangles).
    pub fn la_speedup(&self, nodes: f64) -> Result<f64, ScalingError> {
        Ok(self.la_cpu_s(nodes)? / self.la_gpu_s(nodes)?)
    }

    /// Seconds of one phase at `nodes` with CPU local assembly. A phase
    /// with no anchor entry is an error — it used to evaluate to 0 s,
    /// which silently shrank any total it was summed into.
    pub fn phase_cpu_s(&self, phase: Phase, nodes: f64) -> Result<f64, ScalingError> {
        self.check_nodes(nodes)?;
        let a = &self.anchors;
        let (_, frac, scaling) = a
            .phases
            .iter()
            .find(|(p, _, _)| *p == phase)
            .copied()
            .ok_or(ScalingError::UnknownPhase { phase })?;
        let t64 = a.total_anchor_s * frac;
        let ratio = a.nodes_anchor / nodes;
        Ok(match scaling {
            PhaseScaling::Local => t64 * ratio,
            PhaseScaling::Fixed => t64,
            PhaseScaling::Comm(c) => {
                t64 * ((1.0 - c) * ratio + c * nodes.log2() / a.nodes_anchor.log2())
            }
        })
    }

    /// Full-pipeline timings at `nodes`, CPU or GPU local assembly. Every
    /// phase of [`Phase::ALL`] must have an anchor entry.
    pub fn pipeline_at(&self, nodes: f64, gpu_la: bool) -> Result<PhaseTimings, ScalingError> {
        self.check_nodes(nodes)?;
        let mut t = PhaseTimings::new();
        for p in Phase::ALL {
            let s = if p == Phase::LocalAssembly {
                if gpu_la {
                    self.la_gpu_s(nodes)?
                } else {
                    self.la_cpu_s(nodes)?
                }
            } else {
                self.phase_cpu_s(p, nodes)?
            };
            t.add(p, s);
        }
        Ok(t)
    }

    /// Whole-pipeline speedup from GPU local assembly (Fig. 14 triangles),
    /// expressed as a percentage improvement.
    pub fn overall_speedup_pct(&self, nodes: f64) -> Result<f64, ScalingError> {
        let cpu = self.pipeline_at(nodes, false)?.total();
        let gpu = self.pipeline_at(nodes, true)?.total();
        Ok(100.0 * (cpu - gpu) / gpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ScalingModel {
        ScalingModel::from_anchors(PaperAnchors::default())
    }

    #[test]
    fn anchors_reproduced_exactly() {
        let m = model();
        assert!((m.la_speedup(64.0).unwrap() - 7.0).abs() < 1e-9);
        assert!((m.la_speedup(1024.0).unwrap() - 2.65).abs() < 1e-9);
    }

    #[test]
    fn speedup_decays_monotonically() {
        let m = model();
        let mut prev = f64::INFINITY;
        for n in [64.0, 128.0, 256.0, 512.0, 1024.0] {
            let s = m.la_speedup(n).unwrap();
            assert!(s < prev, "speedup must decay with nodes");
            assert!(s > 1.0, "GPU must stay faster at {n} nodes");
            prev = s;
        }
    }

    #[test]
    fn fig2b_consistency_check() {
        // With no extra fitting, the model must land near the paper's
        // observed post-offload numbers: total ≈ 1495 s, LA ≈ 6%.
        let m = model();
        let gpu64 = m.pipeline_at(64.0, true).unwrap();
        let total = gpu64.total();
        assert!(
            (total - 1495.0).abs() / 1495.0 < 0.05,
            "total {total:.0}s should be within 5% of the paper's 1495s"
        );
        let la_frac = gpu64.get(Phase::LocalAssembly) / total;
        assert!(
            la_frac > 0.04 && la_frac < 0.09,
            "LA fraction {la_frac:.3} should be near the paper's 6%"
        );
    }

    #[test]
    fn overall_speedup_peaks_early_and_decays() {
        let m = model();
        let s64 = m.overall_speedup_pct(64.0).unwrap();
        let s1024 = m.overall_speedup_pct(1024.0).unwrap();
        assert!(
            (s64 - 42.0).abs() < 6.0,
            "64-node overall speedup {s64:.1}% should be near the paper's 42%"
        );
        assert!(s1024 < s64 / 2.0, "1024-node speedup must collapse");
    }

    #[test]
    fn phase_scaling_classes_behave() {
        let m = model();
        // Local phases halve when nodes double.
        let a = m.phase_cpu_s(Phase::MergeReads, 64.0).unwrap();
        let b = m.phase_cpu_s(Phase::MergeReads, 128.0).unwrap();
        assert!((a / b - 2.0).abs() < 1e-9);
        // Fixed phases do not change.
        assert_eq!(
            m.phase_cpu_s(Phase::FileIo, 64.0).unwrap(),
            m.phase_cpu_s(Phase::FileIo, 1024.0).unwrap()
        );
        // Comm phases shrink slower than local ones.
        let ka = m.phase_cpu_s(Phase::KmerAnalysis, 64.0).unwrap();
        let kb = m.phase_cpu_s(Phase::KmerAnalysis, 1024.0).unwrap();
        assert!(ka / kb < 16.0, "comm phase cannot scale perfectly");
        assert!(kb < ka, "but it must still shrink somewhat");
    }

    #[test]
    fn unknown_phase_is_an_error_not_zero_seconds() {
        // Regression: a phase missing from the anchor table used to
        // evaluate to 0 s via `unwrap_or` — a typo'd table shrank totals
        // with no signal. It must be a hard error now.
        let mut anchors = PaperAnchors::default();
        anchors.phases.retain(|(p, _, _)| *p != Phase::MergeReads);
        let m = ScalingModel::from_anchors(anchors);
        let err = m.phase_cpu_s(Phase::MergeReads, 64.0).expect_err("missing phase must error");
        assert_eq!(err, ScalingError::UnknownPhase { phase: Phase::MergeReads });
        // And pipeline_at (which sums all phases) must propagate it.
        assert!(m.pipeline_at(64.0, false).is_err());
    }

    #[test]
    fn out_of_range_nodes_rejected_boundaries_accepted() {
        // Regression: below the anchor the Comm log term silently
        // extrapolated (reaching 0 s at N=1). The model now only answers
        // inside its anchored range; both boundaries are inclusive.
        let m = model();
        for n in [1.0, 2.0, 63.999, 1024.001, 4096.0, 0.0, -64.0, f64::NAN, f64::INFINITY] {
            for query in [
                m.la_cpu_s(n),
                m.la_gpu_s(n),
                m.la_speedup(n),
                m.phase_cpu_s(Phase::KmerAnalysis, n),
                m.overall_speedup_pct(n),
            ] {
                let err = query.expect_err("out-of-range nodes must be rejected");
                assert!(
                    matches!(err, ScalingError::NodesOutOfRange { lo, hi, .. }
                        if lo == 64.0 && hi == 1024.0),
                    "nodes {n}: got {err:?}"
                );
            }
            assert!(m.pipeline_at(n, true).is_err(), "nodes {n}");
        }
        for n in [64.0, 65.0, 512.0, 1024.0] {
            assert!(m.la_speedup(n).is_ok(), "in-range nodes {n} must be accepted");
            assert!(m.pipeline_at(n, false).is_ok(), "in-range nodes {n} must be accepted");
        }
        // An anchor set calibrated at small scale accepts its own range
        // (the fig12 harness anchors at 2–32 nodes).
        let small = ScalingModel::from_anchors(PaperAnchors {
            nodes_anchor: 2.0,
            nodes_far: 32.0,
            la_speedup_anchor: 4.3,
            la_speedup_far: 2.0,
            ..PaperAnchors::default()
        });
        assert!(small.la_speedup(2.0).is_ok());
        assert!(small.la_speedup(64.0).is_err(), "outside its own far anchor");
    }

    #[test]
    fn anchor_fractions_sum_to_one() {
        let a = PaperAnchors::default();
        let sum: f64 = a.phases.iter().map(|(_, f, _)| f).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn inverted_anchors_rejected() {
        // Faster at scale: impossible under K/N + F.
        let a = PaperAnchors { la_speedup_far: 20.0, ..Default::default() };
        ScalingModel::from_anchors(a);
    }
}
