//! Assembly statistics: the standard contiguity and correctness metrics
//! (N50/L50, totals) plus reference-based evaluation against the known
//! source genomes of a synthetic community.

use bioseq::DnaSeq;
use kmer::{Kmer, KmerIter};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Contiguity statistics of a contig/scaffold set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AssemblyStats {
    /// Number of sequences.
    pub count: usize,
    /// Total bases.
    pub total_bases: usize,
    /// Longest sequence.
    pub longest: usize,
    /// N50: length such that sequences at least this long cover ≥ half the
    /// total bases.
    pub n50: usize,
    /// L50: the number of sequences needed to reach half the total bases.
    pub l50: usize,
    /// Mean length.
    pub mean_len: f64,
}

impl AssemblyStats {
    /// Compute stats over a sequence set.
    pub fn of(seqs: &[DnaSeq]) -> AssemblyStats {
        let mut lens: Vec<usize> = seqs.iter().map(DnaSeq::len).collect();
        lens.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = lens.iter().sum();
        let mut acc = 0usize;
        let mut n50 = 0usize;
        let mut l50 = 0usize;
        for (i, &l) in lens.iter().enumerate() {
            acc += l;
            if acc * 2 >= total {
                n50 = l;
                l50 = i + 1;
                break;
            }
        }
        AssemblyStats {
            count: lens.len(),
            total_bases: total,
            longest: lens.first().copied().unwrap_or(0),
            n50,
            l50,
            mean_len: if lens.is_empty() { 0.0 } else { total as f64 / lens.len() as f64 },
        }
    }

    /// One-line rendering.
    pub fn render(&self) -> String {
        format!(
            "{} seqs, {} bp total, longest {}, N50 {}, L50 {}, mean {:.0}",
            self.count, self.total_bases, self.longest, self.n50, self.l50, self.mean_len
        )
    }
}

/// Reference-based evaluation of an assembly against known genomes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RefEval {
    /// Fraction of reference k-mers recovered by the assembly.
    pub genome_fraction: f64,
    /// Fraction of assembly k-mers found in the references (1 − this is a
    /// misassembly/chimera indicator).
    pub precision: f64,
    /// k used for the comparison.
    pub k: usize,
}

/// Evaluate an assembly against reference genomes by canonical k-mer
/// containment — a fast stand-in for whole-genome alignment evaluation
/// (QUAST-style), robust to strand and contig order.
pub fn evaluate_against_refs(assembly: &[DnaSeq], refs: &[DnaSeq], k: usize) -> RefEval {
    let ref_set = kmer_set(refs, k);
    let asm_set = kmer_set(assembly, k);
    let recovered = ref_set.intersection(&asm_set).count();
    let genuine = asm_set.iter().filter(|km| ref_set.contains(*km)).count();
    RefEval {
        genome_fraction: if ref_set.is_empty() {
            0.0
        } else {
            recovered as f64 / ref_set.len() as f64
        },
        precision: if asm_set.is_empty() { 1.0 } else { genuine as f64 / asm_set.len() as f64 },
        k,
    }
}

fn kmer_set(seqs: &[DnaSeq], k: usize) -> HashSet<Kmer> {
    let mut set = HashSet::new();
    for s in seqs {
        if s.len() < k {
            continue;
        }
        for (_, km) in KmerIter::new(s, k) {
            set.insert(km.canonical());
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_genome(len: usize, seed: u64) -> DnaSeq {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| bioseq::Base::from_code(rng.gen_range(0..4))).collect()
    }

    fn seqs(lens: &[usize]) -> Vec<DnaSeq> {
        lens.iter()
            .map(|&n| (0..n).map(|i| bioseq::Base::from_code((i % 4) as u8)).collect())
            .collect()
    }

    #[test]
    fn n50_basic() {
        // Lengths 10, 8, 6, 4, 2 → total 30; cumulative 10, 18 ≥ 15 → N50=8, L50=2.
        let s = AssemblyStats::of(&seqs(&[10, 8, 6, 4, 2]));
        assert_eq!(s.n50, 8);
        assert_eq!(s.l50, 2);
        assert_eq!(s.total_bases, 30);
        assert_eq!(s.longest, 10);
    }

    #[test]
    fn n50_single_sequence() {
        let s = AssemblyStats::of(&seqs(&[100]));
        assert_eq!(s.n50, 100);
        assert_eq!(s.l50, 1);
    }

    #[test]
    fn empty_assembly() {
        let s = AssemblyStats::of(&[]);
        assert_eq!(s.n50, 0);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_len, 0.0);
    }

    #[test]
    fn perfect_assembly_full_fraction() {
        let genome = random_genome(500, 1);
        let eval =
            evaluate_against_refs(std::slice::from_ref(&genome), std::slice::from_ref(&genome), 21);
        assert!((eval.genome_fraction - 1.0).abs() < 1e-12);
        assert!((eval.precision - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rc_assembly_still_counts() {
        let genome = random_genome(300, 2);
        let rc = vec![genome.revcomp()];
        let eval = evaluate_against_refs(&rc, std::slice::from_ref(&genome), 21);
        assert!((eval.genome_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn half_assembly_half_fraction() {
        let genome = random_genome(1000, 3);
        let half = vec![genome.subseq(0, 500)];
        let eval = evaluate_against_refs(&half, std::slice::from_ref(&genome), 21);
        assert!(eval.genome_fraction > 0.40 && eval.genome_fraction < 0.56);
        assert!(eval.precision > 0.99, "half of the real genome is all genuine");
    }

    #[test]
    fn foreign_sequence_lowers_precision() {
        let genome = random_genome(400, 4);
        let junk = random_genome(400, 5);
        let eval =
            evaluate_against_refs(&[genome.clone(), junk], std::slice::from_ref(&genome), 21);
        assert!(eval.precision < 0.8, "junk contig must show up: {}", eval.precision);
    }
}
