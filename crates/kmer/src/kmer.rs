//! Fixed-width packed k-mer type.

use bioseq::{Base, DnaSeq};
use serde::{Deserialize, Serialize};

/// Maximum supported k. MetaHipMer's iterative assembly uses k up to 99;
/// four 64-bit words give us headroom to 128.
pub const MAX_K: usize = 128;

/// Number of backing words.
pub const KMER_WORDS: usize = MAX_K / 32;

/// A k-mer packed at 2 bits per base, LSB-first (base `i` at bits `2i` of
/// word `i/32`) — the same layout as [`bioseq::PackedSeq`], so a k-mer can be
/// materialized from a packed read window without re-encoding.
///
/// Invariant: bits above position `2k` are zero (needed for `Eq`/`Ord`/hash
/// to be well-defined).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Kmer {
    words: [u64; KMER_WORDS],
    k: u16,
}

impl Kmer {
    /// The k-mer spanning `seq[start .. start+k]`.
    ///
    /// Panics if the window is out of bounds or `k` is 0 or > [`MAX_K`].
    pub fn from_seq(seq: &DnaSeq, start: usize, k: usize) -> Kmer {
        assert!((1..=MAX_K).contains(&k), "k={k} out of range");
        assert!(start + k <= seq.len(), "k-mer window out of bounds");
        let mut words = [0u64; KMER_WORDS];
        for j in 0..k {
            words[j / 32] |= u64::from(seq.code(start + j)) << ((j % 32) * 2);
        }
        Kmer { words, k: k as u16 }
    }

    /// Construct from pre-packed words (LSB-first 2-bit codes). High bits
    /// beyond `2k` are cleared.
    pub fn from_words(mut words_in: [u64; KMER_WORDS], k: usize) -> Kmer {
        assert!((1..=MAX_K).contains(&k), "k={k} out of range");
        mask_high(&mut words_in, k);
        Kmer { words: words_in, k: k as u16 }
    }

    /// Construct from a window of a packed word slice (e.g. a packed read in
    /// device memory): bases `[start, start+k)` where base `i` of the slice
    /// lives at word `i/32`, bits `2(i%32)`.
    pub fn from_packed_words(words: &[u64], start: usize, k: usize) -> Kmer {
        assert!((1..=MAX_K).contains(&k), "k={k} out of range");
        let mut out = [0u64; KMER_WORDS];
        for j in 0..k {
            let i = start + j;
            let code = (words[i / 32] >> ((i % 32) * 2)) & 3;
            out[j / 32] |= code << ((j % 32) * 2);
        }
        Kmer { words: out, k: k as u16 }
    }

    /// k (length in bases).
    #[inline]
    pub fn k(&self) -> usize {
        self.k as usize
    }

    /// Backing words (low `2k` bits significant).
    #[inline]
    pub fn words(&self) -> &[u64; KMER_WORDS] {
        &self.words
    }

    /// 2-bit code of base `i`.
    #[inline]
    pub fn code(&self, i: usize) -> u8 {
        assert!(i < self.k(), "base index out of range");
        ((self.words[i / 32] >> ((i % 32) * 2)) & 3) as u8
    }

    /// Base at position `i`.
    #[inline]
    pub fn base(&self, i: usize) -> Base {
        Base::from_code(self.code(i))
    }

    /// The last base (the one a right-extension appends after).
    #[inline]
    pub fn last_base(&self) -> Base {
        self.base(self.k() - 1)
    }

    /// The k-mer obtained by dropping the first base and appending `b` —
    /// one step of a rightward mer-walk.
    pub fn shift_right(&self, b: Base) -> Kmer {
        let k = self.k();
        let mut words = [0u64; KMER_WORDS];
        // Shift the whole packed value right by one base (2 bits),
        // propagating across word boundaries.
        for (w, word) in words.iter_mut().enumerate() {
            let mut v = self.words[w] >> 2;
            if w + 1 < KMER_WORDS {
                v |= (self.words[w + 1] & 3) << 62;
            }
            *word = v;
        }
        // Insert the new base at position k-1.
        let j = k - 1;
        words[j / 32] |= u64::from(b.code()) << ((j % 32) * 2);
        let mut out = Kmer { words, k: self.k };
        mask_high(&mut out.words, k);
        out
    }

    /// The k-mer obtained by dropping the last base and prepending `b` —
    /// one step of a leftward mer-walk.
    pub fn shift_left(&self, b: Base) -> Kmer {
        let k = self.k();
        let mut words = [0u64; KMER_WORDS];
        // Shift left by one base.
        for w in (0..KMER_WORDS).rev() {
            let mut v = self.words[w] << 2;
            if w > 0 {
                v |= self.words[w - 1] >> 62;
            }
            words[w] = v;
        }
        words[0] |= u64::from(b.code());
        let mut out = Kmer { words, k: self.k };
        mask_high(&mut out.words, k);
        out
    }

    /// Reverse complement.
    pub fn revcomp(&self) -> Kmer {
        let k = self.k();
        let mut words = [0u64; KMER_WORDS];
        for i in 0..k {
            let c = self.code(i) ^ 3;
            let j = k - 1 - i;
            words[j / 32] |= u64::from(c) << ((j % 32) * 2);
        }
        Kmer { words, k: self.k }
    }

    /// Canonical form: the lexicographically smaller of the k-mer and its
    /// reverse complement (comparison over base codes from position 0).
    pub fn canonical(&self) -> Kmer {
        let rc = self.revcomp();
        if self.cmp_bases(&rc) <= std::cmp::Ordering::Equal {
            *self
        } else {
            rc
        }
    }

    /// True if this k-mer equals its own canonical form.
    pub fn is_canonical(&self) -> bool {
        self.cmp_bases(&self.revcomp()) != std::cmp::Ordering::Greater
    }

    /// Lexicographic comparison by base sequence (not by packed words:
    /// LSB-first packing does not preserve lexicographic order).
    pub fn cmp_bases(&self, other: &Kmer) -> std::cmp::Ordering {
        debug_assert_eq!(self.k, other.k);
        for i in 0..self.k() {
            match self.code(i).cmp(&other.code(i)) {
                std::cmp::Ordering::Equal => continue,
                ord => return ord,
            }
        }
        std::cmp::Ordering::Equal
    }

    /// Unpack to a `DnaSeq`.
    pub fn to_seq(&self) -> DnaSeq {
        (0..self.k()).map(|i| self.base(i)).collect()
    }
}

impl std::fmt::Display for Kmer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in 0..self.k() {
            write!(f, "{}", self.base(i))?;
        }
        Ok(())
    }
}

fn mask_high(words: &mut [u64; KMER_WORDS], k: usize) {
    let full_words = (2 * k) / 64;
    let rem_bits = (2 * k) % 64;
    for (w, word) in words.iter_mut().enumerate() {
        if w > full_words || (w == full_words && rem_bits == 0) {
            *word = 0;
        } else if w == full_words {
            *word &= (1u64 << rem_bits) - 1;
        }
    }
}

/// Iterator over the k-mers of a sequence, left to right.
pub struct KmerIter<'a> {
    seq: &'a DnaSeq,
    k: usize,
    pos: usize,
    cur: Option<Kmer>,
}

impl<'a> KmerIter<'a> {
    /// K-mers of `seq`; yields nothing if `seq.len() < k`.
    pub fn new(seq: &'a DnaSeq, k: usize) -> KmerIter<'a> {
        assert!((1..=MAX_K).contains(&k), "k={k} out of range");
        KmerIter { seq, k, pos: 0, cur: None }
    }
}

impl Iterator for KmerIter<'_> {
    /// `(start_position, kmer)`
    type Item = (usize, Kmer);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos + self.k > self.seq.len() {
            return None;
        }
        let km = match self.cur {
            // Incremental shift is O(words); recomputing would be O(k).
            Some(prev) => prev.shift_right(self.seq.base(self.pos + self.k - 1)),
            None => Kmer::from_seq(self.seq, 0, self.k),
        };
        self.cur = Some(km);
        let at = self.pos;
        self.pos += 1;
        Some((at, km))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.seq.len() + 1).saturating_sub(self.pos + self.k);
        (n, Some(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn seq(s: &str) -> DnaSeq {
        DnaSeq::from_str_strict(s).unwrap()
    }

    #[test]
    fn from_seq_and_display() {
        let km = Kmer::from_seq(&seq("ACGTACGT"), 1, 5);
        assert_eq!(km.to_string(), "CGTAC");
        assert_eq!(km.k(), 5);
    }

    #[test]
    fn shift_right_walks() {
        let km = Kmer::from_seq(&seq("ACGTA"), 0, 4); // ACGT
        let next = km.shift_right(Base::A);
        assert_eq!(next.to_string(), "CGTA");
    }

    #[test]
    fn shift_left_walks() {
        let km = Kmer::from_seq(&seq("ACGT"), 0, 4);
        let prev = km.shift_left(Base::T);
        assert_eq!(prev.to_string(), "TACG");
    }

    #[test]
    fn shift_crosses_word_boundary() {
        // k=40 spans two words.
        let s: DnaSeq = (0..41).map(|i| Base::from_code((i % 4) as u8)).collect();
        let km = Kmer::from_seq(&s, 0, 40);
        let shifted = km.shift_right(s.base(40));
        let direct = Kmer::from_seq(&s, 1, 40);
        assert_eq!(shifted, direct);
    }

    #[test]
    fn revcomp_known() {
        let km = Kmer::from_seq(&seq("AACGT"), 0, 5);
        assert_eq!(km.revcomp().to_string(), "ACGTT");
    }

    #[test]
    fn canonical_picks_smaller() {
        let km = Kmer::from_seq(&seq("TTTT"), 0, 4);
        assert_eq!(km.canonical().to_string(), "AAAA");
        let km2 = Kmer::from_seq(&seq("AAAA"), 0, 4);
        assert_eq!(km2.canonical().to_string(), "AAAA");
    }

    #[test]
    fn kmer_iter_yields_all() {
        let s = seq("ACGTAC");
        let kmers: Vec<String> = KmerIter::new(&s, 4).map(|(_, k)| k.to_string()).collect();
        assert_eq!(kmers, vec!["ACGT", "CGTA", "GTAC"]);
    }

    #[test]
    fn kmer_iter_short_seq_empty() {
        let s = seq("ACG");
        assert_eq!(KmerIter::new(&s, 4).count(), 0);
    }

    #[test]
    fn from_packed_words_matches() {
        let s: DnaSeq = (0..100).map(|i| Base::from_code(((i * 7) % 4) as u8)).collect();
        let packed = bioseq::PackedSeq::from_seq(&s);
        for start in [0usize, 5, 31, 32, 33, 50] {
            let a = Kmer::from_packed_words(packed.words(), start, 33);
            let b = Kmer::from_seq(&s, start, 33);
            assert_eq!(a, b, "start={start}");
        }
    }

    fn arb_kseq(k: usize, extra: usize) -> impl Strategy<Value = DnaSeq> {
        proptest::collection::vec(0u8..4, k + extra..k + extra + 1).prop_map(DnaSeq::from_codes)
    }

    proptest! {
        #[test]
        fn iter_matches_direct(codes in proptest::collection::vec(0u8..4, 21..120)) {
            let s = DnaSeq::from_codes(codes);
            let k = 21;
            for (pos, km) in KmerIter::new(&s, k) {
                prop_assert_eq!(km, Kmer::from_seq(&s, pos, k));
            }
        }

        #[test]
        fn revcomp_involution(k in 1usize..=64, seed in any::<u64>()) {
            let s: DnaSeq = (0..k).map(|i| {
                Base::from_code(((seed >> ((i % 29) * 2)) & 3) as u8)
            }).collect();
            let km = Kmer::from_seq(&s, 0, k);
            prop_assert_eq!(km.revcomp().revcomp(), km);
        }

        #[test]
        fn canonical_idempotent(s in arb_kseq(33, 0)) {
            let km = Kmer::from_seq(&s, 0, 33);
            let c = km.canonical();
            prop_assert_eq!(c.canonical(), c);
            prop_assert!(c.is_canonical());
        }

        #[test]
        fn canonical_same_for_rc(s in arb_kseq(33, 0)) {
            let km = Kmer::from_seq(&s, 0, 33);
            prop_assert_eq!(km.canonical(), km.revcomp().canonical());
        }

        #[test]
        fn shift_right_equals_from_seq(s in arb_kseq(55, 1)) {
            let km = Kmer::from_seq(&s, 0, 55);
            let next = km.shift_right(s.base(55));
            prop_assert_eq!(next, Kmer::from_seq(&s, 1, 55));
        }

        #[test]
        fn shift_left_inverts_shift_right(s in arb_kseq(40, 1)) {
            let km = Kmer::from_seq(&s, 0, 40);
            let next = km.shift_right(s.base(40));
            let back = next.shift_left(s.base(0));
            prop_assert_eq!(back, km);
        }

        #[test]
        fn to_seq_round_trip(s in arb_kseq(77, 0)) {
            let km = Kmer::from_seq(&s, 0, 77);
            prop_assert_eq!(km.to_seq(), s);
        }
    }
}
