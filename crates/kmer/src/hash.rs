//! MurmurHash2 (64A), the hash function the SC'21 paper uses for its
//! warp-local GPU hash tables, implemented from Austin Appleby's reference.
//!
//! The GPU kernels and the CPU reference implementation both hash a k-mer by
//! feeding its packed words (see [`crate::Kmer::words`]) through
//! [`murmur64a_words`], so CPU and simulated-GPU tables place keys
//! identically — a property the integration tests rely on.

use crate::kmer::Kmer;

const M: u64 = 0xc6a4_a793_5bd1_e995;
const R: u32 = 47;

/// MurmurHash2 64A over a byte slice.
pub fn murmur64a(data: &[u8], seed: u64) -> u64 {
    let mut h: u64 = seed ^ (data.len() as u64).wrapping_mul(M);
    let chunks = data.chunks_exact(8);
    let tail = chunks.remainder();
    for chunk in chunks {
        let mut k = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        k = k.wrapping_mul(M);
        k ^= k >> R;
        k = k.wrapping_mul(M);
        h ^= k;
        h = h.wrapping_mul(M);
    }
    if !tail.is_empty() {
        let mut k: u64 = 0;
        for (i, &b) in tail.iter().enumerate() {
            k |= u64::from(b) << (8 * i);
        }
        h ^= k;
        h = h.wrapping_mul(M);
    }
    h ^= h >> R;
    h = h.wrapping_mul(M);
    h ^= h >> R;
    h
}

/// MurmurHash2 64A over little-endian `u64` words (equivalent to hashing the
/// words' LE byte representation).
pub fn murmur64a_words(words: &[u64], seed: u64) -> u64 {
    let mut h: u64 = seed ^ ((words.len() as u64 * 8).wrapping_mul(M));
    for &w in words {
        let mut k = w.wrapping_mul(M);
        k ^= k >> R;
        k = k.wrapping_mul(M);
        h ^= k;
        h = h.wrapping_mul(M);
    }
    h ^= h >> R;
    h = h.wrapping_mul(M);
    h ^= h >> R;
    h
}

/// Canonical hash of a k-mer: murmur64a over the packed words that carry
/// bases (`ceil(k/32)` words), seeded with k so equal packings at different
/// k never alias.
pub fn hash_kmer(km: &Kmer) -> u64 {
    let nwords = km.k().div_ceil(32);
    murmur64a_words(&km.words()[..nwords], km.k() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioseq::DnaSeq;

    #[test]
    fn words_matches_bytes() {
        let words = [0x0123_4567_89ab_cdefu64, 0xfedc_ba98_7654_3210];
        let mut bytes = Vec::new();
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        assert_eq!(murmur64a_words(&words, 7), murmur64a(&bytes, 7));
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let d = b"ACGTACGTACGT";
        assert_eq!(murmur64a(d, 0), murmur64a(d, 0));
        assert_ne!(murmur64a(d, 0), murmur64a(d, 1));
    }

    #[test]
    fn avalanche_on_single_bit() {
        let a = murmur64a(b"AAAAAAAA", 0);
        let b = murmur64a(b"AAAAAAAB", 0);
        // Hamming distance of outputs should be substantial (~32).
        let dist = (a ^ b).count_ones();
        assert!(dist > 10, "weak avalanche: {dist} bits");
    }

    #[test]
    fn tail_handling() {
        // Lengths not a multiple of 8 exercise the tail path.
        for len in 1..=16 {
            let data: Vec<u8> = (0..len as u8).collect();
            let h1 = murmur64a(&data, 3);
            let h2 = murmur64a(&data, 3);
            assert_eq!(h1, h2);
            if len > 1 {
                let mut flipped = data.clone();
                flipped[len - 1] ^= 1;
                assert_ne!(murmur64a(&flipped, 3), h1, "len={len}");
            }
        }
    }

    #[test]
    fn kmer_hash_depends_on_k() {
        let s = DnaSeq::from_str_strict("AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA").unwrap();
        let k21 = crate::Kmer::from_seq(&s, 0, 21);
        let k23 = crate::Kmer::from_seq(&s, 0, 23);
        assert_ne!(hash_kmer(&k21), hash_kmer(&k23));
    }

    #[test]
    fn kmer_hash_position_independent() {
        // The same k-mer extracted from different positions hashes equally.
        let s = DnaSeq::from_str_strict("ACGTACGTACGTACGTACGTACGTACGT").unwrap();
        let a = crate::Kmer::from_seq(&s, 0, 21);
        let b = crate::Kmer::from_seq(&s, 4, 21);
        assert_eq!(a, b);
        assert_eq!(hash_kmer(&a), hash_kmer(&b));
    }
}
