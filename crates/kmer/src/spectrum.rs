//! K-mer frequency spectra: the count-of-counts histogram assemblers use
//! to separate sequencing errors from genuine genomic k-mers and to
//! estimate coverage.
//!
//! For shotgun data the spectrum is bimodal: a spike at multiplicity 1–2
//! (error k-mers, which are nearly all unique) and a Poisson-like hump
//! centred on the per-base k-mer coverage. [`Spectrum::error_cutoff`] finds
//! the valley between them — the data-driven version of the paper's
//! "filter k-mers that occur only once".

use serde::{Deserialize, Serialize};

/// A k-mer multiplicity histogram.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Spectrum {
    /// `counts[m]` = number of distinct k-mers with multiplicity `m`
    /// (index 0 unused). Multiplicities beyond the vector saturate into the
    /// last bucket.
    counts: Vec<u64>,
}

impl Spectrum {
    /// Empty spectrum tracking multiplicities up to `max_multiplicity`.
    pub fn new(max_multiplicity: usize) -> Spectrum {
        Spectrum { counts: vec![0; max_multiplicity.max(2) + 1] }
    }

    /// Build from an iterator of per-k-mer multiplicities.
    pub fn from_multiplicities(iter: impl IntoIterator<Item = u32>, max_m: usize) -> Spectrum {
        let mut s = Spectrum::new(max_m);
        for m in iter {
            s.record(m);
        }
        s
    }

    /// Record one distinct k-mer with multiplicity `m`.
    pub fn record(&mut self, m: u32) {
        let idx = (m as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Number of distinct k-mers with multiplicity `m` (saturating bucket
    /// at the top).
    pub fn at(&self, m: usize) -> u64 {
        self.counts.get(m).copied().unwrap_or(0)
    }

    /// Total distinct k-mers recorded.
    pub fn distinct(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total k-mer instances represented (Σ m·count\[m\], saturated top
    /// bucket counted at its index).
    pub fn total_instances(&self) -> u64 {
        self.counts.iter().enumerate().map(|(m, &c)| m as u64 * c).sum()
    }

    /// The first local minimum after multiplicity 1 — the error/genuine
    /// valley. Returns `None` for spectra with no visible valley (e.g.
    /// error-free data, where 1 is already genuine).
    pub fn error_cutoff(&self) -> Option<u32> {
        // Find the first m where the histogram stops falling and starts
        // rising again; require an actual rise to call it a valley.
        let n = self.counts.len();
        for m in 2..n - 1 {
            if self.at(m) <= self.at(m - 1) && self.at(m) < self.at(m + 1) {
                return Some(m as u32);
            }
        }
        None
    }

    /// The multiplicity of the genuine-coverage peak: the mode after the
    /// error valley (or after 1 if no valley).
    pub fn coverage_peak(&self) -> Option<u32> {
        let start = self.error_cutoff().unwrap_or(1) as usize + 1;
        let n = self.counts.len();
        (start..n).max_by_key(|&m| self.at(m)).filter(|&m| self.at(m) > 0).map(|m| m as u32)
    }

    /// Histogram rows `(multiplicity, count)` for display, skipping empty
    /// tail buckets.
    pub fn rows(&self) -> Vec<(usize, u64)> {
        let last = self.counts.iter().rposition(|&c| c > 0).unwrap_or(0);
        (1..=last).map(|m| (m, self.counts[m])).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic bimodal spectrum: error spike at 1, coverage hump at 20.
    fn bimodal() -> Spectrum {
        let mut s = Spectrum::new(64);
        // Error spike.
        for _ in 0..10_000 {
            s.record(1);
        }
        for _ in 0..800 {
            s.record(2);
        }
        for _ in 0..120 {
            s.record(3);
        }
        // Poisson-ish hump around 20.
        for m in 4..=40u32 {
            let d = (m as f64 - 20.0) / 6.0;
            let c = (3000.0 * (-0.5 * d * d).exp()) as u32;
            for _ in 0..c {
                s.record(m);
            }
        }
        s
    }

    #[test]
    fn records_and_totals() {
        let s = Spectrum::from_multiplicities([1, 1, 2, 5, 5, 5], 10);
        assert_eq!(s.at(1), 2);
        assert_eq!(s.at(2), 1);
        assert_eq!(s.at(5), 3);
        assert_eq!(s.distinct(), 6);
        assert_eq!(s.total_instances(), 2 + 2 + 15);
    }

    #[test]
    fn saturating_top_bucket() {
        let s = Spectrum::from_multiplicities([100, 200, 3], 10);
        assert_eq!(s.at(10), 2, "overflow multiplicities collapse into the top");
        assert_eq!(s.at(3), 1);
    }

    #[test]
    fn valley_found_in_bimodal() {
        let s = bimodal();
        let cutoff = s.error_cutoff().expect("bimodal must have a valley");
        assert!(
            (3..=6).contains(&cutoff),
            "valley should sit between spike and hump, got {cutoff}"
        );
        let peak = s.coverage_peak().expect("hump exists");
        assert!((18..=22).contains(&peak), "peak ≈ 20, got {peak}");
    }

    #[test]
    fn monotone_spectrum_has_no_valley() {
        let mut s = Spectrum::new(16);
        for m in 1..=16u32 {
            for _ in 0..(1000 / m) {
                s.record(m);
            }
        }
        assert_eq!(s.error_cutoff(), None);
    }

    #[test]
    fn rows_skip_empty_tail() {
        let s = Spectrum::from_multiplicities([1, 3], 32);
        let rows = s.rows();
        assert_eq!(rows.last().unwrap().0, 3);
        assert_eq!(rows.len(), 3);
    }
}
