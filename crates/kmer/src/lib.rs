//! K-mer machinery for the assembler.
//!
//! * [`Kmer`] — a fixed-width (≤ [`MAX_K`]) k-mer packed at 2 bits/base,
//!   with O(words) shift, reverse-complement and canonicalization.
//! * [`hash::murmur64a`] — the MurmurHash2 64-bit hash the SC'21 paper uses
//!   for its warp-local hash tables, implemented from the reference spec.
//! * [`ExtCounts`] — the *extension object* of MetaHipMer local assembly:
//!   per-base occurrence counts split into quality tiers, with the
//!   fork/dead-end classification rule used by mer-walks.
//! * [`KmerIter`] — iterator over the k-mers of a sequence.

pub mod ext;
pub mod hash;
pub mod kmer;
pub mod spectrum;

pub use ext::{ExtCounts, ExtVerdict, QUAL_TIER_CUTOFF};
pub use kmer::{Kmer, KmerIter, MAX_K};
pub use spectrum::Spectrum;
