//! Extension-count objects and the mer-walk classification rule.
//!
//! In MetaHipMer's local assembly the value stored against each k-mer is an
//! *extension object*: for each of the four bases that can follow the k-mer,
//! how many candidate reads vote for it, split by base-call quality. The
//! walk then classifies the votes into "extend with base X", "dead end"
//! (no credible vote) or "fork" (two or more credible votes).

use bioseq::{Base, QualScore};
use serde::{Deserialize, Serialize};

/// Phred score at and above which a vote counts as high-quality.
/// MetaHipMer uses Q20 ("1% error") as its quality gate.
pub const QUAL_TIER_CUTOFF: QualScore = 20;

/// Per-base extension votes in two quality tiers.
///
/// Counts saturate at `u16::MAX`; candidate read sets are ≤ ~3000 reads so
/// saturation never occurs in practice, but the arithmetic must not wrap on
/// adversarial input.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExtCounts {
    hi: [u16; 4],
    lo: [u16; 4],
}

/// Outcome of classifying an [`ExtCounts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExtVerdict {
    /// Exactly one credible extension base.
    Extend(Base),
    /// No credible extension ("X" in MetaHipMer logs).
    DeadEnd,
    /// Two or more credible extensions ("F").
    Fork,
}

impl ExtCounts {
    /// No votes.
    pub fn new() -> ExtCounts {
        ExtCounts::default()
    }

    /// Record one vote for `base` at quality `q`.
    pub fn add_vote(&mut self, base: Base, q: QualScore) {
        let i = base as usize;
        if q >= QUAL_TIER_CUTOFF {
            self.hi[i] = self.hi[i].saturating_add(1);
        } else {
            self.lo[i] = self.lo[i].saturating_add(1);
        }
    }

    /// Merge another vote set into this one (used when merging per-thread
    /// tables and when the GPU entry is reduced).
    pub fn merge(&mut self, other: &ExtCounts) {
        for i in 0..4 {
            self.hi[i] = self.hi[i].saturating_add(other.hi[i]);
            self.lo[i] = self.lo[i].saturating_add(other.lo[i]);
        }
    }

    /// High-quality votes for `base`.
    #[inline]
    pub fn hi_count(&self, base: Base) -> u16 {
        self.hi[base as usize]
    }

    /// Low-quality votes for `base`.
    #[inline]
    pub fn lo_count(&self, base: Base) -> u16 {
        self.lo[base as usize]
    }

    /// Total votes across bases and tiers.
    pub fn total(&self) -> u32 {
        (0..4).map(|i| u32::from(self.hi[i]) + u32::from(self.lo[i])).sum()
    }

    /// A base's vote is *credible* when it has at least `min_viable`
    /// high-quality votes, or at least one high-quality vote backed by
    /// `min_viable + 1` total votes — MetaHipMer's quality-tiered rule
    /// (hi-q evidence required, lo-q evidence only corroborates) — **and**
    /// it carries at least 10% of all votes for this k-mer. The relative
    /// gate keeps recurrent sequencing errors (which easily reach 2
    /// absolute votes at high coverage) from forking every walk.
    pub fn is_credible(&self, base: Base, min_viable: u16) -> bool {
        let i = base as usize;
        let hi = self.hi[i];
        let tot = u32::from(self.hi[i]) + u32::from(self.lo[i]);
        let absolute =
            hi >= min_viable || (hi >= 1 && tot >= u32::from(min_viable.saturating_add(1)));
        absolute && tot * 10 >= self.total()
    }

    /// Classify the votes into extend/dead-end/fork.
    ///
    /// `min_viable` is the minimum credible-vote threshold (MetaHipMer
    /// default: 2, i.e. a lone read never extends a contig).
    pub fn classify(&self, min_viable: u16) -> ExtVerdict {
        let mut credible: Option<Base> = None;
        for b in Base::ALL {
            if self.is_credible(b, min_viable) {
                match credible {
                    None => credible = Some(b),
                    Some(_) => return ExtVerdict::Fork,
                }
            }
        }
        match credible {
            Some(b) => ExtVerdict::Extend(b),
            None => ExtVerdict::DeadEnd,
        }
    }

    /// Device layout used by the GPU hash-table entries: one word of four
    /// 16-bit high-quality counts (base `b` at bits `16b`) and one word of
    /// four 16-bit low-quality counts. A vote is an `atomicAdd` of
    /// `1 << 16b` on the matching word; fields wrap only past 65535 votes,
    /// far beyond the ≤3000-read candidate cap.
    pub fn to_hi_lo_words(&self) -> (u64, u64) {
        let mut hi = 0u64;
        let mut lo = 0u64;
        for i in 0..4 {
            hi |= u64::from(self.hi[i]) << (16 * i);
            lo |= u64::from(self.lo[i]) << (16 * i);
        }
        (hi, lo)
    }

    /// Inverse of [`to_hi_lo_words`](Self::to_hi_lo_words).
    pub fn from_hi_lo_words(hi: u64, lo: u64) -> ExtCounts {
        let mut e = ExtCounts::new();
        for i in 0..4 {
            e.hi[i] = ((hi >> (16 * i)) & 0xffff) as u16;
            e.lo[i] = ((lo >> (16 * i)) & 0xffff) as u16;
        }
        e
    }

    /// Pack into a `u64` for device memory: base `b`'s hi count in byte
    /// `2b`, lo count in byte `2b+1`. Counts clamp to 255.
    pub fn pack_u64(&self) -> u64 {
        let mut v = 0u64;
        for i in 0..4 {
            v |= u64::from(self.hi[i].min(255) as u8) << (16 * i);
            v |= u64::from(self.lo[i].min(255) as u8) << (16 * i + 8);
        }
        v
    }

    /// Unpack from the [`pack_u64`](Self::pack_u64) layout.
    pub fn unpack_u64(v: u64) -> ExtCounts {
        let mut e = ExtCounts::new();
        for i in 0..4 {
            e.hi[i] = u16::from(((v >> (16 * i)) & 0xff) as u8);
            e.lo[i] = u16::from(((v >> (16 * i + 8)) & 0xff) as u8);
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_is_dead_end() {
        assert_eq!(ExtCounts::new().classify(2), ExtVerdict::DeadEnd);
    }

    #[test]
    fn single_hi_vote_insufficient() {
        let mut e = ExtCounts::new();
        e.add_vote(Base::A, 30);
        assert_eq!(e.classify(2), ExtVerdict::DeadEnd);
    }

    #[test]
    fn two_hi_votes_extend() {
        let mut e = ExtCounts::new();
        e.add_vote(Base::G, 30);
        e.add_vote(Base::G, 25);
        assert_eq!(e.classify(2), ExtVerdict::Extend(Base::G));
    }

    #[test]
    fn hi_plus_lo_corroboration_extends() {
        let mut e = ExtCounts::new();
        e.add_vote(Base::C, 30); // one hi
        e.add_vote(Base::C, 10); // lo
        e.add_vote(Base::C, 5); // lo
        assert_eq!(e.classify(2), ExtVerdict::Extend(Base::C));
    }

    #[test]
    fn lo_only_never_extends() {
        let mut e = ExtCounts::new();
        for _ in 0..10 {
            e.add_vote(Base::T, 5);
        }
        assert_eq!(e.classify(2), ExtVerdict::DeadEnd);
    }

    #[test]
    fn two_credible_bases_fork() {
        let mut e = ExtCounts::new();
        e.add_vote(Base::A, 30);
        e.add_vote(Base::A, 30);
        e.add_vote(Base::T, 30);
        e.add_vote(Base::T, 30);
        assert_eq!(e.classify(2), ExtVerdict::Fork);
    }

    #[test]
    fn credible_plus_noise_still_extends() {
        let mut e = ExtCounts::new();
        e.add_vote(Base::A, 30);
        e.add_vote(Base::A, 30);
        e.add_vote(Base::T, 5); // lone low-quality vote: noise
        assert_eq!(e.classify(2), ExtVerdict::Extend(Base::A));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ExtCounts::new();
        a.add_vote(Base::A, 30);
        let mut b = ExtCounts::new();
        b.add_vote(Base::A, 30);
        a.merge(&b);
        assert_eq!(a.classify(2), ExtVerdict::Extend(Base::A));
        assert_eq!(a.total(), 2);
    }

    #[test]
    fn saturating_counts() {
        let mut e = ExtCounts::new();
        for _ in 0..70000 {
            e.add_vote(Base::A, 30);
        }
        assert_eq!(e.hi_count(Base::A), u16::MAX);
    }

    proptest! {
        #[test]
        fn hi_lo_words_round_trip(hi in proptest::array::uniform4(any::<u16>()), lo in proptest::array::uniform4(any::<u16>())) {
            let e = ExtCounts { hi, lo };
            let (hw, lw) = e.to_hi_lo_words();
            prop_assert_eq!(ExtCounts::from_hi_lo_words(hw, lw), e);
        }

        #[test]
        fn atomic_add_layout_matches_add_vote(votes in proptest::collection::vec((0u8..4, 0u8..45), 0..50)) {
            // Simulate the device's atomicAdd accumulation and check it
            // produces the same counts as the host-side add_vote path.
            let mut host = ExtCounts::new();
            let (mut hi_w, mut lo_w) = (0u64, 0u64);
            for (code, q) in votes {
                let b = bioseq::Base::from_code(code);
                host.add_vote(b, q);
                if q >= QUAL_TIER_CUTOFF {
                    hi_w = hi_w.wrapping_add(1 << (16 * u64::from(code)));
                } else {
                    lo_w = lo_w.wrapping_add(1 << (16 * u64::from(code)));
                }
            }
            prop_assert_eq!(ExtCounts::from_hi_lo_words(hi_w, lo_w), host);
        }

        #[test]
        fn pack_round_trip(hi in proptest::array::uniform4(0u16..256), lo in proptest::array::uniform4(0u16..256)) {
            let e = ExtCounts { hi, lo };
            prop_assert_eq!(ExtCounts::unpack_u64(e.pack_u64()), e);
        }

        #[test]
        fn classify_never_panics(hi in proptest::array::uniform4(any::<u16>()), lo in proptest::array::uniform4(any::<u16>()), mv in 0u16..10) {
            let e = ExtCounts { hi, lo };
            let _ = e.classify(mv);
        }

        #[test]
        fn merge_commutative_on_small(av in proptest::array::uniform4(0u16..100), bv in proptest::array::uniform4(0u16..100)) {
            let a = ExtCounts { hi: av, lo: bv };
            let b = ExtCounts { hi: bv, lo: av };
            let mut ab = a; ab.merge(&b);
            let mut ba = b; ba.merge(&a);
            prop_assert_eq!(ab, ba);
        }
    }
}
