//! De Bruijn graph construction and traversal — the "k-mer analysis" and
//! "contig generation" stages of the MetaHipMer pipeline (Figure 1 of the
//! paper).
//!
//! The graph is implicit: a map from *canonical* k-mer to its occurrence
//! count and per-side extension votes. Contigs are maximal unambiguous paths
//! (unitigs): every step requires a unique, mutually-agreeing extension on
//! both the current and the next vertex, which is how MetaHipMer's UU-graph
//! traversal avoids walking through forks. Error k-mers (count below
//! `min_count`, default 2 — "those that occur only once") are dropped before
//! traversal.

pub mod counts;
pub mod graph;
pub mod stats;
pub mod traverse;

pub use counts::{count_kmers, count_kmers_with_spectrum, KmerCountMap, VertexCounts};
pub use graph::DbgGraph;
pub use stats::{graph_stats, GraphStats};
pub use traverse::{generate_contigs, Contig};
