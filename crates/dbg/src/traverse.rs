//! Unitig traversal: maximal unambiguous paths become contigs.

use crate::graph::{DbgGraph, Oriented};
use bioseq::DnaSeq;
use kmer::Kmer;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// A contiguous assembled sequence with its mean k-mer depth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Contig {
    /// Stable id within the generating run.
    pub id: u64,
    /// The assembled sequence.
    pub seq: DnaSeq,
    /// Mean occurrence count of the member k-mers.
    pub depth: f64,
}

impl Contig {
    /// Length in bases.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// True for zero-length contigs (never produced by traversal).
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }
}

/// Generate contigs as maximal UU (unique–unique) paths.
///
/// A step from vertex `u` to `v` is taken only when `u`'s walk-right
/// extension is unique *and* `v`'s walk-left extension is unique and points
/// back at `u` — the mutual-agreement rule that stops traversal at forks
/// from either side. Each canonical k-mer joins at most one contig; seeds
/// are visited in sorted order so output is deterministic.
pub fn generate_contigs(graph: &DbgGraph, min_votes: u16) -> Vec<Contig> {
    let mut visited: HashSet<Kmer> = HashSet::with_capacity(graph.len());
    let mut contigs = Vec::new();
    let mut next_id = 0u64;

    for seed in graph.sorted_vertices() {
        if visited.contains(&seed) {
            continue;
        }
        let start = Oriented { canon: seed, fwd: true };
        visited.insert(seed);

        // Walk right from the seed, then right from the seed's rc view
        // (= left of the seed), and stitch.
        let (right_bases, mut member_counts) = walk(graph, start, min_votes, &mut visited);
        let rc_start = Oriented { canon: seed, fwd: false };
        let (left_bases_rc, more_counts) = walk(graph, rc_start, min_votes, &mut visited);
        member_counts.extend(more_counts);

        // Contig = rc(left walk) + seed + right walk.
        let mut seq = DnaSeq::with_capacity(left_bases_rc.len() + graph.k() + right_bases.len());
        let left_part: DnaSeq = left_bases_rc.iter().copied().collect();
        seq.extend_from(&left_part.revcomp());
        seq.extend_from(&seed.to_seq());
        for b in &right_bases {
            seq.push(*b);
        }

        let seed_count = graph.vertex(&seed).map_or(0, |v| v.count);
        member_counts.push(seed_count);
        let depth =
            member_counts.iter().map(|&c| f64::from(c)).sum::<f64>() / member_counts.len() as f64;

        contigs.push(Contig { id: next_id, seq, depth });
        next_id += 1;
    }
    contigs
}

/// Walk right from `start`, marking vertices visited; returns the appended
/// bases and the counts of the vertices consumed.
fn walk(
    graph: &DbgGraph,
    start: Oriented,
    min_votes: u16,
    visited: &mut HashSet<Kmer>,
) -> (Vec<bioseq::Base>, Vec<u32>) {
    let mut bases = Vec::new();
    let mut counts = Vec::new();
    let mut cur = start;
    while let Some(ext) = graph.unique_right_ext(&cur, min_votes) {
        let Some(next) = graph.step_right(&cur, ext) else {
            break;
        };
        // Mutual agreement: next's walk-left unique extension must be the
        // base we just shifted out of `cur`.
        let dropped = cur.walk_kmer().base(0);
        if graph.unique_left_ext(&next, min_votes) != Some(dropped) {
            break;
        }
        if visited.contains(&next.canon) {
            break; // already consumed (loop or another contig)
        }
        visited.insert(next.canon);
        counts.push(graph.vertex(&next.canon).map_or(0, |v| v.count));
        bases.push(ext);
        cur = next;
    }
    (bases, counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counts::count_kmers;
    use bioseq::Read;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_genome(len: usize, seed: u64) -> DnaSeq {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| bioseq::Base::from_code(rng.gen_range(0..4))).collect()
    }

    /// Error-free reads tiling `genome` every `stride` bases.
    fn tile_reads(genome: &DnaSeq, read_len: usize, stride: usize) -> Vec<Read> {
        let mut reads = Vec::new();
        let mut pos = 0;
        while pos + read_len <= genome.len() {
            reads.push(Read::with_uniform_qual(
                format!("r{pos}"),
                genome.subseq(pos, read_len),
                35,
            ));
            pos += stride;
        }
        reads
    }

    fn assemble(reads: &[Read], k: usize) -> Vec<Contig> {
        let map = count_kmers(reads, k, 2);
        generate_contigs(&DbgGraph::new(k, map), 2)
    }

    #[test]
    fn single_genome_reconstructs() {
        let genome = random_genome(2000, 42);
        let reads = tile_reads(&genome, 100, 4);
        let contigs = assemble(&reads, 31);
        // With error-free dense tiling and no 31-mer repeats we expect
        // essentially one contig covering nearly the whole genome
        // (end k-mers may drop below min_count).
        let longest = contigs.iter().map(Contig::len).max().unwrap();
        assert!(
            longest >= genome.len() - 2 * 100,
            "longest contig {longest} too short for genome {}",
            genome.len()
        );
        // And the longest contig must be a genuine substring of the genome
        // (in either orientation).
        let big = contigs.iter().max_by_key(|c| c.len()).unwrap();
        assert!(
            genome.contains(&big.seq) || genome.contains(&big.seq.revcomp()),
            "assembled contig not a substring of the source genome"
        );
    }

    #[test]
    fn depth_reflects_coverage() {
        let genome = random_genome(1000, 7);
        // stride 2 → ~50x k-mer coverage in the interior.
        let contigs = assemble(&tile_reads(&genome, 100, 2), 31);
        let big = contigs.iter().max_by_key(|c| c.len()).unwrap();
        assert!(big.depth > 10.0, "depth {}", big.depth);
    }

    #[test]
    fn fork_breaks_contig() {
        // Two "genomes" sharing an identical middle segment: the shared
        // region is a fork and must break traversal into >= 3 contigs.
        let shared = random_genome(300, 1);
        let a = {
            let mut s = random_genome(300, 2);
            s.extend_from(&shared);
            s.extend_from(&random_genome(300, 3));
            s
        };
        let b = {
            let mut s = random_genome(300, 4);
            s.extend_from(&shared);
            s.extend_from(&random_genome(300, 5));
            s
        };
        let mut reads = tile_reads(&a, 100, 3);
        reads.extend(tile_reads(&b, 100, 3));
        let contigs = assemble(&reads, 31);
        let substantial = contigs.iter().filter(|c| c.len() > 100).count();
        assert!(substantial >= 3, "expected >=3 contigs, got {substantial}");
    }

    #[test]
    fn singleton_errors_filtered() {
        let genome = random_genome(800, 9);
        let mut reads = tile_reads(&genome, 100, 4);
        // One read with a single-base error in the middle: its k-mers are
        // singletons and must not fragment the assembly.
        let mut bad = genome.subseq(300, 100);
        let flipped = bad.code(50) ^ 1;
        let mut codes = bad.codes().to_vec();
        codes[50] = flipped;
        bad = DnaSeq::from_codes(codes);
        reads.push(Read::with_uniform_qual("bad", bad, 35));
        let contigs = assemble(&reads, 31);
        let longest = contigs.iter().map(Contig::len).max().unwrap();
        assert!(longest >= genome.len() - 200);
    }

    #[test]
    fn deterministic_output() {
        let genome = random_genome(1500, 11);
        let reads = tile_reads(&genome, 100, 5);
        let a = assemble(&reads, 31);
        let b = assemble(&reads, 31);
        assert_eq!(a, b);
    }

    #[test]
    fn strand_invariance() {
        // Assembling the rc of every read gives the same contig set up to
        // orientation.
        let genome = random_genome(1200, 13);
        let reads = tile_reads(&genome, 100, 4);
        let rc_reads: Vec<Read> = reads.iter().map(Read::revcomp).collect();
        let a = assemble(&reads, 31);
        let b = assemble(&rc_reads, 31);
        assert_eq!(a.len(), b.len());
        let canon = |cs: &[Contig]| {
            let mut v: Vec<String> = cs
                .iter()
                .map(|c| {
                    let f = c.seq.to_string();
                    let r = c.seq.revcomp().to_string();
                    if f <= r {
                        f
                    } else {
                        r
                    }
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(canon(&a), canon(&b));
    }

    #[test]
    fn empty_input_empty_output() {
        let contigs = assemble(&[], 21);
        assert!(contigs.is_empty());
    }
}
