//! Parallel canonical k-mer counting with per-side extension votes.

use bioseq::{Base, Read};
use kmer::{Kmer, KmerIter, Spectrum};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Occurrence count and extension votes for one canonical k-mer.
///
/// `left`/`right` are indexed by base code and count how often that base was
/// observed immediately before/after the k-mer, *in the canonical
/// orientation*. When a k-mer occurs reverse-complemented in a read, its
/// neighbours are complemented and swapped before voting, so votes from both
/// strands accumulate coherently.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VertexCounts {
    /// Total occurrences (both strands).
    pub count: u32,
    /// Votes for the base preceding the k-mer.
    pub left: [u16; 4],
    /// Votes for the base following the k-mer.
    pub right: [u16; 4],
}

impl VertexCounts {
    fn add(&mut self, left: Option<Base>, right: Option<Base>) {
        self.count = self.count.saturating_add(1);
        if let Some(b) = left {
            let i = b as usize;
            self.left[i] = self.left[i].saturating_add(1);
        }
        if let Some(b) = right {
            let i = b as usize;
            self.right[i] = self.right[i].saturating_add(1);
        }
    }

    fn merge(&mut self, o: &VertexCounts) {
        self.count = self.count.saturating_add(o.count);
        for i in 0..4 {
            self.left[i] = self.left[i].saturating_add(o.left[i]);
            self.right[i] = self.right[i].saturating_add(o.right[i]);
        }
    }

    /// The unique extension base on a side, if exactly one base is *viable*
    /// (MetaHipMer's UU criterion).
    ///
    /// Viability is both absolute (`min_votes`) and relative (at least 10%
    /// of the side's votes): at high coverage, recurrent sequencing errors
    /// easily reach 2 absolute votes, and without the relative gate they
    /// would fork — and fragment — every well-covered region.
    pub fn unique_ext(&self, side: Side, min_votes: u16) -> Option<Base> {
        let mut found = None;
        for b in Base::ALL {
            if self.is_viable(side, b, min_votes) {
                if found.is_some() {
                    return None; // fork
                }
                found = Some(b);
            }
        }
        found
    }

    /// Does `base` pass the viability gate on `side` (absolute votes and
    /// ≥10% of the side's total)?
    pub fn is_viable(&self, side: Side, base: Base, min_votes: u16) -> bool {
        let votes = match side {
            Side::Left => &self.left,
            Side::Right => &self.right,
        };
        let total: u32 = votes.iter().map(|&v| u32::from(v)).sum();
        let v = votes[base as usize];
        v >= min_votes && u32::from(v) * 10 >= total
    }

    /// Number of viable bases on `side`.
    pub fn viable_bases(&self, side: Side, min_votes: u16) -> usize {
        Base::ALL.iter().filter(|&&b| self.is_viable(side, b, min_votes)).count()
    }
}

/// Which side of a k-mer an extension is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    Left,
    Right,
}

/// Map from canonical k-mer to its counts.
pub type KmerCountMap = HashMap<Kmer, VertexCounts>;

/// Count canonical k-mers (and their extension votes) across `reads`,
/// in parallel, then drop k-mers with fewer than `min_count` occurrences.
///
/// This is the pipeline's "k-mer analysis" phase: the `min_count = 2`
/// default implements the paper's "filtering out erroneous k-mers (those
/// that occur only once)".
pub fn count_kmers(reads: &[Read], k: usize, min_count: u32) -> KmerCountMap {
    let chunk = (reads.len() / (rayon::current_num_threads() * 4)).max(256);
    let mut merged: KmerCountMap = reads
        .par_chunks(chunk)
        .map(|chunk| {
            let mut local: KmerCountMap = HashMap::new();
            for read in chunk {
                accumulate_read(&mut local, read, k);
            }
            local
        })
        .reduce(HashMap::new, |a, b| {
            if a.len() < b.len() {
                return merge_into(b, a);
            }
            merge_into(a, b)
        });
    merged.retain(|_, v| v.count >= min_count);
    merged
}

fn merge_into(mut big: KmerCountMap, small: KmerCountMap) -> KmerCountMap {
    for (k, v) in small {
        big.entry(k).or_default().merge(&v);
    }
    big
}

/// Count k-mers and also return the multiplicity spectrum (computed before
/// the `min_count` filter, so the error spike is visible). The spectrum's
/// valley is the data-driven singleton/error cutoff (see
/// [`kmer::Spectrum::error_cutoff`]).
pub fn count_kmers_with_spectrum(
    reads: &[Read],
    k: usize,
    min_count: u32,
    max_multiplicity: usize,
) -> (KmerCountMap, Spectrum) {
    let mut map = count_kmers(reads, k, 1);
    let mut spectrum = Spectrum::new(max_multiplicity);
    for v in map.values() {
        spectrum.record(v.count);
    }
    map.retain(|_, v| v.count >= min_count);
    (map, spectrum)
}

/// Add one read's k-mers to `map`.
pub fn accumulate_read(map: &mut KmerCountMap, read: &Read, k: usize) {
    let seq = &read.seq;
    if seq.len() < k {
        return;
    }
    for (pos, km) in KmerIter::new(seq, k) {
        let left = if pos > 0 { Some(seq.base(pos - 1)) } else { None };
        let right = if pos + k < seq.len() { Some(seq.base(pos + k)) } else { None };
        let canon = km.canonical();
        let (l, r) = if canon == km {
            (left, right)
        } else {
            // Reverse-complemented occurrence: neighbours swap sides and
            // complement.
            (right.map(Base::complement), left.map(Base::complement))
        };
        map.entry(canon).or_default().add(l, r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioseq::DnaSeq;

    fn read(s: &str) -> Read {
        Read::with_uniform_qual("r", DnaSeq::from_str_strict(s).unwrap(), 30)
    }

    #[test]
    fn counts_both_strands_together() {
        let r1 = read("ACGTA");
        let r2 = Read::with_uniform_qual("r2", r1.seq.revcomp(), 30);
        let map = count_kmers(&[r1, r2], 4, 1);
        // ACGT(c)=ACGT count 2 (one per strand); CGTA canonical count 2.
        let km = Kmer::from_seq(&DnaSeq::from_str_strict("ACGT").unwrap(), 0, 4);
        assert_eq!(map.get(&km.canonical()).unwrap().count, 2);
    }

    #[test]
    fn min_count_filters_singletons() {
        // Chosen so no k-mer is its own (or another's) reverse complement.
        let map = count_kmers(&[read("ACGGTTCAAGT")], 8, 2);
        assert!(map.is_empty(), "all k-mers occur once");
        let map1 = count_kmers(&[read("ACGGTTCAAGT")], 8, 1);
        assert_eq!(map1.len(), 4);
    }

    #[test]
    fn extension_votes_forward() {
        // Read TACGTG: k-mer ACGT at pos 1, left=T right=G.
        let map = count_kmers(&[read("TACGTG"), read("TACGTG")], 4, 1);
        let km = Kmer::from_seq(&DnaSeq::from_str_strict("ACGT").unwrap(), 0, 4).canonical();
        let v = map.get(&km).unwrap();
        // ACGT is canonical (its rc is itself; palindrome), votes may appear
        // on both sides. Check via a non-palindromic k-mer instead.
        assert!(v.count >= 2);
        let km2 = Kmer::from_seq(&DnaSeq::from_str_strict("TACG").unwrap(), 0, 4);
        let canon2 = km2.canonical();
        let v2 = map.get(&canon2).unwrap();
        assert_eq!(v2.count, 2);
        if canon2 == km2 {
            assert_eq!(v2.right[Base::T as usize], 2);
        } else {
            assert_eq!(v2.left[Base::A as usize], 2);
        }
    }

    #[test]
    fn rc_occurrence_votes_coherently() {
        // The same locus seen from both strands must produce identical votes.
        let fwd = read("GGACGTTC");
        let rc = Read::with_uniform_qual("rc", fwd.seq.revcomp(), 30);
        let m_f = count_kmers(&[fwd.clone(), fwd.clone()], 5, 1);
        let m_rc = count_kmers(&[rc.clone(), rc], 5, 1);
        assert_eq!(m_f.len(), m_rc.len());
        for (km, v) in &m_f {
            let v2 = m_rc.get(km).expect("same canonical k-mers");
            assert_eq!(v, v2, "kmer {km}");
        }
    }

    #[test]
    fn unique_ext_detects_fork() {
        let mut v = VertexCounts::default();
        v.right[0] = 3;
        assert_eq!(v.unique_ext(Side::Right, 2), Some(Base::A));
        v.right[2] = 3;
        assert_eq!(v.unique_ext(Side::Right, 2), None);
        assert_eq!(v.unique_ext(Side::Left, 1), None);
    }

    #[test]
    fn short_reads_ignored() {
        let map = count_kmers(&[read("ACG")], 5, 1);
        assert!(map.is_empty());
    }

    #[test]
    fn spectrum_sees_prefiltered_counts() {
        let reads = vec![read("ACGGTTCAAGTACCG"), read("ACGGTTCAAGTACCG"), read("TTGGCCAATCGATTA")];
        let (map, spectrum) = count_kmers_with_spectrum(&reads, 11, 2, 16);
        // Duplicated read's k-mers have multiplicity 2; the unique read's
        // k-mers are singletons — filtered from the map but in the spectrum.
        assert!(spectrum.at(1) > 0, "singletons must appear in the spectrum");
        assert!(map.values().all(|v| v.count >= 2));
        assert_eq!(spectrum.distinct() as usize, map.len() + spectrum.at(1) as usize);
    }

    #[test]
    fn parallel_matches_serial() {
        // Build a read set big enough to split across chunks.
        let mut reads = Vec::new();
        let base = "ACGTTGCAAGCTTGGCATTGCAACGGTTACGATCGATCGGATCCAATTGG";
        for i in 0..2000 {
            let rot = i % 20;
            let s: String = base.chars().cycle().skip(rot).take(30).collect();
            reads.push(read(&s));
        }
        let par = count_kmers(&reads, 11, 1);
        let mut ser: KmerCountMap = HashMap::new();
        for r in &reads {
            accumulate_read(&mut ser, r, 11);
        }
        assert_eq!(par.len(), ser.len());
        for (k, v) in &ser {
            assert_eq!(par.get(k), Some(v));
        }
    }
}
