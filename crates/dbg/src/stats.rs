//! Graph-shape diagnostics: degree distributions and fork/tip censuses.
//!
//! These are the numbers that explain *why* contigs break — the upstream
//! cause of everything local assembly is asked to repair. A vertex with a
//! unique extension on both sides is interior to a unitig; forks (2+
//! viable extensions) terminate contigs and later become the walk's `F`
//! outcomes; tips (no viable extension) become `X` dead ends.

use crate::counts::Side;
use crate::graph::DbgGraph;
use serde::{Deserialize, Serialize};

/// Census of vertex roles in the graph.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Total vertices (canonical k-mers).
    pub vertices: usize,
    /// Interior vertices: unique viable extension on both sides.
    pub interior: usize,
    /// Fork vertices: ≥2 viable extensions on at least one side.
    pub forks: usize,
    /// Tips: no viable extension on at least one side.
    pub tips: usize,
    /// Isolated vertices: no viable extension on either side.
    pub isolated: usize,
}

impl GraphStats {
    /// Forks per megabase-equivalent of vertices — a fragmentation index.
    pub fn fork_rate(&self) -> f64 {
        if self.vertices == 0 {
            0.0
        } else {
            self.forks as f64 / self.vertices as f64
        }
    }
}

/// Count how many bases on `side` are viable under the same rule the
/// traversal uses.
fn viable_count(graph: &DbgGraph, km: &kmer::Kmer, side: Side, min_votes: u16) -> usize {
    graph.vertex(km).map_or(0, |v| v.viable_bases(side, min_votes))
}

/// Compute the census at the given vote threshold.
pub fn graph_stats(graph: &DbgGraph, min_votes: u16) -> GraphStats {
    let mut s = GraphStats { vertices: graph.len(), ..Default::default() };
    for km in graph.sorted_vertices() {
        let l = viable_count(graph, &km, Side::Left, min_votes);
        let r = viable_count(graph, &km, Side::Right, min_votes);
        match (l, r) {
            (1, 1) => s.interior += 1,
            (0, 0) => s.isolated += 1,
            _ => {
                if l >= 2 || r >= 2 {
                    s.forks += 1;
                } else {
                    s.tips += 1;
                }
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counts::count_kmers;
    use bioseq::{DnaSeq, Read};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_seq(len: usize, sd: u64) -> DnaSeq {
        let mut rng = StdRng::seed_from_u64(sd);
        (0..len).map(|_| bioseq::Base::from_code(rng.gen_range(0..4))).collect()
    }

    fn graph_of(genomes: &[DnaSeq], k: usize) -> DbgGraph {
        let mut reads = Vec::new();
        for g in genomes {
            let mut pos = 0;
            while pos + 60 <= g.len() {
                for c in 0..2 {
                    reads.push(Read::with_uniform_qual(
                        format!("r{pos}c{c}"),
                        g.subseq(pos, 60),
                        35,
                    ));
                }
                pos += 5;
            }
        }
        DbgGraph::new(k, count_kmers(&reads, k, 2))
    }

    #[test]
    fn clean_genome_is_mostly_interior() {
        let g = graph_of(&[random_seq(2000, 1)], 21);
        let s = graph_stats(&g, 2);
        assert!(s.vertices > 1000);
        assert!(
            s.interior as f64 > 0.95 * s.vertices as f64,
            "interior {} of {}",
            s.interior,
            s.vertices
        );
        assert_eq!(s.forks, 0, "random genome should have no 21-mer forks");
        assert!(s.tips >= 2, "linear genome has at least two tip ends");
    }

    #[test]
    fn shared_segment_creates_forks() {
        let shared = random_seq(400, 2);
        let mk = |seed| {
            let mut s = random_seq(400, seed);
            s.extend_from(&shared);
            s.extend_from(&random_seq(400, seed + 100));
            s
        };
        let g = graph_of(&[mk(3), mk(4)], 21);
        let s = graph_stats(&g, 2);
        assert!(s.forks >= 2, "repeat boundaries must fork, got {}", s.forks);
        assert!(s.fork_rate() > 0.0);
    }

    #[test]
    fn empty_graph() {
        let g = DbgGraph::new(21, Default::default());
        let s = graph_stats(&g, 2);
        assert_eq!(s, GraphStats::default());
    }
}
