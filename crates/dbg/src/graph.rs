//! Oriented navigation over the implicit de Bruijn graph.

use crate::counts::{KmerCountMap, Side, VertexCounts};
use bioseq::Base;
use kmer::Kmer;

/// An implicit de Bruijn graph: canonical k-mer vertices with extension
/// votes, plus the `k` they were counted at.
#[derive(Debug)]
pub struct DbgGraph {
    k: usize,
    map: KmerCountMap,
}

/// A vertex seen in a particular orientation during traversal.
///
/// `fwd == true` means the walk-direction k-mer equals the stored canonical
/// k-mer; `fwd == false` means the walk sees its reverse complement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Oriented {
    /// Canonical (stored) form.
    pub canon: Kmer,
    /// Orientation of the walk relative to the canonical form.
    pub fwd: bool,
}

impl Oriented {
    /// Orient `km` (an as-walked k-mer) to its canonical vertex.
    pub fn from_walk_kmer(km: Kmer) -> Oriented {
        let canon = km.canonical();
        Oriented { canon, fwd: canon == km }
    }

    /// The k-mer as the walk sees it.
    pub fn walk_kmer(&self) -> Kmer {
        if self.fwd {
            self.canon
        } else {
            self.canon.revcomp()
        }
    }
}

impl DbgGraph {
    /// Wrap a counted k-mer map.
    pub fn new(k: usize, map: KmerCountMap) -> DbgGraph {
        DbgGraph { k, map }
    }

    /// The k the graph was built at.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Vertex counts for a canonical k-mer.
    pub fn vertex(&self, canon: &Kmer) -> Option<&VertexCounts> {
        self.map.get(canon)
    }

    /// Canonical k-mers in deterministic (sorted) order — traversal seeds.
    pub fn sorted_vertices(&self) -> Vec<Kmer> {
        let mut keys: Vec<Kmer> = self.map.keys().copied().collect();
        keys.sort_unstable();
        keys
    }

    /// The unique extension base on the *walk-right* side of an oriented
    /// vertex, if any (translating orientation onto the stored votes).
    pub fn unique_right_ext(&self, o: &Oriented, min_votes: u16) -> Option<Base> {
        let v = self.map.get(&o.canon)?;
        if o.fwd {
            v.unique_ext(Side::Right, min_votes)
        } else {
            // Walk-right of the rc view is the complement of the stored left.
            v.unique_ext(Side::Left, min_votes).map(Base::complement)
        }
    }

    /// The unique extension base on the *walk-left* side of an oriented
    /// vertex, if any.
    pub fn unique_left_ext(&self, o: &Oriented, min_votes: u16) -> Option<Base> {
        let v = self.map.get(&o.canon)?;
        if o.fwd {
            v.unique_ext(Side::Left, min_votes)
        } else {
            v.unique_ext(Side::Right, min_votes).map(Base::complement)
        }
    }

    /// Step the walk one base right: returns the next oriented vertex if it
    /// exists in the graph.
    pub fn step_right(&self, o: &Oriented, b: Base) -> Option<Oriented> {
        let next = Oriented::from_walk_kmer(o.walk_kmer().shift_right(b));
        self.map.contains_key(&next.canon).then_some(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counts::count_kmers;
    use bioseq::{DnaSeq, Read};

    fn graph_of(s: &str, k: usize) -> DbgGraph {
        let r = Read::with_uniform_qual("r", DnaSeq::from_str_strict(s).unwrap(), 30);
        let r2 = r.clone();
        DbgGraph::new(k, count_kmers(&[r, r2], k, 2))
    }

    #[test]
    fn navigation_follows_sequence() {
        let g = graph_of("TTACGGA", 4);
        let start = Oriented::from_walk_kmer(Kmer::from_seq(
            &DnaSeq::from_str_strict("TTAC").unwrap(),
            0,
            4,
        ));
        let ext = g.unique_right_ext(&start, 2).expect("unique ext");
        assert_eq!(ext, bioseq::Base::G);
        let next = g.step_right(&start, ext).expect("next vertex");
        assert_eq!(next.walk_kmer().to_string(), "TACG");
    }

    #[test]
    fn orientation_symmetric_navigation() {
        // Walking the rc strand must mirror the fwd walk.
        let g = graph_of("TTACGGA", 4);
        let fwd = Oriented::from_walk_kmer(Kmer::from_seq(
            &DnaSeq::from_str_strict("TACG").unwrap(),
            0,
            4,
        ));
        let rc_view = Oriented::from_walk_kmer(fwd.walk_kmer().revcomp());
        let right_of_fwd = g.unique_right_ext(&fwd, 2);
        let left_of_rc = g.unique_left_ext(&rc_view, 2);
        assert_eq!(right_of_fwd.map(bioseq::Base::complement), left_of_rc);
    }

    #[test]
    fn missing_vertex_is_none() {
        let g = graph_of("TTACGGA", 4);
        let absent = Oriented::from_walk_kmer(Kmer::from_seq(
            &DnaSeq::from_str_strict("CCCC").unwrap(),
            0,
            4,
        ));
        assert_eq!(g.unique_right_ext(&absent, 1), None);
    }

    #[test]
    fn sorted_vertices_deterministic() {
        let g = graph_of("TTACGGATTACCGGAA", 5);
        let a = g.sorted_vertices();
        let b = g.sorted_vertices();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }
}
