//! Canonical k-mer seed index over a contig set.

use bioseq::DnaSeq;
use kmer::{Kmer, KmerIter};
use std::collections::HashMap;

/// One indexed seed occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedHit {
    /// Contig index (position in the indexed slice).
    pub contig: u32,
    /// Seed start position within the contig.
    pub pos: u32,
    /// True if the contig-forward k-mer equals its canonical form.
    pub fwd: bool,
}

/// A canonical k-mer → occurrence-list index over contigs.
///
/// Seeds whose canonical k-mer occurs more than `max_occ` times across the
/// contig set are dropped as repeats (standard seed masking; keeps lookup
/// cost bounded on repetitive metagenomes).
#[derive(Debug)]
pub struct SeedIndex {
    seed_k: usize,
    map: HashMap<Kmer, Vec<SeedHit>>,
    contig_lens: Vec<u32>,
}

impl SeedIndex {
    /// Index every k-mer of every contig.
    pub fn build(contigs: &[DnaSeq], seed_k: usize, max_occ: usize) -> SeedIndex {
        let mut map: HashMap<Kmer, Vec<SeedHit>> = HashMap::new();
        let mut contig_lens = Vec::with_capacity(contigs.len());
        for (ci, c) in contigs.iter().enumerate() {
            contig_lens.push(c.len() as u32);
            if c.len() < seed_k {
                continue;
            }
            for (pos, km) in KmerIter::new(c, seed_k) {
                let canon = km.canonical();
                map.entry(canon).or_default().push(SeedHit {
                    contig: ci as u32,
                    pos: pos as u32,
                    fwd: canon == km,
                });
            }
        }
        map.retain(|_, v| v.len() <= max_occ);
        SeedIndex { seed_k, map, contig_lens }
    }

    /// Seed length.
    pub fn seed_k(&self) -> usize {
        self.seed_k
    }

    /// Number of distinct seeds retained.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no seeds were indexed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Length of contig `i`.
    pub fn contig_len(&self, i: u32) -> u32 {
        self.contig_lens[i as usize]
    }

    /// Number of contigs covered by the index.
    pub fn num_contigs(&self) -> usize {
        self.contig_lens.len()
    }

    /// Occurrences of a canonical k-mer.
    pub fn lookup(&self, canon: &Kmer) -> &[SeedHit] {
        self.map.get(canon).map_or(&[], Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> DnaSeq {
        DnaSeq::from_str_strict(s).unwrap()
    }

    #[test]
    fn indexes_all_positions() {
        let c = seq("ACGGTTCAAGTA");
        let idx = SeedIndex::build(std::slice::from_ref(&c), 8, 100);
        // 12 - 8 + 1 = 5 k-mers, all unique for this sequence.
        assert_eq!(idx.len(), 5);
        let km = Kmer::from_seq(&c, 2, 8).canonical();
        let hits = idx.lookup(&km);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].pos, 2);
        assert_eq!(hits[0].contig, 0);
    }

    #[test]
    fn repeat_masking() {
        // A homopolymer makes one k-mer occur many times.
        let c = seq(&"A".repeat(50));
        let idx = SeedIndex::build(std::slice::from_ref(&c), 8, 10);
        assert_eq!(idx.len(), 0, "repeat seed must be masked");
        let idx2 = SeedIndex::build(&[c], 8, 100);
        assert_eq!(idx2.len(), 1);
    }

    #[test]
    fn orientation_recorded() {
        let c = seq("ACGGTTCAAGTA");
        let idx = SeedIndex::build(std::slice::from_ref(&c), 8, 100);
        for pos in 0..5usize {
            let km = Kmer::from_seq(&c, pos, 8);
            let canon = km.canonical();
            let hit = idx.lookup(&canon)[0];
            assert_eq!(hit.fwd, canon == km, "pos {pos}");
        }
    }

    #[test]
    fn short_contigs_skipped() {
        let idx = SeedIndex::build(&[seq("ACG")], 8, 100);
        assert!(idx.is_empty());
        assert_eq!(idx.num_contigs(), 1);
    }
}
