//! Read ↔ contig alignment — the pipeline stage between contig generation
//! and local assembly (Figure 1 of the paper: "Alignment" feeding "Local
//! assembly").
//!
//! The aligner is seed-and-extend:
//!
//! 1. [`index::SeedIndex`] — canonical k-mer index over the contigs;
//! 2. [`aligner::align_read`] — seed lookup, diagonal grouping, and ungapped
//!    verification (substitution-only short reads make gaps rare; a banded
//!    Smith–Waterman, [`sw::banded_sw`], is provided for gapped rescoring
//!    and for the alignment-phase cost model);
//! 3. [`candidates::collect_candidates`] — classification of alignments into
//!    per-contig-end *candidate read sets*: reads that overlap a contig end
//!    and extend past it, oriented into contig-forward coordinates. These
//!    sets are exactly the input of the local-assembly module.

pub mod aligner;
pub mod candidates;
pub mod index;
pub mod sw;

pub use aligner::{align_read, AlignHit, AlignParams};
pub use candidates::{collect_candidates, CandidateParams, EndCandidates};
pub use index::SeedIndex;
