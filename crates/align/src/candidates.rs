//! Classification of alignments into per-contig-end candidate read sets.
//!
//! The local-assembly module extends each contig end using only "the reads
//! that align to the end of a contig" (paper §2.3). A read qualifies for the
//! right end when, oriented into contig-forward coordinates, it overlaps the
//! contig by at least `min_overlap` bases and hangs at least `min_overhang`
//! bases past the end (reads fully inside the contig cannot supply novel
//! k-mers). Mirror rule for the left end. Candidate counts are capped at
//! [`CandidateParams::max_candidates`] per end — the paper's empirical upper
//! limit of ~3000 reads per contig.

use crate::aligner::{align_read, AlignParams};
use crate::index::SeedIndex;
use bioseq::{DnaSeq, Read};
use rayon::prelude::*;

/// Parameters for candidate classification.
#[derive(Debug, Clone)]
pub struct CandidateParams {
    pub align: AlignParams,
    /// Minimum bases hanging past the contig end.
    pub min_overhang: usize,
    /// Cap on candidates per contig end (paper: ~3000 empirical max).
    pub max_candidates: usize,
}

impl Default for CandidateParams {
    fn default() -> Self {
        CandidateParams { align: AlignParams::default(), min_overhang: 5, max_candidates: 3000 }
    }
}

/// Candidate reads for both ends of one contig, oriented contig-forward.
#[derive(Debug, Clone, Default)]
pub struct EndCandidates {
    /// Reads overlapping and extending past the right (3') end.
    pub right: Vec<Read>,
    /// Reads overlapping and extending past the left (5') end.
    pub left: Vec<Read>,
}

impl EndCandidates {
    /// Total candidate reads across both ends.
    pub fn total(&self) -> usize {
        self.right.len() + self.left.len()
    }
}

/// Align every read and bucket the qualifying ones per contig end.
///
/// Output is indexed like `contigs`. Deterministic: candidates appear in
/// read order regardless of thread count.
pub fn collect_candidates(
    contigs: &[DnaSeq],
    reads: &[Read],
    idx: &SeedIndex,
    params: &CandidateParams,
) -> Vec<EndCandidates> {
    // Parallel phase: per-read classification (read_idx kept for ordering).
    let mut tagged: Vec<(usize, u32, bool, Read)> = reads
        .par_iter()
        .enumerate()
        .flat_map_iter(|(ri, read)| {
            let hits = align_read(idx, contigs, read, &params.align);
            let mut out = Vec::new();
            for h in hits {
                let clen = contigs[h.contig as usize].len() as i64;
                let oriented = if h.rc { read.revcomp() } else { read.clone() };
                let rlen = oriented.len() as i64;
                let right_overhang = h.offset + rlen - clen;
                let left_overhang = -h.offset;
                if right_overhang >= params.min_overhang as i64 && h.offset < clen {
                    out.push((ri, h.contig, true, oriented.clone()));
                }
                if left_overhang >= params.min_overhang as i64 && h.offset + rlen > 0 {
                    out.push((ri, h.contig, false, oriented));
                }
            }
            out
        })
        .collect();

    // Deterministic bucketing.
    tagged.sort_by_key(|(ri, contig, is_right, _)| (*contig, *is_right, *ri));
    let mut result = vec![EndCandidates::default(); contigs.len()];
    for (_, contig, is_right, read) in tagged {
        let slot = &mut result[contig as usize];
        let v = if is_right { &mut slot.right } else { &mut slot.left };
        if v.len() < params.max_candidates {
            v.push(read);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_seq(len: usize, seed: u64) -> DnaSeq {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| bioseq::Base::from_code(rng.gen_range(0..4))).collect()
    }

    /// A genome with a contig that is a window of it, plus reads tiling the
    /// genome, gives both-end candidates.
    fn setup() -> (Vec<DnaSeq>, Vec<Read>, SeedIndex) {
        let genome = random_seq(1000, 21);
        let contig = genome.subseq(400, 200);
        let mut reads = Vec::new();
        let mut pos = 0;
        while pos + 100 <= genome.len() {
            reads.push(Read::with_uniform_qual(format!("r{pos}"), genome.subseq(pos, 100), 35));
            pos += 10;
        }
        let contigs = vec![contig];
        let idx = SeedIndex::build(&contigs, 17, 500);
        (contigs, reads, idx)
    }

    #[test]
    fn both_ends_get_candidates() {
        let (contigs, reads, idx) = setup();
        let cands = collect_candidates(&contigs, &reads, &idx, &CandidateParams::default());
        assert_eq!(cands.len(), 1);
        assert!(!cands[0].right.is_empty(), "right end needs candidates");
        assert!(!cands[0].left.is_empty(), "left end needs candidates");
    }

    #[test]
    fn interior_reads_excluded() {
        let (contigs, reads, idx) = setup();
        let cands = collect_candidates(&contigs, &reads, &idx, &CandidateParams::default());
        // A read fully inside the contig (genome pos 430..530 ⊂ 400..600)
        // must not be a candidate for either end: every candidate read must
        // actually hang off an end. Verify by alignment of each stored read.
        for r in cands[0].right.iter() {
            // Oriented reads must share a long exact suffix... simpler:
            // every right candidate must contain bases not in the contig.
            assert!(!contigs[0].contains(&r.seq), "read {} is fully interior", r.id);
        }
    }

    #[test]
    fn oriented_reads_match_contig_forward() {
        let (contigs, mut reads, idx) = setup();
        // Reverse-complement every read: orientation must be fixed up so
        // stored candidates still align forward.
        for r in &mut reads {
            *r = r.revcomp();
        }
        let cands = collect_candidates(&contigs, &reads, &idx, &CandidateParams::default());
        assert!(!cands[0].right.is_empty());
        for r in &cands[0].right {
            // A forward-oriented right-end candidate overlaps the contig's
            // suffix; check that some 30-mer of the read appears in the
            // contig as-is (not rc).
            let mut found = false;
            for start in 0..=(r.len().saturating_sub(30)) {
                if contigs[0].contains(&r.seq.subseq(start, 30)) {
                    found = true;
                    break;
                }
            }
            assert!(found, "candidate not oriented contig-forward");
        }
    }

    #[test]
    fn cap_respected() {
        let (contigs, reads, idx) = setup();
        let p = CandidateParams { max_candidates: 3, ..Default::default() };
        let cands = collect_candidates(&contigs, &reads, &idx, &p);
        assert!(cands[0].right.len() <= 3);
        assert!(cands[0].left.len() <= 3);
    }

    #[test]
    fn no_reads_no_candidates() {
        let contigs = vec![random_seq(200, 5)];
        let idx = SeedIndex::build(&contigs, 17, 500);
        let cands = collect_candidates(&contigs, &[], &idx, &CandidateParams::default());
        assert_eq!(cands[0].total(), 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let (contigs, reads, idx) = setup();
        let a = collect_candidates(&contigs, &reads, &idx, &CandidateParams::default());
        let b = collect_candidates(&contigs, &reads, &idx, &CandidateParams::default());
        assert_eq!(a[0].right.len(), b[0].right.len());
        for (x, y) in a[0].right.iter().zip(&b[0].right) {
            assert_eq!(x, y);
        }
    }
}
