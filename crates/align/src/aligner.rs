//! Seed lookup, diagonal grouping, and ungapped verification.

use crate::index::SeedIndex;
use bioseq::{DnaSeq, Read};
use kmer::KmerIter;
use std::collections::HashMap;

/// Alignment parameters.
#[derive(Debug, Clone)]
pub struct AlignParams {
    /// Minimum seeds on the same diagonal before verification is attempted.
    pub min_seeds: usize,
    /// Stride between query seeds taken from the read.
    pub seed_stride: usize,
    /// Minimum read↔contig overlap length to accept.
    pub min_overlap: usize,
    /// Maximum mismatch fraction within the overlap.
    pub max_mismatch_frac: f64,
}

impl Default for AlignParams {
    fn default() -> Self {
        AlignParams { min_seeds: 2, seed_stride: 4, min_overlap: 30, max_mismatch_frac: 0.1 }
    }
}

/// A verified read-to-contig alignment.
///
/// Coordinates are in contig space for the read *as oriented* (`rc == true`
/// means the reverse complement of the read aligns forward to the contig).
/// `offset` is the contig position of oriented-read base 0 and may be
/// negative (read hangs off the left end).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlignHit {
    pub contig: u32,
    /// Contig coordinate of oriented-read base 0 (can be negative).
    pub offset: i64,
    /// True if the read's reverse complement is the aligning orientation.
    pub rc: bool,
    /// Bases compared (overlap of read extent and contig extent).
    pub overlap: u32,
    /// Mismatches within the overlap.
    pub mismatches: u32,
}

/// Align one read against the index; returns all accepted alignments
/// (at most one per (contig, orientation, diagonal) group).
pub fn align_read(
    idx: &SeedIndex,
    contigs: &[DnaSeq],
    read: &Read,
    params: &AlignParams,
) -> Vec<AlignHit> {
    let k = idx.seed_k();
    if read.len() < k {
        return Vec::new();
    }
    // (contig, rc, diagonal) -> seed count
    let mut groups: HashMap<(u32, bool, i64), usize> = HashMap::new();
    let rlen = read.len() as i64;
    for (pos, km) in KmerIter::new(&read.seq, k) {
        if pos % params.seed_stride != 0 {
            continue;
        }
        let canon = km.canonical();
        let read_fwd = canon == km;
        for hit in idx.lookup(&canon) {
            // Same strand sense => read-forward alignment.
            let rc = hit.fwd != read_fwd;
            let diag = if rc {
                // In rc-read coordinates the seed starts at rlen - k - pos.
                i64::from(hit.pos) - (rlen - k as i64 - pos as i64)
            } else {
                i64::from(hit.pos) - pos as i64
            };
            *groups.entry((hit.contig, rc, diag)).or_insert(0) += 1;
        }
    }

    let mut hits = Vec::new();
    let mut seen: Vec<(u32, bool)> = Vec::new();
    let mut sorted: Vec<((u32, bool, i64), usize)> = groups.into_iter().collect();
    // Strongest groups first; deterministic tie-break on the key.
    sorted.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    for ((contig, rc, diag), seeds) in sorted {
        if seeds < params.min_seeds {
            continue;
        }
        // One alignment per (contig, orientation): keep the best diagonal.
        if seen.contains(&(contig, rc)) {
            continue;
        }
        let oriented;
        let oriented_ref: &DnaSeq = if rc {
            oriented = read.seq.revcomp();
            &oriented
        } else {
            &read.seq
        };
        if let Some(hit) = verify(contigs, contig, diag, rc, oriented_ref, params) {
            hits.push(hit);
            seen.push((contig, rc));
        }
    }
    hits.sort_by_key(|h| (h.contig, h.rc, h.offset));
    hits
}

/// Ungapped verification of an oriented read at a fixed diagonal.
fn verify(
    contigs: &[DnaSeq],
    contig: u32,
    offset: i64,
    rc: bool,
    oriented: &DnaSeq,
    params: &AlignParams,
) -> Option<AlignHit> {
    let ctg = &contigs[contig as usize];
    let clen = ctg.len() as i64;
    let rlen = oriented.len() as i64;
    let start = offset.max(0);
    let end = (offset + rlen).min(clen);
    let overlap = end - start;
    if overlap < params.min_overlap as i64 {
        return None;
    }
    let mut mismatches = 0u32;
    for cpos in start..end {
        let rpos = (cpos - offset) as usize;
        if ctg.code(cpos as usize) != oriented.code(rpos) {
            mismatches += 1;
        }
    }
    if f64::from(mismatches) > params.max_mismatch_frac * overlap as f64 {
        return None;
    }
    Some(AlignHit { contig, offset, rc, overlap: overlap as u32, mismatches })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_seq(len: usize, seed: u64) -> DnaSeq {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| bioseq::Base::from_code(rng.gen_range(0..4))).collect()
    }

    fn setup(len: usize) -> (Vec<DnaSeq>, SeedIndex) {
        let c = random_seq(len, 99);
        let idx = SeedIndex::build(std::slice::from_ref(&c), 17, 200);
        (vec![c], idx)
    }

    #[test]
    fn exact_interior_read_aligns() {
        let (contigs, idx) = setup(500);
        let read = Read::with_uniform_qual("r", contigs[0].subseq(100, 100), 35);
        let hits = align_read(&idx, &contigs, &read, &AlignParams::default());
        assert_eq!(hits.len(), 1);
        let h = hits[0];
        assert_eq!(h.offset, 100);
        assert!(!h.rc);
        assert_eq!(h.overlap, 100);
        assert_eq!(h.mismatches, 0);
    }

    #[test]
    fn rc_read_aligns_with_rc_flag() {
        let (contigs, idx) = setup(500);
        let read = Read::with_uniform_qual("r", contigs[0].subseq(200, 100).revcomp(), 35);
        let hits = align_read(&idx, &contigs, &read, &AlignParams::default());
        assert_eq!(hits.len(), 1);
        assert!(hits[0].rc);
        assert_eq!(hits[0].offset, 200);
        assert_eq!(hits[0].mismatches, 0);
    }

    #[test]
    fn read_with_errors_still_aligns() {
        let (contigs, idx) = setup(500);
        let mut codes = contigs[0].subseq(50, 100).codes().to_vec();
        codes[10] ^= 1;
        codes[60] ^= 2;
        let read = Read::with_uniform_qual("r", DnaSeq::from_codes(codes), 35);
        let hits = align_read(&idx, &contigs, &read, &AlignParams::default());
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].mismatches, 2);
    }

    #[test]
    fn overhanging_read_has_negative_offset() {
        let (contigs, idx) = setup(500);
        // Read = 40 novel bases + first 60 contig bases: hangs off the left.
        let mut seq = random_seq(40, 7);
        seq.extend_from(&contigs[0].subseq(0, 60));
        let read = Read::with_uniform_qual("r", seq, 35);
        let hits = align_read(&idx, &contigs, &read, &AlignParams::default());
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].offset, -40);
        assert_eq!(hits[0].overlap, 60);
    }

    #[test]
    fn unrelated_read_no_hit() {
        let (contigs, idx) = setup(500);
        let read = Read::with_uniform_qual("r", random_seq(100, 12345), 35);
        let hits = align_read(&idx, &contigs, &read, &AlignParams::default());
        assert!(hits.is_empty());
    }

    #[test]
    fn short_overlap_rejected() {
        let (contigs, idx) = setup(500);
        // Only 20 bases overlap the contig's right end.
        let mut seq = contigs[0].subseq(480, 20);
        seq.extend_from(&random_seq(80, 55));
        let read = Read::with_uniform_qual("r", seq, 35);
        let hits = align_read(&idx, &contigs, &read, &AlignParams::default());
        assert!(hits.is_empty(), "20 < min_overlap 30 must reject");
    }

    #[test]
    fn multi_contig_hits_are_separate() {
        let a = random_seq(300, 1);
        let b = random_seq(300, 2);
        let contigs = vec![a.clone(), b.clone()];
        let idx = SeedIndex::build(&contigs, 17, 200);
        let read = Read::with_uniform_qual("r", a.subseq(100, 80), 35);
        let hits = align_read(&idx, &contigs, &read, &AlignParams::default());
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].contig, 0);
    }
}
