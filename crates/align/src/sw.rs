//! Banded Smith–Waterman local alignment.
//!
//! The MetaHipMer pipeline runs a GPU alignment kernel (ADEPT) in its
//! "aln kernel" phase; we provide a banded affine-free SW both as the
//! reference scoring routine and as the compute kernel behind the
//! alignment-phase cost model in the pipeline simulation.

use bioseq::DnaSeq;

/// Scoring scheme (match is positive; mismatch/gap are penalties ≤ 0).
#[derive(Debug, Clone, Copy)]
pub struct SwScoring {
    pub match_score: i32,
    pub mismatch: i32,
    pub gap: i32,
}

impl Default for SwScoring {
    fn default() -> Self {
        SwScoring { match_score: 2, mismatch: -3, gap: -4 }
    }
}

/// Result of a banded SW run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwResult {
    /// Best local-alignment score.
    pub score: i32,
    /// End position (exclusive) of the best alignment in the query.
    pub query_end: usize,
    /// End position (exclusive) of the best alignment in the target.
    pub target_end: usize,
}

/// Banded Smith–Waterman: cells with `|i - j - shift| > band` are skipped,
/// where `shift` recenters the band on an expected diagonal.
///
/// Runs in `O(query_len × band)` time and `O(band)`-ish memory (two rows).
pub fn banded_sw(
    query: &DnaSeq,
    target: &DnaSeq,
    scoring: SwScoring,
    band: usize,
    shift: i64,
) -> SwResult {
    let qn = query.len();
    let tn = target.len();
    let band = band.max(1) as i64;
    let mut prev = vec![0i32; tn + 1];
    let mut cur = vec![0i32; tn + 1];
    let mut best = SwResult { score: 0, query_end: 0, target_end: 0 };

    for i in 1..=qn {
        let center = i as i64 + shift;
        let lo = (center - band).max(1);
        let hi = (center + band).min(tn as i64);
        if lo > hi {
            std::mem::swap(&mut prev, &mut cur);
            cur.iter_mut().for_each(|c| *c = 0);
            continue;
        }
        // Zero the band edges so out-of-band neighbours read as 0.
        if lo >= 1 {
            cur[(lo - 1) as usize] = 0;
        }
        for j in lo..=hi {
            let ju = j as usize;
            let sub = if query.code(i - 1) == target.code(ju - 1) {
                scoring.match_score
            } else {
                scoring.mismatch
            };
            let diag = prev[ju - 1] + sub;
            let up = prev[ju] + scoring.gap;
            let left = cur[ju - 1] + scoring.gap;
            let s = diag.max(up).max(left).max(0);
            cur[ju] = s;
            if s > best.score {
                best = SwResult { score: s, query_end: i, target_end: ju };
            }
        }
        if (hi as usize) < tn {
            cur[hi as usize + 1] = 0;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn seq(s: &str) -> DnaSeq {
        DnaSeq::from_str_strict(s).unwrap()
    }

    #[test]
    fn identical_sequences_score_full() {
        let s = seq("ACGTACGTGG");
        let r = banded_sw(&s, &s, SwScoring::default(), 8, 0);
        assert_eq!(r.score, 20);
        assert_eq!(r.query_end, 10);
        assert_eq!(r.target_end, 10);
    }

    #[test]
    fn single_mismatch_drops_score() {
        let q = seq("ACGTACGTGG");
        let t = seq("ACGTTCGTGG");
        let r = banded_sw(&q, &t, SwScoring::default(), 8, 0);
        // Best either spans the mismatch (18-3=15... 9 matches*2 -3 = 15)
        // or takes the 5-suffix/4-prefix side (10 or 8).
        assert_eq!(r.score, 15);
    }

    #[test]
    fn local_alignment_finds_embedded_match() {
        let q = seq("TTTTTACGTACGTACGTTTTT");
        let t = seq("CCCCCACGTACGTACGCCCCC");
        let r = banded_sw(&q, &t, SwScoring::default(), 21, 0);
        assert_eq!(r.score, 22); // 11 matching bases × 2
    }

    #[test]
    fn gap_is_handled() {
        let q = seq("ACGTACGTACGT");
        let t = seq("ACGTACCGTACGT"); // one inserted base
        let r = banded_sw(&q, &t, SwScoring::default(), 6, 0);
        // 12 matches (24) - one gap (4) = 20.
        assert_eq!(r.score, 20);
    }

    #[test]
    fn band_too_narrow_misses_offset_alignment() {
        let q = seq("AAAACGTACGTACGT");
        let t = seq("CGTACGTACGT");
        // The true alignment sits on diagonal -4; with shift 0 and band 1
        // it is unreachable, with shift -4 it is found.
        let narrow = banded_sw(&q, &t, SwScoring::default(), 1, 0);
        let shifted = banded_sw(&q, &t, SwScoring::default(), 1, -4);
        assert!(shifted.score > narrow.score);
        assert_eq!(shifted.score, 22);
    }

    #[test]
    fn empty_inputs_zero() {
        let e = DnaSeq::new();
        let s = seq("ACGT");
        assert_eq!(banded_sw(&e, &s, SwScoring::default(), 4, 0).score, 0);
        assert_eq!(banded_sw(&s, &e, SwScoring::default(), 4, 0).score, 0);
    }

    proptest! {
        #[test]
        fn score_nonnegative_and_bounded(
            q in proptest::collection::vec(0u8..4, 0..60),
            t in proptest::collection::vec(0u8..4, 0..60),
        ) {
            let q = DnaSeq::from_codes(q);
            let t = DnaSeq::from_codes(t);
            let r = banded_sw(&q, &t, SwScoring::default(), 16, 0);
            prop_assert!(r.score >= 0);
            prop_assert!(r.score <= 2 * q.len().min(t.len()) as i32);
            prop_assert!(r.query_end <= q.len());
            prop_assert!(r.target_end <= t.len());
        }

        #[test]
        fn self_alignment_is_max(q in proptest::collection::vec(0u8..4, 1..60)) {
            let q = DnaSeq::from_codes(q);
            let r = banded_sw(&q, &q, SwScoring::default(), 8, 0);
            prop_assert_eq!(r.score, 2 * q.len() as i32);
        }

        #[test]
        fn wider_band_never_worse(
            q in proptest::collection::vec(0u8..4, 1..40),
            t in proptest::collection::vec(0u8..4, 1..40),
        ) {
            let q = DnaSeq::from_codes(q);
            let t = DnaSeq::from_codes(t);
            let narrow = banded_sw(&q, &t, SwScoring::default(), 2, 0);
            let wide = banded_sw(&q, &t, SwScoring::default(), 40, 0);
            prop_assert!(wide.score >= narrow.score);
        }
    }
}
