//! Workspace maintenance tasks, invoked as `cargo run -p xtask -- <task>`.
//!
//! The only task so far is `lint-kernels`: a static pass over the
//! warp-centric kernel sources enforcing the memory-access discipline the
//! `gpucheck` sanitizer assumes. Kernel code must go through the
//! `WarpCtx` operations and `Buf::at`/`Buf::slice` addressing — raw
//! `GlobalMem` access, `.addr` arithmetic, `unwrap`/`expect` in data
//! paths, and `unsafe` all bypass the instrumentation (and on real
//! hardware, the equivalent of `compute-sanitizer`'s patching), so they
//! are build errors in CI rather than review comments.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Kernel sources held to the lint (workspace-relative).
const KERNEL_SOURCES: &[&str] = &[
    "crates/locassm/src/gpu/kernel.rs",
    "crates/locassm/src/gpu/kernel_v1.rs",
    "crates/gpusim/src/collectives.rs",
];

/// Substrings banned from kernel code, with the reason shown on failure.
const NEEDLES: &[(&str, &str)] = &[
    ("GlobalMem", "raw GlobalMem access bypasses WarpCtx accounting and the sanitizer"),
    (".addr", "Buf address arithmetic bypasses at()/slice() bounds checking"),
    (".unwrap()", "kernel data paths must degrade, not panic"),
    (".expect(", "kernel data paths must degrade, not panic"),
    ("unsafe", "kernel code must stay in safe Rust"),
];

/// One lint violation: file, 1-based line, offending needle, and the line.
#[derive(Debug, PartialEq, Eq)]
struct Finding {
    file: String,
    line: usize,
    needle: &'static str,
    text: String,
}

/// Scan one kernel source. Only code above the first `#[cfg(test)]` is
/// held to the discipline (tests seed defects on purpose); `//` comment
/// lines and lines carrying a `kernel-lint: allow(...)` marker are
/// exempt.
fn scan(file: &str, src: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (i, line) in src.lines().enumerate() {
        if line.contains("#[cfg(test)]") {
            break;
        }
        if line.trim_start().starts_with("//") || line.contains("kernel-lint: allow(") {
            continue;
        }
        for &(needle, _) in NEEDLES {
            if line.contains(needle) {
                findings.push(Finding {
                    file: file.to_string(),
                    line: i + 1,
                    needle,
                    text: line.trim().to_string(),
                });
            }
        }
    }
    findings
}

/// The workspace root: xtask runs from its own crate dir under `cargo run`,
/// so walk up until a directory containing the kernel sources appears.
fn workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join(KERNEL_SOURCES[0]).exists() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn lint_kernels(root: &Path) -> ExitCode {
    let mut findings = Vec::new();
    for file in KERNEL_SOURCES {
        let path = root.join(file);
        let src = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        findings.extend(scan(file, &src));
    }
    if findings.is_empty() {
        println!("kernel-lint: {} file(s) clean", KERNEL_SOURCES.len());
        return ExitCode::SUCCESS;
    }
    for f in &findings {
        let why = NEEDLES.iter().find(|(n, _)| *n == f.needle).map_or("", |(_, w)| w);
        eprintln!("{}:{}: banned `{}` — {}\n    {}", f.file, f.line, f.needle, why, f.text);
    }
    eprintln!("kernel-lint: {} finding(s)", findings.len());
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint-kernels") => {
            let Some(root) = workspace_root() else {
                eprintln!("error: cannot locate the workspace root");
                return ExitCode::FAILURE;
            };
            lint_kernels(&root)
        }
        other => {
            eprintln!(
                "usage: cargo run -p xtask -- <task>\n\ntasks:\n  lint-kernels    \
                 enforce the WarpCtx/Buf discipline in kernel sources"
            );
            if let Some(t) = other {
                eprintln!("\nunknown task: {t}");
            }
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_source_passes() {
        let src = "fn k(ctx: &mut WarpCtx) {\n    let a = buf.at(3);\n    ctx.ld_global(&a);\n}\n";
        assert!(scan("k.rs", src).is_empty());
    }

    #[test]
    fn raw_addr_arithmetic_flagged() {
        let src = "let a = buf.addr + off;\n";
        let f = scan("k.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].needle, ".addr");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn unwrap_and_expect_flagged() {
        let src = "let x = v.unwrap();\nlet y = w.expect(\"msg\");\n";
        let f = scan("k.rs", src);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn comments_and_allow_markers_exempt() {
        let src = "// GlobalMem is discussed here, .addr too\n\
                   let a = buf.addr; // kernel-lint: allow(benchmark probe)\n";
        assert!(scan("k.rs", src).is_empty());
    }

    #[test]
    fn test_module_is_not_scanned() {
        let src = "fn k() {}\n#[cfg(test)]\nmod tests {\n    fn t() { v.unwrap(); }\n}\n";
        assert!(scan("k.rs", src).is_empty());
    }

    #[test]
    fn real_kernel_sources_are_clean() {
        // The lint's own regression: the checked-in kernels stay clean.
        let Some(root) = workspace_root() else {
            panic!("workspace root not found");
        };
        for file in KERNEL_SOURCES {
            let src = std::fs::read_to_string(root.join(file)).expect(file);
            let f = scan(file, &src);
            assert!(f.is_empty(), "{file} has findings: {f:?}");
        }
    }
}
