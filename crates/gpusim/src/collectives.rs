//! Warp-level collectives built on the shuffle primitive: butterfly
//! reductions, inclusive scans, and leader election — the standard CUDA
//! idioms (`__reduce_add_sync`, warp-aggregated atomics) that kernels use
//! to cut atomic traffic. Implemented *on top of* [`WarpCtx::shfl`]-style
//! accounting so every step is metered like the real log₂(32) ladder.

use crate::warp::{Lanes, WarpCtx, WARP};

/// Associative operations supported by the butterfly ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Wrapping integer sum.
    Add,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Bitwise OR.
    BitOr,
}

impl ReduceOp {
    #[inline]
    fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            ReduceOp::Add => a.wrapping_add(b),
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
            ReduceOp::BitOr => a | b,
        }
    }

    #[inline]
    fn identity(self) -> u64 {
        match self {
            ReduceOp::Add | ReduceOp::BitOr => 0,
            ReduceOp::Min => u64::MAX,
            ReduceOp::Max => 0,
        }
    }
}

/// Warp-wide reduction via the xor-butterfly shuffle ladder: 5 shuffle +
/// 5 ALU instructions, every active lane ends with the full reduction of
/// all active lanes' values (inactive lanes contribute the identity and
/// receive their input unchanged).
pub fn warp_reduce(ctx: &mut WarpCtx, vals: &Lanes<u64>, op: ReduceOp) -> Lanes<u64> {
    let mut cur = *vals;
    // Inactive lanes must not pollute the ladder.
    for l in 0..WARP {
        if !ctx.lane_active(l) {
            cur[l] = op.identity();
        }
    }
    let mut offset = WARP / 2;
    while offset >= 1 {
        // One shuffle instruction (lane l reads lane l ^ offset)...
        ctx.shfl_xor_accounting();
        // ...and one ALU combine.
        ctx.int_ops(1);
        let prev = cur;
        for l in 0..WARP {
            if ctx.lane_active(l) {
                cur[l] = op.apply(prev[l], prev[l ^ offset]);
            }
        }
        offset /= 2;
    }
    let mut out = *vals;
    ctx.for_each_active(|l| out[l] = cur[l]);
    out
}

/// Warp-wide inclusive scan (prefix) over active lanes in lane order,
/// using the Hillis–Steele ladder: 5 shuffles + 5 ALU ops.
pub fn warp_inclusive_scan(ctx: &mut WarpCtx, vals: &Lanes<u64>, op: ReduceOp) -> Lanes<u64> {
    let mut cur = *vals;
    for l in 0..WARP {
        if !ctx.lane_active(l) {
            cur[l] = op.identity();
        }
    }
    let mut offset = 1usize;
    while offset < WARP {
        ctx.shfl_xor_accounting();
        ctx.int_ops(1);
        let prev = cur;
        for l in 0..WARP {
            if ctx.lane_active(l) && l >= offset {
                cur[l] = op.apply(prev[l], prev[l - offset]);
            }
        }
        offset *= 2;
    }
    let mut out = *vals;
    ctx.for_each_active(|l| out[l] = cur[l]);
    out
}

/// Warp-aggregated atomic add: lanes targeting the same address elect a
/// leader (via `match_any` + ballot), the leader adds the group's sum with
/// one atomic, and every lane receives the value the plain per-lane
/// `atomic_add` would have returned. Cuts atomic transactions from
/// #lanes to #distinct-addresses.
pub fn warp_aggregated_add(ctx: &mut WarpCtx, ops: &Lanes<Option<(u64, u64)>>) -> Lanes<u64> {
    // Group lanes by target address.
    let addr_keys = ctx.lanes_from(|l| ops[l].map_or(u64::MAX, |(a, _)| a));
    let groups = ctx.match_any(&addr_keys);
    ctx.int_ops(2); // leader election bit tricks

    // Leaders perform one atomic each with the group sum.
    let mut leader_ops: Lanes<Option<(u64, u64)>> = [None; WARP];
    for l in 0..WARP {
        let Some((addr, _)) = ops[l] else { continue };
        if !ctx.lane_active(l) {
            continue;
        }
        let mask = groups[l];
        let leader = mask.trailing_zeros() as usize;
        if leader == l {
            let sum: u64 = (0..WARP)
                .filter(|&m| mask & (1 << m) != 0)
                .filter_map(|m| ops[m].map(|(_, v)| v))
                .fold(0u64, u64::wrapping_add);
            leader_ops[l] = Some((addr, sum));
        }
    }
    let leader_old = ctx.atomic_add(&leader_ops);

    // Reconstruct per-lane "old" values: leader's old plus the prefix of
    // earlier lanes in the group (one broadcast shuffle round).
    ctx.shfl_xor_accounting();
    ctx.int_ops(1);
    let mut out: Lanes<u64> = [0; WARP];
    for l in 0..WARP {
        if !ctx.lane_active(l) || ops[l].is_none() {
            continue;
        }
        let mask = groups[l];
        let leader = mask.trailing_zeros() as usize;
        let prefix: u64 = (0..l)
            .filter(|&m| mask & (1 << m) != 0)
            .filter_map(|m| ops[m].map(|(_, v)| v))
            .fold(0u64, u64::wrapping_add);
        out[l] = leader_old[leader].wrapping_add(prefix);
    }
    out
}

impl WarpCtx<'_> {
    /// Accounting hook for one butterfly-shuffle instruction (the
    /// collectives above move values host-side; the metering is what
    /// matters).
    pub(crate) fn shfl_xor_accounting(&mut self) {
        let vals = [0u64; WARP];
        // Source from an active lane: a fixed lane 0 would be a synccheck
        // violation whenever the caller's mask excludes it.
        let src = self.first_active_lane().unwrap_or(0);
        let _ = self.shfl(&vals, src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;
    use crate::device::Device;

    fn with_ctx(f: impl FnOnce(&mut WarpCtx)) -> crate::counters::Counters {
        let mut dev = Device::new(DeviceConfig::tiny());
        dev.alloc(1024).unwrap();
        let mut f = Some(f);
        let stats = dev
            .launch(1, 0, |ctx| {
                (f.take().expect("single warp"))(ctx);
            })
            .expect("healthy device");
        stats.counters
    }

    #[test]
    fn reduce_add_all_lanes() {
        with_ctx(|ctx| {
            let vals = ctx.lanes_from(|l| l as u64);
            let out = warp_reduce(ctx, &vals, ReduceOp::Add);
            for l in 0..WARP {
                assert_eq!(out[l], 496, "lane {l}"); // 0+1+..+31
            }
        });
    }

    #[test]
    fn reduce_min_max() {
        with_ctx(|ctx| {
            let vals = ctx.lanes_from(|l| (l as u64 * 7 + 3) % 29);
            let out_min = warp_reduce(ctx, &vals, ReduceOp::Min);
            let out_max = warp_reduce(ctx, &vals, ReduceOp::Max);
            let expect_min = *vals.iter().min().unwrap();
            let expect_max = *vals.iter().max().unwrap();
            assert!(out_min.iter().all(|&v| v == expect_min));
            assert!(out_max.iter().all(|&v| v == expect_max));
        });
    }

    #[test]
    fn reduce_respects_mask() {
        with_ctx(|ctx| {
            let vals = ctx.lanes_from(|l| l as u64);
            ctx.push_mask(0xF); // lanes 0..4
            let out = warp_reduce(ctx, &vals, ReduceOp::Add);
            for l in 0..4 {
                assert_eq!(out[l], 6); // 0+1+2+3
            }
            ctx.pop_mask();
            // Inactive lanes keep their inputs.
            assert_eq!(out[10], 10);
        });
    }

    #[test]
    fn reduce_counts_log2_shuffles() {
        let c = with_ctx(|ctx| {
            let vals = [1u64; WARP];
            warp_reduce(ctx, &vals, ReduceOp::Add);
        });
        assert_eq!(c.shuffle_inst, 5);
        assert_eq!(c.int_inst, 5);
    }

    #[test]
    fn inclusive_scan_matches_serial() {
        with_ctx(|ctx| {
            let vals = ctx.lanes_from(|l| (l as u64 * 3 + 1) % 7);
            let out = warp_inclusive_scan(ctx, &vals, ReduceOp::Add);
            let mut acc = 0u64;
            for l in 0..WARP {
                acc += vals[l];
                assert_eq!(out[l], acc, "lane {l}");
            }
        });
    }

    #[test]
    fn scan_with_partial_mask() {
        with_ctx(|ctx| {
            let vals = [2u64; WARP];
            ctx.push_mask(0xFF);
            let out = warp_inclusive_scan(ctx, &vals, ReduceOp::Add);
            ctx.pop_mask();
            for l in 0..8 {
                assert_eq!(out[l], 2 * (l as u64 + 1));
            }
        });
    }

    #[test]
    fn aggregated_add_matches_plain() {
        // Same target distribution through both paths → same memory state
        // and same returned "old" values.
        let mut dev1 = Device::new(DeviceConfig::tiny());
        let b1 = dev1.alloc(8).unwrap();
        let mut plain_out = [0u64; WARP];
        dev1.launch(1, 0, |ctx| {
            let ops = ctx.lanes_from(|l| Some((b1.addr + (l % 3) as u64, l as u64 + 1)));
            plain_out = ctx.atomic_add(&ops);
        })
        .expect("healthy device");
        let mut dev2 = Device::new(DeviceConfig::tiny());
        let b2 = dev2.alloc(8).unwrap();
        let mut agg_out = [0u64; WARP];
        let s2 = dev2
            .launch(1, 0, |ctx| {
                let ops = ctx.lanes_from(|l| Some((b2.addr + (l % 3) as u64, l as u64 + 1)));
                agg_out = warp_aggregated_add(ctx, &ops);
            })
            .expect("healthy device");
        assert_eq!(plain_out, agg_out);
        assert_eq!(dev1.d2h(b1, 0, 3), dev2.d2h(b2, 0, 3));
        // And the aggregated version generated at most 3 atomic sectors.
        assert!(s2.counters.atomic_transactions <= 3);
    }

    #[test]
    fn aggregated_add_skips_none_lanes() {
        let mut dev = Device::new(DeviceConfig::tiny());
        let b = dev.alloc(4).unwrap();
        dev.launch(1, 0, |ctx| {
            let ops = ctx.lanes_from(|l| (l % 2 == 0).then_some((b.addr, 1u64)));
            warp_aggregated_add(ctx, &ops);
        })
        .expect("healthy device");
        assert_eq!(dev.d2h_word(b, 0), 16);
    }
}
