//! Analytic kernel-time model.
//!
//! The estimate is the max of three bound-and-bottleneck terms, plus a fixed
//! launch overhead:
//!
//! * **issue-bound**: total warp instructions divided by the device's issue
//!   throughput (`SMs × schedulers`), using only as many issue slots as
//!   there are warps;
//! * **bandwidth-bound**: total DRAM bytes (32 B × global transactions)
//!   divided by DRAM bandwidth;
//! * **latency-bound**: the average per-warp chain of dependent memory
//!   instructions charged at full DRAM latency, divided by how much of it
//!   the resident warps can hide. With abundant warps this term vanishes
//!   under the throughput terms; with few warps (the strong-scaling regime
//!   of the paper's Figures 13/14) it dominates — which is precisely the
//!   "GPU overheads grow as work per GPU shrinks" effect the paper reports.

use crate::config::DeviceConfig;
use crate::counters::Counters;
use serde::{Deserialize, Serialize};

/// Decomposed timing estimate for one kernel launch.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TimingEstimate {
    /// Cycles if limited purely by instruction issue.
    pub issue_cycles: f64,
    /// Cycles if limited purely by DRAM bandwidth.
    pub bandwidth_cycles: f64,
    /// Cycles if limited purely by unhidden memory latency.
    pub latency_cycles: f64,
    /// Cycles charged to L1 throughput (local + global transactions).
    pub l1_cycles: f64,
    /// The governing (maximum) term, in cycles.
    pub kernel_cycles: f64,
    /// Kernel time in seconds (cycles / clock).
    pub kernel_seconds: f64,
    /// Fixed launch overhead in seconds.
    pub overhead_seconds: f64,
}

impl TimingEstimate {
    /// Kernel plus launch-overhead time.
    pub fn total_seconds(&self) -> f64 {
        self.kernel_seconds + self.overhead_seconds
    }

    /// Which bound governs this launch.
    pub fn bound(&self) -> Bound {
        let m = self.kernel_cycles;
        if m == self.bandwidth_cycles {
            Bound::Bandwidth
        } else if m == self.latency_cycles {
            Bound::Latency
        } else if m == self.l1_cycles {
            Bound::L1
        } else {
            Bound::Issue
        }
    }
}

/// The governing bottleneck of a launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bound {
    /// Instruction-issue throughput limits the launch.
    Issue,
    /// DRAM bandwidth (global transactions) limits the launch.
    Bandwidth,
    /// Memory latency limits the launch (too few warps in flight).
    Latency,
    /// L1/shared-memory throughput limits the launch.
    L1,
}

/// Estimate execution time for a launch with the given aggregate counters.
pub fn estimate(cfg: &DeviceConfig, c: &Counters, warps: usize) -> TimingEstimate {
    let warps_f = warps.max(1) as f64;
    let insts = c.warp_insts() as f64;

    // Issue: each of min(warps, SMs × schedulers) issue slots retires one
    // warp instruction per cycle.
    let issue_slots = f64::from(cfg.sms * cfg.schedulers_per_sm).min(warps_f).max(1.0);
    let issue_cycles = insts / issue_slots;

    // Bandwidth: sector-sized transactions against DRAM bandwidth.
    let dram_bytes = c.global_transactions() as f64 * f64::from(cfg.sector_bytes);
    let bandwidth_cycles = dram_bytes / cfg.dram_bytes_per_cycle();

    // L1 throughput: every transaction (global or local) passes L1.
    let l1_tx = c.l1_transactions() as f64;
    let sms_used = f64::from(cfg.sms).min(warps_f).max(1.0);
    let l1_cycles = l1_tx / (cfg.l1_tx_per_cycle_per_sm * sms_used);

    // Latency: per-warp dependent chain of memory instructions. Resident
    // warps on an SM overlap their chains; waves beyond residency serialize.
    let mem_insts = (c.ldst_global_inst + c.atomic_inst) as f64;
    let chain_per_warp = mem_insts / warps_f;
    let warps_per_sm = (warps_f / f64::from(cfg.sms)).ceil().max(1.0);
    let waves = (warps_per_sm / f64::from(cfg.max_resident_warps_per_sm)).ceil();
    let latency_cycles = chain_per_warp * f64::from(cfg.dram_latency_cycles) * waves;

    let kernel_cycles = issue_cycles.max(bandwidth_cycles).max(latency_cycles).max(l1_cycles);
    let kernel_seconds = kernel_cycles / (cfg.clock_ghz * 1e9);

    TimingEstimate {
        issue_cycles,
        bandwidth_cycles,
        latency_cycles,
        l1_cycles,
        kernel_cycles,
        kernel_seconds,
        overhead_seconds: cfg.launch_overhead_us * 1e-6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::InstClass;

    fn counters_with(ld_insts: u64, tx: u64, ints: u64) -> Counters {
        let mut c = Counters::new();
        c.record(InstClass::LdStGlobal, ld_insts, 32);
        c.global_ld_transactions = tx;
        c.record(InstClass::Int, ints, 32);
        c
    }

    #[test]
    fn more_work_takes_longer() {
        let cfg = DeviceConfig::v100();
        let t1 = estimate(&cfg, &counters_with(100, 800, 1000), 1000);
        let t2 = estimate(&cfg, &counters_with(200, 1600, 2000), 1000);
        assert!(t2.kernel_seconds > t1.kernel_seconds);
    }

    #[test]
    fn few_warps_latency_bound() {
        let cfg = DeviceConfig::v100();
        // One warp with a long dependent chain: latency must govern.
        let t = estimate(&cfg, &counters_with(10_000, 10_000, 100), 1);
        assert_eq!(t.bound(), Bound::Latency);
    }

    #[test]
    fn many_warps_hide_latency() {
        let cfg = DeviceConfig::v100();
        // Same total work spread over many warps: latency term shrinks.
        let few = estimate(&cfg, &counters_with(100_000, 100_000, 1000), 10);
        let many = estimate(&cfg, &counters_with(100_000, 100_000, 1000), 10_000);
        assert!(many.latency_cycles < few.latency_cycles);
    }

    #[test]
    fn overhead_is_fixed() {
        let cfg = DeviceConfig::v100();
        let t = estimate(&cfg, &Counters::new(), 1);
        assert!((t.overhead_seconds - 10e-6).abs() < 1e-12);
        assert_eq!(t.kernel_cycles, 0.0);
    }

    #[test]
    fn compute_only_is_issue_bound() {
        let cfg = DeviceConfig::v100();
        let mut c = Counters::new();
        c.record(InstClass::Int, 1_000_000, 32);
        let t = estimate(&cfg, &c, 100_000);
        assert_eq!(t.bound(), Bound::Issue);
    }
}
