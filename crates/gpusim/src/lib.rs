//! A SIMT GPU execution simulator.
//!
//! This crate stands in for the CUDA runtime + V100 hardware of the SC'21
//! paper *Accelerating Large Scale de novo Metagenome Assembly Using GPUs*.
//! Kernels are ordinary Rust functions written **warp-centric**: they receive
//! a [`WarpCtx`] and express their work as 32-lane operations — global loads
//! and stores with per-lane addresses, atomics, warp shuffles, ballots,
//! `match_any`, and explicit active-mask manipulation for divergence.
//!
//! Execution is *functionally exact* (every lane's effect on device memory is
//! applied) and *metrically instrumented*:
//!
//! * every warp operation increments an instruction-class counter
//!   ([`Counters`]): integer, floating point, global load/store, local
//!   load/store, control, atomic, shuffle, sync;
//! * global memory accesses are coalesced per warp instruction into 32-byte
//!   sector **transactions**, exactly the quantity the Instruction Roofline
//!   model (Ding & Williams, PMBS'19) plots on its x-axis;
//! * per-instruction active/predicated lane slots are tracked, giving the
//!   *thread predication* gap the paper discusses for its DNA-walk phase.
//!
//! A configurable analytic timing model ([`timing`]) converts the counters
//! into estimated kernel time for a V100-like device (80 SMs × 4 schedulers
//! × 1.53 GHz ⇒ the paper's 489.6 warp-GIPS peak), from which
//! [`roofline::RooflineReport`] computes warp GIPS and instruction intensity.
//!
//! Device *failures* can be injected deterministically via [`fault::FaultPlan`]
//! (denied allocations, kernel hangs, detected memory corruption) to exercise
//! the recovery paths of the layers above.
//!
//! A `compute-sanitizer`-style checking layer — **`gpucheck`**
//! ([`sanitizer`], [`shadow`]) — can be enabled per device via
//! [`DeviceConfig::with_sanitizer`] (or forced process-wide with
//! `GPUSIM_SANITIZE=1`). It runs three analyses over the executing kernels:
//! *memcheck* (out-of-bounds, use-after-reset through stale [`Buf`]s,
//! uninitialized reads), *racecheck* (same-word lane and warp hazards where
//! at least one access is a plain store), and *synccheck* (mask-stack
//! balance, shuffles from inactive lanes, empty-mask collectives). Findings
//! surface as structured [`SanitizerReport`] records; when the sanitizer is
//! off (the default) kernels pay one `Option` branch per memory operation.
//!
//! What this deliberately does **not** model: instruction pipelining details,
//! L2 behaviour, ECC scrubbing, or clock boosting. The paper's conclusions are about
//! algorithmic structure (divergence, coalescing, atomics, predication), and
//! those are exactly the quantities this simulator measures from real
//! execution of the real data structures.

// Lane-indexed `for l in 0..WARP` loops mirror the CUDA lockstep model the
// simulator reproduces; iterator rewrites would obscure the lane index.
#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)]

pub mod collectives;
pub mod config;
pub mod counters;
pub mod device;
pub mod fault;
pub mod mem;
pub mod roofline;
pub mod sanitizer;
pub mod shadow;
pub mod timing;
pub mod warp;

pub use collectives::{warp_aggregated_add, warp_inclusive_scan, warp_reduce, ReduceOp};
pub use config::DeviceConfig;
pub use counters::{Counters, InstClass};
pub use device::{Device, LaunchStats, SANITIZE_ENV};
pub use fault::{Fault, FaultPlan, LaunchError};
pub use mem::{Buf, DeviceOom};
pub use roofline::RooflineReport;
pub use sanitizer::{SanitizerConfig, SanitizerKind, SanitizerReport, SanitizerSummary};
pub use warp::{Lanes, WarpCtx, WARP};
