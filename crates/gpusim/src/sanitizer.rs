//! `gpucheck` — a compute-sanitizer for the simulated device.
//!
//! Three analyses, mirroring CUDA's `compute-sanitizer` tools:
//!
//! * **memcheck** — shadow memory ([`crate::shadow`]) tracks per-word
//!   allocation provenance and init state; flags out-of-bounds accesses,
//!   use-after-`reset` through stale [`Buf`](crate::mem::Buf) handles, and
//!   uninitialized reads. Invalid accesses are reported *and dropped*
//!   (loads return 0, stores are discarded) so a run survives to collect
//!   every finding.
//! * **racecheck** — within a warp's unsynced region, two active lanes
//!   touching the same word where at least one is a non-atomic write is a
//!   hazard (CAS/atomics serialize in lane order and are exempt); the same
//!   rule applies across warps for the whole launch. `__syncwarp` clears
//!   the intra-warp region, exactly like the barrier-delimited regions of
//!   the real racecheck tool.
//! * **synccheck** — `push_mask`/`pop_mask` balance at kernel exit,
//!   shuffles whose source lane is excluded by the active mask, and
//!   warp collectives executed with no active lanes.
//!
//! The sanitizer is a pure observer of the instruction stream: counters,
//! coalescing, and timing are identical with it on or off for a clean
//! kernel, and a disabled sanitizer costs one `Option` branch per memory
//! operation.

use crate::shadow::{MemIssue, ShadowMemory};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Which analyses to run. Stored in
/// [`DeviceConfig::sanitizer`](crate::config::DeviceConfig); all-off by
/// default so release hot paths pay nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SanitizerConfig {
    /// Shadow-memory checking: OOB, use-after-reset, uninitialized reads.
    pub memcheck: bool,
    /// Same-word lane/warp hazard detection.
    pub racecheck: bool,
    /// Mask-discipline checking.
    pub synccheck: bool,
    /// Detailed reports kept per run; findings past the cap are still
    /// counted, just not materialized.
    pub max_reports: usize,
}

impl Default for SanitizerConfig {
    fn default() -> Self {
        SanitizerConfig::off()
    }
}

impl SanitizerConfig {
    /// Everything disabled (the default; zero overhead).
    pub fn off() -> SanitizerConfig {
        SanitizerConfig { memcheck: false, racecheck: false, synccheck: false, max_reports: 64 }
    }

    /// All three analyses on.
    pub fn full() -> SanitizerConfig {
        SanitizerConfig { memcheck: true, racecheck: true, synccheck: true, max_reports: 64 }
    }

    /// Is any analysis enabled?
    pub fn enabled(&self) -> bool {
        self.memcheck || self.racecheck || self.synccheck
    }
}

/// The defect classes the sanitizer reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SanitizerKind {
    /// Access at or beyond the allocator's high-water mark.
    OutOfBounds,
    /// Access through a `Buf` invalidated by an arena/device reset.
    UseAfterReset,
    /// Load from an uninitialized (`alloc_uninit`) word.
    UninitRead,
    /// Two lanes of one warp touched the same word in an unsynced region,
    /// at least one with a plain (non-atomic) store.
    LaneRace,
    /// Same hazard between two warps of one launch.
    WarpRace,
    /// Shuffle source lane excluded by the active mask.
    ShuffleInactiveSrc,
    /// Warp sync/collective executed with no active lanes.
    SyncNoActiveLanes,
    /// Kernel returned with a non-empty `push_mask` stack.
    MaskStackImbalance,
}

impl SanitizerKind {
    /// Every kind, in report order.
    pub const ALL: [SanitizerKind; 8] = [
        SanitizerKind::OutOfBounds,
        SanitizerKind::UseAfterReset,
        SanitizerKind::UninitRead,
        SanitizerKind::LaneRace,
        SanitizerKind::WarpRace,
        SanitizerKind::ShuffleInactiveSrc,
        SanitizerKind::SyncNoActiveLanes,
        SanitizerKind::MaskStackImbalance,
    ];

    /// Stable human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            SanitizerKind::OutOfBounds => "out-of-bounds access",
            SanitizerKind::UseAfterReset => "use after reset",
            SanitizerKind::UninitRead => "uninitialized read",
            SanitizerKind::LaneRace => "lane race",
            SanitizerKind::WarpRace => "warp race",
            SanitizerKind::ShuffleInactiveSrc => "shuffle from inactive lane",
            SanitizerKind::SyncNoActiveLanes => "sync with no active lanes",
            SanitizerKind::MaskStackImbalance => "mask stack imbalance",
        }
    }

    fn index(self) -> usize {
        SanitizerKind::ALL.iter().position(|&k| k == self).expect("kind is in ALL")
    }
}

/// One finding: what, where (launch/warp/lanes/address), and at which
/// kernel site ([`WarpCtx::set_site`](crate::warp::WarpCtx::set_site)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SanitizerReport {
    /// Which class of hazard was detected.
    pub kind: SanitizerKind,
    /// Launch index on the device the finding occurred in.
    pub launch: u64,
    /// Warp id within the launch.
    pub warp: usize,
    /// Offending lanes (one for memcheck/synccheck, two for a lane race).
    pub lanes: Vec<usize>,
    /// Device word address, when the finding concerns one.
    pub addr: Option<u64>,
    /// 1-based allocation id from the shadow allocation table.
    pub alloc: Option<u32>,
    /// Kernel site annotation in force when the finding fired.
    pub site: &'static str,
    /// Free-form specifics.
    pub detail: String,
}

impl std::fmt::Display for SanitizerReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} at {} (launch {}, warp {}, lanes {:?}",
            self.kind.name(),
            self.site,
            self.launch,
            self.warp,
            self.lanes
        )?;
        if let Some(a) = self.addr {
            write!(f, ", addr {a}")?;
        }
        if let Some(id) = self.alloc {
            write!(f, ", alloc #{id}")?;
        }
        write!(f, "): {}", self.detail)
    }
}

/// Aggregated findings of one or more runs: per-kind counts plus a capped
/// sample of detailed reports. Folds across launches, engines, and devices
/// with [`SanitizerSummary::absorb`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SanitizerSummary {
    /// True once any sanitizer-enabled device contributed (distinguishes
    /// "clean under the sanitizer" from "never checked").
    pub enabled: bool,
    counts: [u64; SanitizerKind::ALL.len()],
    /// Detailed sample, capped at the config's `max_reports`.
    pub reports: Vec<SanitizerReport>,
    /// Findings counted but not materialized (past the cap).
    pub dropped: u64,
}

impl SanitizerSummary {
    /// Findings of one kind.
    pub fn count(&self, kind: SanitizerKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Total findings across all kinds.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// True when the sanitizer ran and found nothing.
    pub fn is_clean(&self) -> bool {
        self.enabled && self.total() == 0
    }

    /// Fold another summary into this one.
    pub fn absorb(&mut self, other: &SanitizerSummary) {
        self.enabled |= other.enabled;
        for (c, o) in self.counts.iter_mut().zip(other.counts.iter()) {
            *c += o;
        }
        self.dropped += other.dropped;
        for r in &other.reports {
            if self.reports.len() < 64 {
                self.reports.push(r.clone());
            } else {
                self.dropped += 1;
            }
        }
    }

    /// Multi-line human-readable rendering (empty string when disabled).
    pub fn render(&self) -> String {
        if !self.enabled {
            return String::new();
        }
        let mut out = String::new();
        if self.total() == 0 {
            out.push_str("gpucheck: clean (0 findings)\n");
            return out;
        }
        out.push_str(&format!("gpucheck: {} finding(s)\n", self.total()));
        for kind in SanitizerKind::ALL {
            let n = self.count(kind);
            if n > 0 {
                out.push_str(&format!("  {:<28} {n}\n", kind.name()));
            }
        }
        for r in &self.reports {
            out.push_str(&format!("  - {r}\n"));
        }
        if self.dropped > 0 {
            out.push_str(&format!("  ({} further report(s) not materialized)\n", self.dropped));
        }
        out
    }

    fn record(&mut self, report: SanitizerReport, cap: usize) {
        self.counts[report.kind.index()] += 1;
        if self.reports.len() < cap {
            self.reports.push(report);
        } else {
            self.dropped += 1;
        }
    }
}

/// How a lane touched a word (the racecheck taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AccessKind {
    Read,
    Write,
    Atomic,
}

/// Intra-warp per-word access masks for the current unsynced region.
#[derive(Debug, Clone, Copy, Default)]
struct RegionAccess {
    readers: u32,
    writers: u32,
    atomics: u32,
}

/// Launch-scope per-word access record for inter-warp hazards. One reader
/// warp plus a "several warps read" flag is enough to decide every rule.
#[derive(Debug, Clone, Copy, Default)]
struct LaunchAccess {
    reader: Option<usize>,
    multi_reader: bool,
    writer: Option<usize>,
    atomic: Option<usize>,
    reported: bool,
}

/// The dynamic checker. Owned by [`Device`](crate::device::Device) when the
/// config enables any analysis; threaded into every
/// [`WarpCtx`](crate::warp::WarpCtx) the device launches.
#[derive(Debug)]
pub struct Sanitizer {
    config: SanitizerConfig,
    shadow: ShadowMemory,
    summary: SanitizerSummary,
    launch: u64,
    site: &'static str,
    /// Intra-warp unsynced region, cleared at warp start and `syncwarp`.
    region: HashMap<u64, RegionAccess>,
    /// Whole-launch access map for inter-warp hazards.
    launch_map: HashMap<u64, LaunchAccess>,
}

impl Sanitizer {
    /// A fresh sanitizer with empty shadow state for the given tool set.
    pub fn new(config: SanitizerConfig) -> Sanitizer {
        Sanitizer {
            config,
            shadow: ShadowMemory::new(),
            summary: SanitizerSummary { enabled: true, ..Default::default() },
            launch: 0,
            site: "<kernel>",
            region: HashMap::new(),
            launch_map: HashMap::new(),
        }
    }

    /// The config in force.
    pub fn config(&self) -> &SanitizerConfig {
        &self.config
    }

    /// Findings so far (accumulates until [`Sanitizer::take_summary`]).
    pub fn summary(&self) -> &SanitizerSummary {
        &self.summary
    }

    /// Drain the accumulated findings, leaving an empty (still enabled)
    /// summary behind.
    pub fn take_summary(&mut self) -> SanitizerSummary {
        std::mem::replace(
            &mut self.summary,
            SanitizerSummary { enabled: true, ..Default::default() },
        )
    }

    fn report(
        &mut self,
        kind: SanitizerKind,
        warp: usize,
        lanes: Vec<usize>,
        addr: Option<u64>,
        alloc: Option<u32>,
        detail: String,
    ) {
        let report = SanitizerReport {
            kind,
            launch: self.launch,
            warp,
            lanes,
            addr,
            alloc,
            site: self.site,
            detail,
        };
        self.summary.record(report, self.config.max_reports);
    }

    // ---- host-side hooks ---------------------------------------------------

    pub(crate) fn on_alloc(&mut self, addr: u64, len: u64, initialized: bool) {
        self.shadow.on_alloc(addr, len, initialized);
    }

    pub(crate) fn on_reset(&mut self) {
        self.shadow.on_reset();
        self.region.clear();
        self.launch_map.clear();
    }

    pub(crate) fn on_host_write(&mut self, addr: u64, len: u64) {
        self.shadow.on_host_write(addr, len);
    }

    /// The allocation record behind an id in a report.
    pub fn alloc_record(&self, id: u32) -> Option<&crate::shadow::AllocRecord> {
        self.shadow.alloc_record(id)
    }

    // ---- launch / warp lifecycle -------------------------------------------

    pub(crate) fn begin_launch(&mut self, launch_idx: u64) {
        self.launch = launch_idx;
        self.launch_map.clear();
    }

    pub(crate) fn begin_warp(&mut self) {
        self.region.clear();
        self.site = "<kernel>";
    }

    /// Kernel body returned for this warp; `mask_depth` is the residual
    /// `push_mask` stack depth (synccheck: must be zero).
    pub(crate) fn end_warp(&mut self, warp: usize, mask_depth: usize) {
        if self.config.synccheck && mask_depth != 0 {
            self.report(
                SanitizerKind::MaskStackImbalance,
                warp,
                vec![],
                None,
                None,
                format!("kernel exited with {mask_depth} unmatched push_mask frame(s)"),
            );
        }
        self.region.clear();
    }

    pub(crate) fn set_site(&mut self, site: &'static str) {
        self.site = site;
    }

    // ---- memcheck + racecheck ----------------------------------------------

    /// Check one lane's global access. Returns `false` when memcheck found
    /// the access invalid — the caller must drop the physical access (the
    /// load yields 0).
    pub(crate) fn global_access(
        &mut self,
        warp: usize,
        lane: usize,
        addr: u64,
        kind: AccessKind,
    ) -> bool {
        if self.config.memcheck {
            let is_load = kind == AccessKind::Read;
            match self.shadow.classify(addr, is_load) {
                Some(MemIssue::OutOfBounds) => {
                    self.report(
                        SanitizerKind::OutOfBounds,
                        warp,
                        vec![lane],
                        Some(addr),
                        None,
                        format!("{} past the allocated arena", access_verb(kind)),
                    );
                    return false;
                }
                Some(MemIssue::UseAfterReset { alloc }) => {
                    self.report(
                        SanitizerKind::UseAfterReset,
                        warp,
                        vec![lane],
                        Some(addr),
                        Some(alloc),
                        format!("{} through a Buf invalidated by reset", access_verb(kind)),
                    );
                    return false;
                }
                Some(MemIssue::UninitRead { alloc }) => {
                    self.report(
                        SanitizerKind::UninitRead,
                        warp,
                        vec![lane],
                        Some(addr),
                        Some(alloc),
                        "load from a word never written since alloc_uninit".to_string(),
                    );
                    // The read itself is well-defined in the simulator
                    // (words are physically zeroed): report, don't drop.
                }
                None => {}
            }
            if kind != AccessKind::Read {
                self.shadow.mark_written(addr);
            }
        }
        if self.config.racecheck {
            self.check_lane_race(warp, lane, addr, kind);
            self.check_warp_race(warp, lane, addr, kind);
        }
        true
    }

    /// Intra-warp hazard: same word, two different lanes, at least one
    /// plain write, no intervening `syncwarp`.
    fn check_lane_race(&mut self, warp: usize, lane: usize, addr: u64, kind: AccessKind) {
        let acc = self.region.entry(addr).or_default();
        let me = 1u32 << lane;
        let others = |mask: u32| mask & !me;
        let conflict = match kind {
            // A plain write conflicts with any prior access by another lane.
            AccessKind::Write => others(acc.readers | acc.writers | acc.atomics),
            // Reads and atomics conflict only with prior plain writes.
            AccessKind::Read | AccessKind::Atomic => others(acc.writers),
        };
        match kind {
            AccessKind::Read => acc.readers |= me,
            AccessKind::Write => acc.writers |= me,
            AccessKind::Atomic => acc.atomics |= me,
        }
        if conflict != 0 {
            let other = conflict.trailing_zeros() as usize;
            self.report(
                SanitizerKind::LaneRace,
                warp,
                vec![other, lane],
                Some(addr),
                None,
                format!(
                    "lane {lane} {} a word lane {other} touched in the same unsynced region",
                    access_verb(kind)
                ),
            );
        }
    }

    /// Inter-warp hazard over the whole launch: a plain writer warp plus
    /// any access from a different warp.
    fn check_warp_race(&mut self, warp: usize, lane: usize, addr: u64, kind: AccessKind) {
        let acc = self.launch_map.entry(addr).or_default();
        let conflict = match kind {
            AccessKind::Write => {
                acc.writer.is_some_and(|w| w != warp)
                    || acc.atomic.is_some_and(|w| w != warp)
                    || acc.reader.is_some_and(|w| w != warp)
                    || acc.multi_reader
            }
            AccessKind::Read | AccessKind::Atomic => acc.writer.is_some_and(|w| w != warp),
        };
        match kind {
            AccessKind::Read => match acc.reader {
                Some(r) if r != warp => acc.multi_reader = true,
                _ => acc.reader = Some(warp),
            },
            AccessKind::Write => acc.writer = Some(warp),
            AccessKind::Atomic => acc.atomic = Some(warp),
        }
        if conflict && !acc.reported {
            acc.reported = true;
            self.report(
                SanitizerKind::WarpRace,
                warp,
                vec![lane],
                Some(addr),
                None,
                format!(
                    "warp {warp} {} a word another warp accessed in this launch",
                    access_verb(kind)
                ),
            );
        }
    }

    // ---- synccheck ---------------------------------------------------------

    /// `syncwarp`: clears the intra-warp race region; flags a sync with no
    /// active lanes.
    pub(crate) fn sync_point(&mut self, warp: usize, active_mask: u32) {
        if self.config.synccheck && active_mask == 0 {
            self.report(
                SanitizerKind::SyncNoActiveLanes,
                warp,
                vec![],
                None,
                None,
                "syncwarp with an empty active mask".to_string(),
            );
        }
        if self.config.racecheck {
            self.region.clear();
        }
    }

    /// A shuffle reading `vals[src_lane]`: the source lane must be active.
    pub(crate) fn shuffle(&mut self, warp: usize, src_lane: usize, active_mask: u32) {
        if !self.config.synccheck {
            return;
        }
        if active_mask == 0 {
            self.report(
                SanitizerKind::SyncNoActiveLanes,
                warp,
                vec![],
                None,
                None,
                "shuffle with an empty active mask".to_string(),
            );
        } else if active_mask & (1 << src_lane) == 0 {
            self.report(
                SanitizerKind::ShuffleInactiveSrc,
                warp,
                vec![src_lane],
                None,
                None,
                format!("shuffle reads lane {src_lane}, which the active mask excludes"),
            );
        }
    }

    /// A ballot/match collective: needs at least one active lane.
    pub(crate) fn collective(&mut self, warp: usize, active_mask: u32) {
        if self.config.synccheck && active_mask == 0 {
            self.report(
                SanitizerKind::SyncNoActiveLanes,
                warp,
                vec![],
                None,
                None,
                "warp collective with an empty active mask".to_string(),
            );
        }
    }
}

fn access_verb(kind: AccessKind) -> &'static str {
    match kind {
        AccessKind::Read => "load",
        AccessKind::Write => "plain store",
        AccessKind::Atomic => "atomic",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sane() -> Sanitizer {
        Sanitizer::new(SanitizerConfig::full())
    }

    #[test]
    fn off_config_is_disabled() {
        assert!(!SanitizerConfig::off().enabled());
        assert!(SanitizerConfig::full().enabled());
    }

    #[test]
    fn oob_is_reported_and_dropped() {
        let mut s = sane();
        s.on_alloc(0, 8, true);
        assert!(!s.global_access(0, 3, 8, AccessKind::Write));
        assert_eq!(s.summary().count(SanitizerKind::OutOfBounds), 1);
        let r = &s.summary().reports[0];
        assert_eq!(r.lanes, vec![3]);
        assert_eq!(r.addr, Some(8));
    }

    #[test]
    fn same_lane_reuse_is_not_a_race() {
        let mut s = sane();
        s.on_alloc(0, 8, true);
        assert!(s.global_access(0, 0, 3, AccessKind::Write));
        assert!(s.global_access(0, 0, 3, AccessKind::Read));
        assert!(s.global_access(0, 0, 3, AccessKind::Write));
        assert_eq!(s.summary().total(), 0);
    }

    #[test]
    fn cross_lane_write_write_is_a_race() {
        let mut s = sane();
        s.on_alloc(0, 8, true);
        s.global_access(0, 1, 3, AccessKind::Write);
        s.global_access(0, 5, 3, AccessKind::Write);
        assert_eq!(s.summary().count(SanitizerKind::LaneRace), 1);
        assert_eq!(s.summary().reports[0].lanes, vec![1, 5]);
    }

    #[test]
    fn atomics_do_not_race_each_other() {
        let mut s = sane();
        s.on_alloc(0, 8, true);
        for lane in 0..8 {
            s.global_access(0, lane, 3, AccessKind::Atomic);
            s.global_access(0, lane, 3, AccessKind::Read);
        }
        assert_eq!(s.summary().total(), 0);
    }

    #[test]
    fn syncwarp_clears_the_region() {
        let mut s = sane();
        s.on_alloc(0, 8, true);
        s.global_access(0, 1, 3, AccessKind::Write);
        s.sync_point(0, u32::MAX);
        s.global_access(0, 5, 3, AccessKind::Read);
        assert_eq!(s.summary().total(), 0);
    }

    #[test]
    fn cross_warp_write_then_read_is_a_warp_race() {
        let mut s = sane();
        s.on_alloc(0, 8, true);
        s.begin_warp();
        s.global_access(0, 0, 3, AccessKind::Write);
        s.begin_warp();
        s.global_access(1, 0, 3, AccessKind::Read);
        assert_eq!(s.summary().count(SanitizerKind::WarpRace), 1);
        // One report per word, not per access.
        s.global_access(1, 1, 3, AccessKind::Read);
        assert_eq!(s.summary().count(SanitizerKind::WarpRace), 1);
        assert_eq!(s.summary().reports.len(), 1);
    }

    #[test]
    fn report_cap_counts_but_drops() {
        let mut s = Sanitizer::new(SanitizerConfig { max_reports: 2, ..SanitizerConfig::full() });
        s.on_alloc(0, 1, true);
        for lane in 0..5 {
            s.global_access(0, lane, 0, AccessKind::Write);
        }
        // 4 races (each new lane vs a prior one), 2 materialized.
        assert_eq!(s.summary().count(SanitizerKind::LaneRace), 4);
        assert_eq!(s.summary().reports.len(), 2);
        assert_eq!(s.summary().dropped, 2);
    }

    #[test]
    fn summary_absorb_folds_counts() {
        let mut a = sane();
        a.on_alloc(0, 1, true);
        a.global_access(0, 0, 5, AccessKind::Read); // OOB
        let mut total = SanitizerSummary::default();
        total.absorb(&a.take_summary());
        total.absorb(&a.take_summary()); // drained: empty but enabled
        assert!(total.enabled);
        assert_eq!(total.count(SanitizerKind::OutOfBounds), 1);
        assert!(!total.is_clean());
        assert!(total.render().contains("out-of-bounds"));
    }

    #[test]
    fn render_when_clean() {
        let s = sane();
        assert!(s.summary().render().contains("clean"));
        assert!(SanitizerSummary::default().render().is_empty());
    }
}
