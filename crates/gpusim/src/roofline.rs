//! Instruction Roofline reporting (Ding & Williams, PMBS'19), as used in
//! Figures 8–10 of the paper.
//!
//! The model plots a kernel as a point: x = *instruction intensity* (warp
//! instructions per L1 transaction), y = achieved warp GIPS. Ceilings are
//! the flat theoretical issue peak and diagonal transaction-bandwidth lines;
//! vertical "memory walls" mark the intensity of ideal access patterns
//! (stride-1 / unit access), which random hash-table probing cannot reach.

use crate::config::DeviceConfig;
use crate::counters::Counters;
use serde::{Deserialize, Serialize};

/// Roofline characterization of one kernel (or launch series).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RooflineReport {
    /// Kernel name for display.
    pub name: String,
    /// Total warp instructions executed.
    pub warp_insts: u64,
    /// Total L1 transactions (global + local + atomic).
    pub l1_transactions: u64,
    /// Global-memory transactions only.
    pub global_transactions: u64,
    /// Kernel time in seconds (simulated).
    pub seconds: f64,
    /// Achieved billions of warp instructions per second.
    pub gips: f64,
    /// Non-predicated ("useful-lane-weighted") GIPS: what the kernel would
    /// achieve if predicated lane slots were eliminated. The gap between
    /// this and `gips` is the paper's thread-predication gap.
    pub gips_nonpredicated: f64,
    /// Instruction intensity vs L1 transactions (paper's x-axis).
    pub intensity_l1: f64,
    /// Instruction intensity vs global transactions only.
    pub intensity_global: f64,
    /// Average sectors per global memory instruction (32 = fully scattered,
    /// 8 = perfectly coalesced 64-bit accesses, <8 = same-address reuse).
    pub sectors_per_mem_inst: f64,
    /// Fraction of lane slots predicated off.
    pub predication_ratio: f64,
    /// Theoretical peak warp GIPS (flat ceiling).
    pub peak_gips: f64,
    /// Fraction of L1 transactions that came from local memory.
    pub local_tx_fraction: f64,
}

impl RooflineReport {
    /// Build a report from counters and a simulated kernel time.
    pub fn from_counters(
        name: impl Into<String>,
        cfg: &DeviceConfig,
        c: &Counters,
        seconds: f64,
    ) -> RooflineReport {
        let insts = c.warp_insts();
        let l1 = c.l1_transactions();
        let global = c.global_transactions();
        let gips = if seconds > 0.0 { insts as f64 / seconds / 1e9 } else { 0.0 };
        let active = c.active_lane_slots as f64;
        let total_slots = (c.active_lane_slots + c.predicated_lane_slots) as f64;
        // If every slot were useful the same lane-work would need fewer warp
        // instructions; scale GIPS by the utilization headroom.
        let gips_nonpredicated = if active > 0.0 { gips * total_slots / active } else { gips };
        let mem_insts = c.ldst_global_inst + c.atomic_inst;
        RooflineReport {
            name: name.into(),
            warp_insts: insts,
            l1_transactions: l1,
            global_transactions: global,
            seconds,
            gips,
            gips_nonpredicated,
            intensity_l1: ratio(insts, l1),
            intensity_global: ratio(insts, global),
            sectors_per_mem_inst: ratio(global, mem_insts),
            predication_ratio: c.predication_ratio(),
            peak_gips: cfg.peak_warp_gips(),
            local_tx_fraction: ratio(c.local_transactions, l1),
        }
    }

    /// GIPS ceiling at this report's intensity imposed by L1 transaction
    /// bandwidth (the diagonal roof): `intensity × peak GTXN/s`.
    pub fn l1_roof_gips(&self, cfg: &DeviceConfig) -> f64 {
        let peak_gtxn = f64::from(cfg.sms) * cfg.l1_tx_per_cycle_per_sm * cfg.clock_ghz; // GTXN/s
        self.intensity_l1 * peak_gtxn
    }

    /// Render the fixed-width text block the `fig08`/`fig09` harnesses print.
    pub fn render(&self, cfg: &DeviceConfig) -> String {
        format!(
            "kernel: {}\n\
             warp instructions:        {:>14}\n\
             L1 transactions:          {:>14}  (local fraction {:.2})\n\
             global transactions:      {:>14}\n\
             simulated time:           {:>14.6} s\n\
             achieved warp GIPS:       {:>14.3}\n\
             non-predicated GIPS:      {:>14.3}  (predication gap {:.1}%)\n\
             instruction intensity L1: {:>14.4} inst/txn\n\
             intensity (global only):  {:>14.4} inst/txn\n\
             sectors per mem inst:     {:>14.2}  (8 = coalesced u64, 32 = scattered)\n\
             theoretical peak:         {:>14.1} warp GIPS\n\
             L1 roof at this intensity:{:>14.1} warp GIPS\n",
            self.name,
            self.warp_insts,
            self.l1_transactions,
            self.local_tx_fraction,
            self.global_transactions,
            self.seconds,
            self.gips,
            self.gips_nonpredicated,
            self.predication_ratio * 100.0,
            self.intensity_l1,
            self.intensity_global,
            self.sectors_per_mem_inst,
            self.peak_gips,
            self.l1_roof_gips(cfg),
        )
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::InstClass;

    fn sample_counters() -> Counters {
        let mut c = Counters::new();
        c.record(InstClass::Int, 1000, 32);
        c.record(InstClass::LdStGlobal, 100, 32);
        c.global_ld_transactions = 800;
        c.record(InstClass::LdStLocal, 50, 32);
        c.local_transactions = 400;
        c
    }

    #[test]
    fn intensities() {
        let cfg = DeviceConfig::v100();
        let r = RooflineReport::from_counters("t", &cfg, &sample_counters(), 1e-3);
        assert_eq!(r.warp_insts, 1150);
        assert_eq!(r.l1_transactions, 1200);
        assert!((r.intensity_l1 - 1150.0 / 1200.0).abs() < 1e-12);
        assert!((r.gips - 1150.0 / 1e-3 / 1e9).abs() < 1e-9);
    }

    #[test]
    fn predication_widens_gap() {
        let cfg = DeviceConfig::v100();
        let mut c = Counters::new();
        c.record(InstClass::Int, 100, 1); // single-lane work
        let r = RooflineReport::from_counters("walk", &cfg, &c, 1e-6);
        assert!(r.gips_nonpredicated > r.gips * 30.0);
        assert!(r.predication_ratio > 0.96);
    }

    #[test]
    fn zero_time_zero_gips() {
        let cfg = DeviceConfig::v100();
        let r = RooflineReport::from_counters("z", &cfg, &Counters::new(), 0.0);
        assert_eq!(r.gips, 0.0);
        assert_eq!(r.intensity_l1, 0.0);
    }

    #[test]
    fn render_contains_key_fields() {
        let cfg = DeviceConfig::v100();
        let r = RooflineReport::from_counters("demo", &cfg, &sample_counters(), 1e-3);
        let s = r.render(&cfg);
        assert!(s.contains("demo"));
        assert!(s.contains("489.6"));
    }
}
