//! Simulated device global memory.
//!
//! Global memory is a flat, word-addressed (`u64`) address space with a bump
//! allocator — the same discipline the paper's kernels use (one big slab,
//! offsets computed host-side, no device-side `malloc`).

use std::sync::atomic::{AtomicBool, Ordering};

/// Once any sanitizer-enabled device exists in the process, `Buf::at` bounds
/// failures become hard errors even in release builds (normally they are
/// `debug_assert` only, silently indexing a neighboring allocation). Sticky
/// and process-global because `Buf` is a plain `Copy` handle with nowhere to
/// carry per-device state; tests run in parallel, so it only ever turns on.
static STRICT_BOUNDS: AtomicBool = AtomicBool::new(false);

/// Turn on release-mode `Buf::at` bounds panics for the rest of the process.
pub fn enable_strict_bounds() {
    STRICT_BOUNDS.store(true, Ordering::Relaxed);
}

/// Is strict bounds checking on?
pub fn strict_bounds_enabled() -> bool {
    STRICT_BOUNDS.load(Ordering::Relaxed)
}

/// Handle to a device allocation: a word-addressed range of global memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Buf {
    /// First word address.
    pub addr: u64,
    /// Length in 64-bit words.
    pub len: u64,
}

impl Buf {
    /// Word address of element `i`; panics past the end in debug builds,
    /// and in release builds too once [`enable_strict_bounds`] has run
    /// (any sanitizer-enabled device does that).
    #[inline]
    pub fn at(&self, i: u64) -> u64 {
        debug_assert!(i < self.len, "Buf index {i} out of {len}", len = self.len);
        if i >= self.len && strict_bounds_enabled() {
            panic!("Buf index {i} out of {len}", len = self.len);
        }
        self.addr + i
    }

    /// Sub-range `[off, off+len)` of this buffer.
    pub fn slice(&self, off: u64, len: u64) -> Buf {
        let end = off.checked_add(len);
        assert!(end.is_some_and(|e| e <= self.len), "slice out of bounds");
        Buf { addr: self.addr + off, len }
    }

    /// Size in bytes.
    pub fn bytes(&self) -> u64 {
        self.len * 8
    }
}

/// Flat global memory with a bump allocator.
#[derive(Debug)]
pub struct GlobalMem {
    words: Vec<u64>,
    next: u64,
    capacity_words: u64,
}

/// Out-of-memory error for the simulated device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceOom {
    /// Words the failed allocation asked for.
    pub requested_words: u64,
    /// Words that were still free at the time of the request.
    pub free_words: u64,
}

impl std::fmt::Display for DeviceOom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "device OOM: requested {} words, {} free", self.requested_words, self.free_words)
    }
}

impl std::error::Error for DeviceOom {}

impl GlobalMem {
    /// New memory with the given capacity. Backing storage grows lazily.
    pub fn new(capacity_words: u64) -> GlobalMem {
        GlobalMem { words: Vec::new(), next: 0, capacity_words }
    }

    /// Allocate `len` words (zero-initialized).
    pub fn alloc(&mut self, len: u64) -> Result<Buf, DeviceOom> {
        // checked_add: `next + len` can wrap u64 before the capacity compare
        // (same hazard as the Buf::slice offset overflow).
        let end = self.next.checked_add(len).filter(|&e| e <= self.capacity_words);
        let Some(end) = end else {
            return Err(DeviceOom {
                requested_words: len,
                free_words: self.capacity_words - self.next,
            });
        };
        let addr = self.next;
        self.next = end;
        let needed = usize::try_from(self.next).expect("device capacity fits usize");
        if self.words.len() < needed {
            self.words.resize(needed, 0);
        }
        Ok(Buf { addr, len })
    }

    /// Free everything (bump allocator reset). Existing `Buf` handles become
    /// dangling; callers own that discipline, as with a real device arena.
    pub fn reset(&mut self) {
        self.next = 0;
        self.words.clear();
    }

    /// Words currently allocated.
    pub fn used_words(&self) -> u64 {
        self.next
    }

    /// Raw word read (host-side or lane-side; no metering here — metering is
    /// the warp context's job).
    #[inline]
    pub fn read(&self, addr: u64) -> u64 {
        self.words[usize::try_from(addr).expect("addr fits usize")]
    }

    /// Raw word write.
    #[inline]
    pub fn write(&mut self, addr: u64, val: u64) {
        self.words[usize::try_from(addr).expect("addr fits usize")] = val;
    }

    /// Host-side bulk copy into device memory.
    pub fn write_slice(&mut self, buf: Buf, offset: u64, data: &[u64]) {
        assert!(offset + data.len() as u64 <= buf.len, "write past buffer end");
        let start = usize::try_from(buf.addr + offset).expect("fits");
        self.words[start..start + data.len()].copy_from_slice(data);
    }

    /// Host-side bulk copy out of device memory.
    pub fn read_slice(&self, buf: Buf, offset: u64, len: u64) -> Vec<u64> {
        assert!(offset + len <= buf.len, "read past buffer end");
        let start = usize::try_from(buf.addr + offset).expect("fits");
        self.words[start..start + usize::try_from(len).expect("fits")].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_rw() {
        let mut m = GlobalMem::new(1024);
        let b = m.alloc(16).unwrap();
        m.write_slice(b, 0, &[1, 2, 3]);
        assert_eq!(m.read_slice(b, 0, 4), vec![1, 2, 3, 0]);
        assert_eq!(m.read(b.at(1)), 2);
    }

    #[test]
    fn oom_reports_free() {
        let mut m = GlobalMem::new(10);
        m.alloc(8).unwrap();
        let err = m.alloc(4).unwrap_err();
        assert_eq!(err.free_words, 2);
        assert_eq!(err.requested_words, 4);
    }

    #[test]
    fn allocations_disjoint() {
        let mut m = GlobalMem::new(100);
        let a = m.alloc(10).unwrap();
        let b = m.alloc(10).unwrap();
        assert_eq!(a.addr + a.len, b.addr);
        m.write(a.at(9), 7);
        assert_eq!(m.read(b.at(0)), 0);
    }

    #[test]
    fn reset_reclaims() {
        let mut m = GlobalMem::new(10);
        m.alloc(10).unwrap();
        m.reset();
        assert!(m.alloc(10).is_ok());
    }

    #[test]
    fn slice_bounds() {
        let mut m = GlobalMem::new(100);
        let b = m.alloc(10).unwrap();
        let s = b.slice(4, 6);
        assert_eq!(s.addr, b.addr + 4);
        assert_eq!(s.len, 6);
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn slice_past_end_panics() {
        let b = Buf { addr: 0, len: 10 };
        b.slice(5, 6);
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn slice_overflowing_offset_panics() {
        // off + len wraps u64; must be rejected, not wrapped into bounds.
        let b = Buf { addr: 0, len: 10 };
        b.slice(u64::MAX, 2);
    }

    #[test]
    fn alloc_overflowing_len_is_oom_not_wrap() {
        // next + len wraps u64: must be a clean OOM, not a wrapped success.
        let mut m = GlobalMem::new(100);
        m.alloc(10).unwrap();
        let err = m.alloc(u64::MAX - 4).unwrap_err();
        assert_eq!(err.free_words, 90);
        assert!(m.alloc(90).is_ok(), "allocator state intact after overflow attempt");
    }

    #[test]
    #[should_panic(expected = "Buf index")]
    fn strict_bounds_panics_in_release_too() {
        // Sticky process-global flag: fine to set from a test, it only
        // ever turns on and other tests don't index out of bounds.
        enable_strict_bounds();
        let b = Buf { addr: 0, len: 4 };
        b.at(4);
    }
}
