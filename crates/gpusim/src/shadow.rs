//! Shadow memory for the `gpucheck` memcheck analysis.
//!
//! Every device word below the bump allocator's high-water mark carries a
//! shadow record: which allocation it belongs to and whether it has ever
//! been written this epoch. The bump allocator leaves no gaps, so the
//! classification rules are exact:
//!
//! * an address at or past the high-water mark has never been allocated —
//!   **out of bounds**;
//! * a word whose allocation epoch predates the last reset
//!   is reachable only through a stale [`Buf`](crate::mem::Buf) handle —
//!   **use after reset**;
//! * a word allocated without the `cudaMemset` guarantee
//!   ([`crate::device::Device::alloc_uninit`]) and never stored to —
//!   **uninitialized read**.
//!
//! The shadow grows lazily with allocations, never to device capacity, so a
//! 16 GB simulated device costs only as much shadow as the run actually
//! allocates.

/// Lifecycle state of one shadow word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WordState {
    /// Allocated this epoch, never written (only possible via
    /// `alloc_uninit`; plain `alloc` models `cudaMemset`-zeroed memory).
    Uninit,
    /// Allocated this epoch and defined (zero-filled alloc, host copy, or
    /// device store).
    Init,
    /// Belonged to an allocation freed by an arena reset.
    Freed,
}

#[derive(Debug, Clone, Copy)]
struct ShadowWord {
    /// 1-based allocation id (0 = never allocated, unused in practice).
    alloc: u32,
    state: WordState,
}

/// Provenance record for one allocation.
#[derive(Debug, Clone)]
pub struct AllocRecord {
    /// First word address.
    pub addr: u64,
    /// Length in words.
    pub len: u64,
    /// Arena epoch (reset count at allocation time).
    pub epoch: u32,
    /// False once the arena has been reset.
    pub live: bool,
}

/// What the memcheck classification found for one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MemIssue {
    /// Address at or beyond the allocator's high-water mark.
    OutOfBounds,
    /// Address inside an allocation invalidated by an arena reset.
    UseAfterReset { alloc: u32 },
    /// Load from a live word that was never written.
    UninitRead { alloc: u32 },
}

/// Per-word shadow state plus the allocation table.
#[derive(Debug, Default)]
pub struct ShadowMemory {
    words: Vec<ShadowWord>,
    allocs: Vec<AllocRecord>,
    epoch: u32,
}

impl ShadowMemory {
    /// An empty shadow space with no recorded allocations.
    pub fn new() -> ShadowMemory {
        ShadowMemory::default()
    }

    /// Record an allocation; returns its 1-based id. `initialized` is true
    /// for the zero-filling [`alloc`](crate::device::Device::alloc) path.
    pub(crate) fn on_alloc(&mut self, addr: u64, len: u64, initialized: bool) -> u32 {
        self.allocs.push(AllocRecord { addr, len, epoch: self.epoch, live: true });
        let id = self.allocs.len() as u32;
        let state = if initialized { WordState::Init } else { WordState::Uninit };
        let end = usize::try_from(addr + len).expect("shadow address fits usize");
        if self.words.len() < end {
            self.words.resize(end, ShadowWord { alloc: 0, state: WordState::Freed });
        }
        let start = usize::try_from(addr).expect("shadow address fits usize");
        for w in &mut self.words[start..end] {
            *w = ShadowWord { alloc: id, state };
        }
        id
    }

    /// Arena reset: every live word becomes [`WordState::Freed`], every
    /// live allocation dead. Old shadow is kept so stale-`Buf` accesses can
    /// still name the allocation they point into.
    pub(crate) fn on_reset(&mut self) {
        self.epoch += 1;
        for a in &mut self.allocs {
            a.live = false;
        }
        for w in &mut self.words {
            w.state = WordState::Freed;
        }
    }

    /// Host-side copy into `[addr, addr+len)`: marks the words defined.
    pub(crate) fn on_host_write(&mut self, addr: u64, len: u64) {
        let start = usize::try_from(addr).expect("shadow address fits usize");
        let end =
            (start + usize::try_from(len).expect("shadow length fits usize")).min(self.words.len());
        for w in self.words.iter_mut().take(end).skip(start) {
            if w.state == WordState::Uninit {
                w.state = WordState::Init;
            }
        }
    }

    /// A device store landed on `addr`: the word is now defined.
    pub(crate) fn mark_written(&mut self, addr: u64) {
        if let Some(w) = self.words.get_mut(usize::try_from(addr).unwrap_or(usize::MAX)) {
            if w.state == WordState::Uninit {
                w.state = WordState::Init;
            }
        }
    }

    /// Classify a device access. `is_load` distinguishes uninitialized
    /// reads (stores to uninitialized words are the *defining* access).
    pub(crate) fn classify(&self, addr: u64, is_load: bool) -> Option<MemIssue> {
        let Ok(i) = usize::try_from(addr) else {
            return Some(MemIssue::OutOfBounds);
        };
        let Some(w) = self.words.get(i) else {
            return Some(MemIssue::OutOfBounds);
        };
        match w.state {
            WordState::Freed => Some(MemIssue::UseAfterReset { alloc: w.alloc }),
            WordState::Uninit if is_load => Some(MemIssue::UninitRead { alloc: w.alloc }),
            _ => None,
        }
    }

    /// The allocation record behind a 1-based id from a memory issue
    /// ([`crate::sanitizer::SanitizerReport`]).
    pub fn alloc_record(&self, id: u32) -> Option<&AllocRecord> {
        (id >= 1).then(|| self.allocs.get(id as usize - 1)).flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_classifies_in_and_out_of_bounds() {
        let mut s = ShadowMemory::new();
        s.on_alloc(0, 16, true);
        assert_eq!(s.classify(0, true), None);
        assert_eq!(s.classify(15, false), None);
        assert_eq!(s.classify(16, true), Some(MemIssue::OutOfBounds));
    }

    #[test]
    fn uninit_read_until_written() {
        let mut s = ShadowMemory::new();
        let id = s.on_alloc(0, 4, false);
        assert_eq!(s.classify(2, true), Some(MemIssue::UninitRead { alloc: id }));
        // A store is the defining access, not an error.
        assert_eq!(s.classify(2, false), None);
        s.mark_written(2);
        assert_eq!(s.classify(2, true), None);
        // Other words stay undefined.
        assert_eq!(s.classify(3, true), Some(MemIssue::UninitRead { alloc: id }));
    }

    #[test]
    fn reset_frees_and_keeps_provenance() {
        let mut s = ShadowMemory::new();
        let id = s.on_alloc(0, 8, true);
        s.on_reset();
        assert_eq!(s.classify(3, true), Some(MemIssue::UseAfterReset { alloc: id }));
        let rec = s.alloc_record(id).expect("provenance survives reset");
        assert!(!rec.live);
        // Re-allocating the words makes them valid again (arena reuse).
        let id2 = s.on_alloc(0, 8, true);
        assert_eq!(s.classify(3, true), None);
        assert!(s.alloc_record(id2).expect("new record").live);
    }

    #[test]
    fn host_write_defines_words() {
        let mut s = ShadowMemory::new();
        s.on_alloc(0, 8, false);
        s.on_host_write(2, 3);
        assert!(s.classify(1, true).is_some());
        assert_eq!(s.classify(2, true), None);
        assert_eq!(s.classify(4, true), None);
        assert!(s.classify(5, true).is_some());
    }
}
