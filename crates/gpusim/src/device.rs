//! The simulated device: allocation, kernel launch, accumulated statistics.

use crate::config::DeviceConfig;
use crate::counters::Counters;
use crate::fault::{Fault, LaunchError};
use crate::mem::{Buf, DeviceOom, GlobalMem};
use crate::sanitizer::{Sanitizer, SanitizerConfig, SanitizerSummary};
use crate::timing::{self, TimingEstimate};
use crate::warp::WarpCtx;

/// Environment variable forcing the full `gpucheck` sanitizer on for every
/// device, regardless of config (the CI whole-suite sanitize job sets it).
pub const SANITIZE_ENV: &str = "GPUSIM_SANITIZE";

/// Statistics for one kernel launch.
#[derive(Debug, Clone)]
pub struct LaunchStats {
    /// Warps in the launch grid.
    pub warps: usize,
    /// Counters accumulated during this launch only.
    pub counters: Counters,
    /// Estimated execution time under the device's timing model.
    pub timing: TimingEstimate,
}

/// A simulated GPU: global memory plus accumulated execution counters.
///
/// Faults from the config's [`FaultPlan`](crate::fault::FaultPlan) fire at
/// deterministic allocation/launch indices. A fatal fault ([`Fault::KernelHang`],
/// [`Fault::BitFlip`]) *poisons* the device — every subsequent launch fails
/// with [`LaunchError::DeviceLost`] until [`Device::reset_device`] is called —
/// mirroring CUDA sticky errors.
pub struct Device {
    config: DeviceConfig,
    mem: GlobalMem,
    /// Counters accumulated across all launches since construction/reset.
    total: Counters,
    /// Seconds of simulated kernel time accumulated across launches.
    total_time_s: f64,
    launches: u64,
    /// Allocation attempts over the device's lifetime (denied ones included).
    allocs: u64,
    /// `fired[i]` ⇔ `config.fault_plan.faults[i]` has already fired.
    fired: Vec<bool>,
    /// The fatal error poisoning the context, if any.
    poisoned: Option<LaunchError>,
    /// Completed device resets.
    resets: u64,
    /// `gpucheck` dynamic checker (config- or env-enabled).
    sanitizer: Option<Box<Sanitizer>>,
}

impl Device {
    /// New device with the given configuration. The `GPUSIM_SANITIZE`
    /// environment variable forces the full sanitizer on even when the
    /// config leaves it off.
    pub fn new(config: DeviceConfig) -> Device {
        let cap = config.capacity_words();
        let fired = vec![false; config.fault_plan.faults.len()];
        let san_cfg = if config.sanitizer.enabled() {
            Some(config.sanitizer)
        } else if std::env::var_os(SANITIZE_ENV).is_some_and(|v| v != "0" && !v.is_empty()) {
            Some(SanitizerConfig::full())
        } else {
            None
        };
        let sanitizer = san_cfg.map(|cfg| {
            crate::mem::enable_strict_bounds();
            Box::new(Sanitizer::new(cfg))
        });
        Device {
            config,
            mem: GlobalMem::new(cap),
            total: Counters::new(),
            total_time_s: 0.0,
            launches: 0,
            allocs: 0,
            fired,
            poisoned: None,
            resets: 0,
            sanitizer,
        }
    }

    /// Is the `gpucheck` sanitizer active on this device?
    pub fn sanitizer_enabled(&self) -> bool {
        self.sanitizer.is_some()
    }

    /// Drain the sanitizer findings accumulated since the last call
    /// (`None` when the sanitizer is off).
    pub fn take_sanitizer_summary(&mut self) -> Option<SanitizerSummary> {
        self.sanitizer.as_mut().map(|s| s.take_summary())
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Allocate `words` 64-bit words of zeroed global memory.
    ///
    /// An armed [`Fault::SlabOom`] matching this allocation attempt makes it
    /// fail with [`DeviceOom`] even if capacity remains; the device stays
    /// usable (callers shrink and retry).
    pub fn alloc(&mut self, words: u64) -> Result<Buf, DeviceOom> {
        self.alloc_inner(words, true)
    }

    /// Allocate `words` words *without* the zero-fill guarantee — the
    /// `cudaMalloc` analogue of [`Device::alloc`]'s `cudaMemset` semantics.
    /// Physically the simulator still zeroes the words, but under memcheck a
    /// load from them before any store is an uninitialized read.
    pub fn alloc_uninit(&mut self, words: u64) -> Result<Buf, DeviceOom> {
        self.alloc_inner(words, false)
    }

    fn alloc_inner(&mut self, words: u64, initialized: bool) -> Result<Buf, DeviceOom> {
        let attempt = self.allocs;
        self.allocs += 1;
        for i in 0..self.config.fault_plan.faults.len() {
            if self.fired[i] {
                continue;
            }
            if let Fault::SlabOom { at_alloc } = self.config.fault_plan.faults[i] {
                if at_alloc == attempt {
                    self.fired[i] = true;
                    let free = self.config.capacity_words() - self.mem.used_words();
                    return Err(DeviceOom { requested_words: words, free_words: free });
                }
            }
        }
        let buf = self.mem.alloc(words)?;
        if let Some(s) = self.sanitizer.as_mut() {
            s.on_alloc(buf.addr, buf.len, initialized);
        }
        Ok(buf)
    }

    /// Free all allocations (arena reset), keeping counters.
    pub fn reset_mem(&mut self) {
        self.mem.reset();
        if let Some(s) = self.sanitizer.as_mut() {
            s.on_reset();
        }
    }

    /// Words currently allocated on the device.
    pub fn mem_used_words(&self) -> u64 {
        self.mem.used_words()
    }

    /// Host → device copy.
    pub fn h2d(&mut self, buf: Buf, offset: u64, data: &[u64]) {
        self.mem.write_slice(buf, offset, data);
        if let Some(s) = self.sanitizer.as_mut() {
            s.on_host_write(buf.addr + offset, data.len() as u64);
        }
    }

    /// Device → host copy.
    pub fn d2h(&self, buf: Buf, offset: u64, len: u64) -> Vec<u64> {
        self.mem.read_slice(buf, offset, len)
    }

    /// Read a single word host-side.
    pub fn d2h_word(&self, buf: Buf, offset: u64) -> u64 {
        self.mem.read(buf.at(offset))
    }

    /// Launch a kernel of `warps` warps, each with `local_words_per_lane`
    /// words of local memory. The kernel body runs once per warp, in warp-id
    /// order (a legal serialization of the real device's schedule — kernels
    /// must not rely on inter-warp ordering, just as on real hardware).
    ///
    /// Returns per-launch counters and a timing estimate, or a
    /// [`LaunchError`] when an injected fault fires (or the device is
    /// already poisoned by one). Failed launch attempts still count toward
    /// [`Device::launches`], and a hang's watchdog wait is charged to
    /// [`Device::total_time_s`].
    pub fn launch(
        &mut self,
        warps: usize,
        local_words_per_lane: usize,
        mut kernel: impl FnMut(&mut WarpCtx),
    ) -> Result<LaunchStats, LaunchError> {
        let launch_idx = self.launches;
        self.launches += 1;
        if self.poisoned.is_some() {
            return Err(LaunchError::DeviceLost { launch_idx });
        }
        if let Some(err) = self.fire_launch_fault(launch_idx) {
            self.poisoned = Some(err);
            return Err(err);
        }
        if let Some(s) = self.sanitizer.as_mut() {
            s.begin_launch(launch_idx);
        }
        let mut counters = Counters::new();
        for warp_id in 0..warps {
            let mut ctx = WarpCtx::new(
                warp_id,
                &mut self.mem,
                &mut counters,
                local_words_per_lane,
                self.config.sector_bytes,
                self.sanitizer.as_deref_mut(),
            );
            kernel(&mut ctx);
            ctx.finish_warp();
        }
        let timing = timing::estimate(&self.config, &counters, warps);
        self.total.merge(&counters);
        self.total_time_s += timing.total_seconds();
        Ok(LaunchStats { warps, counters, timing })
    }

    /// Fire the first armed launch-scoped fault matching `launch_idx`.
    fn fire_launch_fault(&mut self, launch_idx: u64) -> Option<LaunchError> {
        for i in 0..self.config.fault_plan.faults.len() {
            if self.fired[i] {
                continue;
            }
            match self.config.fault_plan.faults[i] {
                Fault::KernelHang { at_launch, after_cycles } if at_launch == launch_idx => {
                    self.fired[i] = true;
                    // The host blocks on the watchdog before seeing the error.
                    self.total_time_s += after_cycles as f64 / (self.config.clock_ghz * 1e9);
                    return Some(LaunchError::Hang { launch_idx, after_cycles });
                }
                Fault::BitFlip { at_launch, addr } if at_launch == launch_idx => {
                    self.fired[i] = true;
                    if addr < self.mem.used_words() {
                        self.mem.write(addr, self.mem.read(addr) ^ 1);
                    }
                    return Some(LaunchError::MemCorruption { launch_idx, addr });
                }
                _ => {}
            }
        }
        None
    }

    /// Recover a poisoned context: clears the sticky error and the memory
    /// arena (device memory does not survive a reset), keeps counters and
    /// already-fired faults. Counterpart of `cudaDeviceReset`.
    pub fn reset_device(&mut self) {
        self.poisoned = None;
        self.mem.reset();
        if let Some(s) = self.sanitizer.as_mut() {
            s.on_reset();
        }
        self.resets += 1;
    }

    /// Whether a fatal fault has poisoned the context.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.is_some()
    }

    /// Completed [`Device::reset_device`] calls.
    pub fn resets(&self) -> u64 {
        self.resets
    }

    /// Number of injected faults that have fired so far.
    pub fn faults_fired(&self) -> u64 {
        self.fired.iter().filter(|&&f| f).count() as u64
    }

    /// Counters accumulated across all launches.
    pub fn total_counters(&self) -> &Counters {
        &self.total
    }

    /// Simulated seconds across all launches (including launch overheads).
    pub fn total_time_s(&self) -> f64 {
        self.total_time_s
    }

    /// Number of launches performed.
    pub fn launches(&self) -> u64 {
        self.launches
    }

    /// Zero the accumulated counters and time (memory is untouched).
    pub fn reset_counters(&mut self) {
        self.total = Counters::new();
        self.total_time_s = 0.0;
        self.launches = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::warp::WARP;

    #[test]
    fn vector_add_kernel() {
        let mut dev = Device::new(DeviceConfig::tiny());
        let n = 256usize;
        let a = dev.alloc(n as u64).unwrap();
        let b = dev.alloc(n as u64).unwrap();
        let c = dev.alloc(n as u64).unwrap();
        dev.h2d(a, 0, &(0..n as u64).collect::<Vec<_>>());
        dev.h2d(b, 0, &(0..n as u64).map(|x| x * 2).collect::<Vec<_>>());

        let warps = n / WARP;
        let stats = dev
            .launch(warps, 0, |ctx| {
                let base = (ctx.warp_id * WARP) as u64;
                let addrs_a = ctx.lanes_from(|l| Some(a.at(base + l as u64)));
                let va = ctx.ld_global(&addrs_a);
                let addrs_b = ctx.lanes_from(|l| Some(b.at(base + l as u64)));
                let vb = ctx.ld_global(&addrs_b);
                ctx.int_ops(1);
                let sum = ctx.lanes_from(|l| va[l] + vb[l]);
                let addrs_c = ctx.lanes_from(|l| Some(c.at(base + l as u64)));
                ctx.st_global(&addrs_c, &sum);
            })
            .expect("healthy device");

        let out = dev.d2h(c, 0, n as u64);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i as u64 * 3);
        }
        // 8 warps × (2 loads + 1 store) × 8 sectors each = fully coalesced.
        assert_eq!(stats.counters.global_ld_transactions, 8 * 2 * 8);
        assert_eq!(stats.counters.global_st_transactions, 8 * 8);
        assert!(stats.timing.total_seconds() > 0.0);
    }

    #[test]
    fn histogram_kernel_with_atomics() {
        let mut dev = Device::new(DeviceConfig::tiny());
        let n = 128usize;
        let input = dev.alloc(n as u64).unwrap();
        let hist = dev.alloc(4).unwrap();
        dev.h2d(input, 0, &(0..n as u64).map(|x| x % 4).collect::<Vec<_>>());

        dev.launch(n / WARP, 0, |ctx| {
            let base = (ctx.warp_id * WARP) as u64;
            let addrs = ctx.lanes_from(|l| Some(input.at(base + l as u64)));
            let vals = ctx.ld_global(&addrs);
            let ops = ctx.lanes_from(|l| Some((hist.at(vals[l]), 1u64)));
            ctx.atomic_add(&ops);
        })
        .expect("healthy device");

        let out = dev.d2h(hist, 0, 4);
        assert_eq!(out, vec![32, 32, 32, 32]);
    }

    #[test]
    fn counters_accumulate_across_launches() {
        let mut dev = Device::new(DeviceConfig::tiny());
        dev.launch(1, 0, |ctx| ctx.int_ops(5)).expect("healthy device");
        dev.launch(1, 0, |ctx| ctx.int_ops(7)).expect("healthy device");
        assert_eq!(dev.total_counters().int_inst, 12);
        assert_eq!(dev.launches(), 2);
        dev.reset_counters();
        assert_eq!(dev.total_counters().int_inst, 0);
    }

    #[test]
    fn oom_propagates() {
        let mut dev = Device::new(DeviceConfig::tiny());
        let cap = dev.config().capacity_words();
        assert!(dev.alloc(cap + 1).is_err());
    }

    #[test]
    fn injected_slab_oom_fires_once_then_device_recovers() {
        let plan = FaultPlan::single(Fault::SlabOom { at_alloc: 1 });
        let mut dev = Device::new(DeviceConfig::tiny().with_fault_plan(plan));
        assert!(dev.alloc(16).is_ok()); // attempt 0
        let err = dev.alloc(16).unwrap_err(); // attempt 1: injected
        assert_eq!(err.requested_words, 16);
        assert!(dev.alloc(16).is_ok()); // one-shot: attempt 2 succeeds
        assert!(!dev.is_poisoned());
        assert_eq!(dev.faults_fired(), 1);
    }

    #[test]
    fn kernel_hang_poisons_until_reset() {
        let plan = FaultPlan::single(Fault::KernelHang { at_launch: 1, after_cycles: 1000 });
        let mut dev = Device::new(DeviceConfig::tiny().with_fault_plan(plan));
        dev.launch(1, 0, |ctx| ctx.int_ops(1)).expect("launch 0 healthy");
        let t_before = dev.total_time_s();
        let err = dev.launch(1, 0, |ctx| ctx.int_ops(1)).unwrap_err();
        assert!(matches!(err, LaunchError::Hang { launch_idx: 1, after_cycles: 1000 }));
        assert!(err.needs_reset());
        assert!(dev.total_time_s() > t_before, "watchdog wait is charged");
        // Sticky: further launches fail until reset.
        assert!(matches!(
            dev.launch(1, 0, |ctx| ctx.int_ops(1)).unwrap_err(),
            LaunchError::DeviceLost { .. }
        ));
        dev.reset_device();
        assert!(!dev.is_poisoned());
        assert_eq!(dev.resets(), 1);
        dev.launch(1, 0, |ctx| ctx.int_ops(1)).expect("healthy after reset");
    }

    #[test]
    fn bit_flip_corrupts_memory_and_poisons() {
        let plan = FaultPlan::single(Fault::BitFlip { at_launch: 0, addr: 3 });
        let mut dev = Device::new(DeviceConfig::tiny().with_fault_plan(plan));
        let buf = dev.alloc(8).unwrap();
        dev.h2d(buf, 0, &[10, 11, 12, 13, 14, 15, 16, 17]);
        let err = dev.launch(1, 0, |ctx| ctx.int_ops(1)).unwrap_err();
        assert!(matches!(err, LaunchError::MemCorruption { launch_idx: 0, addr: 3 }));
        assert!(dev.is_poisoned());
        assert_eq!(dev.d2h_word(buf, 3), 13 ^ 1, "one bit flipped in place");
        // Reset clears the arena: memory does not survive a device reset.
        dev.reset_device();
        assert_eq!(dev.mem_used_words(), 0);
    }

    #[test]
    fn fault_free_run_unaffected_by_empty_plan() {
        let mut dev = Device::new(DeviceConfig::tiny());
        for _ in 0..4 {
            dev.launch(1, 0, |ctx| ctx.int_ops(1)).expect("no faults planned");
        }
        assert_eq!(dev.faults_fired(), 0);
        assert_eq!(dev.resets(), 0);
    }

    mod sanitized {
        use super::*;
        use crate::sanitizer::{SanitizerConfig, SanitizerKind};

        fn sanitized_device() -> Device {
            Device::new(DeviceConfig::tiny().with_sanitizer(SanitizerConfig::full()))
        }

        #[test]
        fn off_by_default_on_when_configured() {
            assert!(sanitized_device().sanitizer_enabled());
            // The default is off — unless the process-wide env override is
            // in force (the CI sanitize job runs this very test under it).
            let env_forced = std::env::var(SANITIZE_ENV).is_ok_and(|v| !v.is_empty() && v != "0");
            if !env_forced {
                assert!(!Device::new(DeviceConfig::tiny()).sanitizer_enabled());
                assert!(Device::new(DeviceConfig::tiny()).take_sanitizer_summary().is_none());
            }
        }

        #[test]
        fn use_after_reset_flagged_through_stale_buf() {
            let mut dev = sanitized_device();
            let stale = dev.alloc(16).unwrap();
            dev.reset_mem();
            // Keep one live word so address 0 exists physically again.
            dev.alloc(16).unwrap();
            dev.reset_mem();
            let fresh = dev.alloc(8).unwrap();
            dev.launch(1, 0, |ctx| {
                ctx.ld_global_lane(0, fresh.at(0)); // live: fine
                ctx.ld_global_lane(0, stale.at(12)); // stale epoch: flagged
            })
            .expect("launch ok");
            let sum = dev.take_sanitizer_summary().expect("sanitizer on");
            assert_eq!(sum.count(SanitizerKind::UseAfterReset), 1);
            assert_eq!(sum.count(SanitizerKind::OutOfBounds), 0);
        }

        #[test]
        fn uninit_read_only_for_alloc_uninit() {
            let mut dev = sanitized_device();
            let zeroed = dev.alloc(8).unwrap();
            let raw = dev.alloc_uninit(8).unwrap();
            dev.launch(1, 0, |ctx| {
                ctx.ld_global_lane(0, zeroed.at(3)); // cudaMemset semantics: defined
                ctx.ld_global_lane(0, raw.at(3)); // cudaMalloc semantics: uninit
                ctx.st_global_lane(0, raw.at(4), 9); // store defines...
                ctx.ld_global_lane(0, raw.at(4)); // ...so this is clean
            })
            .expect("launch ok");
            let sum = dev.take_sanitizer_summary().expect("sanitizer on");
            assert_eq!(sum.count(SanitizerKind::UninitRead), 1);
        }

        #[test]
        fn h2d_defines_uninit_words() {
            let mut dev = sanitized_device();
            let raw = dev.alloc_uninit(8).unwrap();
            dev.h2d(raw, 2, &[1, 2]);
            dev.launch(1, 0, |ctx| {
                ctx.ld_global_lane(0, raw.at(2));
                ctx.ld_global_lane(0, raw.at(3));
            })
            .expect("launch ok");
            let sum = dev.take_sanitizer_summary().expect("sanitizer on");
            assert!(sum.is_clean(), "{}", sum.render());
        }

        #[test]
        fn take_summary_drains() {
            let mut dev = sanitized_device();
            dev.alloc(4).unwrap();
            dev.launch(1, 0, |ctx| {
                ctx.ld_global_lane(0, 100); // OOB
            })
            .expect("launch ok");
            assert_eq!(dev.take_sanitizer_summary().unwrap().total(), 1);
            let again = dev.take_sanitizer_summary().unwrap();
            assert!(again.enabled && again.total() == 0);
        }

        #[test]
        fn cross_warp_plain_writes_same_word_flagged() {
            let mut dev = sanitized_device();
            let buf = dev.alloc(4).unwrap();
            dev.launch(2, 0, |ctx| {
                ctx.st_global_lane(0, buf.at(0), ctx.warp_id as u64);
            })
            .expect("launch ok");
            let sum = dev.take_sanitizer_summary().expect("sanitizer on");
            assert!(sum.count(SanitizerKind::WarpRace) > 0);
            assert_eq!(sum.count(SanitizerKind::LaneRace), 0);
        }

        #[test]
        fn clean_kernels_stay_clean_across_launches() {
            let mut dev = sanitized_device();
            let buf = dev.alloc(64).unwrap();
            for _ in 0..3 {
                dev.launch(2, 0, |ctx| {
                    // Each warp owns a disjoint 32-word window.
                    let base = (ctx.warp_id * WARP) as u64;
                    let addrs = ctx.lanes_from(|l| Some(buf.at(base + l as u64)));
                    let vals = ctx.lanes_from(|l| l as u64);
                    ctx.st_global(&addrs, &vals);
                    ctx.ld_global(&addrs);
                })
                .expect("launch ok");
            }
            let sum = dev.take_sanitizer_summary().expect("sanitizer on");
            assert!(sum.is_clean(), "{}", sum.render());
        }
    }
}
