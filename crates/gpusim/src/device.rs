//! The simulated device: allocation, kernel launch, accumulated statistics.

use crate::config::DeviceConfig;
use crate::counters::Counters;
use crate::mem::{Buf, DeviceOom, GlobalMem};
use crate::timing::{self, TimingEstimate};
use crate::warp::WarpCtx;

/// Statistics for one kernel launch.
#[derive(Debug, Clone)]
pub struct LaunchStats {
    /// Warps in the launch grid.
    pub warps: usize,
    /// Counters accumulated during this launch only.
    pub counters: Counters,
    /// Estimated execution time under the device's timing model.
    pub timing: TimingEstimate,
}

/// A simulated GPU: global memory plus accumulated execution counters.
pub struct Device {
    config: DeviceConfig,
    mem: GlobalMem,
    /// Counters accumulated across all launches since construction/reset.
    total: Counters,
    /// Seconds of simulated kernel time accumulated across launches.
    total_time_s: f64,
    launches: u64,
}

impl Device {
    /// New device with the given configuration.
    pub fn new(config: DeviceConfig) -> Device {
        let cap = config.capacity_words();
        Device {
            config,
            mem: GlobalMem::new(cap),
            total: Counters::new(),
            total_time_s: 0.0,
            launches: 0,
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Allocate `words` 64-bit words of zeroed global memory.
    pub fn alloc(&mut self, words: u64) -> Result<Buf, DeviceOom> {
        self.mem.alloc(words)
    }

    /// Free all allocations (arena reset), keeping counters.
    pub fn reset_mem(&mut self) {
        self.mem.reset();
    }

    /// Words currently allocated on the device.
    pub fn mem_used_words(&self) -> u64 {
        self.mem.used_words()
    }

    /// Host → device copy.
    pub fn h2d(&mut self, buf: Buf, offset: u64, data: &[u64]) {
        self.mem.write_slice(buf, offset, data);
    }

    /// Device → host copy.
    pub fn d2h(&self, buf: Buf, offset: u64, len: u64) -> Vec<u64> {
        self.mem.read_slice(buf, offset, len)
    }

    /// Read a single word host-side.
    pub fn d2h_word(&self, buf: Buf, offset: u64) -> u64 {
        self.mem.read(buf.at(offset))
    }

    /// Launch a kernel of `warps` warps, each with `local_words_per_lane`
    /// words of local memory. The kernel body runs once per warp, in warp-id
    /// order (a legal serialization of the real device's schedule — kernels
    /// must not rely on inter-warp ordering, just as on real hardware).
    ///
    /// Returns per-launch counters and a timing estimate.
    pub fn launch(
        &mut self,
        warps: usize,
        local_words_per_lane: usize,
        mut kernel: impl FnMut(&mut WarpCtx),
    ) -> LaunchStats {
        let mut counters = Counters::new();
        for warp_id in 0..warps {
            let mut ctx = WarpCtx::new(
                warp_id,
                &mut self.mem,
                &mut counters,
                local_words_per_lane,
                self.config.sector_bytes,
            );
            kernel(&mut ctx);
        }
        let timing = timing::estimate(&self.config, &counters, warps);
        self.total.merge(&counters);
        self.total_time_s += timing.total_seconds();
        self.launches += 1;
        LaunchStats { warps, counters, timing }
    }

    /// Counters accumulated across all launches.
    pub fn total_counters(&self) -> &Counters {
        &self.total
    }

    /// Simulated seconds across all launches (including launch overheads).
    pub fn total_time_s(&self) -> f64 {
        self.total_time_s
    }

    /// Number of launches performed.
    pub fn launches(&self) -> u64 {
        self.launches
    }

    /// Zero the accumulated counters and time (memory is untouched).
    pub fn reset_counters(&mut self) {
        self.total = Counters::new();
        self.total_time_s = 0.0;
        self.launches = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::warp::WARP;

    #[test]
    fn vector_add_kernel() {
        let mut dev = Device::new(DeviceConfig::tiny());
        let n = 256usize;
        let a = dev.alloc(n as u64).unwrap();
        let b = dev.alloc(n as u64).unwrap();
        let c = dev.alloc(n as u64).unwrap();
        dev.h2d(a, 0, &(0..n as u64).collect::<Vec<_>>());
        dev.h2d(b, 0, &(0..n as u64).map(|x| x * 2).collect::<Vec<_>>());

        let warps = n / WARP;
        let stats = dev.launch(warps, 0, |ctx| {
            let base = (ctx.warp_id * WARP) as u64;
            let addrs_a = ctx.lanes_from(|l| Some(a.at(base + l as u64)));
            let va = ctx.ld_global(&addrs_a);
            let addrs_b = ctx.lanes_from(|l| Some(b.at(base + l as u64)));
            let vb = ctx.ld_global(&addrs_b);
            ctx.int_ops(1);
            let sum = ctx.lanes_from(|l| va[l] + vb[l]);
            let addrs_c = ctx.lanes_from(|l| Some(c.at(base + l as u64)));
            ctx.st_global(&addrs_c, &sum);
        });

        let out = dev.d2h(c, 0, n as u64);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i as u64 * 3);
        }
        // 8 warps × (2 loads + 1 store) × 8 sectors each = fully coalesced.
        assert_eq!(stats.counters.global_ld_transactions, 8 * 2 * 8);
        assert_eq!(stats.counters.global_st_transactions, 8 * 8);
        assert!(stats.timing.total_seconds() > 0.0);
    }

    #[test]
    fn histogram_kernel_with_atomics() {
        let mut dev = Device::new(DeviceConfig::tiny());
        let n = 128usize;
        let input = dev.alloc(n as u64).unwrap();
        let hist = dev.alloc(4).unwrap();
        dev.h2d(input, 0, &(0..n as u64).map(|x| x % 4).collect::<Vec<_>>());

        dev.launch(n / WARP, 0, |ctx| {
            let base = (ctx.warp_id * WARP) as u64;
            let addrs = ctx.lanes_from(|l| Some(input.at(base + l as u64)));
            let vals = ctx.ld_global(&addrs);
            let ops = ctx.lanes_from(|l| Some((hist.at(vals[l]), 1u64)));
            ctx.atomic_add(&ops);
        });

        let out = dev.d2h(hist, 0, 4);
        assert_eq!(out, vec![32, 32, 32, 32]);
    }

    #[test]
    fn counters_accumulate_across_launches() {
        let mut dev = Device::new(DeviceConfig::tiny());
        dev.launch(1, 0, |ctx| ctx.int_ops(5));
        dev.launch(1, 0, |ctx| ctx.int_ops(7));
        assert_eq!(dev.total_counters().int_inst, 12);
        assert_eq!(dev.launches(), 2);
        dev.reset_counters();
        assert_eq!(dev.total_counters().int_inst, 0);
    }

    #[test]
    fn oom_propagates() {
        let mut dev = Device::new(DeviceConfig::tiny());
        let cap = dev.config().capacity_words();
        assert!(dev.alloc(cap + 1).is_err());
    }
}
