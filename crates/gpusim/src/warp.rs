//! Warp execution context: the API kernels are written against.
//!
//! A kernel function receives one [`WarpCtx`] per warp and expresses its work
//! as 32-lane operations. The context applies the functional effect of every
//! operation to device memory *and* meters it: instruction class counts,
//! coalesced transaction counts and active/predicated lane slots.
//!
//! Divergence is explicit, as in real SIMT assembly: the kernel pushes a
//! narrower active mask for a divergent region and pops it afterwards
//! ([`WarpCtx::push_mask`] / [`WarpCtx::pop_mask`]). Operations only act on
//! (and only count useful work for) active lanes.

use crate::counters::{Counters, InstClass};
use crate::mem::GlobalMem;
use crate::sanitizer::{AccessKind, Sanitizer};

/// Lanes per warp (NVIDIA hardware constant).
pub const WARP: usize = 32;

/// A per-lane value vector.
pub type Lanes<T> = [T; WARP];

/// Mask with all 32 lanes active.
pub const FULL_MASK: u32 = u32::MAX;

/// Execution context for one warp within a kernel launch.
pub struct WarpCtx<'a> {
    /// Flat warp index within the launch.
    pub warp_id: usize,
    mem: &'a mut GlobalMem,
    counters: &'a mut Counters,
    mask: u32,
    mask_stack: Vec<u32>,
    /// Per-warp local memory: `local[lane * words_per_lane + offset]`.
    local: Vec<u64>,
    local_words_per_lane: usize,
    sector_words: u64,
    /// `gpucheck` dynamic checker, when the device config enables it.
    sanitizer: Option<&'a mut Sanitizer>,
}

impl<'a> WarpCtx<'a> {
    pub(crate) fn new(
        warp_id: usize,
        mem: &'a mut GlobalMem,
        counters: &'a mut Counters,
        local_words_per_lane: usize,
        sector_bytes: u32,
        mut sanitizer: Option<&'a mut Sanitizer>,
    ) -> WarpCtx<'a> {
        if let Some(s) = sanitizer.as_mut() {
            s.begin_warp();
        }
        WarpCtx {
            warp_id,
            mem,
            counters,
            mask: FULL_MASK,
            mask_stack: Vec::new(),
            local: vec![0; local_words_per_lane * WARP],
            local_words_per_lane,
            sector_words: u64::from(sector_bytes) / 8,
            sanitizer,
        }
    }

    /// Annotate the kernel site (phase name) subsequent sanitizer reports
    /// should carry. A no-op when the sanitizer is off.
    pub fn set_site(&mut self, site: &'static str) {
        if let Some(s) = self.sanitizer.as_mut() {
            s.set_site(site);
        }
    }

    /// Kernel body returned: synccheck the residual mask stack. Called by
    /// the device after every kernel invocation.
    pub(crate) fn finish_warp(&mut self) {
        let depth = self.mask_stack.len();
        let warp = self.warp_id;
        if let Some(s) = self.sanitizer.as_mut() {
            s.end_warp(warp, depth);
        }
    }

    /// Sanitizer check for one lane's global access. `true` = proceed with
    /// the physical access; `false` = memcheck found it invalid (loads then
    /// yield 0, stores and atomics are dropped). Accounting is unaffected
    /// either way so clean-run counters are identical sanitizer on or off.
    #[inline]
    fn sanitize_access(&mut self, lane: usize, addr: u64, kind: AccessKind) -> bool {
        let warp = self.warp_id;
        match self.sanitizer.as_mut() {
            Some(s) => s.global_access(warp, lane, addr, kind),
            None => true,
        }
    }

    // ---- mask management ------------------------------------------------

    /// Current active mask (bit `i` = lane `i` active).
    #[inline]
    pub fn active_mask(&self) -> u32 {
        self.mask
    }

    /// Is lane `lane` active?
    #[inline]
    pub fn lane_active(&self, lane: usize) -> bool {
        self.mask & (1 << lane) != 0
    }

    /// Number of active lanes.
    #[inline]
    pub fn active_count(&self) -> u32 {
        self.mask.count_ones()
    }

    /// Lowest-numbered active lane, if any.
    pub fn first_active_lane(&self) -> Option<usize> {
        if self.mask == 0 {
            None
        } else {
            Some(self.mask.trailing_zeros() as usize)
        }
    }

    /// Enter a divergent region: active mask becomes `mask ∧ current`.
    /// Counts one control instruction (the branch).
    pub fn push_mask(&mut self, mask: u32) {
        self.counters.record(InstClass::Control, 1, self.active_count());
        self.mask_stack.push(self.mask);
        self.mask &= mask;
    }

    /// Leave the innermost divergent region (reconvergence point).
    ///
    /// Panics if there is no matching `push_mask`.
    pub fn pop_mask(&mut self) {
        self.mask = self.mask_stack.pop().expect("pop_mask without push_mask");
    }

    /// Iterate over active lanes.
    pub fn for_each_active(&self, mut f: impl FnMut(usize)) {
        let mask = self.mask;
        for lane in 0..WARP {
            if mask & (1 << lane) != 0 {
                f(lane);
            }
        }
    }

    /// Build a per-lane vector from a closure evaluated for every lane
    /// (active or not). Purely a host-side convenience; not metered.
    pub fn lanes_from<T: Copy + Default>(&self, mut f: impl FnMut(usize) -> T) -> Lanes<T> {
        std::array::from_fn(|lane| {
            let _ = &mut f;
            f(lane)
        })
    }

    // ---- arithmetic accounting -------------------------------------------

    /// Account `n` integer warp instructions at the current mask.
    #[inline]
    pub fn int_ops(&mut self, n: u64) {
        self.counters.record(InstClass::Int, n, self.active_count());
    }

    /// Account `n` floating-point warp instructions.
    #[inline]
    pub fn fp_ops(&mut self, n: u64) {
        self.counters.record(InstClass::Fp, n, self.active_count());
    }

    /// Account `n` control-flow warp instructions (loop branches etc.).
    #[inline]
    pub fn ctrl_ops(&mut self, n: u64) {
        self.counters.record(InstClass::Control, n, self.active_count());
    }

    // ---- global memory ----------------------------------------------------

    /// Warp-wide global load: each active lane with `Some(addr)` loads one
    /// 64-bit word. One `LdStGlobal` warp instruction; transactions are the
    /// number of distinct 32-byte sectors touched (coalescing).
    ///
    /// Inactive lanes and `None` lanes return 0 and count as predicated.
    pub fn ld_global(&mut self, addrs: &Lanes<Option<u64>>) -> Lanes<u64> {
        let mut out = [0u64; WARP];
        let mut participating = 0u32;
        let mut sectors: Vec<u64> = Vec::with_capacity(WARP);
        for lane in 0..WARP {
            if !self.lane_active(lane) {
                continue;
            }
            if let Some(addr) = addrs[lane] {
                if self.sanitize_access(lane, addr, AccessKind::Read) {
                    out[lane] = self.mem.read(addr);
                }
                participating += 1;
                sectors.push(addr / self.sector_words);
            }
        }
        self.counters.record(InstClass::LdStGlobal, 1, participating);
        sectors.sort_unstable();
        sectors.dedup();
        self.counters.global_ld_transactions += sectors.len() as u64;
        out
    }

    /// Warp-wide global store; accounting mirrors [`ld_global`](Self::ld_global).
    /// When several lanes store to the same address the highest lane wins
    /// (CUDA leaves this undefined; we pick a deterministic rule).
    pub fn st_global(&mut self, addrs: &Lanes<Option<u64>>, vals: &Lanes<u64>) {
        let mut participating = 0u32;
        let mut sectors: Vec<u64> = Vec::with_capacity(WARP);
        for lane in 0..WARP {
            if !self.lane_active(lane) {
                continue;
            }
            if let Some(addr) = addrs[lane] {
                if self.sanitize_access(lane, addr, AccessKind::Write) {
                    self.mem.write(addr, vals[lane]);
                }
                participating += 1;
                sectors.push(addr / self.sector_words);
            }
        }
        self.counters.record(InstClass::LdStGlobal, 1, participating);
        sectors.sort_unstable();
        sectors.dedup();
        self.counters.global_st_transactions += sectors.len() as u64;
    }

    /// Single-lane convenience load (e.g. the walking lane). Still one warp
    /// instruction with one participating lane — exactly the predication
    /// pattern of the paper's DNA-walk phase.
    pub fn ld_global_lane(&mut self, lane: usize, addr: u64) -> u64 {
        let mut addrs: Lanes<Option<u64>> = [None; WARP];
        addrs[lane] = Some(addr);
        self.ld_global(&addrs)[lane]
    }

    /// Single-lane convenience store.
    pub fn st_global_lane(&mut self, lane: usize, addr: u64, val: u64) {
        let mut addrs: Lanes<Option<u64>> = [None; WARP];
        let mut vals: Lanes<u64> = [0; WARP];
        addrs[lane] = Some(addr);
        vals[lane] = val;
        self.st_global(&addrs, &vals);
    }

    // ---- atomics ----------------------------------------------------------

    /// Warp-wide compare-and-swap. For each active lane with
    /// `Some((addr, expected, new))`: atomically, if `*addr == expected`
    /// then `*addr = new`; returns the old value.
    ///
    /// Lanes are applied in ascending lane order — the serialization a real
    /// GPU performs when atomics conflict, and the property the paper's
    /// thread-collision resolution relies on (exactly one colliding lane
    /// sees `expected`).
    pub fn atomic_cas(&mut self, ops: &Lanes<Option<(u64, u64, u64)>>) -> Lanes<u64> {
        let mut out = [0u64; WARP];
        let mut participating = 0u32;
        let mut sectors: Vec<u64> = Vec::with_capacity(WARP);
        for lane in 0..WARP {
            if !self.lane_active(lane) {
                continue;
            }
            if let Some((addr, expected, new)) = ops[lane] {
                if self.sanitize_access(lane, addr, AccessKind::Atomic) {
                    let old = self.mem.read(addr);
                    if old == expected {
                        self.mem.write(addr, new);
                    }
                    out[lane] = old;
                }
                participating += 1;
                sectors.push(addr / self.sector_words);
            }
        }
        self.counters.record(InstClass::Atomic, 1, participating);
        sectors.sort_unstable();
        sectors.dedup();
        self.counters.atomic_transactions += sectors.len() as u64;
        out
    }

    /// Warp-wide atomic wrapping add; returns the previous values. Same-
    /// address lanes serialize in lane order (all additions take effect).
    pub fn atomic_add(&mut self, ops: &Lanes<Option<(u64, u64)>>) -> Lanes<u64> {
        let mut out = [0u64; WARP];
        let mut participating = 0u32;
        let mut sectors: Vec<u64> = Vec::with_capacity(WARP);
        for lane in 0..WARP {
            if !self.lane_active(lane) {
                continue;
            }
            if let Some((addr, val)) = ops[lane] {
                if self.sanitize_access(lane, addr, AccessKind::Atomic) {
                    let old = self.mem.read(addr);
                    self.mem.write(addr, old.wrapping_add(val));
                    out[lane] = old;
                }
                participating += 1;
                sectors.push(addr / self.sector_words);
            }
        }
        self.counters.record(InstClass::Atomic, 1, participating);
        sectors.sort_unstable();
        sectors.dedup();
        self.counters.atomic_transactions += sectors.len() as u64;
        out
    }

    // ---- warp intrinsics ----------------------------------------------------

    /// `__shfl_sync`: every active lane reads `vals[src_lane]`.
    pub fn shfl(&mut self, vals: &Lanes<u64>, src_lane: usize) -> Lanes<u64> {
        let (warp, mask) = (self.warp_id, self.mask);
        if let Some(s) = self.sanitizer.as_mut() {
            s.shuffle(warp, src_lane, mask);
        }
        self.counters.record(InstClass::Shuffle, 1, self.active_count());
        let v = vals[src_lane];
        let mut out = *vals;
        self.for_each_active(|lane| out[lane] = v);
        out
    }

    /// `__ballot_sync`: bit `i` of the result is set iff lane `i` is active
    /// and its predicate is true.
    pub fn ballot(&mut self, preds: &Lanes<bool>) -> u32 {
        let (warp, mask) = (self.warp_id, self.mask);
        if let Some(s) = self.sanitizer.as_mut() {
            s.collective(warp, mask);
        }
        self.counters.record(InstClass::Shuffle, 1, self.active_count());
        let mut bits = 0u32;
        self.for_each_active(|lane| {
            if preds[lane] {
                bits |= 1 << lane;
            }
        });
        bits
    }

    /// `__match_any_sync`: for each active lane, the mask of active lanes
    /// holding an equal value. Inactive lanes get 0.
    pub fn match_any(&mut self, vals: &Lanes<u64>) -> Lanes<u32> {
        let (warp, mask) = (self.warp_id, self.mask);
        if let Some(s) = self.sanitizer.as_mut() {
            s.collective(warp, mask);
        }
        self.counters.record(InstClass::Shuffle, 1, self.active_count());
        let mut out = [0u32; WARP];
        for lane in 0..WARP {
            if !self.lane_active(lane) {
                continue;
            }
            let mut m = 0u32;
            self.for_each_active(|other| {
                if vals[other] == vals[lane] {
                    m |= 1 << other;
                }
            });
            out[lane] = m;
        }
        out
    }

    /// `__syncwarp`: counts a sync instruction (execution here is already
    /// lockstep, so this is purely an accounting event). Under racecheck it
    /// also delimits the unsynced region — accesses before and after a
    /// `syncwarp` are ordered, not racing.
    pub fn syncwarp(&mut self) {
        let (warp, mask) = (self.warp_id, self.mask);
        if let Some(s) = self.sanitizer.as_mut() {
            s.sync_point(warp, mask);
        }
        self.counters.record(InstClass::Sync, 1, self.active_count());
    }

    // ---- local memory -------------------------------------------------------

    /// Words of local (per-lane) memory this warp was launched with.
    pub fn local_words_per_lane(&self) -> usize {
        self.local_words_per_lane
    }

    /// Per-lane local-memory load at per-lane offsets.
    ///
    /// Transactions: lanes accessing the *same* offset sit contiguously in
    /// the interleaved local layout, so each distinct offset contributes
    /// `ceil(participants / lanes_per_sector)` transactions.
    pub fn ld_local(&mut self, offsets: &Lanes<Option<u64>>) -> Lanes<u64> {
        let mut out = [0u64; WARP];
        let mut participating = 0u32;
        let mut by_offset: Vec<u64> = Vec::with_capacity(WARP);
        for lane in 0..WARP {
            if !self.lane_active(lane) {
                continue;
            }
            if let Some(off) = offsets[lane] {
                let off_us = usize::try_from(off).expect("local offset fits");
                assert!(off_us < self.local_words_per_lane, "local OOB");
                out[lane] = self.local[lane * self.local_words_per_lane + off_us];
                participating += 1;
                by_offset.push(off);
            }
        }
        self.counters.record(InstClass::LdStLocal, 1, participating);
        self.counters.local_transactions += local_transactions(&mut by_offset, self.sector_words);
        out
    }

    /// Per-lane local-memory store; accounting mirrors [`ld_local`](Self::ld_local).
    pub fn st_local(&mut self, offsets: &Lanes<Option<u64>>, vals: &Lanes<u64>) {
        let mut participating = 0u32;
        let mut by_offset: Vec<u64> = Vec::with_capacity(WARP);
        for lane in 0..WARP {
            if !self.lane_active(lane) {
                continue;
            }
            if let Some(off) = offsets[lane] {
                let off_us = usize::try_from(off).expect("local offset fits");
                assert!(off_us < self.local_words_per_lane, "local OOB");
                self.local[lane * self.local_words_per_lane + off_us] = vals[lane];
                participating += 1;
                by_offset.push(off);
            }
        }
        self.counters.record(InstClass::LdStLocal, 1, participating);
        self.counters.local_transactions += local_transactions(&mut by_offset, self.sector_words);
    }

    /// Single-lane local load.
    pub fn ld_local_lane(&mut self, lane: usize, offset: u64) -> u64 {
        let mut offs: Lanes<Option<u64>> = [None; WARP];
        offs[lane] = Some(offset);
        self.ld_local(&offs)[lane]
    }

    /// Single-lane local store.
    pub fn st_local_lane(&mut self, lane: usize, offset: u64, val: u64) {
        let mut offs: Lanes<Option<u64>> = [None; WARP];
        let mut vals: Lanes<u64> = [0; WARP];
        offs[lane] = Some(offset);
        vals[lane] = val;
        self.st_local(&offs, &vals);
    }
}

/// Transactions for a local access: group by offset, each group of `n`
/// contiguous lanes needs `ceil(n / lanes_per_sector)` sectors.
fn local_transactions(offsets: &mut [u64], sector_words: u64) -> u64 {
    if offsets.is_empty() {
        return 0;
    }
    offsets.sort_unstable();
    let lanes_per_sector = sector_words.max(1);
    let mut tx = 0u64;
    let mut run_off = offsets[0];
    let mut run_len: u64 = 0;
    for &off in offsets.iter() {
        if off == run_off {
            run_len += 1;
        } else {
            tx += run_len.div_ceil(lanes_per_sector);
            run_off = off;
            run_len = 1;
        }
    }
    tx + run_len.div_ceil(lanes_per_sector)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::GlobalMem;

    fn with_ctx(f: impl FnOnce(&mut WarpCtx)) -> Counters {
        let mut mem = GlobalMem::new(1 << 16);
        // Preallocate a working buffer at addr 0.
        mem.alloc(4096).unwrap();
        let mut counters = Counters::new();
        let mut ctx = WarpCtx::new(0, &mut mem, &mut counters, 64, 32, None);
        f(&mut ctx);
        counters
    }

    #[test]
    fn coalesced_load_is_8_sectors() {
        // 32 lanes × 8 B contiguous = 256 B = 8 × 32 B sectors.
        let c = with_ctx(|ctx| {
            let addrs = ctx.lanes_from(|l| Some(l as u64));
            ctx.ld_global(&addrs);
        });
        assert_eq!(c.ldst_global_inst, 1);
        assert_eq!(c.global_ld_transactions, 8);
        assert_eq!(c.active_lane_slots, 32);
    }

    #[test]
    fn strided_load_is_32_sectors() {
        // Each lane in its own sector: worst case.
        let c = with_ctx(|ctx| {
            let addrs = ctx.lanes_from(|l| Some(l as u64 * 64));
            ctx.ld_global(&addrs);
        });
        assert_eq!(c.global_ld_transactions, 32);
    }

    #[test]
    fn same_word_load_is_1_sector() {
        let c = with_ctx(|ctx| {
            let addrs = ctx.lanes_from(|_| Some(0u64));
            ctx.ld_global(&addrs);
        });
        assert_eq!(c.global_ld_transactions, 1);
    }

    #[test]
    fn store_then_load_round_trips() {
        with_ctx(|ctx| {
            let addrs = ctx.lanes_from(|l| Some(l as u64));
            let vals = ctx.lanes_from(|l| l as u64 * 10);
            ctx.st_global(&addrs, &vals);
            let out = ctx.ld_global(&addrs);
            for l in 0..WARP {
                assert_eq!(out[l], l as u64 * 10);
            }
        });
    }

    #[test]
    fn masked_lanes_do_nothing() {
        with_ctx(|ctx| {
            let addrs = ctx.lanes_from(|l| Some(l as u64));
            let vals = ctx.lanes_from(|_| 7u64);
            ctx.push_mask(0x1); // only lane 0
            ctx.st_global(&addrs, &vals);
            ctx.pop_mask();
            let out = ctx.ld_global(&addrs);
            assert_eq!(out[0], 7);
            for v in &out[1..] {
                assert_eq!(*v, 0);
            }
        });
    }

    #[test]
    fn predication_accounting() {
        let c = with_ctx(|ctx| {
            ctx.push_mask(0x1);
            ctx.int_ops(10);
            ctx.pop_mask();
        });
        // push_mask's control inst ran with 32 active lanes; the 10 int ops
        // ran with 1 active lane.
        assert_eq!(c.int_inst, 10);
        assert_eq!(c.active_lane_slots, 32 + 10);
        assert_eq!(c.predicated_lane_slots, 310);
    }

    #[test]
    fn cas_only_first_succeeds_on_conflict() {
        with_ctx(|ctx| {
            // All 32 lanes CAS the same address from 0 to lane-specific value.
            let ops = ctx.lanes_from(|l| Some((5u64, 0u64, l as u64 + 100)));
            let old = ctx.atomic_cas(&ops);
            // Lane 0 wins (sees 0); all later lanes see lane 0's value.
            assert_eq!(old[0], 0);
            for l in 1..WARP {
                assert_eq!(old[l], 100, "lane {l}");
            }
            let addrs = ctx.lanes_from(|_| Some(5u64));
            assert_eq!(ctx.ld_global(&addrs)[0], 100);
        });
    }

    #[test]
    fn cas_distinct_addresses_all_succeed() {
        with_ctx(|ctx| {
            let ops = ctx.lanes_from(|l| Some((l as u64, 0u64, 1u64)));
            let old = ctx.atomic_cas(&ops);
            assert!(old.iter().all(|&o| o == 0));
        });
    }

    #[test]
    fn atomic_add_accumulates_all_lanes() {
        with_ctx(|ctx| {
            let ops = ctx.lanes_from(|_| Some((9u64, 1u64)));
            ctx.atomic_add(&ops);
            assert_eq!(ctx.ld_global_lane(0, 9), 32);
        });
    }

    #[test]
    fn shfl_broadcasts() {
        with_ctx(|ctx| {
            let vals = ctx.lanes_from(|l| l as u64);
            let out = ctx.shfl(&vals, 5);
            assert!(out.iter().all(|&v| v == 5));
        });
    }

    #[test]
    fn ballot_respects_mask() {
        with_ctx(|ctx| {
            let preds = ctx.lanes_from(|l| l % 2 == 0);
            ctx.push_mask(0xFF);
            let b = ctx.ballot(&preds);
            ctx.pop_mask();
            assert_eq!(b, 0b0101_0101);
        });
    }

    #[test]
    fn match_any_groups_equal_values() {
        with_ctx(|ctx| {
            let vals = ctx.lanes_from(|l| (l % 2) as u64);
            let m = ctx.match_any(&vals);
            let evens: u32 = (0..32).filter(|l| l % 2 == 0).map(|l| 1u32 << l).sum();
            let odds = !evens;
            for l in 0..WARP {
                assert_eq!(m[l], if l % 2 == 0 { evens } else { odds }, "lane {l}");
            }
        });
    }

    #[test]
    fn local_memory_round_trip_and_tx() {
        let c = with_ctx(|ctx| {
            let offs = ctx.lanes_from(|_| Some(3u64));
            let vals = ctx.lanes_from(|l| l as u64);
            ctx.st_local(&offs, &vals);
            let out = ctx.ld_local(&offs);
            for l in 0..WARP {
                assert_eq!(out[l], l as u64);
            }
        });
        // 32 lanes, same offset, 4 lanes/sector → 8 transactions each way.
        assert_eq!(c.local_transactions, 16);
        assert_eq!(c.ldst_local_inst, 2);
    }

    #[test]
    fn local_scattered_offsets_more_tx() {
        let c = with_ctx(|ctx| {
            let offs = ctx.lanes_from(|l| Some(l as u64)); // all distinct
            let vals = [0u64; WARP];
            ctx.st_local(&offs, &vals);
        });
        // 32 distinct offsets → 32 transactions.
        assert_eq!(c.local_transactions, 32);
    }

    #[test]
    #[should_panic(expected = "pop_mask without push_mask")]
    fn unbalanced_pop_panics() {
        with_ctx(|ctx| ctx.pop_mask());
    }

    #[test]
    fn first_active_lane() {
        with_ctx(|ctx| {
            assert_eq!(ctx.first_active_lane(), Some(0));
            ctx.push_mask(0b1100);
            assert_eq!(ctx.first_active_lane(), Some(2));
            ctx.pop_mask();
        });
    }

    mod sanitized {
        use super::*;
        use crate::sanitizer::{Sanitizer, SanitizerConfig, SanitizerKind};

        fn with_sanitized_ctx(f: impl FnOnce(&mut WarpCtx)) -> (Sanitizer, Counters) {
            let mut mem = GlobalMem::new(1 << 16);
            mem.alloc(4096).unwrap();
            let mut counters = Counters::new();
            let mut s = Sanitizer::new(SanitizerConfig::full());
            s.on_alloc(0, 4096, true);
            {
                let mut ctx = WarpCtx::new(0, &mut mem, &mut counters, 64, 32, Some(&mut s));
                f(&mut ctx);
                ctx.finish_warp();
            }
            (s, counters)
        }

        #[test]
        fn oob_load_is_dropped_but_still_metered() {
            // Address 5000 is past the 4096-word arena; the raw GlobalMem
            // would panic on it — the sanitizer reports and skips instead.
            let (s, c) = with_sanitized_ctx(|ctx| {
                let out = ctx.ld_global_lane(0, 5000);
                assert_eq!(out, 0);
            });
            assert_eq!(s.summary().count(SanitizerKind::OutOfBounds), 1);
            assert_eq!(c.ldst_global_inst, 1);
            assert_eq!(c.global_ld_transactions, 1);
        }

        #[test]
        fn clean_kernel_reports_nothing() {
            let (s, _) = with_sanitized_ctx(|ctx| {
                let addrs = ctx.lanes_from(|l| Some(l as u64));
                let vals = ctx.lanes_from(|l| l as u64);
                ctx.st_global(&addrs, &vals);
                ctx.syncwarp();
                ctx.ld_global(&addrs);
                let ops = ctx.lanes_from(|_| Some((100u64, 1u64)));
                ctx.atomic_add(&ops);
            });
            assert!(s.summary().is_clean(), "{}", s.summary().render());
        }

        #[test]
        fn same_word_stores_race_without_sync() {
            let (s, _) = with_sanitized_ctx(|ctx| {
                let addrs = ctx.lanes_from(|_| Some(7u64));
                let vals = ctx.lanes_from(|l| l as u64);
                ctx.st_global(&addrs, &vals);
            });
            assert!(s.summary().count(SanitizerKind::LaneRace) > 0);
        }

        #[test]
        fn unpopped_mask_reported_at_exit() {
            let (s, _) = with_sanitized_ctx(|ctx| {
                ctx.push_mask(0xF);
            });
            assert_eq!(s.summary().count(SanitizerKind::MaskStackImbalance), 1);
        }

        #[test]
        fn shfl_from_masked_out_lane_reported() {
            let (s, _) = with_sanitized_ctx(|ctx| {
                let vals = ctx.lanes_from(|l| l as u64);
                ctx.push_mask(0b10); // lane 1 only; src lane 0 is inactive
                ctx.shfl(&vals, 0);
                ctx.pop_mask();
            });
            assert_eq!(s.summary().count(SanitizerKind::ShuffleInactiveSrc), 1);
        }
    }
}
