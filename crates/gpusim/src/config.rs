//! Device configuration: V100-flavoured defaults, everything tunable.

use crate::fault::FaultPlan;
use crate::sanitizer::SanitizerConfig;
use serde::{Deserialize, Serialize};

/// Hardware parameters of the simulated device.
///
/// Defaults model the NVIDIA V100 used on Summit and Cori-GPU in the paper.
/// The derived peak — `sms × schedulers_per_sm × clock_ghz` — is 489.6 warp
/// GIPS, the "Theoretical Peak" line of the paper's Figures 8 and 9.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Human-readable device name.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sms: u32,
    /// Warp schedulers per SM (each can issue one warp instruction/cycle).
    pub schedulers_per_sm: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Global (HBM) bandwidth in GB/s.
    pub dram_gbps: f64,
    /// Average global-memory latency in cycles.
    pub dram_latency_cycles: u32,
    /// Maximum warps resident per SM (occupancy ceiling).
    pub max_resident_warps_per_sm: u32,
    /// Global memory sector (transaction) size in bytes.
    pub sector_bytes: u32,
    /// Device global memory capacity in bytes (V100: 16 GB).
    pub global_mem_bytes: u64,
    /// Fixed kernel-launch overhead in microseconds (driver + queueing).
    pub launch_overhead_us: f64,
    /// L1/shared aggregate bandwidth in transactions per cycle per SM.
    pub l1_tx_per_cycle_per_sm: f64,
    /// Deterministic fault-injection schedule (empty = healthy device).
    pub fault_plan: FaultPlan,
    /// `gpucheck` sanitizer analyses (all off by default — zero overhead).
    #[serde(default)]
    pub sanitizer: SanitizerConfig,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig::v100()
    }
}

impl DeviceConfig {
    /// NVIDIA V100 (SXM2 16 GB), the GPU in both test systems of the paper.
    pub fn v100() -> DeviceConfig {
        DeviceConfig {
            name: "V100-like".to_string(),
            sms: 80,
            schedulers_per_sm: 4,
            clock_ghz: 1.53,
            dram_gbps: 900.0,
            dram_latency_cycles: 450,
            max_resident_warps_per_sm: 64,
            sector_bytes: 32,
            global_mem_bytes: 16 * (1 << 30),
            launch_overhead_us: 10.0,
            l1_tx_per_cycle_per_sm: 4.0,
            fault_plan: FaultPlan::none(),
            sanitizer: SanitizerConfig::off(),
        }
    }

    /// A deliberately tiny device for fast unit tests.
    pub fn tiny() -> DeviceConfig {
        DeviceConfig {
            name: "tiny-test".to_string(),
            sms: 2,
            schedulers_per_sm: 2,
            clock_ghz: 1.0,
            dram_gbps: 100.0,
            dram_latency_cycles: 100,
            max_resident_warps_per_sm: 8,
            sector_bytes: 32,
            global_mem_bytes: 1 << 24,
            launch_overhead_us: 1.0,
            l1_tx_per_cycle_per_sm: 2.0,
            fault_plan: FaultPlan::none(),
            sanitizer: SanitizerConfig::off(),
        }
    }

    /// Attach a fault-injection schedule (builder style).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> DeviceConfig {
        self.fault_plan = plan;
        self
    }

    /// Enable `gpucheck` analyses (builder style).
    pub fn with_sanitizer(mut self, sanitizer: SanitizerConfig) -> DeviceConfig {
        self.sanitizer = sanitizer;
        self
    }

    /// Theoretical peak warp instructions per second (the roofline's flat
    /// ceiling), in GIPS.
    pub fn peak_warp_gips(&self) -> f64 {
        f64::from(self.sms) * f64::from(self.schedulers_per_sm) * self.clock_ghz
    }

    /// Global-memory words (u64) the simulator will allow allocating.
    pub fn capacity_words(&self) -> u64 {
        self.global_mem_bytes / 8
    }

    /// DRAM bandwidth in bytes per core cycle.
    pub fn dram_bytes_per_cycle(&self) -> f64 {
        self.dram_gbps / self.clock_ghz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_peak_matches_paper() {
        let c = DeviceConfig::v100();
        assert!((c.peak_warp_gips() - 489.6).abs() < 1e-9);
    }

    #[test]
    fn capacity_words() {
        let c = DeviceConfig::v100();
        assert_eq!(c.capacity_words(), 2 * (1 << 30));
    }
}
