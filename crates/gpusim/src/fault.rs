//! Deterministic fault injection for the simulated device.
//!
//! A [`FaultPlan`] is attached to a [`DeviceConfig`](crate::DeviceConfig)
//! and armed when the [`Device`](crate::Device) is constructed. Faults fire
//! at exact points in the device's lifetime — the Nth allocation attempt or
//! the Nth launch attempt — so a run with a given plan replays identically,
//! which is what makes recovery paths testable.
//!
//! The fault model mirrors how real CUDA devices fail:
//!
//! * [`Fault::SlabOom`] — an allocation is denied even though capacity
//!   remains (fragmentation / a neighbouring process on a shared GPU).
//!   Non-fatal: the device stays usable; callers shrink and retry.
//! * [`Fault::KernelHang`] — a launch never completes and the watchdog
//!   kills it after `after_cycles`. Fatal to the context: the device is
//!   poisoned until reset, like a CUDA sticky error.
//! * [`Fault::BitFlip`] — an uncorrectable-ECC-style corruption of one
//!   word, *detected* at the next launch boundary. The launch is failed
//!   and the device poisoned; detection (rather than silent corruption) is
//!   the ECC contract on data-center GPUs, and it is what makes
//!   fault-free-identical recovery possible for the layers above.

use serde::{Deserialize, Serialize};

/// One injected fault, pinned to a deterministic firing point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fault {
    /// Deny the `at_alloc`-th allocation attempt (0-based, counted over the
    /// device's lifetime, including denied attempts).
    SlabOom {
        /// 0-based allocation index at which the denial fires.
        at_alloc: u64,
    },
    /// Hang the `at_launch`-th launch attempt (0-based); the watchdog
    /// reports failure after `after_cycles` simulated core cycles, which
    /// are charged to the device's accumulated time.
    KernelHang {
        /// 0-based launch index at which the hang fires.
        at_launch: u64,
        /// Simulated core cycles the watchdog waits before killing it.
        after_cycles: u64,
    },
    /// Corrupt the word at `addr` and fail the `at_launch`-th launch
    /// attempt with a detected-corruption error.
    BitFlip {
        /// 0-based launch index at which the corruption is detected.
        at_launch: u64,
        /// Device address of the corrupted word.
        addr: u64,
    },
}

/// A deterministic schedule of faults for one device.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The faults, in no particular order; each fires at its own index.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty plan: a healthy device.
    pub fn none() -> FaultPlan {
        FaultPlan { faults: Vec::new() }
    }

    /// A plan with a single fault.
    pub fn single(fault: Fault) -> FaultPlan {
        FaultPlan { faults: vec![fault] }
    }

    /// Whether the plan injects no faults at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Derive a plan from a seed: `n_faults` faults with kinds and firing
    /// points drawn from a SplitMix64 stream over the first `horizon`
    /// allocation/launch indices. Same seed ⇒ same plan, always.
    pub fn from_seed(seed: u64, n_faults: usize, horizon: u64) -> FaultPlan {
        let horizon = horizon.max(1);
        let mut state = seed;
        let mut next = move || -> u64 {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let faults = (0..n_faults)
            .map(|_| match next() % 3 {
                0 => Fault::SlabOom { at_alloc: next() % horizon },
                1 => Fault::KernelHang {
                    at_launch: next() % horizon,
                    after_cycles: 1 + next() % 1_000_000,
                },
                _ => Fault::BitFlip { at_launch: next() % horizon, addr: next() % (1 << 20) },
            })
            .collect();
        FaultPlan { faults }
    }
}

/// Why a kernel launch failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaunchError {
    /// The watchdog killed a hung kernel after `after_cycles` cycles. The
    /// device context is lost; reset before launching again.
    Hang {
        /// 0-based index of the launch that hung.
        launch_idx: u64,
        /// Simulated cycles the watchdog charged before the kill.
        after_cycles: u64,
    },
    /// Uncorrectable memory corruption detected at the launch boundary.
    /// The device context is lost; reset before launching again.
    MemCorruption {
        /// 0-based index of the launch that hit the corruption.
        launch_idx: u64,
        /// Device address of the corrupted word.
        addr: u64,
    },
    /// Launch attempted on a device poisoned by an earlier fatal fault.
    DeviceLost {
        /// 0-based index of the rejected launch.
        launch_idx: u64,
    },
}

impl LaunchError {
    /// All current launch failures poison the context; callers must
    /// [`reset_device`](crate::Device::reset_device) before relaunching.
    pub fn needs_reset(&self) -> bool {
        true
    }

    /// The launch attempt index the error fired on.
    pub fn launch_idx(&self) -> u64 {
        match *self {
            LaunchError::Hang { launch_idx, .. }
            | LaunchError::MemCorruption { launch_idx, .. }
            | LaunchError::DeviceLost { launch_idx } => launch_idx,
        }
    }
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::Hang { launch_idx, after_cycles } => write!(
                f,
                "kernel launch {launch_idx} hung; watchdog fired after {after_cycles} cycles"
            ),
            LaunchError::MemCorruption { launch_idx, addr } => write!(
                f,
                "uncorrectable memory corruption at word {addr} detected at launch {launch_idx}"
            ),
            LaunchError::DeviceLost { launch_idx } => {
                write!(f, "launch {launch_idx} on a lost device context (reset required)")
            }
        }
    }
}

impl std::error::Error for LaunchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_seed_is_deterministic() {
        let a = FaultPlan::from_seed(7, 5, 100);
        let b = FaultPlan::from_seed(7, 5, 100);
        assert_eq!(a, b);
        assert_eq!(a.faults.len(), 5);
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(FaultPlan::from_seed(1, 8, 100), FaultPlan::from_seed(2, 8, 100));
    }

    #[test]
    fn empty_plan() {
        assert!(FaultPlan::none().is_empty());
        assert!(!FaultPlan::single(Fault::SlabOom { at_alloc: 0 }).is_empty());
    }

    #[test]
    fn launch_error_reports_index() {
        let e = LaunchError::Hang { launch_idx: 3, after_cycles: 10 };
        assert_eq!(e.launch_idx(), 3);
        assert!(e.needs_reset());
        assert!(e.to_string().contains("hung"));
    }
}
