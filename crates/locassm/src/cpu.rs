//! CPU reference engine: Algorithms 1 and 2 of the paper, parallel over
//! tasks with rayon (MetaHipMer2 "makes use of all the available cores on a
//! node when using the CPU local-assembly module").

use crate::params::{KShift, LocalAssemblyParams, WalkState};
use crate::task::{ExtResult, ExtTask, TaskOutcome};
use bioseq::{DnaSeq, Read};
use kmer::{ExtCounts, ExtVerdict, Kmer, KmerIter};
use rayon::prelude::*;
use std::collections::{HashMap, HashSet};

/// Algorithm 1: build the k-mer → extension table from candidate reads.
///
/// Keys are read k-mers *as oriented* (no canonicalization — candidate reads
/// are already oriented to the contig); the vote is the base following the
/// k-mer, at that base's quality.
pub fn build_ext_table(reads: &[Read], k: usize) -> HashMap<Kmer, ExtCounts> {
    let mut table: HashMap<Kmer, ExtCounts> = HashMap::new();
    for read in reads {
        if read.len() < k + 1 {
            continue;
        }
        for (pos, km) in KmerIter::new(&read.seq, k) {
            if pos + k >= read.len() {
                break; // final k-mer has no following base
            }
            table.entry(km).or_default().add_vote(read.seq.base(pos + k), read.quals[pos + k]);
        }
    }
    table
}

/// Result of one mer-walk.
#[derive(Debug, Clone, PartialEq)]
pub struct WalkResult {
    /// Bases appended by this walk.
    pub appended: DnaSeq,
    /// Why the walk stopped.
    pub state: WalkState,
}

/// Algorithm 2: walk rightward from the end of `seq`, appending credible
/// extensions until dead end / fork / loop / step cap.
pub fn mer_walk(
    seq: &DnaSeq,
    table: &HashMap<Kmer, ExtCounts>,
    k: usize,
    max_steps: usize,
    min_viable: u16,
) -> WalkResult {
    if seq.len() < k {
        return WalkResult { appended: DnaSeq::new(), state: WalkState::DeadEnd };
    }
    let mut cur = Kmer::from_seq(seq, seq.len() - k, k);
    let mut visited: HashSet<Kmer> = HashSet::new();
    let mut appended = DnaSeq::new();
    for _ in 0..max_steps {
        if !visited.insert(cur) {
            return WalkResult { appended, state: WalkState::Loop };
        }
        let Some(counts) = table.get(&cur) else {
            return WalkResult { appended, state: WalkState::DeadEnd };
        };
        match counts.classify(min_viable) {
            ExtVerdict::Extend(b) => {
                appended.push(b);
                cur = cur.shift_right(b);
            }
            ExtVerdict::DeadEnd => return WalkResult { appended, state: WalkState::DeadEnd },
            ExtVerdict::Fork => return WalkResult { appended, state: WalkState::Fork },
        }
    }
    WalkResult { appended, state: WalkState::MaxLen }
}

/// Extend one task to completion: iterate table build + walk under the
/// k-shift controller, growing the working tail so later (larger-k) walks
/// continue from the already-extended end.
pub fn extend_end_cpu(task: &ExtTask, params: &LocalAssemblyParams) -> ExtResult {
    if task.reads.is_empty() {
        return ExtResult::empty();
    }
    let mut work = task.tail.clone();
    let orig_len = work.len();
    let mut ks = KShift::new(params.k_list.len(), params.start_k_idx);
    #[allow(unused_assignments)]
    let mut final_state = WalkState::DeadEnd;
    let mut iterations = 0u32;
    loop {
        let k = params.k_list[ks.k_idx()];
        iterations += 1;
        let budget = params.max_total_extension.saturating_sub(work.len() - orig_len);
        let walk = if budget == 0 || work.len() < k {
            // Nothing can be appended at this k: a dead end for the
            // controller.
            WalkResult { appended: DnaSeq::new(), state: WalkState::DeadEnd }
        } else {
            let table = build_ext_table(&task.reads, k);
            mer_walk(&work, &table, k, params.max_walk_len.min(budget), params.min_viable)
        };
        work.extend_from(&walk.appended);
        final_state = walk.state;
        if !ks.on_walk(walk.state) {
            break;
        }
    }
    ExtResult { appended: work.subseq(orig_len, work.len() - orig_len), final_state, iterations }
}

/// Extend every task in parallel (the per-node CPU engine).
pub fn extend_all_cpu(tasks: &[ExtTask], params: &LocalAssemblyParams) -> Vec<ExtResult> {
    tasks.par_iter().map(|t| extend_end_cpu(t, params)).collect()
}

/// Extend every task in parallel with per-task panic isolation: a task
/// whose extension panics becomes [`TaskOutcome::Failed`] instead of
/// aborting the whole bin.
pub fn extend_all_cpu_isolated(
    tasks: &[ExtTask],
    params: &LocalAssemblyParams,
) -> Vec<TaskOutcome> {
    tasks.par_iter().map(|t| extend_one_isolated(t, params)).collect()
}

/// [`extend_all_cpu_isolated`] over borrowed tasks, so schedulers can hand
/// the CPU engine a share by index without deep-cloning task data.
pub fn extend_cpu_isolated_refs(
    tasks: &[&ExtTask],
    params: &LocalAssemblyParams,
) -> Vec<TaskOutcome> {
    tasks.par_iter().map(|t| extend_one_isolated(t, params)).collect()
}

fn extend_one_isolated(t: &ExtTask, params: &LocalAssemblyParams) -> TaskOutcome {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| extend_end_cpu(t, params))) {
        Ok(r) => TaskOutcome::Done(r),
        Err(payload) => {
            TaskOutcome::Failed { contig: t.contig, reason: crate::task::panic_reason(payload) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn seq(s: &str) -> DnaSeq {
        DnaSeq::from_str_strict(s).unwrap()
    }

    fn random_seq(len: usize, sd: u64) -> DnaSeq {
        let mut rng = StdRng::seed_from_u64(sd);
        (0..len).map(|_| bioseq::Base::from_code(rng.gen_range(0..4))).collect()
    }

    /// Reads tiling `genome[from..]`, oriented forward, 2 copies each so
    /// votes pass the min_viable=2 gate.
    fn tiling_reads(genome: &DnaSeq, from: usize, read_len: usize, stride: usize) -> Vec<Read> {
        let mut reads = Vec::new();
        let mut pos = from;
        while pos + read_len <= genome.len() {
            for copy in 0..2 {
                reads.push(Read::with_uniform_qual(
                    format!("r{pos}c{copy}"),
                    genome.subseq(pos, read_len),
                    35,
                ));
            }
            pos += stride;
        }
        reads
    }

    #[test]
    fn ext_table_votes() {
        let reads = vec![
            Read::with_uniform_qual("a", seq("ACGTAG"), 35),
            Read::with_uniform_qual("b", seq("ACGTAG"), 35),
        ];
        let table = build_ext_table(&reads, 4);
        let km = Kmer::from_seq(&seq("ACGT"), 0, 4);
        let counts = table.get(&km).expect("ACGT present");
        assert_eq!(counts.hi_count(bioseq::Base::A), 2);
        assert_eq!(counts.classify(2), ExtVerdict::Extend(bioseq::Base::A));
        // Final k-mer GTAG has no following base: not in table.
        assert!(!table.contains_key(&Kmer::from_seq(&seq("GTAG"), 0, 4)));
    }

    #[test]
    fn walk_follows_unambiguous_path() {
        // Genome region; contig ends at 60; reads cover 40..120.
        let genome = random_seq(120, 5);
        let contig = genome.subseq(0, 60);
        let reads = tiling_reads(&genome, 30, 40, 2);
        let table = build_ext_table(&reads, 15);
        let walk = mer_walk(&contig, &table, 15, 100, 2);
        assert!(walk.appended.len() >= 30, "only appended {}", walk.appended.len());
        // The appended bases must match the genome continuation.
        let expected = genome.subseq(60, walk.appended.len());
        assert_eq!(walk.appended, expected);
    }

    #[test]
    fn walk_stops_at_fork() {
        // Two read families agreeing on a prefix then diverging.
        let shared = random_seq(30, 77);
        let mut a = shared.clone();
        a.extend_from(&random_seq(20, 78));
        let mut b = shared.clone();
        b.extend_from(&random_seq(20, 79));
        let mut reads = Vec::new();
        for copy in 0..3 {
            reads.push(Read::with_uniform_qual(format!("a{copy}"), a.clone(), 35));
            reads.push(Read::with_uniform_qual(format!("b{copy}"), b.clone(), 35));
        }
        let contig = shared.subseq(0, 20);
        let table = build_ext_table(&reads, 15);
        let walk = mer_walk(&contig, &table, 15, 100, 2);
        assert_eq!(walk.state, WalkState::Fork);
        // Walked to the divergence point: appended ≈ shared remainder.
        assert_eq!(walk.appended.len(), shared.len() - 20);
    }

    #[test]
    fn walk_detects_loop() {
        // A read that cycles: repeat unit shorter than read, k smaller than
        // unit → the walk revisits a k-mer.
        let unit = seq("ACGGTCAT");
        let mut cyc = DnaSeq::new();
        for _ in 0..8 {
            cyc.extend_from(&unit);
        }
        let reads = vec![
            Read::with_uniform_qual("c1", cyc.clone(), 35),
            Read::with_uniform_qual("c2", cyc.clone(), 35),
        ];
        let table = build_ext_table(&reads, 6);
        let contig = cyc.subseq(0, 10);
        let walk = mer_walk(&contig, &table, 6, 1000, 2);
        assert_eq!(walk.state, WalkState::Loop);
    }

    #[test]
    fn walk_short_contig_dead_end() {
        let table = HashMap::new();
        let walk = mer_walk(&seq("ACG"), &table, 15, 10, 2);
        assert_eq!(walk.state, WalkState::DeadEnd);
        assert!(walk.appended.is_empty());
    }

    #[test]
    fn max_steps_reported() {
        // Self-extending homopolymer-ish path that never forks within the
        // cap: AAAA→A forever (same k-mer every step → loop actually).
        // Use a long non-repeating genome and a tiny step cap instead.
        let genome = random_seq(200, 9);
        let contig = genome.subseq(0, 50);
        let reads = tiling_reads(&genome, 20, 40, 2);
        let table = build_ext_table(&reads, 15);
        let walk = mer_walk(&contig, &table, 15, 5, 2);
        assert_eq!(walk.state, WalkState::MaxLen);
        assert_eq!(walk.appended.len(), 5);
    }

    #[test]
    fn extend_end_zero_reads_is_noop() {
        let task = ExtTask {
            contig: 0,
            end: crate::task::ContigEnd::Right,
            tail: random_seq(100, 3),
            reads: vec![],
        };
        let r = extend_end_cpu(&task, &LocalAssemblyParams::for_tests());
        assert!(r.appended.is_empty());
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn extend_end_recovers_genome_continuation() {
        let genome = random_seq(400, 11);
        let contig = genome.subseq(0, 150);
        let reads = tiling_reads(&genome, 100, 60, 3);
        let task =
            ExtTask { contig: 0, end: crate::task::ContigEnd::Right, tail: contig.clone(), reads };
        let params = LocalAssemblyParams::for_tests();
        let r = extend_end_cpu(&task, &params);
        assert!(r.appended.len() >= 50, "appended {}", r.appended.len());
        assert_eq!(r.appended, genome.subseq(150, r.appended.len()));
        assert!(r.iterations >= 1);
    }

    #[test]
    fn extension_capped_at_max_total() {
        let genome = random_seq(2000, 13);
        let contig = genome.subseq(0, 100);
        let reads = tiling_reads(&genome, 50, 80, 2);
        let mut params = LocalAssemblyParams::for_tests();
        params.max_total_extension = 40;
        params.max_walk_len = 100;
        let task = ExtTask { contig: 0, end: crate::task::ContigEnd::Right, tail: contig, reads };
        let r = extend_end_cpu(&task, &params);
        assert!(r.appended.len() <= 40, "cap violated: {}", r.appended.len());
    }

    #[test]
    fn parallel_matches_serial() {
        let genome = random_seq(600, 17);
        let mut tasks = Vec::new();
        for i in 0..8 {
            let start = i * 40;
            tasks.push(ExtTask {
                contig: i,
                end: crate::task::ContigEnd::Right,
                tail: genome.subseq(start, 120),
                reads: tiling_reads(&genome, start + 60, 80, 4),
            });
        }
        let params = LocalAssemblyParams::for_tests();
        let par = extend_all_cpu(&tasks, &params);
        let ser: Vec<ExtResult> = tasks.iter().map(|t| extend_end_cpu(t, &params)).collect();
        assert_eq!(par, ser);
    }
}
