//! Aggregate telemetry over a batch of extension results: how walks
//! terminated, how many k-shift iterations they took, and how much
//! sequence was gained — the numbers MetaHipMer2 prints per local-assembly
//! round and the inputs to the k-shift ablation.

use crate::params::WalkState;
use crate::task::ExtResult;
use serde::{Deserialize, Serialize};

/// Distribution of outcomes across a result batch.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExtSummary {
    /// Total tasks summarized.
    pub tasks: usize,
    /// Tasks that appended at least one base.
    pub extended: usize,
    /// Total bases appended.
    pub bases_appended: usize,
    /// Longest single extension.
    pub longest_extension: usize,
    /// Final-state counts: [DeadEnd, Fork, Loop, MaxLen].
    pub by_state: [usize; 4],
    /// Histogram of k-shift iteration counts (index = iterations, capped).
    pub iterations_hist: Vec<usize>,
}

/// Cap for the iterations histogram (k schedules are short).
const MAX_ITER_BUCKET: usize = 16;

/// Summarize a result batch.
pub fn summarize(results: &[ExtResult]) -> ExtSummary {
    let mut s = ExtSummary {
        tasks: results.len(),
        iterations_hist: vec![0; MAX_ITER_BUCKET + 1],
        ..Default::default()
    };
    for r in results {
        if !r.appended.is_empty() {
            s.extended += 1;
        }
        s.bases_appended += r.appended.len();
        s.longest_extension = s.longest_extension.max(r.appended.len());
        s.by_state[r.final_state.to_u64() as usize] += 1;
        let b = (r.iterations as usize).min(MAX_ITER_BUCKET);
        s.iterations_hist[b] += 1;
    }
    s
}

impl ExtSummary {
    /// Tasks that ended in the given state.
    pub fn state_count(&self, state: WalkState) -> usize {
        self.by_state[state.to_u64() as usize]
    }

    /// Mean k-shift iterations per task (0 for an empty batch).
    pub fn mean_iterations(&self) -> f64 {
        if self.tasks == 0 {
            return 0.0;
        }
        let total: usize = self.iterations_hist.iter().enumerate().map(|(i, &c)| i * c).sum();
        total as f64 / self.tasks as f64
    }

    /// One-line rendering.
    pub fn render(&self) -> String {
        format!(
            "{} tasks: {} extended (+{} bp, longest {}), states D/F/L/M = {}/{}/{}/{}, mean {:.1} k-iterations",
            self.tasks,
            self.extended,
            self.bases_appended,
            self.longest_extension,
            self.by_state[0],
            self.by_state[1],
            self.by_state[2],
            self.by_state[3],
            self.mean_iterations(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioseq::DnaSeq;

    fn res(appended: &str, state: WalkState, iterations: u32) -> ExtResult {
        ExtResult {
            appended: DnaSeq::from_str_strict(appended).unwrap(),
            final_state: state,
            iterations,
        }
    }

    #[test]
    fn summarizes_mixed_batch() {
        let results = vec![
            res("ACGT", WalkState::Fork, 2),
            res("", WalkState::DeadEnd, 1),
            res("AAAAAA", WalkState::DeadEnd, 3),
            res("", WalkState::Loop, 2),
        ];
        let s = summarize(&results);
        assert_eq!(s.tasks, 4);
        assert_eq!(s.extended, 2);
        assert_eq!(s.bases_appended, 10);
        assert_eq!(s.longest_extension, 6);
        assert_eq!(s.state_count(WalkState::DeadEnd), 2);
        assert_eq!(s.state_count(WalkState::Fork), 1);
        assert_eq!(s.state_count(WalkState::Loop), 1);
        assert_eq!(s.state_count(WalkState::MaxLen), 0);
        assert!((s.mean_iterations() - 2.0).abs() < 1e-12);
        assert!(s.render().contains("2 extended"));
    }

    #[test]
    fn empty_batch() {
        let s = summarize(&[]);
        assert_eq!(s.tasks, 0);
        assert_eq!(s.mean_iterations(), 0.0);
    }

    #[test]
    fn iteration_overflow_bucket() {
        let results = vec![res("", WalkState::DeadEnd, 999)];
        let s = summarize(&results);
        assert_eq!(s.iterations_hist[16], 1);
    }
}
