//! Online rate calibration for the overlap scheduler (ROADMAP:
//! "cost-model feedback").
//!
//! The work-stealing scheduler of [`crate::schedule`] models each engine
//! with a virtual clock; the CPU clock needs a throughput figure
//! (estimated device-words per second) to convert batch cost into model
//! seconds. PR 3 shipped that figure as a hard-coded constant
//! (`StealConfig::cpu_words_per_s = 5e7`), which is exactly the kind of
//! magic number MHM2's own cost model recalibrates per run. This module
//! closes the loop: each engine's rate is an **EWMA over observed
//! per-batch rates**, seeded from the configured constant (now demoted to
//! a seed/override) and updated after every batch:
//!
//! ```text
//! rate ← (1 − α)·rate + α·(batch_words / observed_batch_seconds)
//! ```
//!
//! The GPU side observes [`crate::gpu::GpuRunStats::wall_s`] (simulated
//! exec + modeled pack − double-buffer savings); the CPU side observes
//! either measured host wall seconds or, when
//! [`CalibrationConfig::cpu_true_words_per_s`] is set, a *modeled* time at
//! that rate — the deterministic observation source the tests and the
//! fig11 ablation use, so convergence claims are reproducible.
//!
//! After every accepted CPU observation the scheduler **rebases** the CPU
//! virtual clock to `words_done / rate`, so a badly seeded early estimate
//! cannot permanently poison the schedule: the clock always reflects the
//! *current* belief about elapsed CPU-engine time, not a sum of stale
//! per-batch guesses. (The GPU clock advances by direct observation and
//! needs no rebase.)

use serde::{Deserialize, Serialize};

/// EWMA throughput estimator in estimated device-words per second.
#[derive(Debug, Clone)]
pub struct RateEstimator {
    seed: Option<f64>,
    rate: Option<f64>,
    alpha: f64,
    updates: u64,
}

impl RateEstimator {
    /// Estimator seeded at `rate` words/s (the CPU engine: its seed is the
    /// configured `cpu_words_per_s`).
    pub fn seeded(rate: f64, alpha: f64) -> RateEstimator {
        RateEstimator { seed: Some(rate), rate: Some(rate), alpha, updates: 0 }
    }

    /// Estimator with no prior: the first accepted observation becomes the
    /// estimate (the GPU engine: its clock never needed a rate constant,
    /// so there is nothing to seed from).
    pub fn unseeded(alpha: f64) -> RateEstimator {
        RateEstimator { seed: None, rate: None, alpha, updates: 0 }
    }

    /// Feed one observed batch: `words` of estimated cost retired in
    /// `seconds`. Degenerate observations (zero words, non-positive or
    /// non-finite seconds, non-finite rate) are rejected — a paused or
    /// faulted batch must not poison the estimate.
    pub fn observe(&mut self, words: u64, seconds: f64) {
        if words == 0 || !seconds.is_finite() || seconds <= 0.0 {
            return;
        }
        let obs = words as f64 / seconds;
        if !obs.is_finite() || obs <= 0.0 {
            return;
        }
        self.rate = Some(match self.rate {
            None => obs,
            Some(r) => (1.0 - self.alpha) * r + self.alpha * obs,
        });
        self.updates += 1;
    }

    /// Current estimate, or `fallback` when nothing has been seeded or
    /// observed yet.
    pub fn rate_or(&self, fallback: f64) -> f64 {
        self.rate.unwrap_or(fallback)
    }

    /// The seed rate, if any.
    pub fn seed(&self) -> Option<f64> {
        self.seed
    }

    /// Accepted observations so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }
}

/// Knobs of the calibration loop, carried inside
/// [`crate::schedule::StealConfig`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CalibrationConfig {
    /// Feed observed batch times back into the virtual clocks. Off, the
    /// scheduler behaves exactly as PR 3: the CPU clock runs at the
    /// constant seed rate for the whole run.
    pub enabled: bool,
    /// EWMA smoothing weight in `(0, 1]`: the fraction of each new
    /// observation blended into the estimate. 1.0 = trust only the latest
    /// batch; small values smooth noisy wall clocks at the cost of slower
    /// convergence.
    pub alpha: f64,
    /// Deterministic CPU observation source: when set, a CPU batch of `w`
    /// words is "observed" to take `w / cpu_true_words_per_s` seconds
    /// instead of its measured host wall time. This is how tests and the
    /// fig11 calibration ablation model a known ground-truth CPU rate
    /// (mis-seed the estimator, let it converge to this); production runs
    /// leave it `None` and calibrate from real wall clocks.
    pub cpu_true_words_per_s: Option<f64>,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        CalibrationConfig { enabled: true, alpha: 0.5, cpu_true_words_per_s: None }
    }
}

impl CalibrationConfig {
    /// Calibration disabled: the scheduler trusts the configured constant
    /// (the explicit-override path of `--cpu-words-per-s`).
    pub fn off() -> CalibrationConfig {
        CalibrationConfig { enabled: false, ..CalibrationConfig::default() }
    }

    /// Reject out-of-domain knobs with a description of what is wrong.
    pub fn validate(&self) -> Result<(), String> {
        if !self.alpha.is_finite() || !(0.0..=1.0).contains(&self.alpha) || self.alpha == 0.0 {
            return Err(format!("calibration alpha must be in (0, 1], got {}", self.alpha));
        }
        if let Some(r) = self.cpu_true_words_per_s {
            if !r.is_finite() || r <= 0.0 {
                return Err(format!("cpu_true_words_per_s must be positive and finite, got {r}"));
            }
        }
        Ok(())
    }
}

/// What the calibration loop did during one scheduled run — threaded
/// through [`crate::schedule::ScheduleReport`] to the `mhm` report/CLI and
/// the fig11 harness.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CalibrationReport {
    /// Whether the feedback loop was active (off = the run used the seed
    /// rate as a constant, and the fields below only record observations).
    pub enabled: bool,
    /// The CPU rate the run was seeded with (words/s).
    pub cpu_seed_words_per_s: f64,
    /// Converged CPU rate estimate at the end of the run.
    pub cpu_words_per_s: f64,
    /// Converged GPU rate estimate (words/s over `wall_s`); 0.0 when the
    /// GPU engine never completed a batch.
    pub gpu_words_per_s: f64,
    /// Accepted CPU observations.
    pub cpu_updates: u64,
    /// Accepted GPU observations.
    pub gpu_updates: u64,
    /// Realized CPU-engine seconds: the sum of observed batch times
    /// (modeled at the true rate when one is configured, measured wall
    /// otherwise).
    pub cpu_realized_s: f64,
    /// Realized GPU-engine seconds (sum of observed `wall_s` per batch).
    pub gpu_realized_s: f64,
    /// Relative error of the virtual-clock makespan against the realized
    /// makespan: |model − realized| / realized. Small values mean the
    /// calibrated clocks track reality.
    pub rel_err_vs_realized: f64,
}

impl CalibrationReport {
    /// Realized overlap makespan: both engines run concurrently, so the
    /// run "really" ends when the slower engine's observed time does.
    pub fn realized_makespan_s(&self) -> f64 {
        self.cpu_realized_s.max(self.gpu_realized_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_estimator_converges_monotonically_to_truth() {
        // Constant-truth observations: the EWMA error must shrink at every
        // update, from either side of the truth.
        for seed in [1e6, 1e9] {
            let truth = 1e8f64;
            let mut est = RateEstimator::seeded(seed, 0.5);
            let mut prev_err = (seed - truth).abs();
            for _ in 0..20 {
                est.observe(1_000_000, 1_000_000.0 / truth);
                let err = (est.rate_or(0.0) - truth).abs();
                assert!(err < prev_err, "error must shrink: {err} !< {prev_err}");
                prev_err = err;
            }
            assert!(prev_err / truth < 1e-4, "20 updates must converge: {prev_err:e}");
            assert_eq!(est.updates(), 20);
        }
    }

    #[test]
    fn unseeded_estimator_adopts_first_observation() {
        let mut est = RateEstimator::unseeded(0.25);
        assert_eq!(est.rate_or(42.0), 42.0, "no prior: fallback");
        est.observe(500, 2.0);
        assert!((est.rate_or(0.0) - 250.0).abs() < 1e-12, "first obs adopted whole");
        est.observe(1000, 2.0);
        // (1-α)·250 + α·500 = 312.5
        assert!((est.rate_or(0.0) - 312.5).abs() < 1e-9);
    }

    #[test]
    fn degenerate_observations_rejected() {
        let mut est = RateEstimator::seeded(100.0, 0.5);
        est.observe(0, 1.0); // zero words
        est.observe(10, 0.0); // zero time
        est.observe(10, -1.0); // negative time
        est.observe(10, f64::NAN); // NaN time
        est.observe(10, f64::INFINITY); // rate would be 0... inf seconds
        assert_eq!(est.updates(), 0, "no degenerate observation may count");
        assert_eq!(est.rate_or(0.0), 100.0, "estimate untouched");
    }

    #[test]
    fn config_validation() {
        assert!(CalibrationConfig::default().validate().is_ok());
        assert!(CalibrationConfig::off().validate().is_ok());
        for alpha in [0.0, -0.5, 1.5, f64::NAN] {
            let cfg = CalibrationConfig { alpha, ..Default::default() };
            assert!(cfg.validate().is_err(), "alpha {alpha} must be rejected");
        }
        for rate in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let cfg = CalibrationConfig { cpu_true_words_per_s: Some(rate), ..Default::default() };
            assert!(cfg.validate().is_err(), "true rate {rate} must be rejected");
        }
    }

    #[test]
    fn report_realized_makespan_is_the_slower_engine() {
        let r =
            CalibrationReport { cpu_realized_s: 2.0, gpu_realized_s: 3.5, ..Default::default() };
        assert_eq!(r.realized_makespan_s(), 3.5);
    }
}
