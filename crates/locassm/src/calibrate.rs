//! Online rate calibration for the overlap scheduler (ROADMAP:
//! "cost-model feedback").
//!
//! The work-stealing scheduler of [`crate::schedule`] models each engine
//! with a virtual clock; the CPU clock needs a throughput figure
//! (estimated device-words per second) to convert batch cost into model
//! seconds. PR 3 shipped that figure as a hard-coded constant
//! (`StealConfig::cpu_words_per_s = 5e7`), which is exactly the kind of
//! magic number MHM2's own cost model recalibrates per run. This module
//! closes the loop: each engine's rate is an **EWMA over observed
//! per-batch rates**, seeded from the configured constant (now demoted to
//! a seed/override) and updated after every batch:
//!
//! ```text
//! rate ← (1 − α)·rate + α·(batch_words / observed_batch_seconds)
//! ```
//!
//! The GPU side observes [`crate::gpu::GpuRunStats::wall_s`] (simulated
//! exec + modeled pack − double-buffer savings); the CPU side observes
//! either measured host wall seconds or, when
//! [`CalibrationConfig::cpu_true_words_per_s`] is set, a *modeled* time at
//! that rate — the deterministic observation source the tests and the
//! fig11 ablation use, so convergence claims are reproducible.
//!
//! After every accepted CPU observation the scheduler **rebases** the CPU
//! virtual clock to `words_done / rate`, so a badly seeded early estimate
//! cannot permanently poison the schedule: the clock always reflects the
//! *current* belief about elapsed CPU-engine time, not a sum of stale
//! per-batch guesses. (The GPU clock advances by direct observation and
//! needs no rebase.)
//!
//! On top of the pooled loop, [`BinRateModel`] resolves rates **per bin**
//! (paper §3: bin 2 = scattered small tasks, bin 3 = cache-friendly large
//! ones have genuinely different per-word costs): each bin feeds its own
//! [`RateEstimator`], the pooled EWMA stays as the prior, and a bin's own
//! estimate is trusted only once it has
//! [`CalibrationConfig::min_bin_obs`] observations. With per-bin
//! resolution on, the CPU clock prices each bin's words at its own rate —
//! `clock = bin2_words/rate₂ + bin3_words/rate₃` — instead of conflating
//! both under one figure.

use serde::{Deserialize, Serialize};

/// EWMA throughput estimator in estimated device-words per second.
///
/// ```
/// use locassm::calibrate::RateEstimator;
///
/// let mut est = RateEstimator::seeded(1.0e6, 0.5);
/// assert_eq!(est.rate_or(0.0), 1.0e6);
///
/// // One observed batch at 3e6 words/s moves the EWMA halfway (alpha 0.5).
/// est.observe(3_000_000, 1.0);
/// assert_eq!(est.rate_or(0.0), 2.0e6);
/// assert_eq!(est.updates(), 1);
///
/// // Degenerate observations are rejected, never poisoning the estimate.
/// est.observe(0, 1.0);
/// est.observe(1_000, f64::NAN);
/// assert_eq!(est.updates(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct RateEstimator {
    seed: Option<f64>,
    rate: Option<f64>,
    alpha: f64,
    updates: u64,
}

impl RateEstimator {
    /// Estimator seeded at `rate` words/s (the CPU engine: its seed is the
    /// configured `cpu_words_per_s`).
    pub fn seeded(rate: f64, alpha: f64) -> RateEstimator {
        RateEstimator { seed: Some(rate), rate: Some(rate), alpha, updates: 0 }
    }

    /// Estimator with no prior: the first accepted observation becomes the
    /// estimate (the GPU engine: its clock never needed a rate constant,
    /// so there is nothing to seed from).
    pub fn unseeded(alpha: f64) -> RateEstimator {
        RateEstimator { seed: None, rate: None, alpha, updates: 0 }
    }

    /// Feed one observed batch: `words` of estimated cost retired in
    /// `seconds`. Degenerate observations (zero words, non-positive or
    /// non-finite seconds, non-finite rate) are rejected — a paused or
    /// faulted batch must not poison the estimate.
    pub fn observe(&mut self, words: u64, seconds: f64) {
        if words == 0 || !seconds.is_finite() || seconds <= 0.0 {
            return;
        }
        let obs = words as f64 / seconds;
        if !obs.is_finite() || obs <= 0.0 {
            return;
        }
        self.rate = Some(match self.rate {
            None => obs,
            Some(r) => (1.0 - self.alpha) * r + self.alpha * obs,
        });
        self.updates += 1;
    }

    /// Current estimate, or `fallback` when nothing has been seeded or
    /// observed yet.
    pub fn rate_or(&self, fallback: f64) -> f64 {
        self.rate.unwrap_or(fallback)
    }

    /// The seed rate, if any.
    pub fn seed(&self) -> Option<f64> {
        self.seed
    }

    /// Accepted observations so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }
}

/// Per-bin throughput model: one [`RateEstimator`] per bin (bin 2 and
/// bin 3) layered over the pooled estimator the PR 4 calibration loop
/// introduced.
///
/// Bin-2 and bin-3 batches have different per-word cost profiles — bin 3
/// is a cache-friendly sweep over a few large tables, bin 2 scatters over
/// many tiny ones — so a single pooled words/s figure conflates the two.
/// The model keeps the pooled EWMA as the *prior*: a bin's own estimate is
/// only trusted once that bin has accumulated at least
/// [`CalibrationConfig::min_bin_obs`] accepted observations; until then
/// [`BinRateModel::rate_for`] answers with the pooled estimate, so early
/// per-bin noise can never misprice a steal.
///
/// ```
/// use locassm::calibrate::BinRateModel;
///
/// // Pooled seed 1e6 words/s, alpha 0.5, trust a bin after 2 observations.
/// let mut model = BinRateModel::seeded(1.0e6, 0.5, true, 2);
///
/// // One bin-3 (heavy) observation: below min_bin_obs, the bin-resolved
/// // rate still answers with the pooled estimate.
/// model.observe(true, 2_000_000, 1.0); // 2e6 words/s observed
/// assert_eq!(model.bin(true).updates(), 1);
/// assert_eq!(model.rate_for(true, 0.0), model.pooled().rate_or(0.0));
///
/// // A second heavy observation crosses the threshold: the bin's own
/// // estimate (2e6, adopted whole then confirmed) takes over.
/// model.observe(true, 2_000_000, 1.0);
/// assert!((model.rate_for(true, 0.0) - 2.0e6).abs() < 1e-6);
/// // Bin 2 has no observations yet and still falls back to pooled.
/// assert_eq!(model.rate_for(false, 0.0), model.pooled().rate_or(0.0));
/// ```
#[derive(Debug, Clone)]
pub struct BinRateModel {
    pooled: RateEstimator,
    bin2: RateEstimator,
    bin3: RateEstimator,
    per_bin: bool,
    min_bin_obs: u64,
}

impl BinRateModel {
    /// Model whose pooled estimator is seeded at `rate` words/s (the CPU
    /// engine). The per-bin estimators start unseeded: their first
    /// accepted observation is adopted whole, exactly like the GPU's
    /// pooled estimator in PR 4.
    pub fn seeded(rate: f64, alpha: f64, per_bin: bool, min_bin_obs: u64) -> BinRateModel {
        BinRateModel {
            pooled: RateEstimator::seeded(rate, alpha),
            bin2: RateEstimator::unseeded(alpha),
            bin3: RateEstimator::unseeded(alpha),
            per_bin,
            min_bin_obs,
        }
    }

    /// Model with no pooled prior (the GPU engine: its clock advances by
    /// direct observation, so the estimators exist for reporting and steal
    /// pricing only).
    pub fn unseeded(alpha: f64, per_bin: bool, min_bin_obs: u64) -> BinRateModel {
        BinRateModel {
            pooled: RateEstimator::unseeded(alpha),
            bin2: RateEstimator::unseeded(alpha),
            bin3: RateEstimator::unseeded(alpha),
            per_bin,
            min_bin_obs,
        }
    }

    /// Feed one observed batch into both the pooled estimator and the
    /// estimator of the batch's bin (`heavy` = bin 3, otherwise bin 2).
    /// Degenerate observations are rejected by [`RateEstimator::observe`].
    pub fn observe(&mut self, heavy: bool, words: u64, seconds: f64) {
        self.pooled.observe(words, seconds);
        if heavy {
            self.bin3.observe(words, seconds);
        } else {
            self.bin2.observe(words, seconds);
        }
    }

    /// Bin-resolved rate: the bin's own estimate once it has at least
    /// `min_bin_obs` accepted observations (and per-bin resolution is on),
    /// the pooled estimate otherwise, `fallback` when nothing has been
    /// seeded or observed at all.
    pub fn rate_for(&self, heavy: bool, fallback: f64) -> f64 {
        let bin = self.bin(heavy);
        if self.per_bin && bin.updates() >= self.min_bin_obs {
            bin.rate_or(self.pooled.rate_or(fallback))
        } else {
            self.pooled.rate_or(fallback)
        }
    }

    /// The pooled (all-bins) estimator — PR 4's single rate.
    pub fn pooled(&self) -> &RateEstimator {
        &self.pooled
    }

    /// The estimator of one bin (`heavy` = bin 3, otherwise bin 2).
    pub fn bin(&self, heavy: bool) -> &RateEstimator {
        if heavy {
            &self.bin3
        } else {
            &self.bin2
        }
    }

    /// Whether per-bin resolution is on (off = [`BinRateModel::rate_for`]
    /// always answers with the pooled estimate).
    pub fn per_bin(&self) -> bool {
        self.per_bin
    }
}

/// Knobs of the calibration loop, carried inside
/// [`crate::schedule::StealConfig`].
///
/// ```
/// use locassm::calibrate::CalibrationConfig;
///
/// // The defaults are a valid, enabled, pooled-EWMA loop.
/// let cfg = CalibrationConfig::default();
/// assert!(cfg.validate().is_ok());
/// assert!(!cfg.per_bin);
///
/// // Per-bin resolution needs the feedback loop itself to be on.
/// let bad = CalibrationConfig { per_bin: true, ..CalibrationConfig::off() };
/// assert!(bad.validate().is_err());
/// let good = CalibrationConfig { per_bin: true, ..CalibrationConfig::default() };
/// assert!(good.validate().is_ok());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CalibrationConfig {
    /// Feed observed batch times back into the virtual clocks. Off, the
    /// scheduler behaves exactly as PR 3: the CPU clock runs at the
    /// constant seed rate for the whole run.
    pub enabled: bool,
    /// EWMA smoothing weight in `(0, 1]`: the fraction of each new
    /// observation blended into the estimate. 1.0 = trust only the latest
    /// batch; small values smooth noisy wall clocks at the cost of slower
    /// convergence.
    pub alpha: f64,
    /// Deterministic CPU observation source: when set, a CPU batch of `w`
    /// words is "observed" to take `w / cpu_true_words_per_s` seconds
    /// instead of its measured host wall time. This is how tests and the
    /// fig11 calibration ablation model a known ground-truth CPU rate
    /// (mis-seed the estimator, let it converge to this); production runs
    /// leave it `None` and calibrate from real wall clocks.
    pub cpu_true_words_per_s: Option<f64>,
    /// Resolve rates per bin (see [`BinRateModel`]): bin-2 and bin-3
    /// batches feed separate estimators, and the virtual clocks price each
    /// bin's words at its own rate once the bin has [`Self::min_bin_obs`]
    /// observations. Off (the default), the model behaves exactly as
    /// PR 4's pooled EWMA. Requires [`Self::enabled`].
    pub per_bin: bool,
    /// Accepted observations a bin needs before its own estimate is
    /// trusted over the pooled prior. Must be >= 1.
    pub min_bin_obs: u64,
    /// Deterministic bin-2 observation source: overrides
    /// [`Self::cpu_true_words_per_s`] for light (bin-2) CPU batches, so
    /// tests and the fig11 per-bin ablation can model bins with genuinely
    /// different ground-truth rates.
    pub cpu_true_bin2_words_per_s: Option<f64>,
    /// Deterministic bin-3 observation source: overrides
    /// [`Self::cpu_true_words_per_s`] for heavy (bin-3) CPU batches.
    pub cpu_true_bin3_words_per_s: Option<f64>,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        CalibrationConfig {
            enabled: true,
            alpha: 0.5,
            cpu_true_words_per_s: None,
            per_bin: false,
            min_bin_obs: 3,
            cpu_true_bin2_words_per_s: None,
            cpu_true_bin3_words_per_s: None,
        }
    }
}

impl CalibrationConfig {
    /// Calibration disabled: the scheduler trusts the configured constant
    /// (the explicit-override path of `--cpu-words-per-s`).
    pub fn off() -> CalibrationConfig {
        CalibrationConfig { enabled: false, ..CalibrationConfig::default() }
    }

    /// Reject out-of-domain knobs with a description of what is wrong.
    pub fn validate(&self) -> Result<(), String> {
        if !self.alpha.is_finite() || !(0.0..=1.0).contains(&self.alpha) || self.alpha == 0.0 {
            return Err(format!("calibration alpha must be in (0, 1], got {}", self.alpha));
        }
        for (name, rate) in [
            ("cpu_true_words_per_s", self.cpu_true_words_per_s),
            ("cpu_true_bin2_words_per_s", self.cpu_true_bin2_words_per_s),
            ("cpu_true_bin3_words_per_s", self.cpu_true_bin3_words_per_s),
        ] {
            if let Some(r) = rate {
                if !r.is_finite() || r <= 0.0 {
                    return Err(format!("{name} must be positive and finite, got {r}"));
                }
            }
        }
        if self.per_bin && !self.enabled {
            return Err("per_bin rate resolution needs the calibration loop (enabled)".to_string());
        }
        if self.min_bin_obs == 0 {
            return Err("min_bin_obs must be >= 1".to_string());
        }
        Ok(())
    }
}

/// What the calibration loop did during one scheduled run — threaded
/// through [`crate::schedule::ScheduleReport`] to the `mhm` report/CLI and
/// the fig11 harness.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CalibrationReport {
    /// Whether the feedback loop was active (off = the run used the seed
    /// rate as a constant, and the fields below only record observations).
    pub enabled: bool,
    /// The CPU rate the run was seeded with (words/s).
    pub cpu_seed_words_per_s: f64,
    /// Converged CPU rate estimate at the end of the run.
    pub cpu_words_per_s: f64,
    /// Converged GPU rate estimate (words/s over `wall_s`); 0.0 when the
    /// GPU engine never completed a batch.
    pub gpu_words_per_s: f64,
    /// Accepted CPU observations.
    pub cpu_updates: u64,
    /// Accepted GPU observations.
    pub gpu_updates: u64,
    /// Whether per-bin rate resolution was active (see [`BinRateModel`]).
    pub per_bin: bool,
    /// Converged CPU bin-2 estimate (words/s); 0.0 when the CPU engine
    /// never finished a bin-2 batch.
    pub cpu_bin2_words_per_s: f64,
    /// Converged CPU bin-3 estimate (words/s); 0.0 when the CPU engine
    /// never finished a bin-3 batch.
    pub cpu_bin3_words_per_s: f64,
    /// Accepted CPU bin-2 observations.
    pub cpu_bin2_updates: u64,
    /// Accepted CPU bin-3 observations.
    pub cpu_bin3_updates: u64,
    /// Converged GPU bin-2 estimate (words/s over `wall_s`); 0.0 when the
    /// GPU engine never absorbed a bin-2 batch.
    pub gpu_bin2_words_per_s: f64,
    /// Converged GPU bin-3 estimate (words/s over `wall_s`); 0.0 when the
    /// GPU engine never completed a bin-3 batch.
    pub gpu_bin3_words_per_s: f64,
    /// Accepted GPU bin-2 observations.
    pub gpu_bin2_updates: u64,
    /// Accepted GPU bin-3 observations.
    pub gpu_bin3_updates: u64,
    /// Realized CPU-engine seconds: the sum of observed batch times
    /// (modeled at the true rate when one is configured, measured wall
    /// otherwise).
    pub cpu_realized_s: f64,
    /// Realized GPU-engine seconds (sum of observed `wall_s` per batch).
    pub gpu_realized_s: f64,
    /// Relative error of the virtual-clock makespan against the realized
    /// makespan: |model − realized| / realized. Small values mean the
    /// calibrated clocks track reality.
    pub rel_err_vs_realized: f64,
}

impl CalibrationReport {
    /// Realized overlap makespan: both engines run concurrently, so the
    /// run "really" ends when the slower engine's observed time does.
    ///
    /// ```
    /// use locassm::calibrate::CalibrationReport;
    ///
    /// let r = CalibrationReport {
    ///     cpu_realized_s: 2.0,
    ///     gpu_realized_s: 3.5,
    ///     ..CalibrationReport::default()
    /// };
    /// assert_eq!(r.realized_makespan_s(), 3.5);
    /// ```
    pub fn realized_makespan_s(&self) -> f64 {
        self.cpu_realized_s.max(self.gpu_realized_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_estimator_converges_monotonically_to_truth() {
        // Constant-truth observations: the EWMA error must shrink at every
        // update, from either side of the truth.
        for seed in [1e6, 1e9] {
            let truth = 1e8f64;
            let mut est = RateEstimator::seeded(seed, 0.5);
            let mut prev_err = (seed - truth).abs();
            for _ in 0..20 {
                est.observe(1_000_000, 1_000_000.0 / truth);
                let err = (est.rate_or(0.0) - truth).abs();
                assert!(err < prev_err, "error must shrink: {err} !< {prev_err}");
                prev_err = err;
            }
            assert!(prev_err / truth < 1e-4, "20 updates must converge: {prev_err:e}");
            assert_eq!(est.updates(), 20);
        }
    }

    #[test]
    fn unseeded_estimator_adopts_first_observation() {
        let mut est = RateEstimator::unseeded(0.25);
        assert_eq!(est.rate_or(42.0), 42.0, "no prior: fallback");
        est.observe(500, 2.0);
        assert!((est.rate_or(0.0) - 250.0).abs() < 1e-12, "first obs adopted whole");
        est.observe(1000, 2.0);
        // (1-α)·250 + α·500 = 312.5
        assert!((est.rate_or(0.0) - 312.5).abs() < 1e-9);
    }

    #[test]
    fn degenerate_observations_rejected() {
        let mut est = RateEstimator::seeded(100.0, 0.5);
        est.observe(0, 1.0); // zero words
        est.observe(10, 0.0); // zero time
        est.observe(10, -1.0); // negative time
        est.observe(10, f64::NAN); // NaN time
        est.observe(10, f64::INFINITY); // rate would be 0... inf seconds
        assert_eq!(est.updates(), 0, "no degenerate observation may count");
        assert_eq!(est.rate_or(0.0), 100.0, "estimate untouched");
    }

    #[test]
    fn config_validation() {
        assert!(CalibrationConfig::default().validate().is_ok());
        assert!(CalibrationConfig::off().validate().is_ok());
        for alpha in [0.0, -0.5, 1.5, f64::NAN] {
            let cfg = CalibrationConfig { alpha, ..Default::default() };
            assert!(cfg.validate().is_err(), "alpha {alpha} must be rejected");
        }
        for rate in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let cfg = CalibrationConfig { cpu_true_words_per_s: Some(rate), ..Default::default() };
            assert!(cfg.validate().is_err(), "true rate {rate} must be rejected");
            let cfg =
                CalibrationConfig { cpu_true_bin2_words_per_s: Some(rate), ..Default::default() };
            assert!(cfg.validate().is_err(), "bin-2 true rate {rate} must be rejected");
            let cfg =
                CalibrationConfig { cpu_true_bin3_words_per_s: Some(rate), ..Default::default() };
            assert!(cfg.validate().is_err(), "bin-3 true rate {rate} must be rejected");
        }
        let cfg = CalibrationConfig { per_bin: true, enabled: false, ..Default::default() };
        assert!(cfg.validate().is_err(), "per_bin without the loop must be rejected");
        let cfg = CalibrationConfig { min_bin_obs: 0, ..Default::default() };
        assert!(cfg.validate().is_err(), "zero min_bin_obs must be rejected");
        let cfg = CalibrationConfig { per_bin: true, ..Default::default() };
        assert!(cfg.validate().is_ok(), "per_bin with the loop on is fine");
    }

    #[test]
    fn bin_model_trusts_bins_only_after_min_obs() {
        let mut m = BinRateModel::seeded(1.0e6, 0.5, true, 3);
        assert!(m.per_bin());
        // Two bin-2 observations at 4e6: still below the threshold, so the
        // bin-resolved answer is the pooled estimate (which has absorbed
        // the same observations).
        m.observe(false, 4_000_000, 1.0);
        m.observe(false, 4_000_000, 1.0);
        assert_eq!(m.bin(false).updates(), 2);
        assert_eq!(m.rate_for(false, 0.0), m.pooled().rate_or(0.0));
        // Third observation crosses min_bin_obs: the bin's own estimate —
        // unseeded, so converged to exactly 4e6 after three constant
        // observations — takes over, while the pooled estimate is still
        // dragged by the 1e6 seed.
        m.observe(false, 4_000_000, 1.0);
        assert!((m.rate_for(false, 0.0) - 4.0e6).abs() < 1e-6);
        assert!(m.pooled().rate_or(0.0) < 4.0e6);
        // Bin 3 never observed: pooled fallback.
        assert_eq!(m.rate_for(true, 0.0), m.pooled().rate_or(0.0));
    }

    #[test]
    fn bin_model_with_per_bin_off_always_answers_pooled() {
        let mut m = BinRateModel::seeded(1.0e6, 0.5, false, 1);
        for _ in 0..5 {
            m.observe(true, 8_000_000, 1.0);
        }
        assert_eq!(m.bin(true).updates(), 5, "bin estimators still learn");
        assert_eq!(
            m.rate_for(true, 0.0),
            m.pooled().rate_or(0.0),
            "per_bin off must price every bin at the pooled rate"
        );
    }

    #[test]
    fn bin_model_estimators_are_independent() {
        let mut m = BinRateModel::unseeded(1.0, true, 1);
        m.observe(false, 1_000, 1.0); // bin 2: 1e3 words/s
        m.observe(true, 9_000, 1.0); // bin 3: 9e3 words/s
        assert!((m.rate_for(false, 0.0) - 1.0e3).abs() < 1e-9);
        assert!((m.rate_for(true, 0.0) - 9.0e3).abs() < 1e-9);
        // The pooled estimator saw both (alpha 1.0 keeps the latest).
        assert_eq!(m.pooled().updates(), 2);
    }

    #[test]
    fn report_realized_makespan_is_the_slower_engine() {
        let r =
            CalibrationReport { cpu_realized_s: 2.0, gpu_realized_s: 3.5, ..Default::default() };
        assert_eq!(r.realized_makespan_s(), 3.5);
    }
}
