//! Parameters, walk outcomes, and the k-shift termination state machine.

use serde::{Deserialize, Serialize};

/// Tuning parameters for local assembly (both engines share these).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocalAssemblyParams {
    /// Ascending k values the k-shift controller moves through.
    /// MetaHipMer's iterative schedule, clipped to the read length upstream.
    pub k_list: Vec<usize>,
    /// Index into `k_list` where extension starts.
    pub start_k_idx: usize,
    /// Maximum bases appended by one mer-walk (one k iteration).
    pub max_walk_len: usize,
    /// Cap on total appended bases per contig end across all k iterations
    /// (the paper observes walks "up to 300 steps").
    pub max_total_extension: usize,
    /// Minimum credible votes for an extension base (see
    /// [`kmer::ExtCounts::classify`]).
    pub min_viable: u16,
}

impl Default for LocalAssemblyParams {
    fn default() -> Self {
        LocalAssemblyParams {
            k_list: vec![21, 33, 55, 77, 99],
            start_k_idx: 1,
            max_walk_len: 100,
            max_total_extension: 300,
            min_viable: 2,
        }
    }
}

impl LocalAssemblyParams {
    /// A schedule suitable for short test reads.
    pub fn for_tests() -> LocalAssemblyParams {
        LocalAssemblyParams {
            k_list: vec![15, 21, 31, 41],
            start_k_idx: 1,
            max_walk_len: 64,
            max_total_extension: 200,
            min_viable: 2,
        }
    }

    /// Largest k in the schedule.
    pub fn k_max(&self) -> usize {
        self.k_list.iter().copied().max().unwrap_or(0)
    }
}

/// Terminal state of one mer-walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WalkState {
    /// No credible extension (or terminal k-mer absent from the table).
    DeadEnd,
    /// Two or more credible extensions.
    Fork,
    /// The walk revisited a k-mer (cycle in the local graph).
    Loop,
    /// Hit the per-walk step limit.
    MaxLen,
}

impl WalkState {
    /// Encode for device memory.
    pub fn to_u64(self) -> u64 {
        match self {
            WalkState::DeadEnd => 0,
            WalkState::Fork => 1,
            WalkState::Loop => 2,
            WalkState::MaxLen => 3,
        }
    }

    /// Decode from device memory. `None` on an invalid encoding — the
    /// caller treats that as detected device-memory corruption rather than
    /// aborting.
    pub fn from_u64(v: u64) -> Option<WalkState> {
        match v {
            0 => Some(WalkState::DeadEnd),
            1 => Some(WalkState::Fork),
            2 => Some(WalkState::Loop),
            3 => Some(WalkState::MaxLen),
            _ => None,
        }
    }
}

/// Direction of the previous k shift.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShiftDir {
    /// k was last shifted up (after a fork).
    Up,
    /// k was last shifted down (after a dead end).
    Down,
}

/// The paper's k-shift controller (§2.3):
///
/// * fork ⇒ up-shift k; dead end ⇒ down-shift k;
/// * terminate on a fork right after a down-shift, or a dead end right
///   after an up-shift, or when the schedule runs out at either edge.
///
/// Loop/MaxLen walks are treated as dead ends (no credible continuation).
/// Both the CPU engine (host loop) and the GPU kernel (in-warp loop with the
/// walk state broadcast by shuffle, Figure 5) drive this same state machine,
/// which is what keeps their termination behaviour bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KShift {
    idx: usize,
    n_ks: usize,
    last: Option<ShiftDir>,
    done: bool,
}

impl KShift {
    /// Start a controller over `n_ks` k values at `start_idx`.
    pub fn new(n_ks: usize, start_idx: usize) -> KShift {
        assert!(n_ks > 0, "empty k schedule");
        assert!(start_idx < n_ks, "start index out of range");
        KShift { idx: start_idx, n_ks, last: None, done: false }
    }

    /// Index of the k to use for the next walk.
    pub fn k_idx(&self) -> usize {
        self.idx
    }

    /// True once the controller has terminated.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Feed the walk outcome; returns `true` if another iteration (at the
    /// new [`k_idx`](Self::k_idx)) should run.
    pub fn on_walk(&mut self, state: WalkState) -> bool {
        assert!(!self.done, "on_walk after termination");
        match state {
            WalkState::Fork => {
                if self.last == Some(ShiftDir::Down) || self.idx + 1 >= self.n_ks {
                    self.done = true;
                } else {
                    self.idx += 1;
                    self.last = Some(ShiftDir::Up);
                }
            }
            WalkState::DeadEnd | WalkState::Loop | WalkState::MaxLen => {
                if self.last == Some(ShiftDir::Up) || self.idx == 0 {
                    self.done = true;
                } else {
                    self.idx -= 1;
                    self.last = Some(ShiftDir::Down);
                }
            }
        }
        !self.done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fork_upshifts_then_deadend_terminates() {
        let mut ks = KShift::new(5, 1);
        assert!(ks.on_walk(WalkState::Fork));
        assert_eq!(ks.k_idx(), 2);
        assert!(!ks.on_walk(WalkState::DeadEnd), "dead end after up-shift stops");
    }

    #[test]
    fn deadend_downshifts_then_fork_terminates() {
        let mut ks = KShift::new(5, 2);
        assert!(ks.on_walk(WalkState::DeadEnd));
        assert_eq!(ks.k_idx(), 1);
        assert!(!ks.on_walk(WalkState::Fork), "fork after down-shift stops");
    }

    #[test]
    fn repeated_forks_climb_to_top() {
        let mut ks = KShift::new(4, 0);
        assert!(ks.on_walk(WalkState::Fork));
        assert!(ks.on_walk(WalkState::Fork));
        assert!(ks.on_walk(WalkState::Fork));
        assert_eq!(ks.k_idx(), 3);
        assert!(!ks.on_walk(WalkState::Fork), "top of schedule stops");
    }

    #[test]
    fn repeated_deadends_descend_to_bottom() {
        let mut ks = KShift::new(4, 3);
        assert!(ks.on_walk(WalkState::DeadEnd));
        assert!(ks.on_walk(WalkState::DeadEnd));
        assert!(ks.on_walk(WalkState::DeadEnd));
        assert_eq!(ks.k_idx(), 0);
        assert!(!ks.on_walk(WalkState::DeadEnd), "bottom of schedule stops");
    }

    #[test]
    fn loop_and_maxlen_act_as_deadend() {
        let mut a = KShift::new(3, 1);
        assert!(a.on_walk(WalkState::Loop));
        assert_eq!(a.k_idx(), 0);
        let mut b = KShift::new(3, 1);
        assert!(b.on_walk(WalkState::MaxLen));
        assert_eq!(b.k_idx(), 0);
    }

    #[test]
    fn single_k_terminates_immediately() {
        let mut ks = KShift::new(1, 0);
        assert!(!ks.on_walk(WalkState::Fork));
        let mut ks2 = KShift::new(1, 0);
        assert!(!ks2.on_walk(WalkState::DeadEnd));
    }

    #[test]
    fn walkstate_codec_round_trips() {
        for s in [WalkState::DeadEnd, WalkState::Fork, WalkState::Loop, WalkState::MaxLen] {
            assert_eq!(WalkState::from_u64(s.to_u64()), Some(s));
        }
        assert_eq!(WalkState::from_u64(7), None, "corrupt encoding is detected");
    }

    #[test]
    #[should_panic(expected = "after termination")]
    fn on_walk_after_done_panics() {
        let mut ks = KShift::new(1, 0);
        ks.on_walk(WalkState::Fork);
        ks.on_walk(WalkState::Fork);
    }
}
