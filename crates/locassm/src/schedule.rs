//! Work-stealing CPU/GPU overlap scheduler (paper §4.3, Figure 11).
//!
//! The paper's driver offloads bin 3 to the GPU and lets the CPU chew on
//! bin 2, handing *whatever remains* to whichever engine frees up first — a
//! dynamic split. This module reproduces that with a shared deque of
//! cost-estimated task batches:
//!
//! * batches are built from [`estimate_task_words`](crate::gpu::pack::estimate_task_words) costs — bin 3 sorted
//!   heaviest-first at the **head**, bin 2 dealt **size-interleaved** into
//!   tail batches (so no share is biased by binning order);
//! * the GPU engine drains the head (heaviest work first, the paper's
//!   scheduling), the CPU engine steals from the tail;
//! * whichever engine's clock is behind takes the next batch, so an early
//!   finisher absorbs the remainder — the CPU can steal leftover bin-3
//!   batches, the GPU can absorb leftover bin-2 batches.
//!
//! Because the GPU is a simulator, "time" here is **virtual**: the GPU
//! clock advances by [`GpuRunStats::wall_s`] (simulated kernel seconds plus
//! the modeled pack cost minus double-buffer savings) and the CPU clock by
//! `estimated words / rate`, where the rate starts at the configured
//! `cpu_words_per_s` **seed** and — with calibration enabled — converges on
//! the observed throughput via the EWMA of [`crate::calibrate`], rebasing
//! the CPU clock after every observation. That keeps the schedule — and
//! therefore every test and bench number — deterministic (observations are
//! simulated or modeled, never host wall when a true rate is configured),
//! while the actual task execution still runs on the host engines.
//! Results are index-aligned and byte-identical to
//! [`crate::cpu::extend_all_cpu`] regardless of who ran what (the
//! engine-equivalence invariant).
//!
//! Two refinements layer on top of the PR 4 calibration loop, both off by
//! default (the defaults reproduce the PR 4 schedule bit-for-bit):
//!
//! * **per-bin rates** ([`CalibrationConfig::per_bin`]) — bin-2 and bin-3
//!   batches feed separate estimators via
//!   [`crate::calibrate::BinRateModel`], and the CPU clock prices each
//!   bin's words at its own rate, so cache-friendly bin-3 sweeps no longer
//!   drag the estimate used to price scattered bin-2 steals;
//! * **adaptive drain-point batch sizing**
//!   ([`StealConfig::adaptive_batch`]) — `batch_words` becomes only the
//!   initial granularity; once the remaining work approaches
//!   `drain_factor × batch_words` the scheduler halves the steal
//!   granularity geometrically ([`drain_target`]), splitting oversized
//!   CPU steals ([`split_batch_at`]) so the tail is dealt in slivers and
//!   the last batch cannot strand the CPU past the GPU's finish. Only
//!   CPU-side pops shrink: CPU cost is linear in words, whereas splitting
//!   GPU launches would add per-launch overhead exactly when batches get
//!   small.

use crate::binning::BinStats;
use crate::calibrate::{BinRateModel, CalibrationConfig, CalibrationReport};
use crate::cpu::extend_cpu_isolated_refs;
use crate::gpu::pack::estimate_task_cost;
use crate::gpu::{GpuLocalAssembler, GpuRunStats, KernelVersion};
use crate::params::LocalAssemblyParams;
use crate::task::{ExtTask, TaskOutcome};
use gpusim::DeviceConfig;
use std::collections::VecDeque;
use std::time::Instant;

/// Knobs of the work-stealing scheduler.
#[derive(Debug, Clone)]
pub struct StealConfig {
    /// Steal granularity: target estimated device-words per batch. Smaller
    /// batches balance better but pay more per-launch overhead. With
    /// [`StealConfig::adaptive_batch`] on, this is only the *initial*
    /// granularity — see [`drain_target`].
    pub batch_words: u64,
    /// Seed for the modeled CPU-engine throughput in estimated words per
    /// second — the virtual-clock cost of a batch on the CPU side. The
    /// default sits a few× below the simulated V100's effective rate,
    /// matching the paper's ~4.3× local-assembly speedup at node level.
    /// With [`StealConfig::calibration`] enabled (the default) this is
    /// only the starting estimate; observed batch times take over as the
    /// run progresses. With calibration off it is the rate, full stop.
    pub cpu_words_per_s: f64,
    /// Double-buffer the GPU engine: pack batch N+1 on the host while the
    /// device executes batch N (modeled as saved wall seconds in
    /// [`GpuRunStats::overlap_saved_s`]).
    pub double_buffer: bool,
    /// Online rate-calibration loop (see [`crate::calibrate`]).
    pub calibration: CalibrationConfig,
    /// Shrink steal batches geometrically as the deque approaches its
    /// drain point (remaining work within [`StealConfig::drain_factor`] ×
    /// the current granularity): an oversized popped batch is split and
    /// its remainder pushed back, so the final batches are small enough
    /// that neither engine idles behind one last coarse chunk. Off (the
    /// default), batches are issued exactly as built — PR 4 behavior
    /// bit-for-bit.
    pub adaptive_batch: bool,
    /// Drain-point threshold `k`: shrinking starts once the remaining
    /// estimated words fit within `k × granularity`, and each halving
    /// re-tests against the shrunken granularity (geometric descent). Must
    /// be positive and finite.
    pub drain_factor: f64,
    /// Floor for the adaptive granularity in estimated words — batches
    /// never shrink below this, so per-launch overhead stays bounded. Must
    /// be >= 1; clamped to [`StealConfig::batch_words`] when larger.
    pub min_batch_words: u64,
}

impl Default for StealConfig {
    fn default() -> Self {
        StealConfig {
            batch_words: 64 * 1024,
            cpu_words_per_s: 5.0e7,
            double_buffer: true,
            calibration: CalibrationConfig::default(),
            adaptive_batch: false,
            drain_factor: 4.0,
            min_batch_words: 1024,
        }
    }
}

/// Target batch granularity given the estimated words still in the deque.
///
/// Away from the drain point (remaining work above
/// `drain_factor × batch_words`) the answer is simply
/// [`StealConfig::batch_words`]. Inside it, the granularity halves until
/// the remaining work no longer fits within `drain_factor ×` the shrunken
/// target (or the [`StealConfig::min_batch_words`] floor is hit) — a
/// geometric descent that keeps the last few batches proportional to what
/// is left, so the final chunk an engine takes is never large enough to
/// leave the other engine idling. With [`StealConfig::adaptive_batch`]
/// off, the answer is always `batch_words`.
///
/// The result is always >= 1: a zero-word batch can never be requested.
///
/// ```
/// use locassm::schedule::{drain_target, StealConfig};
///
/// let cfg = StealConfig {
///     batch_words: 64 * 1024,
///     adaptive_batch: true,
///     drain_factor: 4.0,
///     min_batch_words: 1024,
///     ..StealConfig::default()
/// };
/// // Far from the drain point: full granularity.
/// assert_eq!(drain_target(10_000_000, &cfg), 64 * 1024);
/// // Remaining work inside 4 x 64 KiB: halve until it no longer fits.
/// assert_eq!(drain_target(200_000, &cfg), 64 * 1024 / 2);
/// // Nearly drained: the floor holds, never zero.
/// assert_eq!(drain_target(100, &cfg), 1024);
/// assert_eq!(drain_target(0, &cfg), 1024);
/// // Adaptive sizing off: the static granularity, always.
/// let off = StealConfig { adaptive_batch: false, ..cfg };
/// assert_eq!(drain_target(100, &off), 64 * 1024);
/// ```
pub fn drain_target(remaining_words: u64, cfg: &StealConfig) -> u64 {
    let base = cfg.batch_words.max(1);
    if !cfg.adaptive_batch {
        return base;
    }
    let floor = cfg.min_batch_words.clamp(1, base);
    let mut target = base;
    while target > floor && (remaining_words as f64) <= cfg.drain_factor * target as f64 {
        target = (target / 2).max(floor);
    }
    target
}

/// Split `batch` so its head holds ≈`target_words` of estimated cost,
/// returning the remainder as a new batch (same bin) — or `None` when the
/// batch is already within `target_words`, or holds a single task (a lone
/// oversized task can not be subdivided; the engine's internal memory
/// batching still protects the device).
///
/// Tasks stay in batch order and every piece keeps at least one task, so a
/// split can never produce a zero-word batch (per-task cost is clamped to
/// >= 1 word by [`crate::gpu::pack::estimate_task_cost`]).
///
/// ```
/// use bioseq::DnaSeq;
/// use locassm::gpu::pack::estimate_task_words;
/// use locassm::schedule::{split_batch_at, TaskBatch};
/// use locassm::{ContigEnd, ExtTask, LocalAssemblyParams};
///
/// let params = LocalAssemblyParams::for_tests();
/// let tasks: Vec<ExtTask> = (0..4)
///     .map(|i| ExtTask { contig: i, end: ContigEnd::Right, tail: DnaSeq::new(), reads: vec![] })
///     .collect();
/// let costs: Vec<u64> = tasks.iter().map(|t| estimate_task_words(t, &params)).collect();
/// let total: u64 = costs.iter().sum();
///
/// let mut batch = TaskBatch { idx: vec![0, 1, 2, 3], est_words: total, heavy: false };
/// let rest = split_batch_at(&mut batch, costs[0], &tasks, &params).expect("oversized: splits");
/// // Conservation: every estimated word lands in exactly one piece, and
/// // both pieces keep at least one task (never a zero-word batch).
/// assert_eq!(batch.est_words + rest.est_words, total);
/// assert!(batch.est_words >= 1 && rest.est_words >= 1);
/// assert_eq!(batch.idx.len() + rest.idx.len(), 4);
///
/// // A batch already within the target is not split.
/// let mut small = TaskBatch { idx: vec![0], est_words: costs[0], heavy: true };
/// assert!(split_batch_at(&mut small, costs[0], &tasks, &params).is_none());
/// ```
pub fn split_batch_at(
    batch: &mut TaskBatch,
    target_words: u64,
    tasks: &[ExtTask],
    params: &LocalAssemblyParams,
) -> Option<TaskBatch> {
    if batch.est_words <= target_words || batch.idx.len() < 2 {
        return None;
    }
    let mut cut = 0usize;
    let mut head_words = 0u64;
    for (n, &i) in batch.idx.iter().enumerate() {
        head_words += estimate_task_cost(&tasks[i], params);
        cut = n + 1;
        if head_words >= target_words {
            break;
        }
    }
    if cut >= batch.idx.len() {
        return None;
    }
    let rest_idx = batch.idx.split_off(cut);
    let rest =
        TaskBatch { idx: rest_idx, est_words: batch.est_words - head_words, heavy: batch.heavy };
    batch.est_words = head_words;
    Some(rest)
}

/// One deque entry: an index share into the caller's task slice.
#[derive(Debug, Clone)]
pub struct TaskBatch {
    /// Task indices (into the scheduler's input slice).
    pub idx: Vec<usize>,
    /// Total estimated device words (the batch's cost).
    pub est_words: u64,
    /// True for bin-3 (head-end) batches.
    pub heavy: bool,
}

/// What the scheduler did: share sizes, steal counts, and the virtual-time
/// model behind the makespan claims.
#[derive(Debug, Clone, Default)]
pub struct ScheduleReport {
    /// `"static"` or `"work-steal"`.
    pub policy: &'static str,
    /// Batches handed out (2 for the static split).
    pub batches: usize,
    /// Batches the GPU engine drained from the head.
    pub gpu_batches: usize,
    /// Batches the CPU engine stole from the tail.
    pub cpu_batches: usize,
    /// Heavy (bin-3) batches the CPU stole — dynamic rebalance the static
    /// split can never do.
    pub cpu_stole_heavy: usize,
    /// Light (bin-2) batches the GPU absorbed after draining bin 3.
    pub gpu_absorbed_light: usize,
    /// Estimated words executed by the CPU share.
    pub cpu_est_words: u64,
    /// Estimated words executed by the GPU share.
    pub gpu_est_words: u64,
    /// CPU virtual clock at the end of the run (modeled seconds).
    pub cpu_model_s: f64,
    /// GPU virtual clock at the end of the run (simulated + pack seconds).
    pub gpu_model_s: f64,
    /// Whether adaptive drain-point batch sizing was on for this run.
    pub adaptive_batch: bool,
    /// Batches split at the drain point (the remainder pushed back onto
    /// the deque); 0 with adaptive sizing off.
    pub drain_splits: usize,
    /// Smallest estimated-words total over all issued (post-split)
    /// batches; 0 when no batch was issued. Never 0 when batches ran —
    /// adaptive sizing cannot produce a zero-word batch.
    pub min_issued_batch_words: u64,
    /// What the calibration loop learned (work-steal runs only; `None`
    /// for the static split, whose shares are fixed up front).
    pub calibration: Option<CalibrationReport>,
}

impl ScheduleReport {
    /// Modeled overlap makespan: both engines run concurrently, so the run
    /// ends when the slower clock does.
    pub fn makespan_model_s(&self) -> f64 {
        self.cpu_model_s.max(self.gpu_model_s)
    }

    /// Word-share balance: `min(cpu, gpu) / max(cpu, gpu)` estimated words
    /// (1.0 = perfectly even shares, 0.0 = one engine idle).
    pub fn word_balance(&self) -> f64 {
        let (lo, hi) = if self.cpu_est_words <= self.gpu_est_words {
            (self.cpu_est_words, self.gpu_est_words)
        } else {
            (self.gpu_est_words, self.cpu_est_words)
        };
        if hi == 0 {
            return 1.0;
        }
        lo as f64 / hi as f64
    }
}

/// Build the deque: bin-3 batches heaviest-first at the head, bin-2 dealt
/// size-interleaved into tail batches of ≈`batch_words` each.
pub fn build_batches(
    tasks: &[ExtTask],
    bins: &BinStats,
    params: &LocalAssemblyParams,
    batch_words: u64,
) -> Vec<TaskBatch> {
    let batch_words = batch_words.max(1);
    let cost = |i: usize| estimate_task_cost(&tasks[i], params);

    // Head: bin 3, heaviest first, greedy-filled up to the granularity (a
    // single oversized task forms its own batch — the engine's internal
    // memory batching still protects the device).
    let mut large: Vec<(u64, usize)> = bins.large.iter().map(|&i| (cost(i), i)).collect();
    large.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut batches: Vec<TaskBatch> = Vec::new();
    let mut cur = TaskBatch { idx: Vec::new(), est_words: 0, heavy: true };
    for (w, i) in large {
        if !cur.idx.is_empty() && cur.est_words + w > batch_words {
            batches.push(std::mem::replace(
                &mut cur,
                TaskBatch { idx: Vec::new(), est_words: 0, heavy: true },
            ));
        }
        cur.idx.push(i);
        cur.est_words += w;
    }
    if !cur.idx.is_empty() {
        batches.push(cur);
    }

    // Tail: bin 2, dealt in descending size order into whichever of the K
    // batches is currently lightest (greedy LPT), so every batch carries a
    // comparable words total and a mix of sizes. A plain `j % k` deal here
    // biased batch 0: with items sorted descending it collected the larger
    // item of every round, so the first-dealt batch systematically
    // outweighed the last.
    let mut small: Vec<(u64, usize)> = bins.small.iter().map(|&i| (cost(i), i)).collect();
    if !small.is_empty() {
        small.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let total: u64 = small.iter().map(|(w, _)| w).sum();
        let k = (total.div_ceil(batch_words) as usize).clamp(1, small.len());
        let mut light: Vec<TaskBatch> =
            (0..k).map(|_| TaskBatch { idx: Vec::new(), est_words: 0, heavy: false }).collect();
        for (w, i) in small {
            let mut best = 0;
            for b in 1..k {
                if light[b].est_words < light[best].est_words {
                    best = b;
                }
            }
            light[best].idx.push(i);
            light[best].est_words += w;
        }
        batches.extend(light);
    }
    batches
}

/// Everything a work-stealing run hands back to the driver.
pub(crate) struct StealRun {
    pub report: ScheduleReport,
    pub gpu_stats: Option<GpuRunStats>,
    /// The GPU engine branch panicked; its popped batch and the rest of the
    /// deque were absorbed by the CPU engine.
    pub gpu_branch_fell_back: bool,
    /// Host wall seconds spent inside CPU-engine batch runs.
    pub cpu_wall_s: f64,
    /// Host wall seconds spent driving the GPU engine (simulation cost).
    pub gpu_wall_s: f64,
    /// Tasks executed by the CPU engine.
    pub cpu_tasks: usize,
    /// Tasks executed by the GPU engine.
    pub gpu_tasks: usize,
}

/// CPU-engine virtual clock with the calibration loop folded in.
///
/// Each finished CPU batch yields an observation `(est_words, seconds)`
/// where `seconds` is either the measured host wall time or — when a
/// deterministic true rate is configured — the modeled time at that rate.
/// With calibration enabled the EWMA absorbs the observation and the clock
/// is **rebased** to `words_done / rate`, so the schedule's view of
/// elapsed CPU time always reflects the current estimate rather than a sum
/// of possibly mis-seeded per-batch advances; a 10×-wrong seed is forgiven
/// as soon as the estimate converges. With calibration off the clock
/// advances at the constant seed rate, exactly the pre-calibration
/// behavior.
///
/// With per-bin resolution on, the rebase prices each bin's words at its
/// own bin-resolved rate — `bin2_words/rate₂ + bin3_words/rate₃` — so a
/// clock that has mostly seen cache-friendly bin-3 sweeps does not
/// mis-price a scattered bin-2 steal (and vice versa). A bin falls back to
/// the pooled estimate until it has `min_bin_obs` observations.
struct CpuClock {
    model: BinRateModel,
    seed: f64,
    enabled: bool,
    per_bin: bool,
    true_pooled: Option<f64>,
    true_bin2: Option<f64>,
    true_bin3: Option<f64>,
    clock: f64,
    words_done: u64,
    bin2_words: u64,
    bin3_words: u64,
    realized_s: f64,
}

impl CpuClock {
    fn new(cfg: &StealConfig) -> CpuClock {
        let cal = &cfg.calibration;
        CpuClock {
            model: BinRateModel::seeded(
                cfg.cpu_words_per_s,
                cal.alpha,
                cal.per_bin,
                cal.min_bin_obs.max(1),
            ),
            seed: cfg.cpu_words_per_s,
            enabled: cal.enabled,
            per_bin: cal.enabled && cal.per_bin,
            true_pooled: cal.cpu_true_words_per_s,
            true_bin2: cal.cpu_true_bin2_words_per_s,
            true_bin3: cal.cpu_true_bin3_words_per_s,
            clock: 0.0,
            words_done: 0,
            bin2_words: 0,
            bin3_words: 0,
            realized_s: 0.0,
        }
    }

    /// The deterministic observation source for one bin, if configured:
    /// the bin-specific true rate wins over the pooled one.
    fn true_rate(&self, heavy: bool) -> Option<f64> {
        let bin = if heavy { self.true_bin3 } else { self.true_bin2 };
        bin.or(self.true_pooled)
    }

    /// Account one finished CPU batch: `est_words` of cost (from a `heavy`
    /// = bin-3 batch or a bin-2 one) retired in `measured_s` host wall
    /// seconds.
    fn advance(&mut self, est_words: u64, heavy: bool, measured_s: f64) {
        let observed_s = match self.true_rate(heavy) {
            Some(r) => est_words as f64 / r,
            None => measured_s,
        };
        self.words_done += est_words;
        if heavy {
            self.bin3_words += est_words;
        } else {
            self.bin2_words += est_words;
        }
        self.realized_s += observed_s.max(0.0);
        if self.enabled {
            self.model.observe(heavy, est_words, observed_s);
            self.clock = if self.per_bin {
                self.bin2_words as f64 / self.model.rate_for(false, self.seed)
                    + self.bin3_words as f64 / self.model.rate_for(true, self.seed)
            } else {
                self.words_done as f64 / self.model.pooled().rate_or(self.seed)
            };
        } else {
            self.clock += est_words as f64 / self.seed;
        }
    }
}

/// Drain the deque with two engines under virtual clocks, writing per-task
/// outcomes into `results` (index-aligned with `tasks`).
pub(crate) fn run_work_steal(
    tasks: &[ExtTask],
    batches: &[TaskBatch],
    params: &LocalAssemblyParams,
    device: DeviceConfig,
    version: KernelVersion,
    cfg: &StealConfig,
    results: &mut [Option<TaskOutcome>],
) -> StealRun {
    let mut engine = GpuLocalAssembler::new(device, params.clone(), version)
        .with_double_buffer(cfg.double_buffer);
    let mut report = ScheduleReport {
        policy: "work-steal",
        batches: batches.len(),
        adaptive_batch: cfg.adaptive_batch,
        ..Default::default()
    };
    let mut gpu_stats = GpuRunStats::default();
    let mut gpu_ran = false;
    let mut gpu_dead = false;
    let mut fell_back = false;
    let (mut cpu_wall, mut gpu_wall) = (0.0f64, 0.0f64);
    let mut cpu = CpuClock::new(cfg);
    let mut gpu_model = BinRateModel::unseeded(
        cfg.calibration.alpha,
        cfg.calibration.per_bin,
        cfg.calibration.min_bin_obs.max(1),
    );
    let mut gpu_realized = 0.0f64;
    let mut gpu_clock = 0.0f64;
    let (mut cpu_tasks, mut gpu_tasks) = (0usize, 0usize);
    // The deque proper: the GPU pops the heavy head, the CPU pops the
    // light tail. With adaptive sizing on, split remainders are pushed
    // back onto the end they were popped from, preserving the head/tail
    // discipline.
    let mut deque: VecDeque<TaskBatch> = batches.to_vec().into();
    let mut remaining_words: u64 = deque.iter().map(|b| b.est_words).sum();
    let mut min_issued: Option<u64> = None;

    while !deque.is_empty() {
        // The engine whose virtual clock is behind takes the next batch;
        // the GPU from the heavy head, the CPU from the light tail. Ties go
        // to the GPU (the paper launches the GPU first).
        let gpu_turn = !gpu_dead && gpu_clock <= cpu.clock;
        let popped = if gpu_turn { deque.pop_front() } else { deque.pop_back() };
        let Some(mut batch) = popped else { break };
        // Adaptive sizing shrinks *steal* batches only: CPU cost is linear
        // in words, so dealing the tail in slivers is free there, while
        // splitting GPU launches would add a per-launch overhead exactly
        // when batches get small. The GPU keeps draining at the built
        // granularity; the CPU's steals shrink toward the drain point.
        if cfg.adaptive_batch && !gpu_turn {
            let target = drain_target(remaining_words, cfg);
            if let Some(rest) = split_batch_at(&mut batch, target, tasks, params) {
                deque.push_back(rest);
                report.drain_splits += 1;
            }
        }
        remaining_words = remaining_words.saturating_sub(batch.est_words);
        min_issued = Some(min_issued.map_or(batch.est_words, |m| m.min(batch.est_words)));

        if gpu_turn {
            let refs: Vec<&ExtTask> = batch.idx.iter().map(|&i| &tasks[i]).collect();
            let t = Instant::now();
            let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                engine.extend_tasks_outcomes_ref(&refs)
            }));
            gpu_wall += t.elapsed().as_secs_f64();
            match run {
                Ok((outcomes, stats)) => {
                    for (&i, outcome) in batch.idx.iter().zip(outcomes) {
                        results[i] = Some(outcome);
                    }
                    gpu_clock += stats.wall_s();
                    gpu_realized += stats.wall_s().max(0.0);
                    gpu_model.observe(batch.heavy, batch.est_words, stats.wall_s());
                    if stats.recovery.device_lost {
                        // Reset budget exhausted: route the rest of the
                        // deque to the CPU instead of the per-task fallback.
                        gpu_dead = true;
                    }
                    gpu_stats.absorb(&stats);
                    gpu_ran = true;
                    gpu_tasks += batch.idx.len();
                    report.gpu_batches += 1;
                    report.gpu_est_words += batch.est_words;
                    if !batch.heavy {
                        report.gpu_absorbed_light += 1;
                    }
                }
                Err(_panic) => {
                    // Engine bug (device faults are absorbed by the
                    // ladder): the popped batch re-runs on the CPU and the
                    // deque drains CPU-side from here on.
                    gpu_dead = true;
                    fell_back = true;
                    let s = run_batch_cpu(tasks, &batch, params, results, &mut report);
                    cpu_wall += s;
                    cpu.advance(batch.est_words, batch.heavy, s);
                    cpu_tasks += batch.idx.len();
                }
            }
        } else {
            let s = run_batch_cpu(tasks, &batch, params, results, &mut report);
            cpu_wall += s;
            cpu.advance(batch.est_words, batch.heavy, s);
            cpu_tasks += batch.idx.len();
        }
    }

    report.cpu_model_s = cpu.clock;
    report.gpu_model_s = gpu_clock;
    report.min_issued_batch_words = min_issued.unwrap_or(0);
    let realized = cpu.realized_s.max(gpu_realized);
    let model = report.makespan_model_s();
    report.calibration = Some(CalibrationReport {
        enabled: cpu.enabled,
        per_bin: cpu.per_bin,
        cpu_seed_words_per_s: cpu.seed,
        cpu_words_per_s: cpu.model.pooled().rate_or(cpu.seed),
        gpu_words_per_s: gpu_model.pooled().rate_or(0.0),
        cpu_updates: cpu.model.pooled().updates(),
        gpu_updates: gpu_model.pooled().updates(),
        cpu_bin2_words_per_s: cpu.model.bin(false).rate_or(0.0),
        cpu_bin3_words_per_s: cpu.model.bin(true).rate_or(0.0),
        cpu_bin2_updates: cpu.model.bin(false).updates(),
        cpu_bin3_updates: cpu.model.bin(true).updates(),
        gpu_bin2_words_per_s: gpu_model.bin(false).rate_or(0.0),
        gpu_bin3_words_per_s: gpu_model.bin(true).rate_or(0.0),
        gpu_bin2_updates: gpu_model.bin(false).updates(),
        gpu_bin3_updates: gpu_model.bin(true).updates(),
        cpu_realized_s: cpu.realized_s,
        gpu_realized_s: gpu_realized,
        rel_err_vs_realized: if realized > 0.0 { (model - realized).abs() / realized } else { 0.0 },
    });
    StealRun {
        report,
        gpu_stats: gpu_ran.then_some(gpu_stats),
        gpu_branch_fell_back: fell_back,
        cpu_wall_s: cpu_wall,
        gpu_wall_s: gpu_wall,
        cpu_tasks,
        gpu_tasks,
    }
}

/// Run one batch on the CPU engine; returns its measured host wall
/// seconds (the calibration loop's fallback observation source).
fn run_batch_cpu(
    tasks: &[ExtTask],
    batch: &TaskBatch,
    params: &LocalAssemblyParams,
    results: &mut [Option<TaskOutcome>],
    report: &mut ScheduleReport,
) -> f64 {
    let refs: Vec<&ExtTask> = batch.idx.iter().map(|&i| &tasks[i]).collect();
    let t = Instant::now();
    let outcomes = extend_cpu_isolated_refs(&refs, params);
    let batch_wall = t.elapsed().as_secs_f64();
    for (&i, outcome) in batch.idx.iter().zip(outcomes) {
        results[i] = Some(outcome);
    }
    report.cpu_batches += 1;
    report.cpu_est_words += batch.est_words;
    if batch.heavy {
        report.cpu_stole_heavy += 1;
    }
    batch_wall
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binning::bin_tasks;
    use crate::task::ContigEnd;
    use bioseq::{DnaSeq, Read};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_seq(len: usize, sd: u64) -> DnaSeq {
        let mut rng = StdRng::seed_from_u64(sd);
        (0..len).map(|_| bioseq::Base::from_code(rng.gen_range(0..4))).collect()
    }

    fn task_with_reads(i: usize, n_reads: usize) -> ExtTask {
        let genome = random_seq(300, 40_000 + i as u64);
        let reads = (0..n_reads)
            .map(|r| {
                Read::with_uniform_qual(
                    format!("t{i}r{r}"),
                    genome.subseq(40 + (r * 11) % 150, 70),
                    35,
                )
            })
            .collect();
        ExtTask { contig: i, end: ContigEnd::Right, tail: genome.subseq(0, 100), reads }
    }

    #[test]
    fn batches_cover_all_nonzero_tasks_once() {
        let tasks: Vec<ExtTask> = (0..30).map(|i| task_with_reads(i, [0, 3, 25][i % 3])).collect();
        let params = LocalAssemblyParams::for_tests();
        let bins = bin_tasks(&tasks);
        let batches = build_batches(&tasks, &bins, &params, 8 * 1024);
        let mut seen: Vec<usize> = batches.iter().flat_map(|b| b.idx.iter().copied()).collect();
        seen.sort_unstable();
        let mut expect: Vec<usize> = bins.small.iter().chain(bins.large.iter()).copied().collect();
        expect.sort_unstable();
        assert_eq!(seen, expect, "every bin-2/3 task scheduled exactly once");
        // Heavy batches lead; light batches follow.
        let first_light = batches.iter().position(|b| !b.heavy).unwrap();
        assert!(batches[..first_light].iter().all(|b| b.heavy));
        assert!(batches[first_light..].iter().all(|b| !b.heavy));
    }

    #[test]
    fn light_batches_are_size_interleaved() {
        // Sizes span 1..=9 reads; dealing must spread them so batch totals
        // are comparable even though binning order is ascending-by-size.
        let tasks: Vec<ExtTask> = (0..40).map(|i| task_with_reads(i, 1 + i % 9)).collect();
        let params = LocalAssemblyParams::for_tests();
        let bins = bin_tasks(&tasks);
        let batches = build_batches(&tasks, &bins, &params, 16 * 1024);
        let light: Vec<&TaskBatch> = batches.iter().filter(|b| !b.heavy).collect();
        assert!(light.len() > 1, "want several light batches, got {}", light.len());
        let max = light.iter().map(|b| b.est_words).max().unwrap();
        let min = light.iter().map(|b| b.est_words).min().unwrap();
        assert!(
            (min as f64) > 0.5 * max as f64,
            "light batch totals must be comparable: min {min} vs max {max}"
        );
    }

    #[test]
    fn cpu_clock_rebases_after_convergence_but_constant_when_off() {
        // Seeded 10× too slow against a deterministic true rate: the
        // calibrated clock must end near words/true_rate (the mis-seed is
        // rebased away), while the uncalibrated clock stays at the seed's
        // reading for the same batches.
        let mk = |enabled: bool| StealConfig {
            cpu_words_per_s: 1.0e3,
            calibration: CalibrationConfig {
                enabled,
                cpu_true_words_per_s: Some(1.0e4),
                ..Default::default()
            },
            ..Default::default()
        };
        let (mut on, mut off) = (CpuClock::new(&mk(true)), CpuClock::new(&mk(false)));
        for _ in 0..10 {
            on.advance(1_000, false, f64::NAN); // measured wall unused: true rate set
            off.advance(1_000, false, f64::NAN);
        }
        let oracle = 10_000.0 / 1.0e4; // 1.0 s of true CPU time
        assert!((off.clock - 10.0).abs() < 1e-9, "constant seed clock: {}", off.clock);
        assert!(
            (on.clock - oracle).abs() / oracle < 0.01,
            "rebased clock must track the converged rate: {} vs {oracle}",
            on.clock
        );
        assert_eq!(on.model.pooled().updates(), 10);
        assert_eq!(on.realized_s, off.realized_s, "realized time is belief-independent");
    }

    #[test]
    fn per_bin_clock_prices_each_bin_at_its_own_rate() {
        // True rates: bin 2 at 1e3 words/s, bin 3 at 4e3 words/s. The
        // pooled clock mixes them; the per-bin clock must converge to the
        // exact per-bin sum once both bins pass min_bin_obs.
        let mk = |per_bin: bool| StealConfig {
            cpu_words_per_s: 2.0e3,
            calibration: CalibrationConfig {
                per_bin,
                min_bin_obs: 1,
                cpu_true_bin2_words_per_s: Some(1.0e3),
                cpu_true_bin3_words_per_s: Some(4.0e3),
                ..Default::default()
            },
            ..Default::default()
        };
        let (mut per, mut pooled) = (CpuClock::new(&mk(true)), CpuClock::new(&mk(false)));
        for _ in 0..6 {
            per.advance(1_000, false, f64::NAN);
            per.advance(1_000, true, f64::NAN);
            pooled.advance(1_000, false, f64::NAN);
            pooled.advance(1_000, true, f64::NAN);
        }
        // 6k bin-2 words at 1e3 = 6 s, 6k bin-3 words at 4e3 = 1.5 s.
        let oracle = 6.0 + 1.5;
        assert!(
            (per.clock - oracle).abs() / oracle < 1e-9,
            "per-bin clock must be exact: {} vs {oracle}",
            per.clock
        );
        assert!(
            (pooled.clock - oracle).abs() / oracle > 0.05,
            "pooled clock must conflate the two rates: {} vs {oracle}",
            pooled.clock
        );
        assert_eq!(per.realized_s, pooled.realized_s, "realized time is belief-independent");
    }

    #[test]
    fn drain_target_descends_geometrically_and_never_zero() {
        let cfg = StealConfig {
            batch_words: 1024,
            adaptive_batch: true,
            drain_factor: 2.0,
            min_batch_words: 64,
            ..Default::default()
        };
        assert_eq!(drain_target(1_000_000, &cfg), 1024, "far from drain: full granularity");
        assert_eq!(drain_target(2048, &cfg), 512);
        assert_eq!(drain_target(1024, &cfg), 256);
        for remaining in [512, 64, 1, 0] {
            let t = drain_target(remaining, &cfg);
            assert!(t >= 64, "floor must hold: {t} for remaining {remaining}");
        }
        // min_batch_words above batch_words clamps to batch_words.
        let weird = StealConfig { min_batch_words: 1 << 40, batch_words: 1024, ..cfg.clone() };
        assert_eq!(drain_target(0, &weird), 1024);
        // Degenerate batch_words = 0 would divide by zero without the max.
        let zero = StealConfig { batch_words: 0, ..cfg };
        assert!(drain_target(0, &zero) >= 1);
    }

    #[test]
    fn split_batch_keeps_order_and_words() {
        let tasks: Vec<ExtTask> = (0..8).map(|i| task_with_reads(i, 4)).collect();
        let params = LocalAssemblyParams::for_tests();
        let costs: Vec<u64> = (0..8).map(|i| estimate_task_cost(&tasks[i], &params)).collect();
        let total: u64 = costs.iter().sum();
        let mut batch = TaskBatch { idx: (0..8).collect(), est_words: total, heavy: false };
        let target = costs[0] + costs[1]; // cut after the second task
        let rest = split_batch_at(&mut batch, target, &tasks, &params)
            .expect("an 8-task batch above target must split");
        assert_eq!(batch.idx, vec![0, 1]);
        assert_eq!(rest.idx, (2..8).collect::<Vec<_>>());
        assert_eq!(batch.est_words + rest.est_words, total, "no words lost");
        assert!(batch.est_words >= 1 && rest.est_words >= 1, "no zero-word piece");
        assert!(!rest.heavy, "bin flag inherited");

        // A single-task batch can never be split, no matter the target.
        let mut lone = TaskBatch { idx: vec![3], est_words: costs[3], heavy: true };
        assert!(split_batch_at(&mut lone, 1, &tasks, &params).is_none());
        // A batch already within target is left alone.
        let mut small = TaskBatch { idx: vec![0, 1], est_words: 10, heavy: false };
        assert!(split_batch_at(&mut small, 10, &tasks, &params).is_none());
    }

    #[test]
    fn report_balance_and_makespan() {
        let r = ScheduleReport {
            cpu_est_words: 80,
            gpu_est_words: 100,
            cpu_model_s: 2.0,
            gpu_model_s: 1.5,
            ..Default::default()
        };
        assert!((r.word_balance() - 0.8).abs() < 1e-12);
        assert_eq!(r.makespan_model_s(), 2.0);
        assert_eq!(ScheduleReport::default().word_balance(), 1.0);
    }
}
