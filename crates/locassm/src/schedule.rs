//! Work-stealing CPU/GPU overlap scheduler (paper §4.3, Figure 11).
//!
//! The paper's driver offloads bin 3 to the GPU and lets the CPU chew on
//! bin 2, handing *whatever remains* to whichever engine frees up first — a
//! dynamic split. This module reproduces that with a shared deque of
//! cost-estimated task batches:
//!
//! * batches are built from [`estimate_task_words`] costs — bin 3 sorted
//!   heaviest-first at the **head**, bin 2 dealt **size-interleaved** into
//!   tail batches (so no share is biased by binning order);
//! * the GPU engine drains the head (heaviest work first, the paper's
//!   scheduling), the CPU engine steals from the tail;
//! * whichever engine's clock is behind takes the next batch, so an early
//!   finisher absorbs the remainder — the CPU can steal leftover bin-3
//!   batches, the GPU can absorb leftover bin-2 batches.
//!
//! Because the GPU is a simulator, "time" here is **virtual**: the GPU
//! clock advances by [`GpuRunStats::wall_s`] (simulated kernel seconds plus
//! the modeled pack cost minus double-buffer savings) and the CPU clock by
//! `estimated words / rate`, where the rate starts at the configured
//! `cpu_words_per_s` **seed** and — with calibration enabled — converges on
//! the observed throughput via the EWMA of [`crate::calibrate`], rebasing
//! the CPU clock after every observation. That keeps the schedule — and
//! therefore every test and bench number — deterministic (observations are
//! simulated or modeled, never host wall when a true rate is configured),
//! while the actual task execution still runs on the host engines.
//! Results are index-aligned and byte-identical to
//! [`crate::cpu::extend_all_cpu`] regardless of who ran what (the
//! engine-equivalence invariant).

use crate::binning::BinStats;
use crate::calibrate::{CalibrationConfig, CalibrationReport, RateEstimator};
use crate::cpu::extend_cpu_isolated_refs;
use crate::gpu::pack::estimate_task_cost;
use crate::gpu::{GpuLocalAssembler, GpuRunStats, KernelVersion};
use crate::params::LocalAssemblyParams;
use crate::task::{ExtTask, TaskOutcome};
use gpusim::DeviceConfig;
use std::time::Instant;

/// Knobs of the work-stealing scheduler.
#[derive(Debug, Clone)]
pub struct StealConfig {
    /// Steal granularity: target estimated device-words per batch. Smaller
    /// batches balance better but pay more per-launch overhead.
    pub batch_words: u64,
    /// Seed for the modeled CPU-engine throughput in estimated words per
    /// second — the virtual-clock cost of a batch on the CPU side. The
    /// default sits a few× below the simulated V100's effective rate,
    /// matching the paper's ~4.3× local-assembly speedup at node level.
    /// With [`StealConfig::calibration`] enabled (the default) this is
    /// only the starting estimate; observed batch times take over as the
    /// run progresses. With calibration off it is the rate, full stop.
    pub cpu_words_per_s: f64,
    /// Double-buffer the GPU engine: pack batch N+1 on the host while the
    /// device executes batch N (modeled as saved wall seconds in
    /// [`GpuRunStats::overlap_saved_s`]).
    pub double_buffer: bool,
    /// Online rate-calibration loop (see [`crate::calibrate`]).
    pub calibration: CalibrationConfig,
}

impl Default for StealConfig {
    fn default() -> Self {
        StealConfig {
            batch_words: 64 * 1024,
            cpu_words_per_s: 5.0e7,
            double_buffer: true,
            calibration: CalibrationConfig::default(),
        }
    }
}

/// One deque entry: an index share into the caller's task slice.
#[derive(Debug, Clone)]
pub struct TaskBatch {
    /// Task indices (into the scheduler's input slice).
    pub idx: Vec<usize>,
    /// Total estimated device words (the batch's cost).
    pub est_words: u64,
    /// True for bin-3 (head-end) batches.
    pub heavy: bool,
}

/// What the scheduler did: share sizes, steal counts, and the virtual-time
/// model behind the makespan claims.
#[derive(Debug, Clone, Default)]
pub struct ScheduleReport {
    /// `"static"` or `"work-steal"`.
    pub policy: &'static str,
    /// Batches handed out (2 for the static split).
    pub batches: usize,
    /// Batches the GPU engine drained from the head.
    pub gpu_batches: usize,
    /// Batches the CPU engine stole from the tail.
    pub cpu_batches: usize,
    /// Heavy (bin-3) batches the CPU stole — dynamic rebalance the static
    /// split can never do.
    pub cpu_stole_heavy: usize,
    /// Light (bin-2) batches the GPU absorbed after draining bin 3.
    pub gpu_absorbed_light: usize,
    /// Estimated words executed by the CPU share.
    pub cpu_est_words: u64,
    /// Estimated words executed by the GPU share.
    pub gpu_est_words: u64,
    /// CPU virtual clock at the end of the run (modeled seconds).
    pub cpu_model_s: f64,
    /// GPU virtual clock at the end of the run (simulated + pack seconds).
    pub gpu_model_s: f64,
    /// What the calibration loop learned (work-steal runs only; `None`
    /// for the static split, whose shares are fixed up front).
    pub calibration: Option<CalibrationReport>,
}

impl ScheduleReport {
    /// Modeled overlap makespan: both engines run concurrently, so the run
    /// ends when the slower clock does.
    pub fn makespan_model_s(&self) -> f64 {
        self.cpu_model_s.max(self.gpu_model_s)
    }

    /// Word-share balance: `min(cpu, gpu) / max(cpu, gpu)` estimated words
    /// (1.0 = perfectly even shares, 0.0 = one engine idle).
    pub fn word_balance(&self) -> f64 {
        let (lo, hi) = if self.cpu_est_words <= self.gpu_est_words {
            (self.cpu_est_words, self.gpu_est_words)
        } else {
            (self.gpu_est_words, self.cpu_est_words)
        };
        if hi == 0 {
            return 1.0;
        }
        lo as f64 / hi as f64
    }
}

/// Build the deque: bin-3 batches heaviest-first at the head, bin-2 dealt
/// size-interleaved into tail batches of ≈`batch_words` each.
pub fn build_batches(
    tasks: &[ExtTask],
    bins: &BinStats,
    params: &LocalAssemblyParams,
    batch_words: u64,
) -> Vec<TaskBatch> {
    let batch_words = batch_words.max(1);
    let cost = |i: usize| estimate_task_cost(&tasks[i], params);

    // Head: bin 3, heaviest first, greedy-filled up to the granularity (a
    // single oversized task forms its own batch — the engine's internal
    // memory batching still protects the device).
    let mut large: Vec<(u64, usize)> = bins.large.iter().map(|&i| (cost(i), i)).collect();
    large.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut batches: Vec<TaskBatch> = Vec::new();
    let mut cur = TaskBatch { idx: Vec::new(), est_words: 0, heavy: true };
    for (w, i) in large {
        if !cur.idx.is_empty() && cur.est_words + w > batch_words {
            batches.push(std::mem::replace(
                &mut cur,
                TaskBatch { idx: Vec::new(), est_words: 0, heavy: true },
            ));
        }
        cur.idx.push(i);
        cur.est_words += w;
    }
    if !cur.idx.is_empty() {
        batches.push(cur);
    }

    // Tail: bin 2, dealt in descending size order into whichever of the K
    // batches is currently lightest (greedy LPT), so every batch carries a
    // comparable words total and a mix of sizes. A plain `j % k` deal here
    // biased batch 0: with items sorted descending it collected the larger
    // item of every round, so the first-dealt batch systematically
    // outweighed the last.
    let mut small: Vec<(u64, usize)> = bins.small.iter().map(|&i| (cost(i), i)).collect();
    if !small.is_empty() {
        small.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let total: u64 = small.iter().map(|(w, _)| w).sum();
        let k = (total.div_ceil(batch_words) as usize).clamp(1, small.len());
        let mut light: Vec<TaskBatch> =
            (0..k).map(|_| TaskBatch { idx: Vec::new(), est_words: 0, heavy: false }).collect();
        for (w, i) in small {
            let mut best = 0;
            for b in 1..k {
                if light[b].est_words < light[best].est_words {
                    best = b;
                }
            }
            light[best].idx.push(i);
            light[best].est_words += w;
        }
        batches.extend(light);
    }
    batches
}

/// Everything a work-stealing run hands back to the driver.
pub(crate) struct StealRun {
    pub report: ScheduleReport,
    pub gpu_stats: Option<GpuRunStats>,
    /// The GPU engine branch panicked; its popped batch and the rest of the
    /// deque were absorbed by the CPU engine.
    pub gpu_branch_fell_back: bool,
    /// Host wall seconds spent inside CPU-engine batch runs.
    pub cpu_wall_s: f64,
    /// Host wall seconds spent driving the GPU engine (simulation cost).
    pub gpu_wall_s: f64,
    /// Tasks executed by the CPU engine.
    pub cpu_tasks: usize,
    /// Tasks executed by the GPU engine.
    pub gpu_tasks: usize,
}

/// CPU-engine virtual clock with the calibration loop folded in.
///
/// Each finished CPU batch yields an observation `(est_words, seconds)`
/// where `seconds` is either the measured host wall time or — when a
/// deterministic true rate is configured — the modeled time at that rate.
/// With calibration enabled the EWMA absorbs the observation and the clock
/// is **rebased** to `words_done / rate`, so the schedule's view of
/// elapsed CPU time always reflects the current estimate rather than a sum
/// of possibly mis-seeded per-batch advances; a 10×-wrong seed is forgiven
/// as soon as the estimate converges. With calibration off the clock
/// advances at the constant seed rate, exactly the pre-calibration
/// behavior.
struct CpuClock {
    est: RateEstimator,
    seed: f64,
    enabled: bool,
    true_rate: Option<f64>,
    clock: f64,
    words_done: u64,
    realized_s: f64,
}

impl CpuClock {
    fn new(cfg: &StealConfig) -> CpuClock {
        CpuClock {
            est: RateEstimator::seeded(cfg.cpu_words_per_s, cfg.calibration.alpha),
            seed: cfg.cpu_words_per_s,
            enabled: cfg.calibration.enabled,
            true_rate: cfg.calibration.cpu_true_words_per_s,
            clock: 0.0,
            words_done: 0,
            realized_s: 0.0,
        }
    }

    /// Account one finished CPU batch: `est_words` of cost retired in
    /// `measured_s` host wall seconds.
    fn advance(&mut self, est_words: u64, measured_s: f64) {
        let observed_s = match self.true_rate {
            Some(r) => est_words as f64 / r,
            None => measured_s,
        };
        self.words_done += est_words;
        self.realized_s += observed_s.max(0.0);
        if self.enabled {
            self.est.observe(est_words, observed_s);
            self.clock = self.words_done as f64 / self.est.rate_or(self.seed);
        } else {
            self.clock += est_words as f64 / self.seed;
        }
    }
}

/// Drain the deque with two engines under virtual clocks, writing per-task
/// outcomes into `results` (index-aligned with `tasks`).
pub(crate) fn run_work_steal(
    tasks: &[ExtTask],
    batches: &[TaskBatch],
    params: &LocalAssemblyParams,
    device: DeviceConfig,
    version: KernelVersion,
    cfg: &StealConfig,
    results: &mut [Option<TaskOutcome>],
) -> StealRun {
    let mut engine = GpuLocalAssembler::new(device, params.clone(), version)
        .with_double_buffer(cfg.double_buffer);
    let mut report =
        ScheduleReport { policy: "work-steal", batches: batches.len(), ..Default::default() };
    let mut gpu_stats = GpuRunStats::default();
    let mut gpu_ran = false;
    let mut gpu_dead = false;
    let mut fell_back = false;
    let (mut cpu_wall, mut gpu_wall) = (0.0f64, 0.0f64);
    let mut cpu = CpuClock::new(cfg);
    let mut gpu_est = RateEstimator::unseeded(cfg.calibration.alpha);
    let mut gpu_realized = 0.0f64;
    let mut gpu_clock = 0.0f64;
    let (mut cpu_tasks, mut gpu_tasks) = (0usize, 0usize);
    let (mut head, mut tail) = (0usize, batches.len());

    while head < tail {
        // The engine whose virtual clock is behind takes the next batch;
        // the GPU from the heavy head, the CPU from the light tail. Ties go
        // to the GPU (the paper launches the GPU first).
        if !gpu_dead && gpu_clock <= cpu.clock {
            let batch = &batches[head];
            head += 1;
            let refs: Vec<&ExtTask> = batch.idx.iter().map(|&i| &tasks[i]).collect();
            let t = Instant::now();
            let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                engine.extend_tasks_outcomes_ref(&refs)
            }));
            gpu_wall += t.elapsed().as_secs_f64();
            match run {
                Ok((outcomes, stats)) => {
                    for (&i, outcome) in batch.idx.iter().zip(outcomes) {
                        results[i] = Some(outcome);
                    }
                    gpu_clock += stats.wall_s();
                    gpu_realized += stats.wall_s().max(0.0);
                    gpu_est.observe(batch.est_words, stats.wall_s());
                    if stats.recovery.device_lost {
                        // Reset budget exhausted: route the rest of the
                        // deque to the CPU instead of the per-task fallback.
                        gpu_dead = true;
                    }
                    gpu_stats.absorb(&stats);
                    gpu_ran = true;
                    gpu_tasks += batch.idx.len();
                    report.gpu_batches += 1;
                    report.gpu_est_words += batch.est_words;
                    if !batch.heavy {
                        report.gpu_absorbed_light += 1;
                    }
                }
                Err(_panic) => {
                    // Engine bug (device faults are absorbed by the
                    // ladder): the popped batch re-runs on the CPU and the
                    // deque drains CPU-side from here on.
                    gpu_dead = true;
                    fell_back = true;
                    let s = run_batch_cpu(tasks, batch, params, results, &mut report);
                    cpu_wall += s;
                    cpu.advance(batch.est_words, s);
                    cpu_tasks += batch.idx.len();
                }
            }
        } else {
            tail -= 1;
            let batch = &batches[tail];
            let s = run_batch_cpu(tasks, batch, params, results, &mut report);
            cpu_wall += s;
            cpu.advance(batch.est_words, s);
            cpu_tasks += batch.idx.len();
        }
    }

    report.cpu_model_s = cpu.clock;
    report.gpu_model_s = gpu_clock;
    let realized = cpu.realized_s.max(gpu_realized);
    let model = report.makespan_model_s();
    report.calibration = Some(CalibrationReport {
        enabled: cpu.enabled,
        cpu_seed_words_per_s: cpu.seed,
        cpu_words_per_s: cpu.est.rate_or(cpu.seed),
        gpu_words_per_s: gpu_est.rate_or(0.0),
        cpu_updates: cpu.est.updates(),
        gpu_updates: gpu_est.updates(),
        cpu_realized_s: cpu.realized_s,
        gpu_realized_s: gpu_realized,
        rel_err_vs_realized: if realized > 0.0 { (model - realized).abs() / realized } else { 0.0 },
    });
    StealRun {
        report,
        gpu_stats: gpu_ran.then_some(gpu_stats),
        gpu_branch_fell_back: fell_back,
        cpu_wall_s: cpu_wall,
        gpu_wall_s: gpu_wall,
        cpu_tasks,
        gpu_tasks,
    }
}

/// Run one batch on the CPU engine; returns its measured host wall
/// seconds (the calibration loop's fallback observation source).
fn run_batch_cpu(
    tasks: &[ExtTask],
    batch: &TaskBatch,
    params: &LocalAssemblyParams,
    results: &mut [Option<TaskOutcome>],
    report: &mut ScheduleReport,
) -> f64 {
    let refs: Vec<&ExtTask> = batch.idx.iter().map(|&i| &tasks[i]).collect();
    let t = Instant::now();
    let outcomes = extend_cpu_isolated_refs(&refs, params);
    let batch_wall = t.elapsed().as_secs_f64();
    for (&i, outcome) in batch.idx.iter().zip(outcomes) {
        results[i] = Some(outcome);
    }
    report.cpu_batches += 1;
    report.cpu_est_words += batch.est_words;
    if batch.heavy {
        report.cpu_stole_heavy += 1;
    }
    batch_wall
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binning::bin_tasks;
    use crate::task::ContigEnd;
    use bioseq::{DnaSeq, Read};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_seq(len: usize, sd: u64) -> DnaSeq {
        let mut rng = StdRng::seed_from_u64(sd);
        (0..len).map(|_| bioseq::Base::from_code(rng.gen_range(0..4))).collect()
    }

    fn task_with_reads(i: usize, n_reads: usize) -> ExtTask {
        let genome = random_seq(300, 40_000 + i as u64);
        let reads = (0..n_reads)
            .map(|r| {
                Read::with_uniform_qual(
                    format!("t{i}r{r}"),
                    genome.subseq(40 + (r * 11) % 150, 70),
                    35,
                )
            })
            .collect();
        ExtTask { contig: i, end: ContigEnd::Right, tail: genome.subseq(0, 100), reads }
    }

    #[test]
    fn batches_cover_all_nonzero_tasks_once() {
        let tasks: Vec<ExtTask> = (0..30).map(|i| task_with_reads(i, [0, 3, 25][i % 3])).collect();
        let params = LocalAssemblyParams::for_tests();
        let bins = bin_tasks(&tasks);
        let batches = build_batches(&tasks, &bins, &params, 8 * 1024);
        let mut seen: Vec<usize> = batches.iter().flat_map(|b| b.idx.iter().copied()).collect();
        seen.sort_unstable();
        let mut expect: Vec<usize> = bins.small.iter().chain(bins.large.iter()).copied().collect();
        expect.sort_unstable();
        assert_eq!(seen, expect, "every bin-2/3 task scheduled exactly once");
        // Heavy batches lead; light batches follow.
        let first_light = batches.iter().position(|b| !b.heavy).unwrap();
        assert!(batches[..first_light].iter().all(|b| b.heavy));
        assert!(batches[first_light..].iter().all(|b| !b.heavy));
    }

    #[test]
    fn light_batches_are_size_interleaved() {
        // Sizes span 1..=9 reads; dealing must spread them so batch totals
        // are comparable even though binning order is ascending-by-size.
        let tasks: Vec<ExtTask> = (0..40).map(|i| task_with_reads(i, 1 + i % 9)).collect();
        let params = LocalAssemblyParams::for_tests();
        let bins = bin_tasks(&tasks);
        let batches = build_batches(&tasks, &bins, &params, 16 * 1024);
        let light: Vec<&TaskBatch> = batches.iter().filter(|b| !b.heavy).collect();
        assert!(light.len() > 1, "want several light batches, got {}", light.len());
        let max = light.iter().map(|b| b.est_words).max().unwrap();
        let min = light.iter().map(|b| b.est_words).min().unwrap();
        assert!(
            (min as f64) > 0.5 * max as f64,
            "light batch totals must be comparable: min {min} vs max {max}"
        );
    }

    #[test]
    fn cpu_clock_rebases_after_convergence_but_constant_when_off() {
        // Seeded 10× too slow against a deterministic true rate: the
        // calibrated clock must end near words/true_rate (the mis-seed is
        // rebased away), while the uncalibrated clock stays at the seed's
        // reading for the same batches.
        let mk = |enabled: bool| StealConfig {
            cpu_words_per_s: 1.0e3,
            calibration: CalibrationConfig {
                enabled,
                cpu_true_words_per_s: Some(1.0e4),
                ..Default::default()
            },
            ..Default::default()
        };
        let (mut on, mut off) = (CpuClock::new(&mk(true)), CpuClock::new(&mk(false)));
        for _ in 0..10 {
            on.advance(1_000, f64::NAN); // measured wall unused: true rate set
            off.advance(1_000, f64::NAN);
        }
        let oracle = 10_000.0 / 1.0e4; // 1.0 s of true CPU time
        assert!((off.clock - 10.0).abs() < 1e-9, "constant seed clock: {}", off.clock);
        assert!(
            (on.clock - oracle).abs() / oracle < 0.01,
            "rebased clock must track the converged rate: {} vs {oracle}",
            on.clock
        );
        assert_eq!(on.est.updates(), 10);
        assert_eq!(on.realized_s, off.realized_s, "realized time is belief-independent");
    }

    #[test]
    fn report_balance_and_makespan() {
        let r = ScheduleReport {
            cpu_est_words: 80,
            gpu_est_words: 100,
            cpu_model_s: 2.0,
            gpu_model_s: 1.5,
            ..Default::default()
        };
        assert!((r.word_balance() - 0.8).abs() < 1e-12);
        assert_eq!(r.makespan_model_s(), 2.0);
        assert_eq!(ScheduleReport::default().word_balance(), 1.0);
    }
}
