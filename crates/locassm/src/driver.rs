//! The CPU/GPU overlap driver of §4.3 (Figure 11).
//!
//! MetaHipMer2 launches the driver function in a separate thread so that,
//! while the GPU chews on bin 3 (the few contigs with the most candidate
//! reads), the CPU keeps extending bin-2 contigs; whatever bin-2 work
//! remains when the GPU returns is offloaded too — a *dynamic* handoff.
//!
//! Two scheduling policies reproduce that:
//!
//! * [`SchedulePolicy::WorkSteal`] (default) — the deque scheduler of
//!   [`crate::schedule`]: cost-estimated batches, GPU drains the
//!   bin-3-first head, CPU steals from the bin-2 tail, whichever engine is
//!   behind on its virtual clock takes the next batch.
//! * [`SchedulePolicy::Static`] — the historical fixed `cpu_bin2_fraction`
//!   split, kept as the comparison baseline. The CPU share is now dealt
//!   **size-interleaved** (not a prefix of `bins.small`), so even the
//!   static split is no longer biased by binning order.
//!
//! Functional output is engine-independent (the equivalence tests
//! guarantee it), so the policy is purely a performance knob — exactly as
//! in the paper. Both paths share task data by index; tasks are never
//! deep-cloned per engine.

use crate::binning::bin_tasks;
use crate::cpu::extend_cpu_isolated_refs;
use crate::gpu::pack::estimate_task_cost;
use crate::gpu::{GpuLocalAssembler, GpuRunStats, KernelVersion};
use crate::params::LocalAssemblyParams;
use crate::schedule::{build_batches, run_work_steal, ScheduleReport, StealConfig};
use crate::task::{ExtResult, ExtTask, TaskOutcome};
use gpusim::DeviceConfig;
use std::time::Instant;

/// Why an overlapped run could not produce results at all. Per-task
/// failures do NOT produce this — they degrade to skipped tasks, counted
/// in [`OverlapOutcome::failed_tasks`].
#[derive(Debug, Clone, PartialEq)]
pub enum DriverError {
    /// An engine returned the wrong number of results for its task split —
    /// an internal invariant violation, not a recoverable device fault.
    ResultMismatch {
        /// Results the split said the engine should produce.
        expected: usize,
        /// Results the engine actually returned.
        got: usize,
    },
    /// The driver was configured with an out-of-domain knob (NaN or
    /// out-of-range fraction, zero batch granularity, non-positive rate).
    /// Rejected up front rather than silently misrouting work.
    BadConfig {
        /// Which knob was rejected, and why.
        what: String,
    },
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverError::ResultMismatch { expected, got } => {
                write!(f, "engine returned {got} results for {expected} tasks")
            }
            DriverError::BadConfig { what } => write!(f, "bad driver config: {what}"),
        }
    }
}

impl std::error::Error for DriverError {}

/// How bin-2/bin-3 work is divided between the engines.
#[derive(Debug, Clone)]
pub enum SchedulePolicy {
    /// Fixed split: this fraction of bin 2 stays on the CPU (0 = all bin 2
    /// follows bin 3 onto the GPU; 1 = CPU does all of bin 2), dealt
    /// size-interleaved. Bin 3 always goes to the GPU.
    Static {
        /// Fraction of bin-2 tasks kept on the CPU. Must be finite and in
        /// `[0, 1]` — anything else is a [`DriverError::BadConfig`].
        cpu_bin2_fraction: f64,
    },
    /// Deque work-stealing with cost-estimated batches (the tentpole).
    WorkSteal(StealConfig),
}

/// Outcome of an overlapped run.
#[derive(Debug)]
pub struct OverlapOutcome {
    /// Results, index-aligned with the input tasks.
    pub results: Vec<ExtResult>,
    /// Tasks answered host-side with no work (bin 1).
    pub zero_tasks: usize,
    /// Tasks the CPU engine handled.
    pub cpu_tasks: usize,
    /// Tasks the GPU engine handled.
    pub gpu_tasks: usize,
    /// Tasks that failed on every rung of the recovery ladder and were
    /// skipped (their contigs keep their current sequence).
    pub failed_tasks: usize,
    /// The GPU engine branch panicked and its remaining share was re-run
    /// on the CPU engine.
    pub gpu_branch_fell_back: bool,
    /// Host wall seconds of the CPU side.
    pub cpu_wall_s: f64,
    /// Host wall seconds spent driving the GPU side (simulation cost).
    pub gpu_wall_s: f64,
    /// Simulated device stats of the GPU side.
    pub gpu_stats: Option<GpuRunStats>,
    /// What the scheduler did (shares, steals, virtual-clock model).
    pub schedule: ScheduleReport,
}

/// The overlap driver.
pub struct OverlapDriver {
    /// Simulated device the GPU engine runs on (fault plan included).
    pub device: DeviceConfig,
    /// Kernel version the GPU engine launches.
    pub version: KernelVersion,
    /// Scheduling policy (default: work-stealing).
    pub schedule: SchedulePolicy,
}

impl Default for OverlapDriver {
    fn default() -> Self {
        OverlapDriver {
            device: DeviceConfig::v100(),
            version: KernelVersion::V2,
            schedule: SchedulePolicy::WorkSteal(StealConfig::default()),
        }
    }
}

impl OverlapDriver {
    /// The historical fixed-fraction driver (comparison baseline).
    pub fn static_split(cpu_bin2_fraction: f64) -> OverlapDriver {
        OverlapDriver {
            schedule: SchedulePolicy::Static { cpu_bin2_fraction },
            ..Default::default()
        }
    }

    /// The work-stealing driver with default steal granularity.
    pub fn work_stealing() -> OverlapDriver {
        OverlapDriver::default()
    }

    fn validate(&self) -> Result<(), DriverError> {
        let bad = |what: String| Err(DriverError::BadConfig { what });
        match &self.schedule {
            SchedulePolicy::Static { cpu_bin2_fraction: f } => {
                if !f.is_finite() || !(0.0..=1.0).contains(f) {
                    return bad(format!("cpu_bin2_fraction must be in [0, 1], got {f}"));
                }
            }
            SchedulePolicy::WorkSteal(cfg) => {
                if cfg.batch_words == 0 {
                    return bad("batch_words must be >= 1".to_string());
                }
                if !cfg.cpu_words_per_s.is_finite() || cfg.cpu_words_per_s <= 0.0 {
                    return bad(format!(
                        "cpu_words_per_s must be positive and finite, got {}",
                        cfg.cpu_words_per_s
                    ));
                }
                if !cfg.drain_factor.is_finite() || cfg.drain_factor <= 0.0 {
                    return bad(format!(
                        "drain_factor must be positive and finite, got {}",
                        cfg.drain_factor
                    ));
                }
                if cfg.min_batch_words == 0 {
                    return bad("min_batch_words must be >= 1".to_string());
                }
                if let Err(what) = cfg.calibration.validate() {
                    return bad(what);
                }
            }
        }
        Ok(())
    }

    /// Run all tasks with CPU/GPU overlap.
    ///
    /// Device faults are handled inside the GPU engine's recovery ladder
    /// (retry → shrink → reset → CPU fallback); if the whole GPU branch
    /// panics, its remaining share is re-run on the CPU engine with
    /// per-task panic isolation, so a single bad task is skipped, never
    /// fatal.
    pub fn run(
        &self,
        tasks: &[ExtTask],
        params: &LocalAssemblyParams,
    ) -> Result<OverlapOutcome, DriverError> {
        self.validate()?;
        let bins = bin_tasks(tasks);
        let mut results: Vec<Option<TaskOutcome>> = vec![None; tasks.len()];
        for &i in &bins.zero {
            results[i] = Some(TaskOutcome::Done(ExtResult::empty()));
        }

        let (report, gpu_stats, fell_back, cpu_wall, gpu_wall, cpu_tasks, gpu_tasks) =
            match &self.schedule {
                SchedulePolicy::WorkSteal(cfg) => {
                    let batches = build_batches(tasks, &bins, params, cfg.batch_words);
                    let run = run_work_steal(
                        tasks,
                        &batches,
                        params,
                        self.device.clone(),
                        self.version,
                        cfg,
                        &mut results,
                    );
                    (
                        run.report,
                        run.gpu_stats,
                        run.gpu_branch_fell_back,
                        run.cpu_wall_s,
                        run.gpu_wall_s,
                        run.cpu_tasks,
                        run.gpu_tasks,
                    )
                }
                SchedulePolicy::Static { cpu_bin2_fraction } => {
                    self.run_static(tasks, &bins, params, *cpu_bin2_fraction, &mut results)?
                }
            };

        let mut failed_tasks = 0usize;
        let mut missing = 0usize;
        let results: Vec<ExtResult> = results
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                let outcome = r.unwrap_or_else(|| {
                    missing += 1;
                    TaskOutcome::Failed {
                        contig: tasks[i].contig,
                        reason: "task was never scheduled".to_string(),
                    }
                });
                if outcome.is_failed() {
                    failed_tasks += 1;
                }
                outcome.into_result()
            })
            .collect();
        if missing > 0 {
            return Err(DriverError::ResultMismatch {
                expected: tasks.len(),
                got: tasks.len() - missing,
            });
        }

        Ok(OverlapOutcome {
            results,
            zero_tasks: bins.zero.len(),
            cpu_tasks,
            gpu_tasks,
            failed_tasks,
            gpu_branch_fell_back: fell_back,
            cpu_wall_s: cpu_wall,
            gpu_wall_s: gpu_wall,
            gpu_stats,
            schedule: report,
        })
    }

    /// The fixed-fraction baseline: split bin 2 size-interleaved, bin 3 on
    /// the GPU, both shares run back-to-back (rayon in this tree is the
    /// vendored sequential stub, so join order is irrelevant to results).
    #[allow(clippy::type_complexity)]
    fn run_static(
        &self,
        tasks: &[ExtTask],
        bins: &crate::binning::BinStats,
        params: &LocalAssemblyParams,
        fraction: f64,
        results: &mut [Option<TaskOutcome>],
    ) -> Result<(ScheduleReport, Option<GpuRunStats>, bool, f64, f64, usize, usize), DriverError>
    {
        // Deal bin 2 in descending size order, Bresenham-style, so the CPU
        // share holds `fraction` of the *tasks* while both shares see the
        // same size mix — the prefix-bias fix.
        let cost = |i: usize| estimate_task_cost(&tasks[i], params);
        let mut small: Vec<(u64, usize)> = bins.small.iter().map(|&i| (cost(i), i)).collect();
        small.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let (mut cpu_idx, mut gpu_small) = (Vec::new(), Vec::new());
        let mut cpu_words = 0u64;
        let mut gpu_words: u64 = bins.large.iter().map(|&i| cost(i)).sum();
        for (j, (w, i)) in small.into_iter().enumerate() {
            let take = ((j + 1) as f64 * fraction) as usize > (j as f64 * fraction) as usize;
            if take {
                cpu_idx.push(i);
                cpu_words += w;
            } else {
                gpu_small.push(i);
                gpu_words += w;
            }
        }
        let gpu_idx: Vec<usize> = bins.large.iter().copied().chain(gpu_small).collect();

        let cpu_refs: Vec<&ExtTask> = cpu_idx.iter().map(|&i| &tasks[i]).collect();
        let gpu_refs: Vec<&ExtTask> = gpu_idx.iter().map(|&i| &tasks[i]).collect();

        let device = self.device.clone();
        let version = self.version;
        let params_gpu = params.clone();
        let params_cpu = params.clone();

        // Host-side overlap structure preserved: the GPU simulation runs on
        // one branch of a rayon join while the CPU engine takes the other.
        let ((gpu_branch, gpu_wall), (cpu_results, cpu_wall)) = rayon::join(
            || {
                let t = Instant::now();
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let mut engine = GpuLocalAssembler::new(device, params_gpu, version);
                    engine.extend_tasks_outcomes_ref(&gpu_refs)
                }));
                (r, t.elapsed().as_secs_f64())
            },
            || {
                let t = Instant::now();
                let r = extend_cpu_isolated_refs(&cpu_refs, &params_cpu);
                (r, t.elapsed().as_secs_f64())
            },
        );

        // A panic of the whole GPU branch (engine bug, not a device fault —
        // those are absorbed by the ladder) degrades to re-running its
        // share on the CPU engine. The share is re-borrowed by index — the
        // tasks themselves are never cloned.
        let (gpu_results, gpu_stats, fell_back) = match gpu_branch {
            Ok((r, s)) => (r, Some(s), false),
            Err(_panic) => {
                let refs: Vec<&ExtTask> = gpu_idx.iter().map(|&i| &tasks[i]).collect();
                (extend_cpu_isolated_refs(&refs, params), None, true)
            }
        };

        if cpu_results.len() != cpu_idx.len() {
            return Err(DriverError::ResultMismatch {
                expected: cpu_idx.len(),
                got: cpu_results.len(),
            });
        }
        if gpu_results.len() != gpu_idx.len() {
            return Err(DriverError::ResultMismatch {
                expected: gpu_idx.len(),
                got: gpu_results.len(),
            });
        }

        for (&i, r) in cpu_idx.iter().zip(cpu_results) {
            results[i] = Some(r);
        }
        for (&i, r) in gpu_idx.iter().zip(gpu_results) {
            results[i] = Some(r);
        }

        let report = ScheduleReport {
            policy: "static",
            batches: 2,
            gpu_batches: usize::from(!gpu_idx.is_empty()),
            cpu_batches: usize::from(!cpu_idx.is_empty()),
            cpu_est_words: cpu_words,
            gpu_est_words: gpu_words,
            ..Default::default()
        };
        Ok((report, gpu_stats, fell_back, cpu_wall, gpu_wall, cpu_idx.len(), gpu_idx.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::extend_all_cpu;
    use crate::task::ContigEnd;
    use bioseq::{DnaSeq, Read};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_seq(len: usize, sd: u64) -> DnaSeq {
        let mut rng = StdRng::seed_from_u64(sd);
        (0..len).map(|_| bioseq::Base::from_code(rng.gen_range(0..4))).collect()
    }

    fn tasks_with_mixed_bins() -> Vec<ExtTask> {
        let mut tasks = Vec::new();
        for i in 0..24 {
            let genome = random_seq(400, 500 + i as u64);
            let n_reads = match i % 3 {
                0 => 0,
                1 => 4,
                _ => 14,
            };
            let reads = (0..n_reads)
                .map(|r| {
                    let start = 60 + (r * 13) % 200;
                    Read::with_uniform_qual(format!("t{i}r{r}"), genome.subseq(start, 80), 35)
                })
                .collect();
            tasks.push(ExtTask {
                contig: i,
                end: ContigEnd::Right,
                tail: genome.subseq(0, 120),
                reads,
            });
        }
        tasks
    }

    #[test]
    fn work_steal_matches_pure_cpu() {
        let tasks = tasks_with_mixed_bins();
        let params = LocalAssemblyParams::for_tests();
        let pure = extend_all_cpu(&tasks, &params);
        let outcome = OverlapDriver::default().run(&tasks, &params).expect("driver runs");
        assert_eq!(outcome.results, pure);
        assert_eq!(outcome.zero_tasks, 8);
        assert_eq!(outcome.failed_tasks, 0);
        assert!(!outcome.gpu_branch_fell_back);
        assert_eq!(outcome.schedule.policy, "work-steal");
        assert_eq!(outcome.cpu_tasks + outcome.gpu_tasks + outcome.zero_tasks, tasks.len());
    }

    #[test]
    fn static_matches_pure_cpu() {
        let tasks = tasks_with_mixed_bins();
        let params = LocalAssemblyParams::for_tests();
        let pure = extend_all_cpu(&tasks, &params);
        let outcome = OverlapDriver::static_split(0.5).run(&tasks, &params).expect("driver runs");
        assert_eq!(outcome.results, pure);
        assert_eq!(outcome.schedule.policy, "static");
        assert_eq!(outcome.cpu_tasks + outcome.gpu_tasks + outcome.zero_tasks, tasks.len());
    }

    #[test]
    fn split_fraction_extremes() {
        let tasks = tasks_with_mixed_bins();
        let params = LocalAssemblyParams::for_tests();
        let pure = extend_all_cpu(&tasks, &params);
        for frac in [0.0, 1.0] {
            let driver = OverlapDriver::static_split(frac);
            let outcome = driver.run(&tasks, &params).expect("driver runs");
            assert_eq!(outcome.results, pure, "fraction {frac}");
            if frac == 0.0 {
                assert_eq!(outcome.cpu_tasks, 0);
            } else {
                // All bin-2 on CPU; GPU still gets bin 3.
                assert_eq!(outcome.cpu_tasks, 8);
                assert_eq!(outcome.gpu_tasks, 8);
            }
        }
    }

    #[test]
    fn bad_config_is_rejected() {
        let tasks = tasks_with_mixed_bins();
        let params = LocalAssemblyParams::for_tests();
        for frac in [f64::NAN, -0.1, 1.5, f64::INFINITY] {
            let err = OverlapDriver::static_split(frac)
                .run(&tasks, &params)
                .expect_err("out-of-domain fraction must be rejected");
            assert!(matches!(err, DriverError::BadConfig { .. }), "fraction {frac}: got {err:?}");
        }
        let ws = |cfg: StealConfig| OverlapDriver {
            schedule: SchedulePolicy::WorkSteal(cfg),
            ..Default::default()
        };
        let err = ws(StealConfig { batch_words: 0, ..Default::default() })
            .run(&tasks, &params)
            .expect_err("zero batch_words must be rejected");
        assert!(matches!(err, DriverError::BadConfig { .. }));
        for rate in [0.0, -1.0, f64::NAN] {
            let err = ws(StealConfig { cpu_words_per_s: rate, ..Default::default() })
                .run(&tasks, &params)
                .expect_err("bad cpu rate must be rejected");
            assert!(matches!(err, DriverError::BadConfig { .. }), "rate {rate}");
        }
        for df in [0.0, -2.0, f64::NAN, f64::INFINITY] {
            let err =
                ws(StealConfig { adaptive_batch: true, drain_factor: df, ..Default::default() })
                    .run(&tasks, &params)
                    .expect_err("bad drain_factor must be rejected");
            assert!(matches!(err, DriverError::BadConfig { .. }), "drain_factor {df}");
        }
        let err = ws(StealConfig { min_batch_words: 0, ..Default::default() })
            .run(&tasks, &params)
            .expect_err("zero min_batch_words must be rejected");
        assert!(matches!(err, DriverError::BadConfig { .. }));
        use crate::calibrate::CalibrationConfig;
        for cal in [
            CalibrationConfig { alpha: 0.0, ..Default::default() },
            CalibrationConfig { alpha: f64::NAN, ..Default::default() },
            CalibrationConfig { cpu_true_words_per_s: Some(-1.0), ..Default::default() },
            CalibrationConfig { per_bin: true, enabled: false, ..Default::default() },
            CalibrationConfig { min_bin_obs: 0, ..Default::default() },
        ] {
            let err = ws(StealConfig { calibration: cal.clone(), ..Default::default() })
                .run(&tasks, &params)
                .expect_err("bad calibration config must be rejected");
            assert!(matches!(err, DriverError::BadConfig { .. }), "calibration {cal:?}");
        }
    }

    #[test]
    fn per_bin_and_adaptive_match_pure_cpu() {
        use crate::calibrate::CalibrationConfig;
        let tasks = tasks_with_mixed_bins();
        let params = LocalAssemblyParams::for_tests();
        let pure = extend_all_cpu(&tasks, &params);
        let driver = OverlapDriver {
            schedule: SchedulePolicy::WorkSteal(StealConfig {
                batch_words: 4 * 1024,
                adaptive_batch: true,
                min_batch_words: 256,
                calibration: CalibrationConfig {
                    per_bin: true,
                    min_bin_obs: 1,
                    cpu_true_bin2_words_per_s: Some(1.0e6),
                    cpu_true_bin3_words_per_s: Some(4.0e6),
                    ..Default::default()
                },
                ..Default::default()
            }),
            ..Default::default()
        };
        let outcome = driver.run(&tasks, &params).expect("driver runs");
        assert_eq!(outcome.results, pure, "new knobs must not change results");
        assert!(outcome.schedule.adaptive_batch);
        assert!(outcome.schedule.min_issued_batch_words >= 1, "no issued batch may be zero words");
        let cal = outcome.schedule.calibration.expect("work-steal reports calibration");
        assert!(cal.per_bin);
        assert_eq!(
            cal.cpu_bin2_updates + cal.cpu_bin3_updates,
            cal.cpu_updates,
            "every CPU observation lands in exactly one bin"
        );
        assert_eq!(
            cal.gpu_bin2_updates + cal.gpu_bin3_updates,
            cal.gpu_updates,
            "every GPU observation lands in exactly one bin"
        );
    }

    #[test]
    fn bin3_always_on_gpu_in_static_mode() {
        let tasks = tasks_with_mixed_bins();
        let params = LocalAssemblyParams::for_tests();
        let driver = OverlapDriver::static_split(1.0);
        let outcome = driver.run(&tasks, &params).expect("driver runs");
        let stats = outcome.gpu_stats.expect("gpu ran");
        assert_eq!(stats.device_tasks, 8, "the 8 bin-3 tasks");
        assert!(stats.seconds > 0.0);
    }

    #[test]
    fn injected_faults_degrade_gracefully() {
        use gpusim::{Fault, FaultPlan};
        let tasks = tasks_with_mixed_bins();
        let params = LocalAssemblyParams::for_tests();
        let pure = extend_all_cpu(&tasks, &params);
        // A denied allocation AND a hung kernel in the same run: the
        // ladder shrinks / resets / falls back, and the final extensions
        // must be byte-identical to the fault-free run — under both
        // scheduling policies.
        let plan = FaultPlan {
            faults: vec![
                Fault::SlabOom { at_alloc: 0 },
                Fault::KernelHang { at_launch: 1, after_cycles: 5_000 },
            ],
        };
        for driver in [
            OverlapDriver {
                device: DeviceConfig::v100().with_fault_plan(plan.clone()),
                ..Default::default()
            },
            OverlapDriver {
                device: DeviceConfig::v100().with_fault_plan(plan.clone()),
                ..OverlapDriver::static_split(0.5)
            },
        ] {
            let outcome = driver.run(&tasks, &params).expect("driver runs");
            assert_eq!(outcome.results, pure, "recovery must not change results");
            assert_eq!(outcome.failed_tasks, 0);
            let stats = outcome.gpu_stats.expect("gpu ran");
            assert!(stats.recovery.any_recovery(), "ladder must have been exercised");
        }
    }

    #[test]
    fn double_buffer_saves_wall_seconds() {
        let tasks = tasks_with_mixed_bins();
        let params = LocalAssemblyParams::for_tests();
        // Small granularity so each heavy task is its own batch, and a
        // near-zero CPU rate so the GPU deterministically drains several
        // batches — double-buffer savings only accrue from batch 2 on.
        let cfg = |db: bool| OverlapDriver {
            schedule: SchedulePolicy::WorkSteal(StealConfig {
                batch_words: 2048,
                cpu_words_per_s: 1.0,
                double_buffer: db,
                // Pin the rate: with calibration reading real host wall
                // clocks the CPU would be recognized as fast and steal the
                // batches this test needs on the GPU.
                calibration: crate::calibrate::CalibrationConfig::off(),
                ..Default::default()
            }),
            ..Default::default()
        };
        let on = cfg(true).run(&tasks, &params).expect("runs");
        let off = cfg(false).run(&tasks, &params).expect("runs");
        assert_eq!(on.results, off.results, "double-buffering is timing-only");
        let (s_on, s_off) = (on.gpu_stats.expect("gpu ran"), off.gpu_stats.expect("gpu ran"));
        assert_eq!(s_off.overlap_saved_s, 0.0);
        assert!(s_on.overlap_saved_s > 0.0, "multi-batch run must overlap pack with exec");
        assert!(s_on.wall_s() < s_off.wall_s());
    }
}
