//! The CPU/GPU overlap driver of §4.3 (Figure 11).
//!
//! MetaHipMer2 launches the driver function in a separate thread so that,
//! while the GPU chews on bin 3 (the few contigs with the most candidate
//! reads), the CPU keeps extending bin-2 contigs; whatever bin-2 work
//! remains when the GPU returns is offloaded too. We reproduce the
//! structure with a real host-side thread split: the GPU engine (on its
//! simulated device) runs concurrently with the rayon CPU engine, the
//! bin-2 work is divided by a configurable fraction, and the outcome
//! reports both wall times and the simulated device time.
//!
//! Functional output is engine-independent (the equivalence tests
//! guarantee it), so the split fraction is purely a performance knob —
//! exactly as in the paper.

use crate::binning::bin_tasks;
use crate::cpu::extend_all_cpu_isolated;
use crate::gpu::{GpuLocalAssembler, GpuRunStats, KernelVersion};
use crate::params::LocalAssemblyParams;
use crate::task::{ExtResult, ExtTask, TaskOutcome};
use gpusim::DeviceConfig;
use std::time::Instant;

/// Why an overlapped run could not produce results at all. Per-task
/// failures do NOT produce this — they degrade to skipped tasks, counted
/// in [`OverlapOutcome::failed_tasks`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DriverError {
    /// An engine returned the wrong number of results for its task split —
    /// an internal invariant violation, not a recoverable device fault.
    ResultMismatch { expected: usize, got: usize },
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverError::ResultMismatch { expected, got } => {
                write!(f, "engine returned {got} results for {expected} tasks")
            }
        }
    }
}

impl std::error::Error for DriverError {}

/// Outcome of an overlapped run.
#[derive(Debug)]
pub struct OverlapOutcome {
    /// Results, index-aligned with the input tasks.
    pub results: Vec<ExtResult>,
    /// Tasks answered host-side with no work (bin 1).
    pub zero_tasks: usize,
    /// Tasks the CPU engine handled.
    pub cpu_tasks: usize,
    /// Tasks the GPU engine handled.
    pub gpu_tasks: usize,
    /// Tasks that failed on every rung of the recovery ladder and were
    /// skipped (their contigs keep their current sequence).
    pub failed_tasks: usize,
    /// The GPU engine branch panicked and its whole task share was re-run
    /// on the CPU engine.
    pub gpu_branch_fell_back: bool,
    /// Host wall seconds of the CPU side.
    pub cpu_wall_s: f64,
    /// Host wall seconds spent driving the GPU side (simulation cost).
    pub gpu_wall_s: f64,
    /// Simulated device seconds of the GPU side.
    pub gpu_stats: Option<GpuRunStats>,
}

/// The overlap driver.
pub struct OverlapDriver {
    pub device: DeviceConfig,
    pub version: KernelVersion,
    /// Fraction of bin-2 tasks kept on the CPU (0 = all bin 2 follows
    /// bin 3 onto the GPU; 1 = CPU does all of bin 2).
    pub cpu_bin2_fraction: f64,
}

impl Default for OverlapDriver {
    fn default() -> Self {
        OverlapDriver {
            device: DeviceConfig::v100(),
            version: KernelVersion::V2,
            cpu_bin2_fraction: 0.5,
        }
    }
}

impl OverlapDriver {
    /// Run all tasks with CPU/GPU overlap.
    ///
    /// Device faults are handled inside the GPU engine's recovery ladder
    /// (retry → shrink → reset → CPU fallback); if the whole GPU branch
    /// panics, its task share is re-run on the CPU engine with per-task
    /// panic isolation, so a single bad task is skipped, never fatal.
    pub fn run(
        &self,
        tasks: &[ExtTask],
        params: &LocalAssemblyParams,
    ) -> Result<OverlapOutcome, DriverError> {
        let bins = bin_tasks(tasks);
        let mut results: Vec<Option<TaskOutcome>> = vec![None; tasks.len()];
        for &i in &bins.zero {
            results[i] = Some(TaskOutcome::Done(ExtResult::empty()));
        }

        // Split bin 2 between the engines; bin 3 always goes to the GPU
        // first (the paper's scheduling).
        let cpu_take = (bins.small.len() as f64 * self.cpu_bin2_fraction).round() as usize;
        let (cpu_idx, gpu_small) = bins.small.split_at(cpu_take.min(bins.small.len()));
        let gpu_idx: Vec<usize> = bins.large.iter().chain(gpu_small.iter()).copied().collect();

        let cpu_task_list: Vec<ExtTask> = cpu_idx.iter().map(|&i| tasks[i].clone()).collect();
        let gpu_task_list: Vec<ExtTask> = gpu_idx.iter().map(|&i| tasks[i].clone()).collect();

        let device = self.device.clone();
        let version = self.version;
        let params_gpu = params.clone();

        // Genuine host-side overlap: the GPU simulation runs on one branch
        // of a rayon join while the CPU engine's par_iter occupies the rest
        // of the pool — the same structure as the paper's driver thread.
        let params_cpu = params.clone();
        let ((gpu_branch, gpu_wall), (cpu_results, cpu_wall)) = rayon::join(
            move || {
                let t = Instant::now();
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let mut engine = GpuLocalAssembler::new(device, params_gpu, version);
                    engine.extend_tasks_outcomes(&gpu_task_list)
                }));
                (r, t.elapsed().as_secs_f64())
            },
            move || {
                let t = Instant::now();
                let r = extend_all_cpu_isolated(&cpu_task_list, &params_cpu);
                (r, t.elapsed().as_secs_f64())
            },
        );

        // A panic of the whole GPU branch (engine bug, not a device fault —
        // those are absorbed by the ladder) degrades to re-running its
        // share on the CPU engine.
        let (gpu_results, gpu_stats, gpu_branch_fell_back) = match gpu_branch {
            Ok((r, s)) => (r, Some(s), false),
            Err(_panic) => {
                let gpu_task_list: Vec<ExtTask> =
                    gpu_idx.iter().map(|&i| tasks[i].clone()).collect();
                (extend_all_cpu_isolated(&gpu_task_list, params), None, true)
            }
        };

        if cpu_results.len() != cpu_idx.len() {
            return Err(DriverError::ResultMismatch {
                expected: cpu_idx.len(),
                got: cpu_results.len(),
            });
        }
        if gpu_results.len() != gpu_idx.len() {
            return Err(DriverError::ResultMismatch {
                expected: gpu_idx.len(),
                got: gpu_results.len(),
            });
        }

        for (&i, r) in cpu_idx.iter().zip(cpu_results) {
            results[i] = Some(r);
        }
        for (&i, r) in gpu_idx.iter().zip(gpu_results) {
            results[i] = Some(r);
        }

        let mut failed_tasks = 0usize;
        let results: Vec<ExtResult> = results
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                let outcome = r.unwrap_or(TaskOutcome::Failed {
                    contig: tasks[i].contig,
                    reason: "task was never scheduled".to_string(),
                });
                if outcome.is_failed() {
                    failed_tasks += 1;
                }
                outcome.into_result()
            })
            .collect();

        Ok(OverlapOutcome {
            results,
            zero_tasks: bins.zero.len(),
            cpu_tasks: cpu_idx.len(),
            gpu_tasks: gpu_idx.len(),
            failed_tasks,
            gpu_branch_fell_back,
            cpu_wall_s: cpu_wall,
            gpu_wall_s: gpu_wall,
            gpu_stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::extend_all_cpu;
    use crate::task::ContigEnd;
    use bioseq::{DnaSeq, Read};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_seq(len: usize, sd: u64) -> DnaSeq {
        let mut rng = StdRng::seed_from_u64(sd);
        (0..len).map(|_| bioseq::Base::from_code(rng.gen_range(0..4))).collect()
    }

    fn tasks_with_mixed_bins() -> Vec<ExtTask> {
        let mut tasks = Vec::new();
        for i in 0..24 {
            let genome = random_seq(400, 500 + i as u64);
            let n_reads = match i % 3 {
                0 => 0,
                1 => 4,
                _ => 14,
            };
            let reads = (0..n_reads)
                .map(|r| {
                    let start = 60 + (r * 13) % 200;
                    Read::with_uniform_qual(format!("t{i}r{r}"), genome.subseq(start, 80), 35)
                })
                .collect();
            tasks.push(ExtTask {
                contig: i,
                end: ContigEnd::Right,
                tail: genome.subseq(0, 120),
                reads,
            });
        }
        tasks
    }

    #[test]
    fn overlap_matches_pure_cpu() {
        let tasks = tasks_with_mixed_bins();
        let params = LocalAssemblyParams::for_tests();
        let pure = extend_all_cpu(&tasks, &params);
        let outcome = OverlapDriver::default().run(&tasks, &params).expect("driver runs");
        assert_eq!(outcome.results, pure);
        assert_eq!(outcome.zero_tasks, 8);
        assert_eq!(outcome.failed_tasks, 0);
        assert!(!outcome.gpu_branch_fell_back);
        assert_eq!(outcome.cpu_tasks + outcome.gpu_tasks + outcome.zero_tasks, tasks.len());
    }

    #[test]
    fn split_fraction_extremes() {
        let tasks = tasks_with_mixed_bins();
        let params = LocalAssemblyParams::for_tests();
        let pure = extend_all_cpu(&tasks, &params);
        for frac in [0.0, 1.0] {
            let driver = OverlapDriver { cpu_bin2_fraction: frac, ..Default::default() };
            let outcome = driver.run(&tasks, &params).expect("driver runs");
            assert_eq!(outcome.results, pure, "fraction {frac}");
            if frac == 0.0 {
                assert_eq!(outcome.cpu_tasks, 0);
            } else {
                // All bin-2 on CPU; GPU still gets bin 3.
                assert_eq!(outcome.cpu_tasks, 8);
                assert_eq!(outcome.gpu_tasks, 8);
            }
        }
    }

    #[test]
    fn bin3_always_on_gpu() {
        let tasks = tasks_with_mixed_bins();
        let params = LocalAssemblyParams::for_tests();
        let driver = OverlapDriver { cpu_bin2_fraction: 1.0, ..Default::default() };
        let outcome = driver.run(&tasks, &params).expect("driver runs");
        let stats = outcome.gpu_stats.expect("gpu ran");
        assert_eq!(stats.device_tasks, 8, "the 8 bin-3 tasks");
        assert!(stats.seconds > 0.0);
    }

    #[test]
    fn injected_faults_degrade_gracefully() {
        use gpusim::{Fault, FaultPlan};
        let tasks = tasks_with_mixed_bins();
        let params = LocalAssemblyParams::for_tests();
        let pure = extend_all_cpu(&tasks, &params);
        // A denied allocation AND a hung kernel in the same run: the
        // ladder shrinks / resets / falls back, and the final extensions
        // must be byte-identical to the fault-free run.
        let plan = FaultPlan {
            faults: vec![
                Fault::SlabOom { at_alloc: 0 },
                Fault::KernelHang { at_launch: 1, after_cycles: 5_000 },
            ],
        };
        let driver = OverlapDriver {
            device: DeviceConfig::v100().with_fault_plan(plan),
            ..Default::default()
        };
        let outcome = driver.run(&tasks, &params).expect("driver runs");
        assert_eq!(outcome.results, pure, "recovery must not change results");
        assert_eq!(outcome.failed_tasks, 0);
        let stats = outcome.gpu_stats.expect("gpu ran");
        assert!(stats.recovery.any_recovery(), "ladder must have been exercised");
    }
}
