//! Local assembly — the core contribution of *Accelerating Large Scale de
//! novo Metagenome Assembly Using GPUs* (SC'21).
//!
//! Local assembly extends each contig using only the reads that align to its
//! ends. It is a two-step iterated process (paper §2.3):
//!
//! 1. build a k-mer → extension hash table from the candidate reads
//!    (Algorithm 1);
//! 2. *mer-walk* from the contig's terminal k-mer, appending the winning
//!    extension base until a dead end or fork (Algorithm 2);
//!
//! with `k` **up-shifted** on a fork and **down-shifted** on a dead end, and
//! termination on fork-after-downshift / dead-end-after-upshift
//! ([`params::KShift`]).
//!
//! Two interchangeable engines implement this:
//!
//! * [`cpu`] — the multicore reference (what MetaHipMer2 runs per node),
//!   embarrassingly parallel over contig ends via rayon;
//! * [`gpu`] — the paper's GPU port, written against the [`gpusim`] SIMT
//!   simulator: contigs binned by candidate-read count ([`binning`]), one
//!   warp per extension, warp-cooperative hash-table construction with CAS
//!   claims and `match_any` collision groups (kernel **v2**; kernel **v1**
//!   is the single-thread-build variant kept for the roofline comparison),
//!   pointer-compressed k-mer keys, and one flat slab sized by exact
//!   per-extension table sizes.
//!
//! Both engines produce *identical extensions* for identical input — the
//! integration tests enforce this — so the pipeline can switch between them
//! freely, exactly as MetaHipMer2 does with `--ranks-per-gpu`.
//!
//! Device faults (injected via [`gpusim::FaultPlan`] or genuine OOM) are
//! absorbed by a recovery ladder — retry → shrink batch → reset device with
//! backoff → per-task CPU fallback → skip — configured by
//! [`gpu::RecoveryPolicy`] and reported in [`gpu::RecoveryStats`]; see
//! `DESIGN.md` §"Fault model & recovery ladder".

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod binning;
pub mod calibrate;
pub mod cpu;
pub mod driver;
pub mod gpu;
pub mod params;
pub mod schedule;
pub mod summary;
pub mod task;

pub use binning::{bin_tasks, Bin, BinStats};
pub use calibrate::{BinRateModel, CalibrationConfig, CalibrationReport, RateEstimator};
pub use cpu::{extend_all_cpu, extend_all_cpu_isolated, extend_end_cpu};
pub use driver::{DriverError, OverlapDriver, OverlapOutcome, SchedulePolicy};
pub use params::{KShift, LocalAssemblyParams, ShiftDir, WalkState};
pub use schedule::{
    build_batches, drain_target, split_batch_at, ScheduleReport, StealConfig, TaskBatch,
};
pub use summary::{summarize, ExtSummary};
pub use task::{apply_extensions, make_tasks, ContigEnd, ExtResult, ExtTask, TaskOutcome};
