//! Host-side packing of extension tasks into device buffers.
//!
//! This is the "CPU-side data packing" of the paper's driver function
//! (§4.3): reads and contig tails are 2-bit packed, quality scores are
//! reduced to a 1-bit tier (≥ Q20), and the per-extension hash-table sizes
//! (`ht_sizes`) are computed exactly and laid out as offsets into one flat
//! slab, following the §3.2 memory-minimization scheme.

use crate::gpu::layout::{self, EXT_META_WORDS, READ_META_WORDS};
use crate::params::LocalAssemblyParams;
use crate::task::ExtTask;
use bioseq::PackedSeq;
use gpusim::{Buf, Device, DeviceOom};
use kmer::QUAL_TIER_CUTOFF;

/// A packed batch resident in device memory.
#[derive(Debug, Clone)]
pub struct GpuBatch {
    /// Extensions in this batch.
    pub n_exts: usize,
    /// Concatenated 2-bit packed read bases (word-aligned per read).
    pub reads_bases: Buf,
    /// Concatenated 1-bit quality tiers (word-aligned per read).
    pub reads_quals: Buf,
    /// Per-read metadata ([`READ_META_WORDS`] each).
    pub read_meta: Buf,
    /// Per-extension metadata ([`EXT_META_WORDS`] each).
    pub ext_meta: Buf,
    /// Packed contig tails.
    pub tails: Buf,
    /// The flat hash-table slab, all extensions, exact offsets.
    pub slab: Buf,
    /// Visited-table regions, one per extension.
    pub visited: Buf,
    /// Output records, `out_stride` words per extension.
    pub out: Buf,
    /// Words per output record.
    pub out_stride: u64,
    /// Local-memory words per lane needed by the kernel (working window).
    pub window: usize,
    /// Total slab slots (diagnostics).
    pub total_ht_slots: u64,
}

/// Device words one task will consume. This is the workspace's single task
/// cost model, with three consumers that must stay consistent: the engine
/// batches against the device memory budget with it, the work-stealing
/// scheduler sizes its batches by it (`schedule::build_batches`), and the
/// multi-GPU dispatcher LPT-stripes shards by it (`StripePolicy::WordsLpt`).
pub fn estimate_task_words(task: &ExtTask, params: &LocalAssemblyParams) -> u64 {
    let read_words: u64 = task
        .reads
        .iter()
        .map(|r| (r.len() as u64).div_ceil(32) + (r.len() as u64).div_ceil(64))
        .sum();
    let ht_slots = layout::ht_slots_for(task.reads.iter().map(|r| r.len()));
    let vis = layout::vis_slots_for(params.max_walk_len) * layout::VIS_ENTRY_WORDS;
    read_words
        + task.reads.len() as u64 * READ_META_WORDS
        + EXT_META_WORDS
        + (task.tail.len() as u64).div_ceil(32)
        + ht_slots * layout::ENTRY_WORDS
        + vis
        + layout::out_stride(params.max_total_extension)
}

/// [`estimate_task_words`] clamped to ≥ 1 — the *scheduling* cost of a
/// task. Every scheduler (work-steal batches, the static bin-2 deal,
/// multi-GPU LPT striping) must charge at least one word per task:
/// a zero-cost task would advance no virtual clock and add no bin load,
/// so one engine could drain arbitrarily many of them "for free" and the
/// schedule's balance claims would be fiction.
pub fn estimate_task_cost(task: &ExtTask, params: &LocalAssemblyParams) -> u64 {
    estimate_task_words(task, params).max(1)
}

/// Pack a batch of tasks onto the device. Callers batch with
/// [`estimate_task_words`] against the device budget first; an OOM anyway
/// (estimate drift, or an injected allocation fault) is returned so the
/// caller can shrink the batch and retry.
pub fn pack_batch(
    dev: &mut Device,
    tasks: &[&ExtTask],
    params: &LocalAssemblyParams,
) -> Result<GpuBatch, DeviceOom> {
    let n_exts = tasks.len();
    let vis_slots = layout::vis_slots_for(params.max_walk_len);
    let out_stride = layout::out_stride(params.max_total_extension);
    // The working window holds the largest task tail in the batch plus
    // everything the walk may append.
    let max_tail = tasks.iter().map(|t| t.tail.len()).max().unwrap_or(0);
    let window = max_tail.max(params.k_max()) + params.max_total_extension;

    let mut bases_words: Vec<u64> = Vec::new();
    let mut qual_words: Vec<u64> = Vec::new();
    let mut read_meta: Vec<u64> = Vec::new();
    let mut ext_meta: Vec<u64> = Vec::new();
    let mut tail_words: Vec<u64> = Vec::new();
    let mut ht_cursor: u64 = 0;

    let mut read_slot: u64 = 0;
    for (ei, task) in tasks.iter().enumerate() {
        let read_slot_start = read_slot;
        for read in &task.reads {
            let packed = PackedSeq::from_seq(&read.seq);
            let bases_start = bases_words.len() as u64;
            bases_words.extend_from_slice(packed.words());
            // 1-bit quality tier, 64 bases per word.
            let qual_start = qual_words.len() as u64;
            let mut qw = vec![0u64; read.len().div_ceil(64)];
            for (i, &q) in read.quals.iter().enumerate() {
                if q >= QUAL_TIER_CUTOFF {
                    qw[i / 64] |= 1 << (i % 64);
                }
            }
            qual_words.extend_from_slice(&qw);
            read_meta.extend_from_slice(&[bases_start, qual_start, read.len() as u64]);
            read_slot += 1;
        }
        let ht_slots = layout::ht_slots_for(task.reads.iter().map(|r| r.len()));
        let ht_off = ht_cursor;
        ht_cursor += ht_slots * layout::ENTRY_WORDS;

        let tail_packed = PackedSeq::from_seq(&task.tail);
        let tail_off = tail_words.len() as u64;
        tail_words.extend_from_slice(tail_packed.words());

        ext_meta.extend_from_slice(&[
            read_slot_start,
            task.reads.len() as u64,
            ht_off,
            ht_slots,
            ei as u64 * vis_slots * layout::VIS_ENTRY_WORDS,
            vis_slots,
            tail_off,
            task.tail.len() as u64,
        ]);
    }

    let reads_bases = dev.alloc((bases_words.len() as u64).max(1))?;
    let reads_quals = dev.alloc((qual_words.len() as u64).max(1))?;
    let read_meta_buf = dev.alloc((read_meta.len() as u64).max(1))?;
    let ext_meta_buf = dev.alloc((ext_meta.len() as u64).max(1))?;
    let tails = dev.alloc((tail_words.len() as u64).max(1))?;
    let slab = dev.alloc(ht_cursor.max(1))?;
    let visited = dev.alloc((n_exts as u64 * vis_slots * layout::VIS_ENTRY_WORDS).max(1))?;
    let out = dev.alloc((n_exts as u64 * out_stride).max(1))?;

    dev.h2d(reads_bases, 0, &bases_words);
    dev.h2d(reads_quals, 0, &qual_words);
    dev.h2d(read_meta_buf, 0, &read_meta);
    dev.h2d(ext_meta_buf, 0, &ext_meta);
    dev.h2d(tails, 0, &tail_words);

    Ok(GpuBatch {
        n_exts,
        reads_bases,
        reads_quals,
        read_meta: read_meta_buf,
        ext_meta: ext_meta_buf,
        tails,
        slab,
        visited,
        out,
        out_stride,
        window,
        total_ht_slots: ht_cursor / layout::ENTRY_WORDS,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::ContigEnd;
    use bioseq::{DnaSeq, Read};
    use gpusim::DeviceConfig;

    fn mk_task(tail: &str, reads: &[&str]) -> ExtTask {
        ExtTask {
            contig: 0,
            end: ContigEnd::Right,
            tail: DnaSeq::from_str_strict(tail).unwrap(),
            reads: reads
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let seq = DnaSeq::from_str_strict(s).unwrap();
                    let quals: Vec<u8> =
                        (0..seq.len()).map(|j| if j % 2 == 0 { 35 } else { 10 }).collect();
                    Read::new(format!("r{i}"), seq, quals)
                })
                .collect(),
        }
    }

    #[test]
    fn pack_layout_is_consistent() {
        let mut dev = Device::new(DeviceConfig::tiny());
        let params = LocalAssemblyParams::for_tests();
        let t1 = mk_task("ACGTACGTACGTACGTACGT", &["ACGTACGTACGTACGTA", "TTTTGGGGCCCCAAAA"]);
        let t2 = mk_task("TTTTGGGGCCCCAAAATTTT", &["GGGGCCCCAAAATTTTCC"]);
        let batch = pack_batch(&mut dev, &[&t1, &t2], &params).expect("fits");

        assert_eq!(batch.n_exts, 2);
        // ext 0 meta
        let m0 = dev.d2h(batch.ext_meta, 0, EXT_META_WORDS);
        assert_eq!(m0[0], 0); // read slot start
        assert_eq!(m0[1], 2); // n reads
        assert_eq!(m0[3], (17 + 16) as u64); // ht slots = sum of lens
        assert_eq!(m0[7], 20); // tail len
                               // ext 1 meta
        let m1 = dev.d2h(batch.ext_meta, EXT_META_WORDS, EXT_META_WORDS);
        assert_eq!(m1[0], 2);
        assert_eq!(m1[1], 1);
        assert_eq!(m1[2], m0[3] * layout::ENTRY_WORDS); // slab offset after ext0
    }

    #[test]
    fn packed_reads_round_trip() {
        let mut dev = Device::new(DeviceConfig::tiny());
        let params = LocalAssemblyParams::for_tests();
        let t = mk_task("ACGTACGTACGTACGTACGT", &["ACGGTTCAAGTACCGGTTAA"]);
        let batch = pack_batch(&mut dev, &[&t], &params).expect("fits");
        let rm = dev.d2h(batch.read_meta, 0, READ_META_WORDS);
        let (bases_start, len) = (rm[0], rm[2] as usize);
        let words = dev.d2h(batch.reads_bases, bases_start, (len as u64).div_ceil(32));
        let km = kmer::Kmer::from_packed_words(&words, 0, len);
        assert_eq!(km.to_seq(), t.reads[0].seq);
    }

    #[test]
    fn qual_tier_bits_match() {
        let mut dev = Device::new(DeviceConfig::tiny());
        let params = LocalAssemblyParams::for_tests();
        let t = mk_task("ACGTACGTACGTACGTACGT", &["ACGGTTCAAGTACCGG"]);
        let batch = pack_batch(&mut dev, &[&t], &params).expect("fits");
        let rm = dev.d2h(batch.read_meta, 0, READ_META_WORDS);
        let qw = dev.d2h(batch.reads_quals, rm[1], 1)[0];
        for (i, &q) in t.reads[0].quals.iter().enumerate() {
            let bit = (qw >> i) & 1;
            assert_eq!(bit == 1, q >= QUAL_TIER_CUTOFF, "base {i}");
        }
    }

    #[test]
    fn estimate_bounds_actual() {
        let mut dev = Device::new(DeviceConfig::tiny());
        let params = LocalAssemblyParams::for_tests();
        let t = mk_task("ACGTACGTACGTACGTACGT", &["ACGTACGTACGTACGTA", "TTTTGGGGCCCCAAAA"]);
        let est = estimate_task_words(&t, &params);
        let before = dev.mem_used_words();
        pack_batch(&mut dev, &[&t], &params).expect("fits");
        let actual = dev.mem_used_words() - before;
        assert!(est >= actual.saturating_sub(8), "estimate {est} must cover actual {actual}");
    }
}
