//! Device data formats shared by the packer and the kernels.
//!
//! ## Hash-table entry (4 words = one 32-byte sector)
//!
//! | word | contents |
//! |------|----------|
//! | 0    | key descriptor (see below), or [`EMPTY`] (= 0) |
//! | 1    | high-quality extension counts, 4 × u16 (base `b` at bits `16b`) |
//! | 2    | low-quality extension counts, 4 × u16 |
//! | 3    | reserved |
//!
//! Key descriptor: `read_slot << 32 | pos << 16 | iter << 8 | k`. The key
//! stores a **pointer into the packed reads** (read slot + offset + length)
//! instead of the k-mer itself — the §3.2 compression that cuts per-key
//! memory ~15× for k = 77. Key comparison dereferences the read.
//!
//! `iter` is a *generation tag*: the in-warp k-shift loop rebuilds the
//! table at a new k without re-initializing the slab — an entry whose tag
//! differs from the current iteration is logically empty and is reclaimed
//! with a CAS on its observed stale value (the counts words are reset by
//! the claiming lane before any votes land). The slab arrives zeroed from
//! the host (`cudaMemset` semantics), so `EMPTY = 0` and no kernel-side
//! initialization traffic is ever needed.
//!
//! ## Visited-set entry (4 words)
//!
//! The walked k-mer's packed words, with word 3 carrying the occupancy flag
//! (bit 63) and the generation tag (bits 48..56). Walk k-mers include
//! freshly appended bases, so they cannot be stored as read pointers.
//! Valid while `k ≤ 120` (kmer bits stay below bit 48); enforced by
//! [`assert_k_supported`].
//!
//! ## Output record (per extension, `out_stride` words)
//!
//! | word | contents |
//! |------|----------|
//! | 0    | appended-base count |
//! | 1    | `final_state \| iterations << 8` |
//! | 2..  | appended bases, 2-bit packed |

use kmer::Kmer;

/// Words per hash-table entry.
pub const ENTRY_WORDS: u64 = 4;

/// Key-word value for a never-written slot (host-zeroed slab).
pub const EMPTY: u64 = 0;

/// Words per visited-set entry (the packed k-mer words).
pub const VIS_ENTRY_WORDS: u64 = 4;

/// Occupancy flag in a visited entry's last word.
pub const VIS_FLAG: u64 = 1 << 63;

/// Words of metadata per read: `[bases_start_word, qual_start_word, len]`.
pub const READ_META_WORDS: u64 = 3;

/// Words of metadata per extension:
/// `[read_slot_start, n_reads, ht_off, ht_slots, vis_off, vis_slots,
///   tail_off_word, tail_len]`.
pub const EXT_META_WORDS: u64 = 8;

/// Largest k the tagged visited-entry format supports.
pub const MAX_DEVICE_K: usize = 120;

/// Panic unless `k` fits the device formats.
pub fn assert_k_supported(k: usize) {
    assert!(
        (1..=MAX_DEVICE_K).contains(&k),
        "device layout supports 1 <= k <= {MAX_DEVICE_K}, got {k}"
    );
}

/// Encode a hash-table key descriptor. `iter` is the 8-bit generation tag.
#[inline]
pub fn encode_key(read_slot: u32, pos: u16, iter: u8, k: u8) -> u64 {
    debug_assert!(k != 0, "k = 0 would alias EMPTY");
    (u64::from(read_slot) << 32) | (u64::from(pos) << 16) | (u64::from(iter) << 8) | u64::from(k)
}

/// Decode a key descriptor into `(read_slot, pos, iter, k)`.
#[inline]
pub fn decode_key(desc: u64) -> (u32, u16, u8, u8) {
    (
        (desc >> 32) as u32,
        ((desc >> 16) & 0xffff) as u16,
        ((desc >> 8) & 0xff) as u8,
        (desc & 0xff) as u8,
    )
}

/// Is this key word live for generation `iter`?
#[inline]
pub fn key_is_current(desc: u64, iter: u8) -> bool {
    desc != EMPTY && ((desc >> 8) & 0xff) as u8 == iter
}

/// Tag a visited entry's last word with the occupancy flag and generation.
#[inline]
pub fn vis_tag(word3: u64, iter: u8) -> u64 {
    debug_assert!(word3 < (1 << 48), "k too large for visited tagging");
    word3 | VIS_FLAG | (u64::from(iter) << 48)
}

/// Is a visited entry's last word live for generation `iter`?
#[inline]
pub fn vis_is_current(word3: u64, iter: u8) -> bool {
    (word3 & VIS_FLAG) != 0 && ((word3 >> 48) & 0xff) as u8 == iter
}

/// Bytes one key occupies in the pointer representation (the 5-byte figure
/// of §3.2: 4-byte position/slot + 1-byte length; we round to the u64 the
/// entry uses).
pub const KEY_POINTER_BYTES: u64 = 8;

/// Bytes a materialized k-mer key would occupy at one byte per base.
pub fn key_materialized_bytes(k: usize) -> u64 {
    k as u64
}

/// Hash-table slot count for one extension: the paper's `l × r` rule —
/// the sum of candidate-read lengths — which bounds the load factor at
/// `(l − k + 1) / l` (≤ 0.93 for `l = 300, k = 21`).
pub fn ht_slots_for(read_lens: impl Iterator<Item = usize>) -> u64 {
    read_lens.map(|l| l as u64).sum::<u64>().max(1)
}

/// Worst-case load factor for reads of length `l` at k-mer size `k`.
pub fn load_factor(l: usize, k: usize) -> f64 {
    if l == 0 || k > l {
        return 0.0;
    }
    (l - k + 1) as f64 / l as f64
}

/// Visited-table slot count for a walk of at most `max_steps` k-mers
/// (2× oversize keeps probe chains short).
pub fn vis_slots_for(max_steps: usize) -> u64 {
    (2 * (max_steps as u64 + 1)).max(4)
}

/// Output-record stride in words for a given appended-bases cap.
pub fn out_stride(max_total_extension: usize) -> u64 {
    2 + (max_total_extension as u64).div_ceil(32)
}

/// Pack a walk result header word 1.
#[inline]
pub fn encode_out_header(state: u64, iterations: u32) -> u64 {
    state | (u64::from(iterations) << 8)
}

/// Unpack output header word 1 into `(state, iterations)`.
#[inline]
pub fn decode_out_header(w: u64) -> (u64, u32) {
    (w & 0xff, (w >> 8) as u32)
}

/// The packed words of a k-mer, padded to [`VIS_ENTRY_WORDS`] for the
/// visited table.
pub fn kmer_entry_words(km: &Kmer) -> [u64; VIS_ENTRY_WORDS as usize] {
    *km.words()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_round_trip() {
        let desc = encode_key(12345, 678, 3, 77);
        assert_eq!(decode_key(desc), (12345, 678, 3, 77));
        assert_ne!(desc, EMPTY);
        assert!(key_is_current(desc, 3));
        assert!(!key_is_current(desc, 4));
    }

    #[test]
    fn empty_is_never_current() {
        assert!(!key_is_current(EMPTY, 0));
        assert!(!key_is_current(EMPTY, 7));
    }

    #[test]
    fn key_never_collides_with_empty() {
        // EMPTY is 0; k != 0 guarantees a nonzero descriptor.
        let desc = encode_key(0, 0, 0, 15);
        assert_ne!(desc, EMPTY);
    }

    #[test]
    fn vis_tagging() {
        let w3 = 0b101101u64; // k just over 96 uses a few low bits
        let tagged = vis_tag(w3, 5);
        assert!(vis_is_current(tagged, 5));
        assert!(!vis_is_current(tagged, 6));
        assert!(!vis_is_current(w3, 5), "untagged word is not occupied");
        assert_eq!(tagged & 0xffff_ffff, w3);
    }

    #[test]
    fn k_support_bounds() {
        assert_k_supported(21);
        assert_k_supported(120);
    }

    #[test]
    #[should_panic(expected = "device layout supports")]
    fn k_too_large_rejected() {
        assert_k_supported(121);
    }

    #[test]
    fn load_factor_worst_case_is_093() {
        let lf = load_factor(300, 21);
        assert!((lf - 280.0 / 300.0).abs() < 1e-12);
        assert!(lf < 0.94 && lf > 0.93);
    }

    #[test]
    fn load_factor_decreases_with_k() {
        assert!(load_factor(300, 99) < load_factor(300, 21));
        assert_eq!(load_factor(0, 21), 0.0);
        assert_eq!(load_factor(20, 21), 0.0);
    }

    #[test]
    fn ht_slots_sum_read_lens() {
        assert_eq!(ht_slots_for([150, 150, 300].into_iter()), 600);
        assert_eq!(ht_slots_for(std::iter::empty()), 1);
    }

    #[test]
    fn pointer_key_compression_ratio() {
        // §3.2: a 77-mer stored by pointer uses ~15x less memory.
        let ratio = key_materialized_bytes(77) as f64 / 5.0;
        assert!(ratio > 15.0);
    }

    #[test]
    fn out_stride_covers_cap() {
        assert_eq!(out_stride(300), 2 + 10);
        assert_eq!(out_stride(0), 2);
        assert_eq!(out_stride(32), 3);
        assert_eq!(out_stride(33), 4);
    }

    #[test]
    fn out_header_round_trip() {
        let w = encode_out_header(2, 7);
        assert_eq!(decode_out_header(w), (2, 7));
    }
}
