//! The GPU local-assembly engine (paper §3), written against the `gpusim`
//! SIMT simulator.
//!
//! * [`layout`] — device data formats: hash-table entries with
//!   pointer-compressed k-mer keys, visited-set entries, output records;
//! * [`pack`] — host-side packing of a task batch into device buffers,
//!   including the exact per-extension `ht_sizes` offsets of §3.2;
//! * [`kernel`] — the extension kernels: `v2` (warp-cooperative hash-table
//!   build, Figure 5) and `v1` (single-thread build, kept for the roofline
//!   study of §4.2);
//! * [`engine`] — batching, launching, and result unpacking, with the
//!   paper's binning-driven scheduling.

pub mod engine;
pub mod kernel;
pub mod kernel_v1;
pub mod layout;
pub mod multi;
pub mod pack;

pub use engine::{
    GpuLocalAssembler, GpuRunStats, RecoveryPolicy, RecoveryStats, DEFAULT_PACK_WORDS_PER_S,
};
pub use kernel::KernelVersion;
pub use multi::{MultiGpuAssembler, MultiGpuStats, StripePolicy};
