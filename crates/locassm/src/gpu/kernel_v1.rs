//! The **v1** extension kernel — the paper's first implementation: one
//! extension per *thread*. Each warp carries 32 independent contig-end
//! extensions in lockstep; every lane builds and walks its own hash table.
//!
//! This is exactly the design the roofline study (§4.2, Figure 8) found
//! wanting: at every load instruction the 32 lanes touch 32 *unrelated*
//! addresses (different reads, different tables), so one warp instruction
//! costs up to 32 memory transactions; and because the per-lane workloads
//! are non-deterministic (different read counts, walk lengths, k-shift
//! schedules), lanes finish at wildly different times and the warp runs
//! increasingly predicated. v2 (one extension per warp,
//! [`super::kernel`]) fixes the first problem with cooperative coalesced
//! loads and contains the second to the walk phase.
//!
//! Functionally, each lane executes the same algorithm as the CPU engine
//! and the v2 kernel; the engine's equivalence tests hold across all
//! three.

use crate::gpu::layout::{
    self, decode_key, encode_key, key_is_current, ENTRY_WORDS, EXT_META_WORDS, READ_META_WORDS,
    VIS_ENTRY_WORDS,
};
use crate::gpu::pack::GpuBatch;
use crate::params::{KShift, LocalAssemblyParams, WalkState};
use gpusim::{Lanes, WarpCtx, WARP};
use kmer::hash::hash_kmer;
use kmer::{ExtCounts, ExtVerdict, Kmer};

/// Per-lane extension state.
#[derive(Clone)]
struct LaneExt {
    /// Extension (task) index this lane owns.
    ext: u64,
    // metadata
    read_slot_start: u64,
    n_reads: u64,
    ht_off: u64,
    ht_slots: u64,
    vis_off: u64,
    vis_slots: u64,
    tail_len: usize,
    // progress
    kshift: KShift,
    iterations: u32,
    work_len: usize,
    appended_total: usize,
    final_state: WalkState,
    done: bool,
}

/// The v1 per-warp kernel body: extensions `warp_id*32 .. +32`.
pub fn extension_kernel_v1(
    ctx: &mut WarpCtx,
    batch: &GpuBatch,
    params: &LocalAssemblyParams,
    n_exts: usize,
) {
    let base_ext = (ctx.warp_id * WARP) as u64;
    let lanes_here = (n_exts as u64 - base_ext).min(WARP as u64) as usize;
    let live_mask = if lanes_here == WARP { u32::MAX } else { (1u32 << lanes_here) - 1 };
    ctx.push_mask(live_mask);

    // ---- load per-lane extension metadata (8 scattered rounds) ----
    ctx.set_site("v1::load_meta");
    let mut meta = [[0u64; EXT_META_WORDS as usize]; WARP];
    for w in 0..EXT_META_WORDS {
        let addrs = ctx.lanes_from(|l| {
            (l < lanes_here).then(|| batch.ext_meta.at((base_ext + l as u64) * EXT_META_WORDS + w))
        });
        let vals = ctx.ld_global(&addrs);
        for l in 0..lanes_here {
            meta[l][w as usize] = vals[l];
        }
    }

    let mut lanes: Vec<LaneExt> = (0..lanes_here)
        .map(|l| LaneExt {
            ext: base_ext + l as u64,
            read_slot_start: meta[l][0],
            n_reads: meta[l][1],
            ht_off: meta[l][2],
            ht_slots: meta[l][3],
            vis_off: meta[l][4],
            vis_slots: meta[l][5],
            tail_len: meta[l][7] as usize,
            kshift: KShift::new(params.k_list.len(), params.start_k_idx),
            iterations: 0,
            work_len: meta[l][7] as usize,
            appended_total: 0,
            final_state: WalkState::DeadEnd,
            done: meta[l][1] == 0, // zero-read extensions finish immediately
        })
        .collect();

    // ---- copy tails into each lane's local window (scattered loads) ----
    ctx.set_site("v1::tail_copy");
    let max_tail_words = lanes
        .iter()
        .filter(|s| !s.done)
        .map(|s| (s.tail_len as u64).div_ceil(32))
        .max()
        .unwrap_or(0);
    for w in 0..max_tail_words {
        let addrs = ctx.lanes_from(|l| {
            (l < lanes_here && !lanes[l].done && w < (lanes[l].tail_len as u64).div_ceil(32))
                .then(|| batch.tails.at(meta[l][6] + w))
        });
        let words = ctx.ld_global(&addrs);
        for b in 0..32usize {
            let offs = ctx.lanes_from(|l| {
                let idx = (w as usize) * 32 + b;
                (l < lanes_here && !lanes[l].done && idx < lanes[l].tail_len).then_some(idx as u64)
            });
            let vals = ctx.lanes_from(|l| (words[l] >> (2 * b)) & 3);
            ctx.int_ops(2);
            ctx.st_local(&offs, &vals);
        }
    }

    // ---- lockstep k-shift iteration rounds ----
    loop {
        let alive: Vec<usize> = (0..lanes_here).filter(|&l| !lanes[l].done).collect();
        if alive.is_empty() {
            break;
        }
        let amask: u32 = alive.iter().map(|&l| 1u32 << l).sum();
        ctx.push_mask(amask);
        ctx.ctrl_ops(1);

        // Start this lane-local iteration.
        let mut walk_state: Lanes<WalkState> = [WalkState::DeadEnd; WARP];
        let mut working: Vec<usize> = Vec::new();
        let mut ks: Lanes<usize> = [0; WARP];
        let mut tags: Lanes<u8> = [0; WARP];
        for &l in &alive {
            let s = &mut lanes[l];
            let k = params.k_list[s.kshift.k_idx()];
            layout::assert_k_supported(k);
            s.iterations += 1;
            ks[l] = k;
            tags[l] = s.iterations as u8;
            let budget = params.max_total_extension - s.appended_total;
            if budget > 0 && s.work_len >= k {
                working.push(l);
            }
        }

        if !working.is_empty() {
            build_tables_lockstep(ctx, batch, params, &lanes, &working, &ks, &tags);
            walk_lockstep(ctx, batch, params, &mut lanes, &working, &ks, &tags, &mut walk_state);
        }

        // Per-lane controller updates (uniform control ops).
        ctx.ctrl_ops(2);
        for &l in &alive {
            let s = &mut lanes[l];
            s.final_state = walk_state[l];
            if !s.kshift.on_walk(walk_state[l]) {
                s.done = true;
            }
        }
        ctx.pop_mask();
    }

    // ---- store output records (scattered) ----
    ctx.set_site("v1::store_out");
    let out_addrs =
        ctx.lanes_from(|l| (l < lanes_here).then(|| batch.out.at(lanes[l].ext * batch.out_stride)));
    let out_lens =
        ctx.lanes_from(|l| if l < lanes_here { lanes[l].appended_total as u64 } else { 0 });
    ctx.st_global(&out_addrs, &out_lens);
    let hdr_addrs = ctx.lanes_from(|l| {
        (l < lanes_here).then(|| batch.out.at(lanes[l].ext * batch.out_stride + 1))
    });
    let hdrs = ctx.lanes_from(|l| {
        if l < lanes_here {
            layout::encode_out_header(lanes[l].final_state.to_u64(), lanes[l].iterations)
        } else {
            0
        }
    });
    ctx.st_global(&hdr_addrs, &hdrs);

    let max_out_words =
        lanes.iter().map(|s| (s.appended_total as u64).div_ceil(32)).max().unwrap_or(0);
    for w in 0..max_out_words {
        // Gather 32 bases from each lane's local window, then store.
        let mut words: Lanes<u64> = [0; WARP];
        for b in 0..32usize {
            let offs = ctx.lanes_from(|l| {
                if l >= lanes_here {
                    return None;
                }
                let idx = (w as usize) * 32 + b;
                (idx < lanes[l].appended_total).then(|| (lanes[l].tail_len + idx) as u64)
            });
            let codes = ctx.ld_local(&offs);
            ctx.int_ops(2);
            for l in 0..lanes_here {
                let idx = (w as usize) * 32 + b;
                if idx < lanes[l].appended_total {
                    words[l] |= (codes[l] & 3) << (2 * b);
                }
            }
        }
        let addrs = ctx.lanes_from(|l| {
            (l < lanes_here && w < (lanes[l].appended_total as u64).div_ceil(32))
                .then(|| batch.out.at(lanes[l].ext * batch.out_stride + 2 + w))
        });
        ctx.st_global(&addrs, &words);
    }
    ctx.pop_mask();
}

/// Per-lane work cursor over a lane's candidate reads.
#[derive(Clone, Copy, Default)]
struct BuildCursor {
    read: u64,
    pos: usize,
    // cached read meta
    bases_start: u64,
    qual_start: u64,
    rlen: usize,
    meta_loaded: bool,
    done: bool,
}

/// Lockstep table construction: every working lane inserts the k-mers of
/// its own candidate reads into its own table, one k-mer per lane per
/// round. All loads are scattered across lanes (v1's signature pattern).
#[allow(clippy::too_many_arguments)]
fn build_tables_lockstep(
    ctx: &mut WarpCtx,
    batch: &GpuBatch,
    _params: &LocalAssemblyParams,
    lanes: &[LaneExt],
    working: &[usize],
    ks: &Lanes<usize>,
    tags: &Lanes<u8>,
) {
    ctx.set_site("v1::build_table");
    let mut cursors: Lanes<BuildCursor> = [BuildCursor::default(); WARP];
    for &l in working {
        cursors[l] = BuildCursor::default();
    }
    let is_working = |l: usize| working.contains(&l);

    loop {
        // Advance cursors to the next k-mer, loading read metadata as
        // needed (lockstep rounds of scattered meta loads).
        loop {
            let need: Vec<usize> = working
                .iter()
                .copied()
                .filter(|&l| {
                    let c = &cursors[l];
                    !c.done && (!c.meta_loaded || c.rlen < ks[l] + 1 || c.pos + ks[l] >= c.rlen)
                })
                .collect();
            if need.is_empty() {
                break;
            }
            // Lanes whose current read is exhausted/too short move on.
            let mut to_load: Vec<usize> = Vec::new();
            for &l in &need {
                let c = &mut cursors[l];
                if c.meta_loaded {
                    c.read += 1;
                    c.pos = 0;
                    c.meta_loaded = false;
                }
                if c.read >= lanes[l].n_reads {
                    c.done = true;
                } else {
                    to_load.push(l);
                }
            }
            if to_load.is_empty() {
                continue;
            }
            ctx.push_mask(to_load.iter().map(|&l| 1u32 << l).sum());
            let mut vals = [[0u64; READ_META_WORDS as usize]; WARP];
            for w in 0..READ_META_WORDS {
                let addrs = ctx.lanes_from(|l| {
                    to_load.contains(&l).then(|| {
                        batch
                            .read_meta
                            .at((lanes[l].read_slot_start + cursors[l].read) * READ_META_WORDS + w)
                    })
                });
                let loaded = ctx.ld_global(&addrs);
                for &l in &to_load {
                    vals[l][w as usize] = loaded[l];
                }
            }
            for &l in &to_load {
                let c = &mut cursors[l];
                c.bases_start = vals[l][0];
                c.qual_start = vals[l][1];
                c.rlen = vals[l][2] as usize;
                c.meta_loaded = true;
            }
            ctx.pop_mask();
        }

        let active: Vec<usize> = working.iter().copied().filter(|&l| !cursors[l].done).collect();
        if active.is_empty() {
            break;
        }
        let amask: u32 = active.iter().map(|&l| 1u32 << l).sum();
        ctx.push_mask(amask);
        ctx.ctrl_ops(1);

        // Byte-by-byte k-mer loads: round j loads base p+j of each lane's
        // k-mer from its own read — 32 unrelated addresses per instruction.
        let max_k = active.iter().map(|&l| ks[l]).max().unwrap_or(0);
        let mut words: Lanes<[u64; 5]> = [[0u64; 5]; WARP];
        for j in 0..=max_k {
            let addrs = ctx.lanes_from(|l| {
                (is_working(l) && !cursors[l].done && j <= ks[l]).then(|| {
                    let p = cursors[l].pos;
                    batch.reads_bases.at(cursors[l].bases_start + ((p + j) / 32) as u64)
                })
            });
            let loaded = ctx.ld_global(&addrs);
            ctx.int_ops(1);
            for &l in &active {
                if j <= ks[l] {
                    let p = cursors[l].pos;
                    let w = (p + j) / 32 - p / 32;
                    words[l][w] = loaded[l];
                }
            }
        }
        // Qualities of the extension base (scattered).
        let qaddrs = ctx.lanes_from(|l| {
            (is_working(l) && !cursors[l].done).then(|| {
                batch.reads_quals.at(cursors[l].qual_start + ((cursors[l].pos + ks[l]) / 64) as u64)
            })
        });
        let qwords = ctx.ld_global(&qaddrs);
        ctx.int_ops(2);

        // Materialize, hash, probe, vote.
        let mut kms: Lanes<Option<Kmer>> = [None; WARP];
        let mut hashes: Lanes<u64> = [0; WARP];
        let mut descs: Lanes<u64> = [0; WARP];
        let mut ext_codes: Lanes<u8> = [0; WARP];
        let mut hi_tier: Lanes<bool> = [false; WARP];
        for &l in &active {
            let p = cursors[l].pos;
            let k = ks[l];
            let km = Kmer::from_packed_words(&words[l], p % 32, k);
            hashes[l] = hash_kmer(&km);
            let ext_idx = p + k;
            let wsel = ext_idx / 32 - p / 32;
            ext_codes[l] = ((words[l][wsel] >> (2 * (ext_idx % 32))) & 3) as u8;
            hi_tier[l] = (qwords[l] >> (ext_idx % 64)) & 1 == 1;
            descs[l] = encode_key(
                (lanes[l].read_slot_start + cursors[l].read) as u32,
                p as u16,
                tags[l],
                k as u8,
            );
            kms[l] = Some(km);
        }
        let kmw_max = max_k.div_ceil(32) as u64;
        ctx.int_ops(6 * kmw_max); // murmur2

        probe_and_vote_v1(ctx, batch, lanes, &kms, &hashes, &descs, &ext_codes, &hi_tier, ks, tags);

        for &l in &active {
            cursors[l].pos += 1;
        }
        ctx.pop_mask();
    }
}

/// Lockstep probe/insert into 32 independent tables, byte-wise key
/// comparison (the CPU code's character compare, ported directly).
#[allow(clippy::too_many_arguments)]
fn probe_and_vote_v1(
    ctx: &mut WarpCtx,
    batch: &GpuBatch,
    lanes: &[LaneExt],
    kms: &Lanes<Option<Kmer>>,
    hashes: &Lanes<u64>,
    descs: &Lanes<u64>,
    ext_codes: &Lanes<u8>,
    hi_tier: &Lanes<bool>,
    ks: &Lanes<usize>,
    tags: &Lanes<u8>,
) {
    let mut slot: Lanes<u64> = [0; WARP];
    let mut pending: u32 = 0;
    for (l, km) in kms.iter().enumerate() {
        if km.is_some() && ctx.lane_active(l) {
            slot[l] = hashes[l] % lanes[l].ht_slots;
            pending |= 1 << l;
        }
    }
    ctx.int_ops(2);
    let mut entry: Lanes<Option<u64>> = [None; WARP];
    let entry_word =
        |l: usize, s: u64, w: u64| batch.slab.at(lanes[l].ht_off + s * ENTRY_WORDS + w);
    let entry_addr = |l: usize, s: u64| entry_word(l, s, 0);
    let mut guard = 0u64;
    let max_slots = (0..WARP)
        .filter(|&l| pending & (1 << l) != 0)
        .map(|l| lanes[l].ht_slots)
        .max()
        .unwrap_or(1);
    while pending != 0 {
        ctx.push_mask(pending);
        ctx.int_ops(2);
        let key_addrs =
            ctx.lanes_from(|l| (pending & (1 << l) != 0).then(|| entry_addr(l, slot[l])));
        let keys = ctx.ld_global(&key_addrs);

        let claim_ops = ctx.lanes_from(|l| {
            if pending & (1 << l) == 0 || key_is_current(keys[l], tags[l]) {
                None
            } else {
                Some((entry_addr(l, slot[l]), keys[l], descs[l]))
            }
        });
        let claim_old = ctx.atomic_cas(&claim_ops);
        let mut claimed: Vec<usize> = Vec::new();
        for l in 0..WARP {
            if pending & (1 << l) == 0 || key_is_current(keys[l], tags[l]) {
                continue;
            }
            if claim_old[l] == keys[l] {
                claimed.push(l);
            }
        }
        if !claimed.is_empty() {
            for off in [1u64, 2u64] {
                let addrs =
                    ctx.lanes_from(|l| claimed.contains(&l).then(|| entry_word(l, slot[l], off)));
                ctx.st_global(&addrs, &[0; WARP]);
            }
            for &l in &claimed {
                entry[l] = Some(entry_addr(l, slot[l]));
                pending &= !(1 << l);
            }
        }

        let cmp: Vec<usize> = (0..WARP)
            .filter(|&l| pending & (1 << l) != 0 && key_is_current(keys[l], tags[l]))
            .collect();
        if !cmp.is_empty() {
            // Stored read base pointer.
            let addrs = ctx.lanes_from(|l| {
                cmp.contains(&l).then(|| {
                    let (rs, _, _, _) = decode_key(keys[l]);
                    batch.read_meta.at(u64::from(rs) * READ_META_WORDS)
                })
            });
            let bases_starts = ctx.ld_global(&addrs);
            // Byte-wise compare: one scattered load per base.
            let max_k = cmp.iter().map(|&l| ks[l]).max().unwrap_or(0);
            let mut stored: Lanes<[u64; 5]> = [[0u64; 5]; WARP];
            for j in 0..max_k {
                let addrs = ctx.lanes_from(|l| {
                    (cmp.contains(&l) && j < ks[l]).then(|| {
                        let (_, pos, _, _) = decode_key(keys[l]);
                        batch.reads_bases.at(bases_starts[l] + ((pos as usize + j) / 32) as u64)
                    })
                });
                let loaded = ctx.ld_global(&addrs);
                ctx.int_ops(1);
                for &l in &cmp {
                    if j < ks[l] {
                        let (_, pos, _, _) = decode_key(keys[l]);
                        let p = pos as usize;
                        stored[l][(p + j) / 32 - p / 32] = loaded[l];
                    }
                }
            }
            for &l in &cmp {
                let (_, pos, _, _) = decode_key(keys[l]);
                let p = pos as usize;
                let stored_km = Kmer::from_packed_words(&stored[l], p % 32, ks[l]);
                if Some(stored_km) == kms[l] {
                    entry[l] = Some(entry_addr(l, slot[l]));
                    pending &= !(1 << l);
                } else {
                    slot[l] = (slot[l] + 1) % lanes[l].ht_slots;
                }
            }
        }
        ctx.pop_mask();
        guard += 1;
        assert!(guard <= 2 * (max_slots + 1), "v1 probe did not terminate");
    }

    let hi_ops = ctx.lanes_from(|l| {
        entry[l].and_then(|a| hi_tier[l].then(|| (a + 1, 1u64 << (16 * u64::from(ext_codes[l])))))
    });
    ctx.atomic_add(&hi_ops);
    let lo_ops = ctx.lanes_from(|l| {
        entry[l]
            .and_then(|a| (!hi_tier[l]).then(|| (a + 2, 1u64 << (16 * u64::from(ext_codes[l])))))
    });
    ctx.atomic_add(&lo_ops);
}

/// Lockstep DNA walks: every working lane walks its own table, appending
/// to its own local window. Lanes terminate independently; the live mask
/// shrinks as walks end (the predication imbalance of §2.4).
#[allow(clippy::too_many_arguments)]
fn walk_lockstep(
    ctx: &mut WarpCtx,
    batch: &GpuBatch,
    params: &LocalAssemblyParams,
    lanes: &mut [LaneExt],
    working: &[usize],
    ks: &Lanes<usize>,
    tags: &Lanes<u8>,
    walk_state: &mut Lanes<WalkState>,
) {
    ctx.set_site("v1::walk");
    // Per-lane current k-mer, materialized from each lane's local window.
    let mut cur: Lanes<Option<Kmer>> = [None; WARP];
    let max_k = working.iter().map(|&l| ks[l]).max().unwrap_or(0);
    {
        let wmask: u32 = working.iter().map(|&l| 1u32 << l).sum();
        ctx.push_mask(wmask);
        let mut codes: Lanes<Vec<u8>> = std::array::from_fn(|_| Vec::new());
        for j in 0..max_k {
            let offs = ctx.lanes_from(|l| {
                (working.contains(&l) && j < ks[l]).then(|| (lanes[l].work_len - ks[l] + j) as u64)
            });
            let vals = ctx.ld_local(&offs);
            ctx.int_ops(1);
            for &l in working {
                if j < ks[l] {
                    codes[l].push(vals[l] as u8);
                }
            }
        }
        for &l in working {
            let seq = bioseq::DnaSeq::from_codes(codes[l].clone());
            cur[l] = Some(Kmer::from_seq(&seq, 0, ks[l]));
        }
        ctx.pop_mask();
    }

    let mut steps: Lanes<usize> = [0; WARP];
    let mut max_steps: Lanes<usize> = [0; WARP];
    let mut appended: Lanes<usize> = [0; WARP];
    for &l in working {
        let budget = params.max_total_extension - lanes[l].appended_total;
        max_steps[l] = params.max_walk_len.min(budget);
    }
    let mut walking: Vec<usize> = working.to_vec();

    while !walking.is_empty() {
        // Lane invariant: every walking lane carries its current k-mer. If
        // device-memory corruption ever breaks it, dead-end the lane
        // instead of panicking the whole kernel.
        walking.retain(|&l| {
            if cur[l].is_none() {
                walk_state[l] = WalkState::DeadEnd;
            }
            cur[l].is_some()
        });
        if walking.is_empty() {
            break;
        }
        let wmask: u32 = walking.iter().map(|&l| 1u32 << l).sum();
        ctx.push_mask(wmask);
        ctx.ctrl_ops(1);

        // ---- visited check / insert (per-lane probe, lockstep rounds) ----
        let mut vslot: Lanes<u64> = [0; WARP];
        for &l in &walking {
            if let Some(km) = &cur[l] {
                vslot[l] = hash_kmer(km) % lanes[l].vis_slots;
            }
        }
        ctx.int_ops(6 * max_k.div_ceil(32) as u64 + 2);
        let mut vis_pending: Vec<usize> = walking.clone();
        let mut looped: Vec<usize> = Vec::new();
        while !vis_pending.is_empty() {
            ctx.push_mask(vis_pending.iter().map(|&l| 1u32 << l).sum());
            ctx.ctrl_ops(1);
            let vword = |l: usize, w: u64| {
                batch.visited.at(lanes[l].vis_off + vslot[l] * VIS_ENTRY_WORDS + w)
            };
            let flag_addrs =
                ctx.lanes_from(|l| vis_pending.contains(&l).then(|| vword(l, VIS_ENTRY_WORDS - 1)));
            let flags = ctx.ld_global(&flag_addrs);
            let mut to_insert: Vec<usize> = Vec::new();
            let mut to_compare: Vec<usize> = Vec::new();
            for &l in &vis_pending {
                if layout::vis_is_current(flags[l], tags[l]) {
                    to_compare.push(l);
                } else {
                    to_insert.push(l);
                }
            }
            if !to_insert.is_empty() {
                for w in 0..VIS_ENTRY_WORDS {
                    let addrs = ctx.lanes_from(|l| to_insert.contains(&l).then(|| vword(l, w)));
                    let vals = ctx.lanes_from(|l| {
                        if !to_insert.contains(&l) {
                            return 0;
                        }
                        let words =
                            cur[l].as_ref().map(layout::kmer_entry_words).unwrap_or_default();
                        if w == VIS_ENTRY_WORDS - 1 {
                            layout::vis_tag(words[w as usize], tags[l])
                        } else {
                            words[w as usize]
                        }
                    });
                    ctx.st_global(&addrs, &vals);
                }
            }
            let mut next_pending: Vec<usize> = Vec::new();
            if !to_compare.is_empty() {
                let mut same: Lanes<bool> = [true; WARP];
                for w in 0..VIS_ENTRY_WORDS - 1 {
                    let addrs = ctx.lanes_from(|l| to_compare.contains(&l).then(|| vword(l, w)));
                    let vals = ctx.ld_global(&addrs);
                    for &l in &to_compare {
                        let words =
                            cur[l].as_ref().map(layout::kmer_entry_words).unwrap_or_default();
                        same[l] &= vals[l] == words[w as usize];
                    }
                }
                ctx.int_ops(VIS_ENTRY_WORDS);
                for &l in &to_compare {
                    let words = cur[l].as_ref().map(layout::kmer_entry_words).unwrap_or_default();
                    let tagged = layout::vis_tag(words[VIS_ENTRY_WORDS as usize - 1], tags[l]);
                    if same[l] && flags[l] == tagged {
                        looped.push(l);
                    } else {
                        vslot[l] = (vslot[l] + 1) % lanes[l].vis_slots;
                        next_pending.push(l);
                    }
                }
            }
            ctx.pop_mask();
            vis_pending = next_pending;
        }
        for &l in &looped {
            walk_state[l] = WalkState::Loop;
        }
        walking.retain(|l| !looped.contains(l));

        // ---- hash-table lookup (per-lane probe, lockstep, byte compare) ----
        let mut slot: Lanes<u64> = [0; WARP];
        for &l in &walking {
            if let Some(km) = &cur[l] {
                slot[l] = hash_kmer(km) % lanes[l].ht_slots;
            }
        }
        ctx.int_ops(2);
        let mut probe_pending: Vec<usize> = walking.clone();
        let mut found_counts: Lanes<Option<ExtCounts>> = [None; WARP];
        let mut dead: Vec<usize> = Vec::new();
        let mut probes = 0u64;
        while !probe_pending.is_empty() {
            ctx.push_mask(probe_pending.iter().map(|&l| 1u32 << l).sum());
            ctx.ctrl_ops(1);
            let eword =
                |l: usize, s: u64, w: u64| batch.slab.at(lanes[l].ht_off + s * ENTRY_WORDS + w);
            let key_addrs =
                ctx.lanes_from(|l| probe_pending.contains(&l).then(|| eword(l, slot[l], 0)));
            let keys = ctx.ld_global(&key_addrs);
            let mut to_cmp: Vec<usize> = Vec::new();
            for &l in &probe_pending {
                if !key_is_current(keys[l], tags[l]) {
                    dead.push(l);
                } else {
                    to_cmp.push(l);
                }
            }
            let mut next_pending: Vec<usize> = Vec::new();
            if !to_cmp.is_empty() {
                let maddrs = ctx.lanes_from(|l| {
                    to_cmp.contains(&l).then(|| {
                        let (rs, _, _, _) = decode_key(keys[l]);
                        batch.read_meta.at(u64::from(rs) * READ_META_WORDS)
                    })
                });
                let bases_starts = ctx.ld_global(&maddrs);
                let maxk_cmp = to_cmp.iter().map(|&l| ks[l]).max().unwrap_or(0);
                let mut stored: Lanes<[u64; 5]> = [[0u64; 5]; WARP];
                for j in 0..maxk_cmp {
                    let addrs = ctx.lanes_from(|l| {
                        (to_cmp.contains(&l) && j < ks[l]).then(|| {
                            let (_, pos, _, _) = decode_key(keys[l]);
                            batch.reads_bases.at(bases_starts[l] + ((pos as usize + j) / 32) as u64)
                        })
                    });
                    let loaded = ctx.ld_global(&addrs);
                    ctx.int_ops(1);
                    for &l in &to_cmp {
                        if j < ks[l] {
                            let (_, pos, _, _) = decode_key(keys[l]);
                            let p = pos as usize;
                            stored[l][(p + j) / 32 - p / 32] = loaded[l];
                        }
                    }
                }
                // Matching lanes fetch their counts words.
                let mut matched: Vec<usize> = Vec::new();
                for &l in &to_cmp {
                    let (_, pos, _, _) = decode_key(keys[l]);
                    let p = pos as usize;
                    let stored_km = Kmer::from_packed_words(&stored[l], p % 32, ks[l]);
                    if Some(stored_km) == cur[l] {
                        matched.push(l);
                    } else {
                        slot[l] = (slot[l] + 1) % lanes[l].ht_slots;
                        next_pending.push(l);
                    }
                }
                if !matched.is_empty() {
                    let hi_addrs =
                        ctx.lanes_from(|l| matched.contains(&l).then(|| eword(l, slot[l], 1)));
                    let his = ctx.ld_global(&hi_addrs);
                    let lo_addrs =
                        ctx.lanes_from(|l| matched.contains(&l).then(|| eword(l, slot[l], 2)));
                    let los = ctx.ld_global(&lo_addrs);
                    for &l in &matched {
                        found_counts[l] = Some(ExtCounts::from_hi_lo_words(his[l], los[l]));
                    }
                }
            }
            ctx.pop_mask();
            probe_pending = next_pending;
            probes += 1;
            let cap = walking.iter().map(|&l| lanes[l].ht_slots).max().unwrap_or(1);
            assert!(probes <= cap + 1, "v1 walk probe did not terminate");
        }
        for &l in &dead {
            walk_state[l] = WalkState::DeadEnd;
        }
        walking.retain(|l| !dead.contains(l));

        // ---- classify and extend (per-lane) ----
        ctx.int_ops(12);
        let mut extenders: Vec<(usize, bioseq::Base)> = Vec::new();
        let mut ended: Vec<usize> = Vec::new();
        for &l in &walking {
            // A lane that somehow lost its counts dead-ends conservatively.
            let verdict =
                found_counts[l].map_or(ExtVerdict::DeadEnd, |c| c.classify(params.min_viable));
            match verdict {
                ExtVerdict::Extend(b) => extenders.push((l, b)),
                ExtVerdict::DeadEnd => {
                    walk_state[l] = WalkState::DeadEnd;
                    ended.push(l);
                }
                ExtVerdict::Fork => {
                    walk_state[l] = WalkState::Fork;
                    ended.push(l);
                }
            }
        }
        if !extenders.is_empty() {
            let offs = ctx.lanes_from(|l| {
                extenders.iter().find(|(el, _)| *el == l).map(|_| lanes[l].work_len as u64)
            });
            let vals = ctx.lanes_from(|l| {
                extenders.iter().find(|(el, _)| *el == l).map_or(0, |(_, b)| u64::from(b.code()))
            });
            ctx.st_local(&offs, &vals);
            ctx.int_ops(2 * max_k.div_ceil(32) as u64);
            for (l, b) in &extenders {
                lanes[*l].work_len += 1;
                lanes[*l].appended_total += 1;
                appended[*l] += 1;
                cur[*l] = cur[*l].map(|km| km.shift_right(*b));
                steps[*l] += 1;
            }
        }
        walking.retain(|l| !ended.contains(l));
        // Step-cap enforcement.
        let mut capped: Vec<usize> = Vec::new();
        for &l in &walking {
            if steps[l] >= max_steps[l] {
                walk_state[l] = WalkState::MaxLen;
                capped.push(l);
            }
        }
        walking.retain(|l| !capped.contains(l));
        ctx.pop_mask();
        let _ = appended;
    }
}
