//! The **v2** extension kernel: one warp per contig-end extension
//! (Figure 5), warp-cooperative hash-table construction.
//!
//! * All 32 lanes cooperatively insert k-mers into the warp-local hash
//!   table: lane `i` handles k-mers `i, i+32, …` of each read, so adjacent
//!   lanes load adjacent packed read words (coalesced). Thread collisions
//!   (two lanes inserting the same k-mer) are resolved with an `atomicCAS`
//!   claim; `match_any` + `syncwarp` group the colliding lanes exactly as
//!   §3.3 describes.
//! * The DNA walk (§3.4) runs with every lane except lane 0 masked out; the
//!   walk state is broadcast to the warp with a shuffle so all lanes agree
//!   on whether to rebuild the table at a shifted k — the in-warp k-shift
//!   loop of Figure 5.
//! * Tables are **generation-tagged** (see [`super::layout`]): rebuilding
//!   at a new k costs no re-initialization traffic; the slab arrives
//!   zeroed from the host (`cudaMemset` semantics).
//!
//! The paper's first-cut **v1** kernel (one extension per *thread*) lives
//! in [`super::kernel_v1`].
//!
//! ### Instruction-accounting conventions
//!
//! `gpusim` meters loads/stores/atomics/shuffles automatically. Arithmetic
//! is charged explicitly at these rates, applied consistently across v1, v2
//! and the walk so that *relative* comparisons are meaningful: ~2 INT ops
//! per packed word touched (shift+mask), 6 INT ops per word hashed
//! (murmur2's multiply/xor ladder), 2 INT ops per probe-address
//! computation, 12 INT ops for a vote classification, and 1 control op per
//! loop-carried branch.

use crate::gpu::layout::{
    self, decode_key, encode_key, key_is_current, ENTRY_WORDS, EXT_META_WORDS, READ_META_WORDS,
    VIS_ENTRY_WORDS,
};
use crate::gpu::pack::GpuBatch;
use crate::params::{KShift, LocalAssemblyParams, WalkState};
use gpusim::{Lanes, WarpCtx, WARP};
use kmer::hash::hash_kmer;
use kmer::{ExtCounts, ExtVerdict, Kmer};

/// Which kernel implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelVersion {
    /// One extension per **thread** — the paper's first cut: scattered,
    /// uncoalesced accesses across 32 independent tables per warp.
    V1,
    /// One extension per **warp** with cooperative table construction —
    /// the paper's contribution.
    V2,
}

/// The v2 per-warp kernel body: extend one contig end to completion.
pub fn extension_kernel_v2(ctx: &mut WarpCtx, batch: &GpuBatch, params: &LocalAssemblyParams) {
    let e = ctx.warp_id as u64;

    // ---- load extension metadata (8 words, lanes 0..8, then broadcast) ----
    ctx.set_site("v2::load_meta");
    let meta = batch.ext_meta.slice(e * EXT_META_WORDS, EXT_META_WORDS);
    let addrs = ctx.lanes_from(|l| (l < EXT_META_WORDS as usize).then(|| meta.at(l as u64)));
    let m = ctx.ld_global(&addrs);
    // Distribute the eight values to all lanes (one shuffle round).
    let _ = ctx.shfl(&m, 0);
    let read_slot_start = m[0];
    let n_reads = m[1];
    let ht_off = m[2];
    let ht_slots = m[3];
    let vis_off = m[4];
    let vis_slots = m[5];
    let tail_off = m[6];
    let tail_len = m[7] as usize;

    let out = batch.out.slice(e * batch.out_stride, batch.out_stride);
    if n_reads == 0 {
        // Bin-1 style early exit: store an empty result.
        ctx.st_global_lane(0, out.at(0), 0);
        ctx.st_global_lane(0, out.at(1), layout::encode_out_header(WalkState::DeadEnd.to_u64(), 0));
        return;
    }

    // Warp-local table regions carved out of the shared slab/visited arenas.
    let ht = batch.slab.slice(ht_off, ht_slots * ENTRY_WORDS);
    let vis = batch.visited.slice(vis_off, vis_slots * VIS_ENTRY_WORDS);

    // ---- copy the contig tail into the working window (lane 0 local) ----
    ctx.set_site("v2::tail_copy");
    ctx.push_mask(1);
    {
        let tail_words = (tail_len as u64).div_ceil(32);
        for w in 0..tail_words {
            let word = ctx.ld_global_lane(0, batch.tails.at(tail_off + w));
            let n_here = (tail_len - (w as usize) * 32).min(32);
            for b in 0..n_here {
                ctx.int_ops(2);
                ctx.st_local_lane(0, (w as usize * 32 + b) as u64, (word >> (2 * b)) & 3);
            }
        }
    }
    ctx.pop_mask();

    let mut work_len = tail_len;
    let mut appended_total = 0usize;

    // ---- in-warp k-shift loop (Figure 5) ----
    let mut kshift = KShift::new(params.k_list.len(), params.start_k_idx);
    #[allow(unused_assignments)]
    let mut final_state = WalkState::DeadEnd;
    let mut iterations = 0u32;
    loop {
        let k = params.k_list[kshift.k_idx()];
        layout::assert_k_supported(k);
        iterations += 1;
        let iter_tag = iterations as u8;
        ctx.ctrl_ops(1);

        let budget = params.max_total_extension - appended_total;
        let walk_state;
        let mut appended_this = 0usize;
        if budget == 0 || work_len < k {
            walk_state = WalkState::DeadEnd;
        } else {
            build_table_v2(ctx, batch, read_slot_start, n_reads, ht, ht_slots, k, iter_tag);

            // ---- DNA walk: lane 0 only ----
            ctx.set_site("v2::walk");
            ctx.push_mask(1);
            let max_steps = params.max_walk_len.min(budget);
            let (state, n_app) = dna_walk_lane0(
                ctx,
                batch,
                ht,
                ht_slots,
                vis,
                vis_slots,
                k,
                iter_tag,
                work_len,
                max_steps,
                params.min_viable,
            );
            ctx.pop_mask();
            walk_state = state;
            appended_this = n_app;
        }
        work_len += appended_this;
        appended_total += appended_this;
        final_state = walk_state;

        // Broadcast the walk state to the whole warp (shuffle), then drive
        // the shared k-shift controller uniformly.
        let mut sv: Lanes<u64> = [0; WARP];
        sv[0] = walk_state.to_u64();
        let broadcast = ctx.shfl(&sv, 0);
        // The broadcast value was written by this warp one shuffle ago, so
        // it is always a valid encoding; a corrupted value conservatively
        // terminates the walk as a dead end rather than aborting the kernel.
        let state = WalkState::from_u64(broadcast[0]).unwrap_or(WalkState::DeadEnd);
        ctx.ctrl_ops(2);
        if !kshift.on_walk(state) {
            break;
        }
    }

    // ---- store the output record (lane 0) ----
    ctx.set_site("v2::store_out");
    ctx.push_mask(1);
    ctx.st_global_lane(0, out.at(0), appended_total as u64);
    ctx.st_global_lane(0, out.at(1), layout::encode_out_header(final_state.to_u64(), iterations));
    let out_words = (appended_total as u64).div_ceil(32);
    for w in 0..out_words {
        let mut word = 0u64;
        let n_here = (appended_total - (w as usize) * 32).min(32);
        for b in 0..n_here {
            let code = ctx.ld_local_lane(0, (tail_len + w as usize * 32 + b) as u64);
            ctx.int_ops(2);
            word |= (code & 3) << (2 * b);
        }
        ctx.st_global_lane(0, out.at(2 + w), word);
    }
    ctx.pop_mask();
}

/// Load the 3 metadata words of global read slot `slot` (lane-parallel).
pub(crate) fn load_read_meta(ctx: &mut WarpCtx, batch: &GpuBatch, slot: u64) -> (u64, u64, u64) {
    let meta = batch.read_meta.slice(slot * READ_META_WORDS, READ_META_WORDS);
    let addrs = ctx.lanes_from(|l| (l < READ_META_WORDS as usize).then(|| meta.at(l as u64)));
    let m = ctx.ld_global(&addrs);
    let _ = ctx.shfl(&m, 0);
    (m[0], m[1], m[2])
}

/// v2 build phase: 32 lanes cooperatively insert each read's k-mers.
#[allow(clippy::too_many_arguments)]
fn build_table_v2(
    ctx: &mut WarpCtx,
    batch: &GpuBatch,
    read_slot_start: u64,
    n_reads: u64,
    ht: gpusim::Buf,
    ht_slots: u64,
    k: usize,
    iter_tag: u8,
) {
    ctx.set_site("v2::build_table");
    for r in 0..n_reads {
        let slot_global = read_slot_start + r;
        let (bases_start, qual_start, rlen) = load_read_meta(ctx, batch, slot_global);
        let rlen = rlen as usize;
        ctx.ctrl_ops(1);
        if rlen < k + 1 {
            continue;
        }
        let n_kmers = rlen - k; // k-mers that have a following base
        let mut j0 = 0usize;
        while j0 < n_kmers {
            let lanes_here = (n_kmers - j0).min(WARP);
            let mask = if lanes_here == WARP { u32::MAX } else { (1u32 << lanes_here) - 1 };
            ctx.push_mask(mask);

            // Coalesced load of the words spanning bases p..=p+k per lane.
            let max_span = (j0 + lanes_here - 1 + k) / 32 - j0 / 32 + 1;
            let mut lane_words: Vec<Lanes<u64>> = Vec::with_capacity(max_span);
            for w in 0..max_span {
                let addrs = ctx.lanes_from(|l| {
                    if l >= lanes_here {
                        return None;
                    }
                    let p = j0 + l;
                    let span = (p + k) / 32 - p / 32 + 1;
                    (w < span).then(|| batch.reads_bases.at(bases_start + (p / 32 + w) as u64))
                });
                lane_words.push(ctx.ld_global(&addrs));
            }
            ctx.int_ops(2 * max_span as u64);

            // Quality tier bit of the extension base (coalesced load).
            let qaddrs = ctx.lanes_from(|l| {
                (l < lanes_here)
                    .then(|| batch.reads_quals.at(qual_start + ((j0 + l + k) / 64) as u64))
            });
            let qwords = ctx.ld_global(&qaddrs);
            ctx.int_ops(2);

            // Per-lane k-mer materialization + hash.
            let mut kms: Lanes<Option<Kmer>> = [None; WARP];
            let mut hashes: Lanes<u64> = [0; WARP];
            let mut ext_codes: Lanes<u8> = [0; WARP];
            let mut hi_tier: Lanes<bool> = [false; WARP];
            for l in 0..lanes_here {
                let p = j0 + l;
                let local: Vec<u64> = (0..max_span).map(|w| lane_words[w][l]).collect();
                let km = Kmer::from_packed_words(&local, p % 32, k);
                hashes[l] = hash_kmer(&km);
                let ext_idx = p + k;
                let wsel = ext_idx / 32 - p / 32;
                ext_codes[l] = ((lane_words[wsel][l] >> (2 * (ext_idx % 32))) & 3) as u8;
                hi_tier[l] = (qwords[l] >> (ext_idx % 64)) & 1 == 1;
                kms[l] = Some(km);
            }
            let kmw = (k as u64).div_ceil(32);
            ctx.int_ops(2 * kmw + 2); // extraction
            ctx.int_ops(6 * kmw); // murmur2 ladder

            // The paper's collision grouping: match colliding lanes, sync.
            let _groups = ctx.match_any(&hashes);
            ctx.syncwarp();

            // Probe + insert + vote.
            let descs = ctx
                .lanes_from(|l| encode_key(slot_global as u32, (j0 + l) as u16, iter_tag, k as u8));
            probe_and_vote_v2(
                ctx, batch, ht, ht_slots, mask, &kms, &hashes, &descs, &ext_codes, &hi_tier, k,
                iter_tag,
            );
            ctx.pop_mask();
            j0 += WARP;
        }
    }
}

/// Linear-probe insertion with generation-tagged CAS claims, then the vote
/// atomics. Active lanes are those set in `mask` with `Some` k-mers.
#[allow(clippy::too_many_arguments)]
fn probe_and_vote_v2(
    ctx: &mut WarpCtx,
    batch: &GpuBatch,
    ht: gpusim::Buf,
    ht_slots: u64,
    mask: u32,
    kms: &Lanes<Option<Kmer>>,
    hashes: &Lanes<u64>,
    descs: &Lanes<u64>,
    ext_codes: &Lanes<u8>,
    hi_tier: &Lanes<bool>,
    k: usize,
    iter_tag: u8,
) {
    ctx.set_site("v2::probe_insert");
    let mut slot: Lanes<u64> = [0; WARP];
    let mut pending: u32 = 0;
    for l in 0..WARP {
        if mask & (1 << l) != 0 && kms[l].is_some() {
            slot[l] = hashes[l] % ht_slots;
            pending |= 1 << l;
        }
    }
    ctx.int_ops(2);
    let mut entry: Lanes<Option<u64>> = [None; WARP];
    let mut guard = 0u64;
    while pending != 0 {
        ctx.push_mask(pending);
        ctx.int_ops(2); // slot -> address

        // 1. read the key word of each pending lane's slot.
        let key_addrs =
            ctx.lanes_from(|l| (pending & (1 << l) != 0).then(|| ht.at(slot[l] * ENTRY_WORDS)));
        let keys = ctx.ld_global(&key_addrs);

        // 2. lanes whose slot is empty-or-stale try to claim it with CAS on
        // the observed value.
        let claim_ops = ctx.lanes_from(|l| {
            if pending & (1 << l) == 0 || key_is_current(keys[l], iter_tag) {
                None
            } else {
                Some((ht.at(slot[l] * ENTRY_WORDS), keys[l], descs[l]))
            }
        });
        let claim_old = ctx.atomic_cas(&claim_ops);
        let mut claimed: Vec<usize> = Vec::new();
        for l in 0..WARP {
            if pending & (1 << l) == 0 || key_is_current(keys[l], iter_tag) {
                continue;
            }
            if claim_old[l] == keys[l] {
                claimed.push(l);
            }
            // Losers re-read the slot next round (stay pending).
        }

        // 3. claimers reset the stale count words BEFORE anyone votes.
        if !claimed.is_empty() {
            for off in [1u64, 2u64] {
                let addrs = ctx.lanes_from(|l| {
                    claimed.contains(&l).then(|| ht.at(slot[l] * ENTRY_WORDS + off))
                });
                let zeros: Lanes<u64> = [0; WARP];
                ctx.st_global(&addrs, &zeros);
            }
            for &l in &claimed {
                entry[l] = Some(ht.at(slot[l] * ENTRY_WORDS));
                pending &= !(1 << l);
            }
        }

        // 4. lanes whose slot holds a live key of this generation compare
        // k-mers by dereferencing the stored read pointer — the random
        // (uncoalesced) accesses of the pointer scheme.
        let cmp_lanes: Vec<usize> = (0..WARP)
            .filter(|&l| pending & (1 << l) != 0 && key_is_current(keys[l], iter_tag))
            .collect();
        if !cmp_lanes.is_empty() {
            if keys.iter().enumerate().any(|(l, &kk)| cmp_lanes.contains(&l) && kk == descs[l]) {
                // Identical descriptor means this very instance already
                // inserted (possible only on re-entry, which the unique
                // (read, pos) keys rule out); treat as a match for safety.
            }
            let mut stored_meta: Lanes<u64> = [0; WARP];
            let addrs = ctx.lanes_from(|l| {
                cmp_lanes.contains(&l).then(|| {
                    let (rs, _, _, _) = decode_key(keys[l]);
                    batch.read_meta.at(u64::from(rs) * READ_META_WORDS)
                })
            });
            let bases_starts = ctx.ld_global(&addrs);
            for &l in &cmp_lanes {
                stored_meta[l] = bases_starts[l];
            }
            let kmw = k.div_ceil(32);
            let max_span = kmw + 1;
            let mut stored_words: Vec<Lanes<u64>> = Vec::with_capacity(max_span);
            for w in 0..max_span {
                let addrs = ctx.lanes_from(|l| {
                    if !cmp_lanes.contains(&l) {
                        return None;
                    }
                    let (_, pos, _, _) = decode_key(keys[l]);
                    let p = pos as usize;
                    let span = (p + k - 1) / 32 - p / 32 + 1;
                    (w < span).then(|| batch.reads_bases.at(stored_meta[l] + (p / 32 + w) as u64))
                });
                stored_words.push(ctx.ld_global(&addrs));
            }
            ctx.int_ops(2 * kmw as u64 + 2);
            for &l in &cmp_lanes {
                let (_, pos, _, _) = decode_key(keys[l]);
                let p = pos as usize;
                let words: Vec<u64> = (0..max_span).map(|w| stored_words[w][l]).collect();
                let stored_km = Kmer::from_packed_words(&words, p % 32, k);
                if Some(stored_km) == kms[l] {
                    entry[l] = Some(ht.at(slot[l] * ENTRY_WORDS));
                    pending &= !(1 << l);
                } else {
                    slot[l] = (slot[l] + 1) % ht_slots;
                }
            }
            ctx.int_ops(kmw as u64);
        }
        ctx.pop_mask();
        guard += 1;
        assert!(
            guard <= 2 * (ht_slots + 1),
            "hash table probe did not terminate (slots {ht_slots})"
        );
    }

    // Votes: claimers just plain-stored zeros into their entries' count
    // words; lanes that matched an *existing* entry are about to atomic-add
    // the very same words. Order the two phases — without this barrier that
    // is a cross-lane plain-write/atomic race (and racecheck flags it).
    ctx.syncwarp();

    // Votes: hi-tier counts and lo-tier counts.
    ctx.set_site("v2::vote");
    let hi_ops = ctx.lanes_from(|l| {
        entry[l].and_then(|a| hi_tier[l].then(|| (a + 1, 1u64 << (16 * u64::from(ext_codes[l])))))
    });
    ctx.atomic_add(&hi_ops);
    let lo_ops = ctx.lanes_from(|l| {
        entry[l]
            .and_then(|a| (!hi_tier[l]).then(|| (a + 2, 1u64 << (16 * u64::from(ext_codes[l])))))
    });
    ctx.atomic_add(&lo_ops);
}

/// The DNA walk (Algorithm 2) on a device table, lane 0 active.
/// Returns the terminal state and number of bases appended to the window.
#[allow(clippy::too_many_arguments)]
fn dna_walk_lane0(
    ctx: &mut WarpCtx,
    batch: &GpuBatch,
    ht: gpusim::Buf,
    ht_slots: u64,
    vis: gpusim::Buf,
    vis_slots: u64,
    k: usize,
    iter_tag: u8,
    work_len_in: usize,
    max_steps: usize,
    min_viable: u16,
) -> (WalkState, usize) {
    let kmw = k.div_ceil(32);
    let mut work_len = work_len_in;

    // Materialize the terminal k-mer from the working window.
    let mut codes = Vec::with_capacity(k);
    for i in 0..k {
        let c = ctx.ld_local_lane(0, (work_len - k + i) as u64);
        codes.push(c as u8);
    }
    ctx.int_ops(k as u64);
    let mut cur = {
        let seq = bioseq::DnaSeq::from_codes(codes);
        Kmer::from_seq(&seq, 0, k)
    };

    let mut appended = 0usize;
    for _ in 0..max_steps {
        ctx.ctrl_ops(1);
        // ---- visited check / insert ----
        let h = hash_kmer(&cur);
        ctx.int_ops(6 * kmw as u64);
        let mut vslot = h % vis_slots;
        ctx.int_ops(2);
        let cur_words = layout::kmer_entry_words(&cur);
        let cur_tagged = layout::vis_tag(cur_words[VIS_ENTRY_WORDS as usize - 1], iter_tag);
        loop {
            ctx.ctrl_ops(1);
            let flag =
                ctx.ld_global_lane(0, vis.at(vslot * VIS_ENTRY_WORDS + (VIS_ENTRY_WORDS - 1)));
            if !layout::vis_is_current(flag, iter_tag) {
                // Not visited: insert cur (single writer, plain stores).
                for (w, &val) in cur_words.iter().enumerate().take(VIS_ENTRY_WORDS as usize - 1) {
                    ctx.st_global_lane(0, vis.at(vslot * VIS_ENTRY_WORDS + w as u64), val);
                }
                ctx.st_global_lane(
                    0,
                    vis.at(vslot * VIS_ENTRY_WORDS + (VIS_ENTRY_WORDS - 1)),
                    cur_tagged,
                );
                break;
            }
            // Occupied this generation: full compare.
            let mut same = flag == cur_tagged;
            for w in 0..(VIS_ENTRY_WORDS - 1) {
                let stored = ctx.ld_global_lane(0, vis.at(vslot * VIS_ENTRY_WORDS + w));
                same &= stored == cur_words[w as usize];
            }
            ctx.int_ops(VIS_ENTRY_WORDS);
            if same {
                return (WalkState::Loop, appended);
            }
            vslot = (vslot + 1) % vis_slots;
        }

        // ---- hash-table lookup ----
        let mut slot = h % ht_slots;
        ctx.int_ops(2);
        let counts;
        let mut probes = 0u64;
        loop {
            ctx.ctrl_ops(1);
            let key = ctx.ld_global_lane(0, ht.at(slot * ENTRY_WORDS));
            if !key_is_current(key, iter_tag) {
                return (WalkState::DeadEnd, appended);
            }
            // Pointer dereference for key comparison.
            let (rs, pos, _, _) = decode_key(key);
            let bases_start =
                ctx.ld_global_lane(0, batch.read_meta.at(u64::from(rs) * READ_META_WORDS));
            let p = pos as usize;
            let span = (p + k - 1) / 32 - p / 32 + 1;
            let mut words = Vec::with_capacity(span);
            for w in 0..span {
                words.push(
                    ctx.ld_global_lane(0, batch.reads_bases.at(bases_start + (p / 32 + w) as u64)),
                );
            }
            ctx.int_ops(2 * kmw as u64 + 2);
            let stored_km = Kmer::from_packed_words(&words, p % 32, k);
            if stored_km == cur {
                let hi = ctx.ld_global_lane(0, ht.at(slot * ENTRY_WORDS + 1));
                let lo = ctx.ld_global_lane(0, ht.at(slot * ENTRY_WORDS + 2));
                counts = ExtCounts::from_hi_lo_words(hi, lo);
                break;
            }
            slot = (slot + 1) % ht_slots;
            probes += 1;
            assert!(probes <= ht_slots, "walk probe did not terminate");
        }

        // ---- classify and extend ----
        ctx.int_ops(12);
        match counts.classify(min_viable) {
            ExtVerdict::Extend(b) => {
                ctx.st_local_lane(0, work_len as u64, u64::from(b.code()));
                work_len += 1;
                appended += 1;
                cur = cur.shift_right(b);
                ctx.int_ops(2 * kmw as u64);
            }
            ExtVerdict::DeadEnd => return (WalkState::DeadEnd, appended),
            ExtVerdict::Fork => return (WalkState::Fork, appended),
        }
    }
    (WalkState::MaxLen, appended)
}
