//! Multi-GPU dispatch: a Summit node drives six V100s
//! (`mhm2.py --ranks-per-gpu` maps 7 ranks onto each). We model the node
//! level by striping extension tasks across N independent simulated
//! devices and running them concurrently; node-level local-assembly time
//! is the **makespan** (slowest device), which is what the strong-scaling
//! story of Figures 13/14 is about — fewer tasks per device means worse
//! load balance and a larger overhead share.

use crate::gpu::engine::{GpuLocalAssembler, GpuRunStats};
use crate::gpu::kernel::KernelVersion;
use crate::params::LocalAssemblyParams;
use crate::task::{ExtResult, ExtTask};
use gpusim::DeviceConfig;
use rayon::prelude::*;

/// Node-level statistics.
#[derive(Debug, Clone)]
pub struct MultiGpuStats {
    /// Per-device run stats, index = device id.
    pub per_device: Vec<GpuRunStats>,
    /// Simulated node-level local-assembly time (max over devices).
    pub makespan_s: f64,
    /// Sum of device seconds (the work a single device would need).
    pub total_device_s: f64,
}

impl MultiGpuStats {
    /// Load-balance efficiency: 1.0 = perfectly even device times.
    pub fn balance_efficiency(&self) -> f64 {
        if self.makespan_s == 0.0 || self.per_device.is_empty() {
            return 1.0;
        }
        self.total_device_s / (self.makespan_s * self.per_device.len() as f64)
    }
}

/// A fixed array of simulated GPUs fed by striped task assignment.
pub struct MultiGpuAssembler {
    config: DeviceConfig,
    params: LocalAssemblyParams,
    version: KernelVersion,
    n_devices: usize,
}

impl MultiGpuAssembler {
    /// `n_devices` simulated GPUs of identical configuration.
    pub fn new(
        config: DeviceConfig,
        params: LocalAssemblyParams,
        version: KernelVersion,
        n_devices: usize,
    ) -> MultiGpuAssembler {
        assert!(n_devices >= 1, "need at least one device");
        MultiGpuAssembler { config, params, version, n_devices }
    }

    /// Extend all tasks; results are index-aligned with the input.
    ///
    /// Tasks are striped round-robin so heavy (bin-3) tasks spread across
    /// devices — the static analogue of MetaHipMer2's rank↔GPU mapping.
    pub fn extend_tasks(&self, tasks: &[ExtTask]) -> (Vec<ExtResult>, MultiGpuStats) {
        // Stripe task indices.
        let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); self.n_devices];
        for (i, _) in tasks.iter().enumerate() {
            assignment[i % self.n_devices].push(i);
        }

        // Run each device concurrently (host-side parallelism; each device
        // is an independent simulator).
        let outcomes: Vec<(Vec<usize>, Vec<ExtResult>, GpuRunStats)> = assignment
            .into_par_iter()
            .map(|idx| {
                let my_tasks: Vec<ExtTask> = idx.iter().map(|&i| tasks[i].clone()).collect();
                let mut engine = GpuLocalAssembler::new(
                    self.config.clone(),
                    self.params.clone(),
                    self.version,
                );
                let (results, stats) = engine.extend_tasks(&my_tasks);
                (idx, results, stats)
            })
            .collect();

        let mut results: Vec<Option<ExtResult>> = vec![None; tasks.len()];
        let mut per_device = Vec::with_capacity(self.n_devices);
        for (idx, device_results, stats) in outcomes {
            for (&i, r) in idx.iter().zip(device_results) {
                results[i] = Some(r);
            }
            per_device.push(stats);
        }
        let makespan_s = per_device.iter().map(|s| s.seconds).fold(0.0, f64::max);
        let total_device_s = per_device.iter().map(|s| s.seconds).sum();
        (
            results.into_iter().map(|r| r.expect("all assigned")).collect(),
            MultiGpuStats { per_device, makespan_s, total_device_s },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::extend_all_cpu;
    use crate::task::ContigEnd;
    use bioseq::{DnaSeq, Read};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_seq(len: usize, sd: u64) -> DnaSeq {
        let mut rng = StdRng::seed_from_u64(sd);
        (0..len)
            .map(|_| bioseq::Base::from_code(rng.gen_range(0..4)))
            .collect()
    }

    fn make_tasks(n: usize) -> Vec<ExtTask> {
        (0..n)
            .map(|i| {
                let genome = random_seq(400, 900 + i as u64);
                let reads = (0..6 + i % 9)
                    .map(|r| {
                        Read::with_uniform_qual(
                            format!("t{i}r{r}"),
                            genome.subseq(60 + (r * 17) % 180, 80),
                            35,
                        )
                    })
                    .collect();
                ExtTask {
                    contig: i,
                    end: ContigEnd::Right,
                    tail: genome.subseq(0, 120),
                    reads,
                }
            })
            .collect()
    }

    #[test]
    fn multi_device_matches_cpu() {
        let tasks = make_tasks(30);
        let params = LocalAssemblyParams::for_tests();
        let cpu = extend_all_cpu(&tasks, &params);
        for n_dev in [1usize, 2, 6] {
            let multi = MultiGpuAssembler::new(
                DeviceConfig::v100(),
                params.clone(),
                KernelVersion::V2,
                n_dev,
            );
            let (results, stats) = multi.extend_tasks(&tasks);
            assert_eq!(results, cpu, "{n_dev} devices");
            assert_eq!(stats.per_device.len(), n_dev);
        }
    }

    #[test]
    fn makespan_improves_with_devices() {
        // A deliberately small device so 48 warps saturate it: splitting
        // across under-occupied V100s cannot beat the per-warp latency
        // floor (itself a faithful effect), so occupancy must be the
        // binding constraint for this test.
        let tasks = make_tasks(48);
        let params = LocalAssemblyParams::for_tests();
        let one = MultiGpuAssembler::new(
            DeviceConfig::tiny(),
            params.clone(),
            KernelVersion::V2,
            1,
        );
        let six = MultiGpuAssembler::new(
            DeviceConfig::tiny(),
            params.clone(),
            KernelVersion::V2,
            6,
        );
        let (_, s1) = one.extend_tasks(&tasks);
        let (_, s6) = six.extend_tasks(&tasks);
        assert!(
            s6.makespan_s < s1.makespan_s,
            "6 devices ({}) must beat 1 ({})",
            s6.makespan_s,
            s1.makespan_s
        );
        // But not perfectly: per-launch overheads replicate per device.
        assert!(s6.total_device_s >= s1.total_device_s * 0.5);
        assert!(s6.balance_efficiency() <= 1.0 + 1e-9);
    }

    #[test]
    fn strong_scaling_overhead_effect() {
        // Shrinking per-node work (strong scaling) erodes multi-GPU
        // efficiency — the Figure 13 mechanism at node level.
        let params = LocalAssemblyParams::for_tests();
        let eff = |n_tasks: usize| {
            let tasks = make_tasks(n_tasks);
            let multi = MultiGpuAssembler::new(
                DeviceConfig::v100(),
                params.clone(),
                KernelVersion::V2,
                6,
            );
            let (_, stats) = multi.extend_tasks(&tasks);
            // Overhead share: launch overheads over total simulated time.
            let overhead: f64 = stats.per_device.len() as f64
                * DeviceConfig::v100().launch_overhead_us
                * 1e-6;
            // (per-device launch overhead is fixed; work shrinks with n_tasks)
            overhead / stats.total_device_s.max(1e-12)
        };
        assert!(
            eff(6) > eff(60),
            "overhead share must grow as per-node work shrinks"
        );
    }

    #[test]
    fn empty_task_list() {
        let params = LocalAssemblyParams::for_tests();
        let multi =
            MultiGpuAssembler::new(DeviceConfig::v100(), params, KernelVersion::V2, 4);
        let (results, stats) = multi.extend_tasks(&[]);
        assert!(results.is_empty());
        assert_eq!(stats.makespan_s, 0.0);
        assert_eq!(stats.balance_efficiency(), 1.0);
    }
}
