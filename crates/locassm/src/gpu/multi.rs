//! Multi-GPU dispatch: a Summit node drives six V100s
//! (`mhm2.py --ranks-per-gpu` maps 7 ranks onto each). We model the node
//! level by striping extension tasks across N independent simulated
//! devices and running them concurrently; node-level local-assembly time
//! is the **makespan** (slowest device), which is what the strong-scaling
//! story of Figures 13/14 is about — fewer tasks per device means worse
//! load balance and a larger overhead share.

use crate::cpu::extend_cpu_isolated_refs;
use crate::gpu::engine::{GpuLocalAssembler, GpuRunStats, RecoveryPolicy};
use crate::gpu::kernel::KernelVersion;
use crate::gpu::pack::estimate_task_cost;
use crate::params::LocalAssemblyParams;
use crate::task::{ExtResult, ExtTask, TaskOutcome};
use gpusim::DeviceConfig;
use rayon::prelude::*;

/// How tasks are assigned to devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StripePolicy {
    /// Historical `i % n_devices` striping — oblivious to task cost, so a
    /// cluster of heavy bin-3 tasks can pile onto one device. Kept as the
    /// load-balance comparison baseline.
    RoundRobin,
    /// Greedy LPT bin-packing on uniform machines: tasks sorted
    /// heaviest-first by [`estimate_task_cost`], each assigned to the
    /// device that would *finish it earliest* — `(load + w) / rate` — so a
    /// device rated 0.5× receives roughly half the words of a 1× peer
    /// (mixed-fleet support). With equal rates this degenerates to plain
    /// least-loaded LPT.
    WordsLpt,
}

/// Node-level statistics.
#[derive(Debug, Clone)]
pub struct MultiGpuStats {
    /// Per-device run stats, index = device id (redistribution rounds are
    /// folded into the device that absorbed the work).
    pub per_device: Vec<GpuRunStats>,
    /// Simulated node-level local-assembly time (max over devices).
    pub makespan_s: f64,
    /// Sum of device seconds (the work a single device would need).
    pub total_device_s: f64,
    /// Devices whose shard was lost (engine panic or device abandoned
    /// after exhausting its reset budget).
    pub lost_devices: usize,
    /// Tasks re-run on a surviving device (or the CPU) after shard loss.
    pub redistributed_tasks: usize,
    /// Per-device throughput learned from round 1 (estimated words per
    /// simulated second), index = device id. A device with no usable
    /// observation (lost shard, empty shard) reports its configured
    /// relative rate rescaled by the fleet's mean observed-to-configured
    /// ratio — these are the rates the shard-loss restripe ran with.
    pub device_rates: Vec<f64>,
}

impl MultiGpuStats {
    /// Load-balance efficiency: 1.0 = perfectly even device times.
    pub fn balance_efficiency(&self) -> f64 {
        if self.makespan_s == 0.0 || self.per_device.is_empty() {
            return 1.0;
        }
        self.total_device_s / (self.makespan_s * self.per_device.len() as f64)
    }
}

/// A fixed array of simulated GPUs fed by striped task assignment.
pub struct MultiGpuAssembler {
    configs: Vec<DeviceConfig>,
    params: LocalAssemblyParams,
    version: KernelVersion,
    stripe: StripePolicy,
    /// Relative per-device throughput weights used by rate-aware LPT
    /// (1.0 each by default — a homogeneous fleet). Units are free: only
    /// ratios matter for striping.
    rates: Vec<f64>,
}

/// Result of one device shard in round 1.
// One value per device shard; boxing the large variant buys nothing.
#[allow(clippy::large_enum_variant)]
enum ShardRun {
    /// The engine finished (possibly with per-task failures to reschedule).
    Finished { idx: Vec<usize>, outcomes: Vec<TaskOutcome>, stats: GpuRunStats },
    /// The engine panicked: the whole shard is lost.
    Lost { idx: Vec<usize> },
}

impl MultiGpuAssembler {
    /// `n_devices` simulated GPUs of identical configuration.
    pub fn new(
        config: DeviceConfig,
        params: LocalAssemblyParams,
        version: KernelVersion,
        n_devices: usize,
    ) -> MultiGpuAssembler {
        assert!(n_devices >= 1, "need at least one device");
        MultiGpuAssembler {
            configs: vec![config; n_devices],
            params,
            version,
            stripe: StripePolicy::WordsLpt,
            rates: vec![1.0; n_devices],
        }
    }

    /// Heterogeneous node: one explicit configuration per device (e.g.
    /// distinct fault plans for resilience testing).
    pub fn with_device_configs(
        configs: Vec<DeviceConfig>,
        params: LocalAssemblyParams,
        version: KernelVersion,
    ) -> MultiGpuAssembler {
        assert!(!configs.is_empty(), "need at least one device");
        let rates = vec![1.0; configs.len()];
        MultiGpuAssembler { configs, params, version, stripe: StripePolicy::WordsLpt, rates }
    }

    /// Override the striping policy (builder style).
    pub fn with_stripe_policy(mut self, stripe: StripePolicy) -> MultiGpuAssembler {
        self.stripe = stripe;
        self
    }

    /// Mixed fleet: per-device relative throughput for rate-aware LPT
    /// (e.g. `[1.0, 0.5]` for one full-speed and one half-speed device).
    /// In practice these come from a calibration run's
    /// [`MultiGpuStats::device_rates`] — a previous round's learned rates
    /// seed the next round's striping. Only ratios matter.
    pub fn with_device_rates(mut self, rates: Vec<f64>) -> MultiGpuAssembler {
        assert_eq!(rates.len(), self.configs.len(), "one rate per device");
        assert!(
            rates.iter().all(|r| r.is_finite() && *r > 0.0),
            "device rates must be positive and finite, got {rates:?}"
        );
        self.rates = rates;
        self
    }

    fn n_devices(&self) -> usize {
        self.configs.len()
    }

    /// Assign task indices to one shard per entry of `rates` under the
    /// configured policy. LPT weighs each device's load by its rate
    /// (earliest projected finish wins; strict `<` keeps ties on the
    /// lowest device id, deterministic) and keeps shard indices sorted
    /// ascending so per-device launch order (and therefore results) is
    /// independent of assignment order. Round-robin ignores the rates —
    /// that is exactly its (baseline) blindness.
    fn stripe_indices(
        &self,
        indices: &[usize],
        tasks: &[ExtTask],
        rates: &[f64],
    ) -> Vec<Vec<usize>> {
        let n_bins = rates.len();
        let mut shards: Vec<Vec<usize>> = vec![Vec::new(); n_bins];
        match self.stripe {
            StripePolicy::RoundRobin => {
                for (j, &i) in indices.iter().enumerate() {
                    shards[j % n_bins].push(i);
                }
            }
            StripePolicy::WordsLpt => {
                let mut weighted: Vec<(u64, usize)> = indices
                    .iter()
                    .map(|&i| (estimate_task_cost(&tasks[i], &self.params), i))
                    .collect();
                weighted.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
                let mut load = vec![0u64; n_bins];
                for (w, i) in weighted {
                    let mut dev = 0usize;
                    let mut dev_finish = f64::INFINITY;
                    for (d, &rate) in rates.iter().enumerate() {
                        let finish = (load[d] + w) as f64 / rate;
                        if finish < dev_finish {
                            dev_finish = finish;
                            dev = d;
                        }
                    }
                    load[dev] += w;
                    shards[dev].push(i);
                }
                for shard in &mut shards {
                    shard.sort_unstable();
                }
            }
        }
        shards
    }

    /// Extend all tasks; results are index-aligned with the input.
    ///
    /// Tasks are striped under [`StripePolicy`] (default: LPT by estimated
    /// device words, so heavy bin-3 tasks spread evenly) — the node-level
    /// analogue of MetaHipMer2's rank↔GPU mapping. A dead device (engine
    /// panic, or reset budget exhausted) is treated as shard loss: its
    /// unfinished tasks are redistributed across the surviving devices,
    /// and across the CPU if none survive.
    pub fn extend_tasks(&self, tasks: &[ExtTask]) -> (Vec<ExtResult>, MultiGpuStats) {
        let n_devices = self.n_devices();
        let all: Vec<usize> = (0..tasks.len()).collect();
        let assignment = self.stripe_indices(&all, tasks, &self.rates);
        // Per-shard scheduled cost — the "words" side of each device's
        // round-1 rate observation.
        let shard_words: Vec<u64> = assignment
            .iter()
            .map(|idx| idx.iter().map(|&i| estimate_task_cost(&tasks[i], &self.params)).sum())
            .collect();

        // Round 1: run each device concurrently (host-side parallelism;
        // each device is an independent simulator). Devices do NOT fall
        // back to the CPU themselves — failed tasks come back as
        // `Failed` so this dispatcher can reschedule them on peers.
        // Shards borrow the caller's tasks by index; nothing is cloned.
        let no_fallback = RecoveryPolicy { cpu_fallback: false, ..RecoveryPolicy::default() };
        let shards: Vec<(Vec<usize>, DeviceConfig)> =
            assignment.into_iter().zip(self.configs.iter().cloned()).collect();
        let shard_runs: Vec<ShardRun> = shards
            .into_par_iter()
            .map(|(idx, config)| {
                let my_tasks: Vec<&ExtTask> = idx.iter().map(|&i| &tasks[i]).collect();
                let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let mut engine =
                        GpuLocalAssembler::new(config, self.params.clone(), self.version)
                            .with_recovery_policy(no_fallback.clone());
                    engine.extend_tasks_outcomes_ref(&my_tasks)
                }));
                match run {
                    Ok((outcomes, stats)) => ShardRun::Finished { idx, outcomes, stats },
                    Err(_panic) => ShardRun::Lost { idx },
                }
            })
            .collect();

        let mut results: Vec<Option<ExtResult>> = vec![None; tasks.len()];
        let mut per_device: Vec<GpuRunStats> = Vec::with_capacity(n_devices);
        let mut retry: Vec<usize> = Vec::new();
        let mut alive: Vec<usize> = Vec::new(); // surviving device ids
        let mut lost_devices = 0usize;
        for (dev_id, run) in shard_runs.into_iter().enumerate() {
            match run {
                ShardRun::Finished { idx, outcomes, stats } => {
                    if stats.recovery.device_lost {
                        lost_devices += 1;
                    } else {
                        alive.push(dev_id);
                    }
                    for (&i, outcome) in idx.iter().zip(outcomes) {
                        match outcome {
                            TaskOutcome::Done(r) => results[i] = Some(r),
                            TaskOutcome::Failed { .. } => retry.push(i),
                        }
                    }
                    per_device.push(stats);
                }
                ShardRun::Lost { idx } => {
                    lost_devices += 1;
                    retry.extend(idx);
                    per_device.push(GpuRunStats::default());
                }
            }
        }

        // Learn per-device throughput from round 1: estimated words over
        // simulated device seconds. Devices without a usable observation
        // (lost or empty shard) keep their configured relative rate,
        // rescaled by the fleet's mean observed/configured ratio so both
        // kinds live on one scale.
        let observed: Vec<Option<f64>> = per_device
            .iter()
            .zip(&shard_words)
            .map(|(stats, &w)| {
                (w > 0 && stats.seconds > 0.0 && !stats.recovery.device_lost)
                    .then(|| w as f64 / stats.seconds)
            })
            .collect();
        let ratios: Vec<f64> =
            observed.iter().zip(&self.rates).filter_map(|(o, &r)| o.map(|obs| obs / r)).collect();
        let scale =
            if ratios.is_empty() { 1.0 } else { ratios.iter().sum::<f64>() / ratios.len() as f64 };
        let device_rates: Vec<f64> =
            observed.iter().zip(&self.rates).map(|(o, &r)| o.unwrap_or(r * scale)).collect();

        // Round 2: redistribute lost work across surviving devices (fresh
        // engines on the survivors' configurations — their fault plans, if
        // any, re-arm, so this round uses CPU fallback as the final rung).
        let redistributed_tasks = retry.len();
        if !retry.is_empty() {
            if alive.is_empty() {
                // No devices left: the whole retry set runs on the CPU.
                let retry_refs: Vec<&ExtTask> = retry.iter().map(|&i| &tasks[i]).collect();
                for (&i, outcome) in
                    retry.iter().zip(extend_cpu_isolated_refs(&retry_refs, &self.params))
                {
                    results[i] = Some(outcome.into_result());
                }
            } else {
                // Stolen-back work is re-striped under the same policy —
                // LPT again balances the (often heavy-skewed) retry set,
                // now weighted by the survivors' *learned* rates rather
                // than the configured seeds.
                let alive_rates: Vec<f64> = alive.iter().map(|&d| device_rates[d]).collect();
                let restripe = self.stripe_indices(&retry, tasks, &alive_rates);
                let restripe: Vec<(Vec<usize>, usize)> =
                    restripe.into_iter().zip(alive.iter().copied()).collect();
                let round2: Vec<(usize, Vec<usize>, Vec<TaskOutcome>, GpuRunStats)> = restripe
                    .into_par_iter()
                    .map(|(idx, dev_id)| {
                        let my_tasks: Vec<&ExtTask> = idx.iter().map(|&i| &tasks[i]).collect();
                        let mut engine = GpuLocalAssembler::new(
                            self.configs[dev_id].clone(),
                            self.params.clone(),
                            self.version,
                        );
                        let (outcomes, stats) = engine.extend_tasks_outcomes_ref(&my_tasks);
                        (dev_id, idx, outcomes, stats)
                    })
                    .collect();
                for (dev_id, idx, outcomes, stats) in round2 {
                    per_device[dev_id].absorb(&stats);
                    for (&i, outcome) in idx.iter().zip(outcomes) {
                        results[i] = Some(outcome.into_result());
                    }
                }
            }
        }

        let makespan_s = per_device.iter().map(|s| s.seconds).fold(0.0, f64::max);
        let total_device_s = per_device.iter().map(|s| s.seconds).sum();
        (
            results.into_iter().map(|r| r.unwrap_or_else(ExtResult::empty)).collect(),
            MultiGpuStats {
                per_device,
                makespan_s,
                total_device_s,
                lost_devices,
                redistributed_tasks,
                device_rates,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::extend_all_cpu;
    use crate::task::ContigEnd;
    use bioseq::{DnaSeq, Read};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_seq(len: usize, sd: u64) -> DnaSeq {
        let mut rng = StdRng::seed_from_u64(sd);
        (0..len).map(|_| bioseq::Base::from_code(rng.gen_range(0..4))).collect()
    }

    fn make_tasks(n: usize) -> Vec<ExtTask> {
        (0..n)
            .map(|i| {
                let genome = random_seq(400, 900 + i as u64);
                let reads = (0..6 + i % 9)
                    .map(|r| {
                        Read::with_uniform_qual(
                            format!("t{i}r{r}"),
                            genome.subseq(60 + (r * 17) % 180, 80),
                            35,
                        )
                    })
                    .collect();
                ExtTask { contig: i, end: ContigEnd::Right, tail: genome.subseq(0, 120), reads }
            })
            .collect()
    }

    #[test]
    fn multi_device_matches_cpu() {
        let tasks = make_tasks(30);
        let params = LocalAssemblyParams::for_tests();
        let cpu = extend_all_cpu(&tasks, &params);
        for n_dev in [1usize, 2, 6] {
            let multi = MultiGpuAssembler::new(
                DeviceConfig::v100(),
                params.clone(),
                KernelVersion::V2,
                n_dev,
            );
            let (results, stats) = multi.extend_tasks(&tasks);
            assert_eq!(results, cpu, "{n_dev} devices");
            assert_eq!(stats.per_device.len(), n_dev);
        }
    }

    #[test]
    fn makespan_improves_with_devices() {
        // A deliberately small device so 48 warps saturate it: splitting
        // across under-occupied V100s cannot beat the per-warp latency
        // floor (itself a faithful effect), so occupancy must be the
        // binding constraint for this test.
        let tasks = make_tasks(48);
        let params = LocalAssemblyParams::for_tests();
        let one =
            MultiGpuAssembler::new(DeviceConfig::tiny(), params.clone(), KernelVersion::V2, 1);
        let six =
            MultiGpuAssembler::new(DeviceConfig::tiny(), params.clone(), KernelVersion::V2, 6);
        let (_, s1) = one.extend_tasks(&tasks);
        let (_, s6) = six.extend_tasks(&tasks);
        assert!(
            s6.makespan_s < s1.makespan_s,
            "6 devices ({}) must beat 1 ({})",
            s6.makespan_s,
            s1.makespan_s
        );
        // But not perfectly: per-launch overheads replicate per device.
        assert!(s6.total_device_s >= s1.total_device_s * 0.5);
        assert!(s6.balance_efficiency() <= 1.0 + 1e-9);
    }

    #[test]
    fn strong_scaling_overhead_effect() {
        // Shrinking per-node work (strong scaling) erodes multi-GPU
        // efficiency — the Figure 13 mechanism at node level.
        let params = LocalAssemblyParams::for_tests();
        let eff = |n_tasks: usize| {
            let tasks = make_tasks(n_tasks);
            let multi =
                MultiGpuAssembler::new(DeviceConfig::v100(), params.clone(), KernelVersion::V2, 6);
            let (_, stats) = multi.extend_tasks(&tasks);
            // Overhead share: launch overheads over total simulated time.
            let overhead: f64 =
                stats.per_device.len() as f64 * DeviceConfig::v100().launch_overhead_us * 1e-6;
            // (per-device launch overhead is fixed; work shrinks with n_tasks)
            overhead / stats.total_device_s.max(1e-12)
        };
        assert!(eff(6) > eff(60), "overhead share must grow as per-node work shrinks");
    }

    #[test]
    fn faulty_device_tasks_redistributed() {
        use gpusim::{Fault, FaultPlan};
        let tasks = make_tasks(20);
        let params = LocalAssemblyParams::for_tests();
        let cpu = extend_all_cpu(&tasks, &params);
        // Device 0 hangs on every launch and exhausts its reset budget;
        // device 1 is healthy. The dispatcher must declare device 0 lost
        // and re-run its shard on device 1, with identical final output.
        let storm = FaultPlan {
            faults: (0..64)
                .map(|i| Fault::KernelHang { at_launch: i, after_cycles: 100 })
                .collect(),
        };
        let multi = MultiGpuAssembler::with_device_configs(
            vec![DeviceConfig::v100().with_fault_plan(storm), DeviceConfig::v100()],
            params,
            KernelVersion::V2,
        );
        let (results, stats) = multi.extend_tasks(&tasks);
        assert_eq!(results, cpu, "redistribution must not change results");
        assert_eq!(stats.lost_devices, 1);
        assert!(stats.redistributed_tasks > 0);
        assert_eq!(stats.per_device.len(), 2);
    }

    #[test]
    fn all_devices_lost_falls_back_to_cpu() {
        use gpusim::{Fault, FaultPlan};
        let tasks = make_tasks(12);
        let params = LocalAssemblyParams::for_tests();
        let cpu = extend_all_cpu(&tasks, &params);
        let storm = || FaultPlan {
            faults: (0..64)
                .map(|i| Fault::KernelHang { at_launch: i, after_cycles: 100 })
                .collect(),
        };
        let multi = MultiGpuAssembler::with_device_configs(
            vec![
                DeviceConfig::v100().with_fault_plan(storm()),
                DeviceConfig::v100().with_fault_plan(storm()),
            ],
            params,
            KernelVersion::V2,
        );
        let (results, stats) = multi.extend_tasks(&tasks);
        assert_eq!(results, cpu, "host CPU is the last rung of the ladder");
        assert_eq!(stats.lost_devices, 2);
        assert!(stats.redistributed_tasks > 0);
    }

    #[test]
    fn rate_aware_lpt_weights_loads_by_device_rate() {
        let tasks = make_tasks(40);
        let params = LocalAssemblyParams::for_tests();
        let multi =
            MultiGpuAssembler::new(DeviceConfig::tiny(), params.clone(), KernelVersion::V2, 2)
                .with_device_rates(vec![1.0, 0.5]);
        let all: Vec<usize> = (0..tasks.len()).collect();
        let shards = multi.stripe_indices(&all, &tasks, &[1.0, 0.5]);
        let words = |idx: &[usize]| {
            idx.iter().map(|&i| estimate_task_cost(&tasks[i], &params)).sum::<u64>() as f64
        };
        let ratio = words(&shards[0]) / words(&shards[1]);
        assert!((ratio - 2.0).abs() < 0.3, "2:1 rates must yield ~2:1 word shares, got {ratio:.2}");
        // Heterogeneous rates are a scheduling knob only: results must stay
        // byte-identical to the CPU reference.
        let (results, stats) = multi.extend_tasks(&tasks);
        assert_eq!(results, extend_all_cpu(&tasks, &params));
        assert_eq!(stats.device_rates.len(), 2);
    }

    #[test]
    fn equal_rates_reduce_to_plain_lpt() {
        let tasks = make_tasks(30);
        let params = LocalAssemblyParams::for_tests();
        let multi =
            MultiGpuAssembler::new(DeviceConfig::tiny(), params.clone(), KernelVersion::V2, 3);
        let all: Vec<usize> = (0..tasks.len()).collect();
        // The pre-rate LPT is the rates=[1,1,1] special case; loads must be
        // near-even either way.
        let shards = multi.stripe_indices(&all, &tasks, &[1.0, 1.0, 1.0]);
        let loads: Vec<u64> = shards
            .iter()
            .map(|idx| idx.iter().map(|&i| estimate_task_cost(&tasks[i], &params)).sum())
            .collect();
        let (lo, hi) = (*loads.iter().min().unwrap(), *loads.iter().max().unwrap());
        assert!(lo as f64 > 0.85 * hi as f64, "uniform rates must balance: {loads:?}");
    }

    #[test]
    fn round1_learns_comparable_rates_on_homogeneous_fleet() {
        let tasks = make_tasks(36);
        let params = LocalAssemblyParams::for_tests();
        let multi = MultiGpuAssembler::new(DeviceConfig::tiny(), params, KernelVersion::V2, 2);
        let (_, stats) = multi.extend_tasks(&tasks);
        assert_eq!(stats.device_rates.len(), 2);
        assert!(
            stats.device_rates.iter().all(|r| r.is_finite() && *r > 0.0),
            "learned rates positive: {:?}",
            stats.device_rates
        );
        let (lo, hi) = (
            stats.device_rates[0].min(stats.device_rates[1]),
            stats.device_rates[0].max(stats.device_rates[1]),
        );
        assert!(
            lo > 0.5 * hi,
            "identical devices must learn comparable rates, got {:?}",
            stats.device_rates
        );
    }

    #[test]
    fn empty_task_list() {
        let params = LocalAssemblyParams::for_tests();
        let multi = MultiGpuAssembler::new(DeviceConfig::v100(), params, KernelVersion::V2, 4);
        let (results, stats) = multi.extend_tasks(&[]);
        assert!(results.is_empty());
        assert_eq!(stats.makespan_s, 0.0);
        assert_eq!(stats.balance_efficiency(), 1.0);
    }
}
