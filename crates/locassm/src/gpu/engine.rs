//! Batching, launching, and result unpacking — the paper's driver function
//! (§4.3) around the extension kernels.
//!
//! Tasks with zero candidate reads (bin 1) are answered host-side without
//! touching the device. Remaining tasks are packed into batches sized
//! against a device-memory budget (the "Estimate table sizes → Create
//! batches" boxes of Figure 4) and launched one batch per kernel.

use crate::binning::bin_tasks;
use crate::gpu::kernel::{extension_kernel_v2, KernelVersion};
use crate::gpu::kernel_v1::extension_kernel_v1;
use crate::gpu::layout;
use crate::gpu::pack::{estimate_task_words, pack_batch};
use crate::params::{LocalAssemblyParams, WalkState};
use crate::task::{ExtResult, ExtTask};
use bioseq::DnaSeq;
use gpusim::{Counters, Device, DeviceConfig, RooflineReport};

/// Execution statistics for a GPU local-assembly run.
#[derive(Debug, Clone)]
pub struct GpuRunStats {
    /// Kernel launches performed.
    pub launches: u64,
    /// Batches built (== launches).
    pub batches: u64,
    /// Tasks executed on the device (bins 2+3).
    pub device_tasks: usize,
    /// Tasks answered host-side (bin 1).
    pub zero_tasks: usize,
    /// Aggregate device counters.
    pub counters: Counters,
    /// Simulated device seconds (kernels + launch overheads).
    pub seconds: f64,
    /// Peak device words used by any batch.
    pub peak_mem_words: u64,
}

impl GpuRunStats {
    /// Roofline characterization of the run.
    pub fn roofline(&self, name: &str, cfg: &DeviceConfig) -> RooflineReport {
        RooflineReport::from_counters(name, cfg, &self.counters, self.seconds)
    }
}

/// The GPU local-assembly engine.
pub struct GpuLocalAssembler {
    device: Device,
    params: LocalAssemblyParams,
    version: KernelVersion,
    /// Fraction of device memory a batch may use.
    mem_budget_frac: f64,
}

impl GpuLocalAssembler {
    /// New engine on a device with the given configuration.
    pub fn new(
        config: DeviceConfig,
        params: LocalAssemblyParams,
        version: KernelVersion,
    ) -> GpuLocalAssembler {
        GpuLocalAssembler {
            device: Device::new(config),
            params,
            version,
            mem_budget_frac: 0.8,
        }
    }

    /// The parameters in force.
    pub fn params(&self) -> &LocalAssemblyParams {
        &self.params
    }

    /// Access the underlying simulated device (counters, config).
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Extend every task; results are index-aligned with `tasks`.
    ///
    /// Scheduling follows the paper: bin 1 is answered immediately; bin 3
    /// (large tasks) is offloaded first, then bin 2 — so the earliest
    /// launches carry the most work, maximizing CPU/GPU overlap for the
    /// caller.
    pub fn extend_tasks(&mut self, tasks: &[ExtTask]) -> (Vec<ExtResult>, GpuRunStats) {
        let bins = bin_tasks(tasks);
        let mut results: Vec<Option<ExtResult>> = vec![None; tasks.len()];
        for &i in &bins.zero {
            results[i] = Some(ExtResult::empty());
        }

        let mut stats = GpuRunStats {
            launches: 0,
            batches: 0,
            device_tasks: 0,
            zero_tasks: bins.zero.len(),
            counters: Counters::new(),
            seconds: 0.0,
            peak_mem_words: 0,
        };

        // Bin 3 first, then bin 2.
        let order: Vec<usize> = bins.large.iter().chain(bins.small.iter()).copied().collect();
        let budget =
            (self.device.config().capacity_words() as f64 * self.mem_budget_frac) as u64;

        let mut batch_idx: Vec<usize> = Vec::new();
        let mut batch_words: u64 = 0;
        let flush = |engine: &mut GpuLocalAssembler,
                         batch_idx: &mut Vec<usize>,
                         batch_words: &mut u64,
                         results: &mut Vec<Option<ExtResult>>,
                         stats: &mut GpuRunStats| {
            if batch_idx.is_empty() {
                return;
            }
            let batch_tasks: Vec<&ExtTask> = batch_idx.iter().map(|&i| &tasks[i]).collect();
            let outs = engine.run_batch(&batch_tasks, stats);
            for (&i, out) in batch_idx.iter().zip(outs) {
                results[i] = Some(out);
            }
            batch_idx.clear();
            *batch_words = 0;
        };

        for &i in &order {
            let w = estimate_task_words(&tasks[i], &self.params);
            assert!(
                w <= budget,
                "single task ({w} words) exceeds device budget ({budget} words)"
            );
            if batch_words + w > budget {
                flush(self, &mut batch_idx, &mut batch_words, &mut results, &mut stats);
            }
            batch_idx.push(i);
            batch_words += w;
        }
        flush(self, &mut batch_idx, &mut batch_words, &mut results, &mut stats);

        stats.device_tasks = order.len();
        (
            results.into_iter().map(|r| r.expect("all tasks resolved")).collect(),
            stats,
        )
    }

    /// Pack, launch, and unpack one batch.
    fn run_batch(&mut self, batch_tasks: &[&ExtTask], stats: &mut GpuRunStats) -> Vec<ExtResult> {
        self.device.reset_mem();
        let batch = pack_batch(&mut self.device, batch_tasks, &self.params);
        stats.peak_mem_words = stats.peak_mem_words.max(self.device.mem_used_words());
        let params = self.params.clone();
        let launch = match self.version {
            KernelVersion::V2 => self.device.launch(batch.n_exts, batch.window, |ctx| {
                extension_kernel_v2(ctx, &batch, &params);
            }),
            KernelVersion::V1 => {
                // One extension per lane: 32 extensions per warp.
                let warps = batch.n_exts.div_ceil(gpusim::WARP);
                self.device.launch(warps, batch.window, |ctx| {
                    extension_kernel_v1(ctx, &batch, &params, batch.n_exts);
                })
            }
        };
        stats.launches += 1;
        stats.batches += 1;
        stats.counters.merge(&launch.counters);
        stats.seconds += launch.timing.total_seconds();

        // Unpack output records.
        let mut out = Vec::with_capacity(batch.n_exts);
        for e in 0..batch.n_exts as u64 {
            let rec = self
                .device
                .d2h(batch.out, e * batch.out_stride, batch.out_stride);
            let n_app = rec[0] as usize;
            let (state, iterations) = layout::decode_out_header(rec[1]);
            let mut appended = DnaSeq::with_capacity(n_app);
            for i in 0..n_app {
                let word = rec[2 + i / 32];
                appended.push_code(((word >> (2 * (i % 32))) & 3) as u8);
            }
            out.push(ExtResult {
                appended,
                final_state: WalkState::from_u64(state),
                iterations,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::extend_all_cpu;
    use crate::task::ContigEnd;
    use bioseq::Read;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_seq(len: usize, sd: u64) -> DnaSeq {
        let mut rng = StdRng::seed_from_u64(sd);
        (0..len)
            .map(|_| bioseq::Base::from_code(rng.gen_range(0..4)))
            .collect()
    }

    fn tiling_reads(genome: &DnaSeq, from: usize, read_len: usize, stride: usize) -> Vec<Read> {
        let mut reads = Vec::new();
        let mut pos = from;
        while pos + read_len <= genome.len() {
            for copy in 0..2 {
                reads.push(Read::with_uniform_qual(
                    format!("r{pos}c{copy}"),
                    genome.subseq(pos, read_len),
                    35,
                ));
            }
            pos += stride;
        }
        reads
    }

    fn make_test_tasks(n: usize) -> Vec<ExtTask> {
        let mut tasks = Vec::new();
        for i in 0..n {
            let genome = random_seq(400, 100 + i as u64);
            let reads = if i % 4 == 3 {
                vec![] // sprinkle zero-read (bin 1) tasks
            } else {
                tiling_reads(&genome, 80, 60, 3)
            };
            tasks.push(ExtTask {
                contig: i,
                end: ContigEnd::Right,
                tail: genome.subseq(0, 150),
                reads,
            });
        }
        tasks
    }

    fn engine(version: KernelVersion) -> GpuLocalAssembler {
        GpuLocalAssembler::new(
            DeviceConfig::v100(),
            LocalAssemblyParams::for_tests(),
            version,
        )
    }

    #[test]
    fn gpu_v2_matches_cpu() {
        let tasks = make_test_tasks(8);
        let params = LocalAssemblyParams::for_tests();
        let cpu = extend_all_cpu(&tasks, &params);
        let (gpu, stats) = engine(KernelVersion::V2).extend_tasks(&tasks);
        assert_eq!(cpu.len(), gpu.len());
        for (i, (c, g)) in cpu.iter().zip(&gpu).enumerate() {
            assert_eq!(c, g, "task {i} diverged between CPU and GPU");
        }
        assert!(stats.launches >= 1);
        assert!(stats.counters.warp_insts() > 0);
        // Extensions actually happened.
        assert!(gpu.iter().any(|r| !r.appended.is_empty()));
    }

    #[test]
    fn gpu_v1_matches_cpu() {
        let tasks = make_test_tasks(5);
        let params = LocalAssemblyParams::for_tests();
        let cpu = extend_all_cpu(&tasks, &params);
        let (gpu, _) = engine(KernelVersion::V1).extend_tasks(&tasks);
        assert_eq!(cpu, gpu);
    }

    #[test]
    fn v2_uses_fewer_load_instructions_than_v1() {
        let tasks = make_test_tasks(4);
        let (_, s1) = engine(KernelVersion::V1).extend_tasks(&tasks);
        let (_, s2) = engine(KernelVersion::V2).extend_tasks(&tasks);
        assert!(
            s2.counters.ldst_global_inst < s1.counters.ldst_global_inst,
            "v2 ({}) must issue fewer global ld/st than v1 ({})",
            s2.counters.ldst_global_inst,
            s1.counters.ldst_global_inst
        );
        // And the work performed must be identical.
        assert_eq!(s1.zero_tasks, s2.zero_tasks);
    }

    #[test]
    fn zero_read_tasks_skip_device() {
        let tasks: Vec<ExtTask> = (0..3)
            .map(|i| ExtTask {
                contig: i,
                end: ContigEnd::Right,
                tail: random_seq(100, i as u64),
                reads: vec![],
            })
            .collect();
        let (results, stats) = engine(KernelVersion::V2).extend_tasks(&tasks);
        assert!(results.iter().all(|r| r.appended.is_empty()));
        assert_eq!(stats.zero_tasks, 3);
        assert_eq!(stats.device_tasks, 0);
        assert_eq!(stats.launches, 0);
    }

    #[test]
    fn batching_under_tight_memory() {
        let tasks = make_test_tasks(8);
        let mut eng = engine(KernelVersion::V2);
        // Force tiny batches.
        eng.mem_budget_frac = 0.0001; // ~214k words: one task fits, eight don't
        let (gpu, stats) = eng.extend_tasks(&tasks);
        assert!(stats.batches > 1, "expected multiple batches, got {}", stats.batches);
        let params = LocalAssemblyParams::for_tests();
        let cpu = extend_all_cpu(&tasks, &params);
        assert_eq!(cpu, gpu, "batch splitting must not change results");
    }

    #[test]
    fn roofline_report_is_populated() {
        let tasks = make_test_tasks(4);
        let mut eng = engine(KernelVersion::V2);
        let (_, stats) = eng.extend_tasks(&tasks);
        let report = stats.roofline("v2", eng.device().config());
        assert!(report.gips > 0.0);
        assert!(report.intensity_l1 > 0.0);
        assert!(report.predication_ratio > 0.0, "walk phase must predicate");
    }
}
