//! Batching, launching, and result unpacking — the paper's driver function
//! (§4.3) around the extension kernels.
//!
//! Tasks with zero candidate reads (bin 1) are answered host-side without
//! touching the device. Remaining tasks are packed into batches sized
//! against a device-memory budget (the "Estimate table sizes → Create
//! batches" boxes of Figure 4) and launched one batch per kernel.

use crate::binning::bin_tasks_refs;
use crate::cpu::extend_end_cpu;
use crate::gpu::kernel::{extension_kernel_v2, KernelVersion};
use crate::gpu::kernel_v1::extension_kernel_v1;
use crate::gpu::layout;
use crate::gpu::pack::{estimate_task_words, pack_batch};
use crate::params::{LocalAssemblyParams, WalkState};
use crate::task::{panic_reason, ExtResult, ExtTask, TaskOutcome};
use bioseq::DnaSeq;
use gpusim::{
    Counters, Device, DeviceConfig, DeviceOom, LaunchError, RooflineReport, SanitizerSummary,
};

/// Knobs of the recovery ladder (inject → retry → shrink → reset+backoff →
/// CPU fallback → skip).
#[derive(Debug, Clone)]
pub struct RecoveryPolicy {
    /// Device attempts per batch of work; each failed attempt halves the
    /// batch (or retries a singleton) until the budget runs out.
    pub max_batch_attempts: u32,
    /// Device resets tolerated before the device is declared lost for the
    /// rest of the run.
    pub max_device_resets: u64,
    /// After the ladder's device rungs are exhausted, run the affected
    /// tasks on the CPU reference engine (`true`) or report them as
    /// [`TaskOutcome::Failed`] so the caller can reschedule them (`false`,
    /// what the multi-GPU dispatcher uses).
    pub cpu_fallback: bool,
    /// Simulated wait before the first device reset; doubles per reset.
    pub backoff_base_s: f64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_batch_attempts: 3,
            max_device_resets: 3,
            cpu_fallback: true,
            backoff_base_s: 1e-3,
        }
    }
}

/// What the recovery ladder had to do during a run. All-zero on a healthy
/// device.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryStats {
    /// Singleton batches retried on the device after a failure.
    pub launch_retries: u64,
    /// Batches halved after a failure.
    pub batch_splits: u64,
    /// Device resets performed (each follows a fatal launch error).
    pub device_resets: u64,
    /// Simulated backoff seconds spent waiting before resets.
    pub backoff_s: f64,
    /// Tasks completed by the CPU fallback after the device gave up.
    pub cpu_fallback_tasks: usize,
    /// Tasks that failed everywhere and were skipped.
    pub failed_tasks: usize,
    /// The device exhausted its reset budget and was abandoned.
    pub device_lost: bool,
}

impl RecoveryStats {
    /// True if any rung of the ladder was exercised.
    pub fn any_recovery(&self) -> bool {
        *self != RecoveryStats::default()
    }

    /// Fold another run's recovery bookkeeping into this one.
    pub fn absorb(&mut self, other: &RecoveryStats) {
        self.launch_retries += other.launch_retries;
        self.batch_splits += other.batch_splits;
        self.device_resets += other.device_resets;
        self.backoff_s += other.backoff_s;
        self.cpu_fallback_tasks += other.cpu_fallback_tasks;
        self.failed_tasks += other.failed_tasks;
        self.device_lost |= other.device_lost;
    }
}

/// Execution statistics for a GPU local-assembly run.
#[derive(Debug, Clone)]
pub struct GpuRunStats {
    /// Kernel launches completed successfully.
    pub launches: u64,
    /// Batches completed (== launches).
    pub batches: u64,
    /// Tasks executed on the device (bins 2+3).
    pub device_tasks: usize,
    /// Tasks answered host-side (bin 1).
    pub zero_tasks: usize,
    /// Aggregate device counters.
    pub counters: Counters,
    /// Simulated device seconds (kernels + launch overheads).
    pub seconds: f64,
    /// Modeled host seconds spent packing batches (CPU-side data packing +
    /// H2D of Figure 4, charged at the engine's modeled pack rate).
    pub pack_s: f64,
    /// Seconds of `pack_s` hidden under kernel execution by the
    /// double-buffered pipeline (pack batch N+1 while batch N executes).
    pub overlap_saved_s: f64,
    /// Peak device words used by any batch.
    pub peak_mem_words: u64,
    /// Recovery-ladder bookkeeping.
    pub recovery: RecoveryStats,
    /// `gpucheck` findings drained from the device (empty and disabled
    /// unless the device was configured with a sanitizer).
    pub sanitizer: SanitizerSummary,
}

impl Default for GpuRunStats {
    fn default() -> GpuRunStats {
        GpuRunStats::empty()
    }
}

impl GpuRunStats {
    fn empty() -> GpuRunStats {
        GpuRunStats {
            launches: 0,
            batches: 0,
            device_tasks: 0,
            zero_tasks: 0,
            counters: Counters::new(),
            seconds: 0.0,
            pack_s: 0.0,
            overlap_saved_s: 0.0,
            peak_mem_words: 0,
            recovery: RecoveryStats::default(),
            sanitizer: SanitizerSummary::default(),
        }
    }

    /// End-to-end device-pipeline wall seconds: simulated kernel time plus
    /// modeled pack time, minus what double-buffering hid.
    pub fn wall_s(&self) -> f64 {
        self.seconds + self.pack_s - self.overlap_saved_s
    }

    /// Roofline characterization of the run.
    pub fn roofline(&self, name: &str, cfg: &DeviceConfig) -> RooflineReport {
        RooflineReport::from_counters(name, cfg, &self.counters, self.seconds)
    }

    /// Fold another run's statistics into this one (multi-round dispatch).
    pub fn absorb(&mut self, other: &GpuRunStats) {
        self.launches += other.launches;
        self.batches += other.batches;
        self.device_tasks += other.device_tasks;
        self.zero_tasks += other.zero_tasks;
        self.counters.merge(&other.counters);
        self.seconds += other.seconds;
        self.pack_s += other.pack_s;
        self.overlap_saved_s += other.overlap_saved_s;
        self.peak_mem_words = self.peak_mem_words.max(other.peak_mem_words);
        self.recovery.absorb(&other.recovery);
        self.sanitizer.absorb(&other.sanitizer);
    }
}

/// Why one device attempt at a batch failed (internal to the ladder).
enum BatchError {
    /// Packing ran out of device memory (real or injected).
    Oom(DeviceOom),
    /// The kernel launch failed; the device context is poisoned.
    Launch(LaunchError),
    /// Output records failed validation (device-memory corruption).
    Corrupt(&'static str),
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchError::Oom(e) => write!(f, "{e}"),
            BatchError::Launch(e) => write!(f, "{e}"),
            BatchError::Corrupt(what) => write!(f, "corrupt output: {what}"),
        }
    }
}

/// Modeled host-side packing throughput (device words per second): ~2 GB/s
/// of 8-byte words, the PCIe-generation order of magnitude the paper's
/// driver hides behind kernel execution.
pub const DEFAULT_PACK_WORDS_PER_S: f64 = 2.5e8;

/// The GPU local-assembly engine.
pub struct GpuLocalAssembler {
    device: Device,
    params: LocalAssemblyParams,
    version: KernelVersion,
    /// Fraction of device memory a batch may use.
    mem_budget_frac: f64,
    policy: RecoveryPolicy,
    /// Set when the device exhausted its reset budget; all remaining work
    /// skips the device rungs of the ladder.
    device_dead: bool,
    /// Double-buffer host packing against kernel execution.
    double_buffer: bool,
    /// Modeled packing throughput in device words per second.
    pack_words_per_s: f64,
    /// Kernel seconds of the most recent launch still "in flight" for the
    /// double-buffer model: the next batch's pack can hide under it.
    pending_exec_s: f64,
}

impl GpuLocalAssembler {
    /// New engine on a device with the given configuration.
    pub fn new(
        config: DeviceConfig,
        params: LocalAssemblyParams,
        version: KernelVersion,
    ) -> GpuLocalAssembler {
        GpuLocalAssembler {
            device: Device::new(config),
            params,
            version,
            mem_budget_frac: 0.8,
            policy: RecoveryPolicy::default(),
            device_dead: false,
            double_buffer: true,
            pack_words_per_s: DEFAULT_PACK_WORDS_PER_S,
            pending_exec_s: 0.0,
        }
    }

    /// Override the recovery policy (builder style).
    pub fn with_recovery_policy(mut self, policy: RecoveryPolicy) -> GpuLocalAssembler {
        self.policy = policy;
        self
    }

    /// Enable/disable the double-buffered pack/exec pipeline (builder
    /// style). Off, every batch pays `pack + exec` serially.
    pub fn with_double_buffer(mut self, on: bool) -> GpuLocalAssembler {
        self.double_buffer = on;
        self
    }

    /// The parameters in force.
    pub fn params(&self) -> &LocalAssemblyParams {
        &self.params
    }

    /// Access the underlying simulated device (counters, config).
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Extend every task; results are index-aligned with `tasks`. Failed
    /// tasks (possible only with `cpu_fallback: false`, or when the CPU
    /// fallback itself panics) collapse to empty results.
    ///
    /// Scheduling follows the paper: bin 1 is answered immediately; bin 3
    /// (large tasks) is offloaded first, then bin 2 — so the earliest
    /// launches carry the most work, maximizing CPU/GPU overlap for the
    /// caller.
    pub fn extend_tasks(&mut self, tasks: &[ExtTask]) -> (Vec<ExtResult>, GpuRunStats) {
        let (outcomes, stats) = self.extend_tasks_outcomes(tasks);
        (outcomes.into_iter().map(TaskOutcome::into_result).collect(), stats)
    }

    /// Extend every task, reporting per-task outcomes. Device failures walk
    /// the recovery ladder; a task is [`TaskOutcome::Failed`] only once
    /// every rung is exhausted.
    pub fn extend_tasks_outcomes(&mut self, tasks: &[ExtTask]) -> (Vec<TaskOutcome>, GpuRunStats) {
        let refs: Vec<&ExtTask> = tasks.iter().collect();
        self.extend_tasks_outcomes_ref(&refs)
    }

    /// [`GpuLocalAssembler::extend_tasks_outcomes`] over borrowed tasks, so
    /// schedulers can hand out shares by index without deep-cloning task
    /// data (reads included) per engine.
    pub fn extend_tasks_outcomes_ref(
        &mut self,
        tasks: &[&ExtTask],
    ) -> (Vec<TaskOutcome>, GpuRunStats) {
        let bins = bin_tasks_refs(tasks);
        let mut results: Vec<Option<TaskOutcome>> = vec![None; tasks.len()];
        for &i in &bins.zero {
            results[i] = Some(TaskOutcome::Done(ExtResult::empty()));
        }

        let mut stats = GpuRunStats::empty();
        stats.zero_tasks = bins.zero.len();

        // Bin 3 first, then bin 2.
        let order: Vec<usize> = bins.large.iter().chain(bins.small.iter()).copied().collect();
        let budget = (self.device.config().capacity_words() as f64 * self.mem_budget_frac) as u64;

        // Greedy batching under the memory budget. A single task too large
        // for the whole device skips the device entirely (degrade, don't
        // abort).
        let mut batches: Vec<Vec<usize>> = Vec::new();
        let mut oversized: Vec<usize> = Vec::new();
        let mut cur: Vec<usize> = Vec::new();
        let mut cur_words: u64 = 0;
        for &i in &order {
            let w = estimate_task_words(tasks[i], &self.params);
            if w > budget {
                oversized.push(i);
                continue;
            }
            if cur_words + w > budget && !cur.is_empty() {
                batches.push(std::mem::take(&mut cur));
                cur_words = 0;
            }
            cur.push(i);
            cur_words += w;
        }
        if !cur.is_empty() {
            batches.push(cur);
        }

        stats.device_tasks = order.len() - oversized.len();
        for batch in &batches {
            self.run_batch_recovering(
                tasks,
                batch,
                &mut results,
                &mut stats,
                self.policy.max_batch_attempts,
            );
        }
        for &i in &oversized {
            let outcome = self.off_device(tasks[i], "task exceeds device memory", &mut stats);
            results[i] = Some(outcome);
        }

        let outcomes = results
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                r.unwrap_or(TaskOutcome::Failed {
                    contig: tasks[i].contig,
                    reason: "task was never scheduled".to_string(),
                })
            })
            .collect();
        (outcomes, stats)
    }

    /// Run one batch through the ladder: try the device; on failure recover
    /// the device (reset + backoff), then halve the batch (or retry a
    /// singleton) while attempts remain; past that, hand the tasks to
    /// [`GpuLocalAssembler::off_device`].
    fn run_batch_recovering(
        &mut self,
        tasks: &[&ExtTask],
        idx: &[usize],
        results: &mut [Option<TaskOutcome>],
        stats: &mut GpuRunStats,
        attempts_left: u32,
    ) {
        if idx.is_empty() {
            return;
        }
        if self.device_dead {
            for &i in idx {
                results[i] = Some(self.off_device(tasks[i], "device lost", stats));
            }
            return;
        }
        let batch_tasks: Vec<&ExtTask> = idx.iter().map(|&i| tasks[i]).collect();
        match self.try_batch(&batch_tasks, stats) {
            Ok(outs) => {
                for (&i, out) in idx.iter().zip(outs) {
                    results[i] = Some(TaskOutcome::Done(out));
                }
            }
            Err(_err) => {
                self.recover_device(stats);
                if attempts_left > 1 && !self.device_dead {
                    if idx.len() > 1 {
                        // Shrink: half the batch means half the slab on the
                        // next pack.
                        stats.recovery.batch_splits += 1;
                        let mid = idx.len() / 2;
                        self.run_batch_recovering(
                            tasks,
                            &idx[..mid],
                            results,
                            stats,
                            attempts_left - 1,
                        );
                        self.run_batch_recovering(
                            tasks,
                            &idx[mid..],
                            results,
                            stats,
                            attempts_left - 1,
                        );
                    } else {
                        stats.recovery.launch_retries += 1;
                        self.run_batch_recovering(tasks, idx, results, stats, attempts_left - 1);
                    }
                } else {
                    for &i in idx {
                        results[i] =
                            Some(self.off_device(tasks[i], "device attempts exhausted", stats));
                    }
                }
            }
        }
    }

    /// If the last failure poisoned the device, reset it after a simulated
    /// exponential backoff; declare the device lost past the reset budget.
    fn recover_device(&mut self, stats: &mut GpuRunStats) {
        if !self.device.is_poisoned() {
            return; // e.g. an OOM: the device is still usable as-is
        }
        if self.device.resets() >= self.policy.max_device_resets {
            self.device_dead = true;
            stats.recovery.device_lost = true;
            return;
        }
        let backoff = self.policy.backoff_base_s * f64::powi(2.0, self.device.resets() as i32);
        stats.recovery.backoff_s += backoff;
        self.device.reset_device();
        // A reset drains the device queue: nothing is in flight for the
        // next pack to hide under.
        self.pending_exec_s = 0.0;
        stats.recovery.device_resets += 1;
    }

    /// Last rungs of the ladder for one task: the CPU reference engine
    /// (panic-isolated — a panicking task is skipped, never aborts the
    /// bin), or an explicit failure if the policy forbids CPU fallback.
    fn off_device(&self, task: &ExtTask, why: &str, stats: &mut GpuRunStats) -> TaskOutcome {
        if !self.policy.cpu_fallback {
            stats.recovery.failed_tasks += 1;
            return TaskOutcome::Failed { contig: task.contig, reason: why.to_string() };
        }
        let params = &self.params;
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            extend_end_cpu(task, params)
        })) {
            Ok(r) => {
                stats.recovery.cpu_fallback_tasks += 1;
                TaskOutcome::Done(r)
            }
            Err(payload) => {
                stats.recovery.failed_tasks += 1;
                TaskOutcome::Failed {
                    contig: task.contig,
                    reason: format!("{why}; CPU fallback panicked: {}", panic_reason(payload)),
                }
            }
        }
    }

    /// One device attempt: pack, launch, and unpack one batch.
    fn try_batch(
        &mut self,
        batch_tasks: &[&ExtTask],
        stats: &mut GpuRunStats,
    ) -> Result<Vec<ExtResult>, BatchError> {
        self.device.reset_mem();
        let batch =
            pack_batch(&mut self.device, batch_tasks, &self.params).map_err(BatchError::Oom)?;
        stats.peak_mem_words = stats.peak_mem_words.max(self.device.mem_used_words());
        let params = self.params.clone();
        let launch = match self.version {
            KernelVersion::V2 => self.device.launch(batch.n_exts, batch.window, |ctx| {
                extension_kernel_v2(ctx, &batch, &params);
            }),
            KernelVersion::V1 => {
                // One extension per lane: 32 extensions per warp.
                let warps = batch.n_exts.div_ceil(gpusim::WARP);
                self.device.launch(warps, batch.window, |ctx| {
                    extension_kernel_v1(ctx, &batch, &params, batch.n_exts);
                })
            }
        }
        .map_err(BatchError::Launch)?;
        stats.launches += 1;
        stats.batches += 1;
        stats.counters.merge(&launch.counters);
        let exec_s = launch.timing.total_seconds();
        stats.seconds += exec_s;
        // Double-buffer model: this batch was packed on the host while the
        // previous batch's kernel was still executing, so up to
        // `pending_exec_s` of the pack cost is hidden.
        let pack_s = self.device.mem_used_words() as f64 / self.pack_words_per_s;
        stats.pack_s += pack_s;
        if self.double_buffer {
            stats.overlap_saved_s += pack_s.min(self.pending_exec_s);
            self.pending_exec_s = exec_s;
        }
        if let Some(s) = self.device.take_sanitizer_summary() {
            stats.sanitizer.absorb(&s);
        }

        // Unpack output records, validating against corruption.
        let mut out = Vec::with_capacity(batch.n_exts);
        for e in 0..batch.n_exts as u64 {
            let rec = self.device.d2h(batch.out, e * batch.out_stride, batch.out_stride);
            let n_app = rec[0] as usize;
            if 2 + n_app.div_ceil(32) > rec.len() {
                return Err(BatchError::Corrupt("appended length exceeds record"));
            }
            let (state, iterations) = layout::decode_out_header(rec[1]);
            let final_state =
                WalkState::from_u64(state).ok_or(BatchError::Corrupt("invalid walk state"))?;
            let mut appended = DnaSeq::with_capacity(n_app);
            for i in 0..n_app {
                let word = rec[2 + i / 32];
                appended.push_code(((word >> (2 * (i % 32))) & 3) as u8);
            }
            out.push(ExtResult { appended, final_state, iterations });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::extend_all_cpu;
    use crate::task::ContigEnd;
    use bioseq::Read;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_seq(len: usize, sd: u64) -> DnaSeq {
        let mut rng = StdRng::seed_from_u64(sd);
        (0..len).map(|_| bioseq::Base::from_code(rng.gen_range(0..4))).collect()
    }

    fn tiling_reads(genome: &DnaSeq, from: usize, read_len: usize, stride: usize) -> Vec<Read> {
        let mut reads = Vec::new();
        let mut pos = from;
        while pos + read_len <= genome.len() {
            for copy in 0..2 {
                reads.push(Read::with_uniform_qual(
                    format!("r{pos}c{copy}"),
                    genome.subseq(pos, read_len),
                    35,
                ));
            }
            pos += stride;
        }
        reads
    }

    fn make_test_tasks(n: usize) -> Vec<ExtTask> {
        let mut tasks = Vec::new();
        for i in 0..n {
            let genome = random_seq(400, 100 + i as u64);
            let reads = if i % 4 == 3 {
                vec![] // sprinkle zero-read (bin 1) tasks
            } else {
                tiling_reads(&genome, 80, 60, 3)
            };
            tasks.push(ExtTask {
                contig: i,
                end: ContigEnd::Right,
                tail: genome.subseq(0, 150),
                reads,
            });
        }
        tasks
    }

    fn engine(version: KernelVersion) -> GpuLocalAssembler {
        GpuLocalAssembler::new(DeviceConfig::v100(), LocalAssemblyParams::for_tests(), version)
    }

    #[test]
    fn gpu_v2_matches_cpu() {
        let tasks = make_test_tasks(8);
        let params = LocalAssemblyParams::for_tests();
        let cpu = extend_all_cpu(&tasks, &params);
        let (gpu, stats) = engine(KernelVersion::V2).extend_tasks(&tasks);
        assert_eq!(cpu.len(), gpu.len());
        for (i, (c, g)) in cpu.iter().zip(&gpu).enumerate() {
            assert_eq!(c, g, "task {i} diverged between CPU and GPU");
        }
        assert!(stats.launches >= 1);
        assert!(stats.counters.warp_insts() > 0);
        // Extensions actually happened.
        assert!(gpu.iter().any(|r| !r.appended.is_empty()));
    }

    #[test]
    fn gpu_v1_matches_cpu() {
        let tasks = make_test_tasks(5);
        let params = LocalAssemblyParams::for_tests();
        let cpu = extend_all_cpu(&tasks, &params);
        let (gpu, _) = engine(KernelVersion::V1).extend_tasks(&tasks);
        assert_eq!(cpu, gpu);
    }

    #[test]
    fn v2_uses_fewer_load_instructions_than_v1() {
        let tasks = make_test_tasks(4);
        let (_, s1) = engine(KernelVersion::V1).extend_tasks(&tasks);
        let (_, s2) = engine(KernelVersion::V2).extend_tasks(&tasks);
        assert!(
            s2.counters.ldst_global_inst < s1.counters.ldst_global_inst,
            "v2 ({}) must issue fewer global ld/st than v1 ({})",
            s2.counters.ldst_global_inst,
            s1.counters.ldst_global_inst
        );
        // And the work performed must be identical.
        assert_eq!(s1.zero_tasks, s2.zero_tasks);
    }

    #[test]
    fn zero_read_tasks_skip_device() {
        let tasks: Vec<ExtTask> = (0..3)
            .map(|i| ExtTask {
                contig: i,
                end: ContigEnd::Right,
                tail: random_seq(100, i as u64),
                reads: vec![],
            })
            .collect();
        let (results, stats) = engine(KernelVersion::V2).extend_tasks(&tasks);
        assert!(results.iter().all(|r| r.appended.is_empty()));
        assert_eq!(stats.zero_tasks, 3);
        assert_eq!(stats.device_tasks, 0);
        assert_eq!(stats.launches, 0);
    }

    #[test]
    fn batching_under_tight_memory() {
        let tasks = make_test_tasks(8);
        let mut eng = engine(KernelVersion::V2);
        // Force tiny batches.
        eng.mem_budget_frac = 0.0001; // ~214k words: one task fits, eight don't
        let (gpu, stats) = eng.extend_tasks(&tasks);
        assert!(stats.batches > 1, "expected multiple batches, got {}", stats.batches);
        let params = LocalAssemblyParams::for_tests();
        let cpu = extend_all_cpu(&tasks, &params);
        assert_eq!(cpu, gpu, "batch splitting must not change results");
    }

    fn faulty_engine(plan: gpusim::FaultPlan) -> GpuLocalAssembler {
        GpuLocalAssembler::new(
            DeviceConfig::v100().with_fault_plan(plan),
            LocalAssemblyParams::for_tests(),
            KernelVersion::V2,
        )
    }

    #[test]
    fn injected_slab_oom_recovers_identically() {
        use gpusim::{Fault, FaultPlan};
        let tasks = make_test_tasks(8);
        let params = LocalAssemblyParams::for_tests();
        let cpu = extend_all_cpu(&tasks, &params);
        // The very first allocation is denied: the ladder must shrink the
        // batch (or retry) and still produce identical extensions.
        let mut eng = faulty_engine(FaultPlan::single(Fault::SlabOom { at_alloc: 0 }));
        let (gpu, stats) = eng.extend_tasks(&tasks);
        assert_eq!(cpu, gpu, "recovery must not change results");
        assert!(
            stats.recovery.batch_splits >= 1 || stats.recovery.launch_retries >= 1,
            "ladder must have shrunk or retried: {:?}",
            stats.recovery
        );
        assert_eq!(stats.recovery.failed_tasks, 0);
    }

    #[test]
    fn injected_hang_resets_and_recovers() {
        use gpusim::{Fault, FaultPlan};
        let tasks = make_test_tasks(8);
        let params = LocalAssemblyParams::for_tests();
        let cpu = extend_all_cpu(&tasks, &params);
        // First kernel hangs; the poisoned context must be reset (with
        // backoff) and the run completed with identical output.
        let mut eng = faulty_engine(FaultPlan::single(Fault::KernelHang {
            at_launch: 0,
            after_cycles: 10_000,
        }));
        let (gpu, stats) = eng.extend_tasks(&tasks);
        assert_eq!(cpu, gpu);
        assert!(stats.recovery.device_resets >= 1, "hang must force a reset");
        assert!(stats.recovery.backoff_s > 0.0, "reset must charge backoff");
        assert!(!stats.recovery.device_lost);
    }

    #[test]
    fn hang_storm_falls_back_to_cpu() {
        use gpusim::{Fault, FaultPlan};
        let tasks = make_test_tasks(8);
        let params = LocalAssemblyParams::for_tests();
        let cpu = extend_all_cpu(&tasks, &params);
        // Every launch hangs: the reset allowance runs out, the device is
        // declared lost, and all remaining work lands on the CPU engine —
        // still byte-identical.
        let plan = FaultPlan {
            faults: (0..64)
                .map(|i| Fault::KernelHang { at_launch: i, after_cycles: 100 })
                .collect(),
        };
        let (gpu, stats) = faulty_engine(plan).extend_tasks(&tasks);
        assert_eq!(cpu, gpu, "CPU fallback must match the fault-free run");
        assert!(stats.recovery.device_lost, "reset budget must be exhausted");
        assert!(stats.recovery.cpu_fallback_tasks > 0);
        assert_eq!(stats.recovery.failed_tasks, 0);
    }

    #[test]
    fn no_fallback_policy_reports_failures() {
        use gpusim::{Fault, FaultPlan};
        let tasks = make_test_tasks(8);
        let plan = FaultPlan {
            faults: (0..64)
                .map(|i| Fault::KernelHang { at_launch: i, after_cycles: 100 })
                .collect(),
        };
        // With CPU fallback disabled (the multi-GPU dispatcher's round-1
        // policy), unrecoverable tasks surface as Failed outcomes instead
        // of silently emptying.
        let mut eng = faulty_engine(plan)
            .with_recovery_policy(RecoveryPolicy { cpu_fallback: false, ..Default::default() });
        let (outcomes, stats) = eng.extend_tasks_outcomes(&tasks);
        assert!(stats.recovery.device_lost);
        assert_eq!(stats.recovery.cpu_fallback_tasks, 0);
        let failed = outcomes.iter().filter(|o| o.is_failed()).count();
        assert!(failed > 0, "failures must be reported, not hidden");
        assert_eq!(failed, stats.recovery.failed_tasks);
    }

    #[test]
    fn sanitized_runs_stay_clean_and_match_cpu() {
        use gpusim::SanitizerConfig;
        let tasks = make_test_tasks(8);
        let params = LocalAssemblyParams::for_tests();
        let cpu = extend_all_cpu(&tasks, &params);
        for version in [KernelVersion::V1, KernelVersion::V2] {
            let mut eng = GpuLocalAssembler::new(
                DeviceConfig::v100().with_sanitizer(SanitizerConfig::full()),
                LocalAssemblyParams::for_tests(),
                version,
            );
            let (gpu, stats) = eng.extend_tasks(&tasks);
            assert_eq!(cpu, gpu, "{version:?} diverged under the sanitizer");
            assert!(stats.sanitizer.enabled, "summary must record the sanitizer ran");
            assert!(
                stats.sanitizer.is_clean(),
                "{version:?} must be finding-free:\n{}",
                stats.sanitizer.render()
            );
        }
    }

    #[test]
    fn sanitizer_counters_match_unsanitized_run() {
        use gpusim::SanitizerConfig;
        let tasks = make_test_tasks(4);
        let (_, plain) = engine(KernelVersion::V2).extend_tasks(&tasks);
        let mut eng = GpuLocalAssembler::new(
            DeviceConfig::v100().with_sanitizer(SanitizerConfig::full()),
            LocalAssemblyParams::for_tests(),
            KernelVersion::V2,
        );
        let (_, checked) = eng.extend_tasks(&tasks);
        // The sanitizer observes; it must not perturb the roofline inputs.
        assert_eq!(plain.counters.warp_insts(), checked.counters.warp_insts());
        assert_eq!(plain.counters.ldst_global_inst, checked.counters.ldst_global_inst);
    }

    #[test]
    fn roofline_report_is_populated() {
        let tasks = make_test_tasks(4);
        let mut eng = engine(KernelVersion::V2);
        let (_, stats) = eng.extend_tasks(&tasks);
        let report = stats.roofline("v2", eng.device().config());
        assert!(report.gips > 0.0);
        assert!(report.intensity_l1 > 0.0);
        assert!(report.predication_ratio > 0.0, "walk phase must predicate");
    }
}
