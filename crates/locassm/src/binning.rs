//! Contig binning by candidate-read count (paper §3.1).
//!
//! Bin 1: zero candidate reads — returned immediately, never offloaded.
//! Bin 2: fewer than [`BIN2_LIMIT`] reads — short, uniform work.
//! Bin 3: everything else — few contigs (<1% typically) but potentially most
//! of the compute; launched on the GPU first so the CPU can overlap bin 2.

use crate::task::ExtTask;
use serde::{Deserialize, Serialize};

/// Reads-per-task threshold separating bin 2 from bin 3 (paper: 10).
pub const BIN2_LIMIT: usize = 10;

/// The bin a task falls in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bin {
    /// Zero candidate reads.
    Zero,
    /// `1..BIN2_LIMIT` candidate reads.
    Small,
    /// `>= BIN2_LIMIT` candidate reads.
    Large,
}

/// Classify one task by its candidate-read count.
pub fn bin_of(task: &ExtTask) -> Bin {
    match task.reads.len() {
        0 => Bin::Zero,
        n if n < BIN2_LIMIT => Bin::Small,
        _ => Bin::Large,
    }
}

/// Task indices split by bin, plus summary statistics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BinStats {
    /// Bin 1: tasks with no candidate reads (answered host-side).
    pub zero: Vec<usize>,
    /// Bin 2: tasks with fewer than `BIN2_LIMIT` candidate reads.
    pub small: Vec<usize>,
    /// Bin 3: the read-heavy rest.
    pub large: Vec<usize>,
}

impl BinStats {
    /// Total tasks across bins.
    pub fn total(&self) -> usize {
        self.zero.len() + self.small.len() + self.large.len()
    }

    /// Percentage of tasks in each bin `(zero, small, large)`.
    pub fn percentages(&self) -> (f64, f64, f64) {
        let t = self.total();
        if t == 0 {
            return (0.0, 0.0, 0.0);
        }
        let p = |n: usize| 100.0 * n as f64 / t as f64;
        (p(self.zero.len()), p(self.small.len()), p(self.large.len()))
    }

    /// Candidate reads carried by each bin `(zero, small, large)` — shows
    /// why bin 3, though <1% of contigs, can dominate compute.
    pub fn read_totals(&self, tasks: &[ExtTask]) -> (usize, usize, usize) {
        let sum = |v: &[usize]| v.iter().map(|&i| tasks[i].reads.len()).sum();
        (sum(&self.zero), sum(&self.small), sum(&self.large))
    }
}

/// Sort task indices into the three bins (stable order within a bin).
pub fn bin_tasks(tasks: &[ExtTask]) -> BinStats {
    bin_by(tasks.iter().map(bin_of))
}

/// [`bin_tasks`] over borrowed tasks (scheduler shares are index lists into
/// a task slice, never clones).
pub fn bin_tasks_refs(tasks: &[&ExtTask]) -> BinStats {
    bin_by(tasks.iter().map(|t| bin_of(t)))
}

fn bin_by(bins: impl Iterator<Item = Bin>) -> BinStats {
    let mut stats = BinStats::default();
    for (i, bin) in bins.enumerate() {
        match bin {
            Bin::Zero => stats.zero.push(i),
            Bin::Small => stats.small.push(i),
            Bin::Large => stats.large.push(i),
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::ContigEnd;
    use bioseq::{DnaSeq, Read};

    fn task_with_reads(n: usize) -> ExtTask {
        let seq = DnaSeq::from_str_strict("ACGTACGTACGTACGTACGT").unwrap();
        ExtTask {
            contig: 0,
            end: ContigEnd::Right,
            tail: seq.clone(),
            reads: (0..n)
                .map(|i| Read::with_uniform_qual(format!("r{i}"), seq.clone(), 30))
                .collect(),
        }
    }

    #[test]
    fn bin_boundaries() {
        assert_eq!(bin_of(&task_with_reads(0)), Bin::Zero);
        assert_eq!(bin_of(&task_with_reads(1)), Bin::Small);
        assert_eq!(bin_of(&task_with_reads(9)), Bin::Small);
        assert_eq!(bin_of(&task_with_reads(10)), Bin::Large);
        assert_eq!(bin_of(&task_with_reads(3000)), Bin::Large);
    }

    #[test]
    fn bin_tasks_partitions_all() {
        let tasks: Vec<ExtTask> =
            [0, 5, 0, 12, 9, 100, 0].iter().map(|&n| task_with_reads(n)).collect();
        let stats = bin_tasks(&tasks);
        assert_eq!(stats.zero, vec![0, 2, 6]);
        assert_eq!(stats.small, vec![1, 4]);
        assert_eq!(stats.large, vec![3, 5]);
        assert_eq!(stats.total(), tasks.len());
    }

    #[test]
    fn percentages_sum_to_100() {
        let tasks: Vec<ExtTask> = (0..20).map(task_with_reads).collect();
        let stats = bin_tasks(&tasks);
        let (a, b, c) = stats.percentages();
        assert!((a + b + c - 100.0).abs() < 1e-9);
    }

    #[test]
    fn read_totals_weight_bins() {
        let tasks = vec![task_with_reads(0), task_with_reads(5), task_with_reads(50)];
        let stats = bin_tasks(&tasks);
        assert_eq!(stats.read_totals(&tasks), (0, 5, 50));
    }

    #[test]
    fn empty_input() {
        let stats = bin_tasks(&[]);
        assert_eq!(stats.total(), 0);
        assert_eq!(stats.percentages(), (0.0, 0.0, 0.0));
    }
}
