//! Extension tasks: the unit of work of local assembly.
//!
//! Each contig produces up to two tasks — one per end. Left-end tasks are
//! normalized into right-end form by reverse-complementing the contig tail
//! and the candidate reads (the orientation trick MetaHipMer uses so a
//! single rightward mer-walk serves both ends).

use crate::params::LocalAssemblyParams;
use bioseq::{DnaSeq, Read};
use serde::{Deserialize, Serialize};

use crate::params::WalkState;

/// Which contig end a task extends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContigEnd {
    /// Extend leftward (the tail is the reverse complement of the prefix).
    Left,
    /// Extend rightward from the contig's suffix.
    Right,
}

/// One normalized extension task: walk rightward from the end of `tail`.
#[derive(Debug, Clone)]
pub struct ExtTask {
    /// Index of the source contig.
    pub contig: usize,
    /// Which end of the source contig this extends.
    pub end: ContigEnd,
    /// The contig's terminal window, oriented so the extension direction is
    /// rightward. Long enough for the largest k in the schedule.
    pub tail: DnaSeq,
    /// Candidate reads, oriented to match `tail`.
    pub reads: Vec<Read>,
}

/// The outcome of extending one task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtResult {
    /// Bases appended (in normalized/rightward orientation).
    pub appended: DnaSeq,
    /// Terminal state of the final walk.
    pub final_state: WalkState,
    /// Number of k-shift iterations performed.
    pub iterations: u32,
}

impl ExtResult {
    /// A no-op result (zero-read tasks are returned unextended — bin 1).
    pub fn empty() -> ExtResult {
        ExtResult { appended: DnaSeq::new(), final_state: WalkState::DeadEnd, iterations: 0 }
    }
}

/// Per-task outcome after the recovery ladder (retry → shrink → reset →
/// fallback). A failed task is *skipped* — its contig keeps its current
/// sequence — never aborted with it the whole bin.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskOutcome {
    /// The task completed (on the device or via CPU fallback).
    Done(ExtResult),
    /// The task failed everywhere it was tried; it contributes no bases.
    Failed {
        /// Index of the contig whose extension failed.
        contig: usize,
        /// Human-readable failure cause (panic payload or engine error).
        reason: String,
    },
}

impl TaskOutcome {
    /// Collapse to an [`ExtResult`]: a failed task appends nothing.
    pub fn into_result(self) -> ExtResult {
        match self {
            TaskOutcome::Done(r) => r,
            TaskOutcome::Failed { .. } => ExtResult::empty(),
        }
    }

    /// Whether this outcome is the [`TaskOutcome::Failed`] arm.
    pub fn is_failed(&self) -> bool {
        matches!(self, TaskOutcome::Failed { .. })
    }
}

/// Render a panic payload for a [`TaskOutcome::Failed`] reason.
pub(crate) fn panic_reason(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "task panicked".to_string()
    }
}

/// Build the normalized task list for a contig set.
///
/// `candidates[i]` holds the oriented candidate reads for `contigs[i]`
/// (see `align::collect_candidates`); reads arrive oriented contig-forward
/// and are re-oriented here for left-end tasks. Tasks are emitted right-end
/// first, in contig order — a deterministic layout both engines share.
pub fn make_tasks(
    contigs: &[DnaSeq],
    candidates: &[(Vec<Read>, Vec<Read>)],
    params: &LocalAssemblyParams,
) -> Vec<ExtTask> {
    assert_eq!(contigs.len(), candidates.len());
    let window = params.k_max() + params.max_total_extension;
    let mut tasks = Vec::with_capacity(contigs.len() * 2);
    for (ci, (contig, (right, left))) in contigs.iter().zip(candidates).enumerate() {
        // Right end: tail is the contig suffix as-is.
        let take = contig.len().min(window);
        let tail_r = contig.subseq(contig.len() - take, take);
        tasks.push(ExtTask {
            contig: ci,
            end: ContigEnd::Right,
            tail: tail_r,
            reads: right.clone(),
        });
        // Left end: reverse-complement the prefix and the reads.
        let tail_l = contig.subseq(0, take).revcomp();
        tasks.push(ExtTask {
            contig: ci,
            end: ContigEnd::Left,
            tail: tail_l,
            reads: left.iter().map(Read::revcomp).collect(),
        });
    }
    tasks
}

/// Apply task results back onto the contig set: right-end appends go on the
/// right; left-end appends are reverse-complemented and prepended.
///
/// `tasks[i]` must correspond to `results[i]`.
pub fn apply_extensions(
    contigs: &[DnaSeq],
    tasks: &[ExtTask],
    results: &[ExtResult],
) -> Vec<DnaSeq> {
    assert_eq!(tasks.len(), results.len());
    let mut out: Vec<DnaSeq> = contigs.to_vec();
    // Collect appends first so ordering of tasks cannot matter.
    let mut right_app: Vec<Option<&DnaSeq>> = vec![None; contigs.len()];
    let mut left_app: Vec<Option<&DnaSeq>> = vec![None; contigs.len()];
    for (t, r) in tasks.iter().zip(results) {
        match t.end {
            ContigEnd::Right => right_app[t.contig] = Some(&r.appended),
            ContigEnd::Left => left_app[t.contig] = Some(&r.appended),
        }
    }
    for (ci, contig) in out.iter_mut().enumerate() {
        let mut built = DnaSeq::with_capacity(
            contig.len()
                + left_app[ci].map_or(0, |s| s.len())
                + right_app[ci].map_or(0, |s| s.len()),
        );
        if let Some(l) = left_app[ci] {
            built.extend_from(&l.revcomp());
        }
        built.extend_from(contig);
        if let Some(r) = right_app[ci] {
            built.extend_from(r);
        }
        *contig = built;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> DnaSeq {
        DnaSeq::from_str_strict(s).unwrap()
    }

    fn read(s: &str) -> Read {
        Read::with_uniform_qual("r", seq(s), 30)
    }

    #[test]
    fn tasks_normalize_left_end() {
        let contigs = vec![seq("AACCGGTTAC")];
        let cands = vec![(vec![read("GGTTACGT")], vec![read("TTAACCGG")])];
        let params = LocalAssemblyParams::for_tests();
        let tasks = make_tasks(&contigs, &cands, &params);
        assert_eq!(tasks.len(), 2);
        assert_eq!(tasks[0].end, ContigEnd::Right);
        assert_eq!(tasks[0].tail, contigs[0]);
        assert_eq!(tasks[1].end, ContigEnd::Left);
        assert_eq!(tasks[1].tail, contigs[0].revcomp());
        // Left reads are rc'd.
        assert_eq!(tasks[1].reads[0].seq, seq("TTAACCGG").revcomp());
    }

    #[test]
    fn tail_window_clips_long_contigs() {
        let params = LocalAssemblyParams::for_tests();
        let window = params.k_max() + params.max_total_extension;
        let long: DnaSeq =
            (0..window + 500).map(|i| bioseq::Base::from_code((i % 4) as u8)).collect();
        let tasks = make_tasks(std::slice::from_ref(&long), &[(vec![], vec![])], &params);
        assert_eq!(tasks[0].tail.len(), window);
        assert_eq!(tasks[0].tail, long.subseq(long.len() - window, window));
    }

    #[test]
    fn apply_puts_extensions_on_correct_ends() {
        let contigs = vec![seq("CCCC")];
        let params = LocalAssemblyParams::for_tests();
        let tasks = make_tasks(&contigs, &[(vec![], vec![])], &params);
        let results = vec![
            ExtResult { appended: seq("AA"), final_state: WalkState::DeadEnd, iterations: 1 },
            ExtResult { appended: seq("GG"), final_state: WalkState::DeadEnd, iterations: 1 },
        ];
        let out = apply_extensions(&contigs, &tasks, &results);
        // Right append AA; left append GG reverse-complemented = CC.
        assert_eq!(out[0].to_string(), "CCCCCCAA");
    }

    #[test]
    fn empty_results_leave_contigs_unchanged() {
        let contigs = vec![seq("ACGTACGT"), seq("TTTTCCCC")];
        let params = LocalAssemblyParams::for_tests();
        let cands = vec![(vec![], vec![]), (vec![], vec![])];
        let tasks = make_tasks(&contigs, &cands, &params);
        let results: Vec<ExtResult> = tasks.iter().map(|_| ExtResult::empty()).collect();
        assert_eq!(apply_extensions(&contigs, &tasks, &results), contigs);
    }
}
