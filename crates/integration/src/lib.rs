//! Anchor crate for the workspace-level integration tests.
//!
//! The test sources live in the repository's top-level `tests/` directory
//! (see the `[[test]]` entries in this crate's manifest) so they sit beside
//! the examples and documentation, spanning every crate in the workspace:
//!
//! * `pipeline_e2e` — assembles synthetic communities end to end and checks
//!   assembly correctness and quality (contigs are genome substrings,
//!   local assembly grows contiguity, scaffolds chain correctly);
//! * `cpu_gpu_equivalence` — the central invariant of the reproduction:
//!   the CPU engine and both GPU kernels produce bit-identical extensions;
//! * `paper_claims` — the qualitative claims of the SC'21 paper, asserted
//!   against the simulator (v1→v2 roofline movement, binning shape,
//!   predication, load-factor bound, scaling-model anchors);
//! * `memory_model` — the gpusim memory/coalescing model invariants under
//!   randomized access patterns.
