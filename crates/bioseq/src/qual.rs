//! Phred quality scores (Phred+33 ASCII encoding).

/// A Phred quality score (probability that the base call is wrong is
/// `10^(-q/10)`). Stored raw, not ASCII-offset.
pub type QualScore = u8;

/// The ASCII offset used by Illumina 1.8+ FASTQ ("Phred+33").
pub const PHRED_OFFSET: u8 = 33;

/// Highest score we emit/accept; Illumina caps around 41, we allow headroom.
pub const MAX_QUAL: QualScore = 60;

/// Decode an ASCII FASTQ quality character to a raw Phred score.
///
/// Values below the offset saturate to 0 rather than wrapping.
#[inline]
pub fn decode_ascii(ch: u8) -> QualScore {
    ch.saturating_sub(PHRED_OFFSET).min(MAX_QUAL)
}

/// Encode a raw Phred score as an ASCII FASTQ character.
#[inline]
pub fn encode_ascii(q: QualScore) -> u8 {
    q.min(MAX_QUAL) + PHRED_OFFSET
}

/// Error probability for a Phred score.
#[inline]
pub fn phred_to_prob(q: QualScore) -> f64 {
    10f64.powf(-f64::from(q) / 10.0)
}

/// Phred score for an error probability (clamped to `[0, MAX_QUAL]`).
#[inline]
pub fn prob_to_phred(p: f64) -> QualScore {
    if p <= 0.0 {
        return MAX_QUAL;
    }
    let q = -10.0 * p.log10();
    q.clamp(0.0, f64::from(MAX_QUAL)).round() as QualScore
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_round_trip() {
        for q in 0..=MAX_QUAL {
            assert_eq!(decode_ascii(encode_ascii(q)), q);
        }
    }

    #[test]
    fn decode_saturates_low() {
        assert_eq!(decode_ascii(b'!'), 0);
        assert_eq!(decode_ascii(0), 0);
    }

    #[test]
    fn phred_prob_round_trip() {
        for q in [0u8, 10, 20, 30, 40] {
            assert_eq!(prob_to_phred(phred_to_prob(q)), q);
        }
    }

    #[test]
    fn q20_is_one_percent() {
        assert!((phred_to_prob(20) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn zero_prob_maps_to_max() {
        assert_eq!(prob_to_phred(0.0), MAX_QUAL);
        assert_eq!(prob_to_phred(-1.0), MAX_QUAL);
    }
}
