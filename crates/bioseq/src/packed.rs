//! 2-bit-packed DNA storage, word-addressable for the GPU simulator.
//!
//! [`PackedSeq`] stores 32 bases per `u64` word, least-significant pair
//! first. The word layout is part of the public contract: the GPU local
//! assembly keeps reads in device memory in exactly this layout and loads
//! them as whole 64-bit words, so coalescing analysis in `gpusim` sees the
//! real addresses.

use crate::base::Base;
use crate::seq::DnaSeq;
use serde::{Deserialize, Serialize};

/// Bases per 64-bit word.
pub const BASES_PER_WORD: usize = 32;

/// A DNA sequence packed at 2 bits per base into `u64` words.
///
/// Base `i` lives in word `i / 32`, bit offset `2 * (i % 32)`,
/// least-significant bits first. Unused high bits of the last word are zero
/// (an invariant maintained by all mutators, relied on by `PartialEq`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PackedSeq {
    words: Vec<u64>,
    len: usize,
}

impl PackedSeq {
    /// Empty sequence.
    pub fn new() -> PackedSeq {
        PackedSeq { words: Vec::new(), len: 0 }
    }

    /// Pack an unpacked sequence.
    pub fn from_seq(seq: &DnaSeq) -> PackedSeq {
        let mut p = PackedSeq::with_capacity(seq.len());
        for i in 0..seq.len() {
            p.push_code(seq.code(i));
        }
        p
    }

    /// Empty sequence with capacity for `cap` bases.
    pub fn with_capacity(cap: usize) -> PackedSeq {
        PackedSeq { words: Vec::with_capacity(cap.div_ceil(BASES_PER_WORD)), len: 0 }
    }

    /// Length in bases.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no bases are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of backing words.
    #[inline]
    pub fn num_words(&self) -> usize {
        self.words.len()
    }

    /// Backing words (layout documented on the type).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Append a 2-bit code (masked).
    pub fn push_code(&mut self, code: u8) {
        let code = u64::from(code & 3);
        let word = self.len / BASES_PER_WORD;
        let off = (self.len % BASES_PER_WORD) * 2;
        if word == self.words.len() {
            self.words.push(0);
        }
        self.words[word] |= code << off;
        self.len += 1;
    }

    /// Append a base.
    pub fn push(&mut self, b: Base) {
        self.push_code(b.code());
    }

    /// 2-bit code at position `i`. Panics if out of bounds.
    #[inline]
    pub fn code(&self, i: usize) -> u8 {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        let word = self.words[i / BASES_PER_WORD];
        ((word >> ((i % BASES_PER_WORD) * 2)) & 3) as u8
    }

    /// Base at position `i`.
    #[inline]
    pub fn base(&self, i: usize) -> Base {
        Base::from_code(self.code(i))
    }

    /// Unpack to a `DnaSeq`.
    pub fn unpack(&self) -> DnaSeq {
        let mut codes = Vec::with_capacity(self.len);
        for i in 0..self.len {
            codes.push(self.code(i));
        }
        DnaSeq::from_codes(codes)
    }

    /// Extract `k` consecutive 2-bit codes starting at `start` into the low
    /// bits of up to `ceil(k/32)` words (same packing as the sequence, but
    /// shifted to start at bit 0). Used by the GPU kernels to materialize a
    /// k-mer from a packed read with a handful of word loads.
    pub fn extract_window(&self, start: usize, k: usize) -> Vec<u64> {
        assert!(start + k <= self.len, "window out of bounds");
        let mut out = vec![0u64; k.div_ceil(BASES_PER_WORD)];
        for j in 0..k {
            let c = u64::from(self.code(start + j));
            out[j / BASES_PER_WORD] |= c << ((j % BASES_PER_WORD) * 2);
        }
        out
    }
}

impl FromIterator<Base> for PackedSeq {
    fn from_iter<T: IntoIterator<Item = Base>>(iter: T) -> PackedSeq {
        let mut p = PackedSeq::new();
        for b in iter {
            p.push(b);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pack_unpack_known() {
        let s = DnaSeq::from_str_strict("ACGTTGCA").unwrap();
        let p = PackedSeq::from_seq(&s);
        assert_eq!(p.len(), 8);
        assert_eq!(p.num_words(), 1);
        assert_eq!(p.unpack(), s);
    }

    #[test]
    fn crosses_word_boundary() {
        let s: DnaSeq = (0..100).map(|i| Base::from_code((i % 4) as u8)).collect();
        let p = PackedSeq::from_seq(&s);
        assert_eq!(p.num_words(), 4);
        for i in 0..100 {
            assert_eq!(p.code(i), s.code(i));
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let p = PackedSeq::from_seq(&DnaSeq::from_str_strict("ACGT").unwrap());
        p.code(4);
    }

    #[test]
    fn extract_window_basic() {
        let s = DnaSeq::from_str_strict("ACGTACGTACGT").unwrap();
        let p = PackedSeq::from_seq(&s);
        let w = p.extract_window(2, 4); // GTAC
        assert_eq!(w.len(), 1);
        assert_eq!(w[0] & 0xff, 0b01_00_11_10); // A=00 C=01 G=10 T=11, LSB first
    }

    fn arb_seq(max_len: usize) -> impl Strategy<Value = DnaSeq> {
        proptest::collection::vec(0u8..4, 0..max_len).prop_map(DnaSeq::from_codes)
    }

    proptest! {
        #[test]
        fn round_trip(s in arb_seq(300)) {
            let p = PackedSeq::from_seq(&s);
            prop_assert_eq!(p.unpack(), s);
        }

        #[test]
        fn random_access_matches(s in arb_seq(300), idx in 0usize..300) {
            let p = PackedSeq::from_seq(&s);
            if idx < s.len() {
                prop_assert_eq!(p.code(idx), s.code(idx));
            }
        }

        #[test]
        fn window_matches_subseq(s in arb_seq(300), start in 0usize..100, k in 1usize..80) {
            if start + k <= s.len() {
                let p = PackedSeq::from_seq(&s);
                let w = p.extract_window(start, k);
                // Rebuild and compare against subseq.
                let mut rebuilt = DnaSeq::with_capacity(k);
                for j in 0..k {
                    rebuilt.push_code(((w[j / BASES_PER_WORD] >> ((j % BASES_PER_WORD) * 2)) & 3) as u8);
                }
                prop_assert_eq!(rebuilt, s.subseq(start, k));
            }
        }

        #[test]
        fn equal_content_equal_packed(s in arb_seq(300)) {
            let p1 = PackedSeq::from_seq(&s);
            let p2: PackedSeq = s.iter().collect();
            prop_assert_eq!(p1, p2);
        }
    }
}
