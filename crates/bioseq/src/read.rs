//! Sequencing reads: sequence + per-base quality, optionally paired.

use crate::qual::QualScore;
use crate::seq::DnaSeq;
use serde::{Deserialize, Serialize};

/// A single sequencing read.
///
/// `quals` always has the same length as `seq`; constructors enforce this.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Read {
    /// Read identifier (FASTQ header without the leading `@`).
    pub id: String,
    /// The called bases.
    pub seq: DnaSeq,
    /// Raw Phred scores, one per base.
    pub quals: Vec<QualScore>,
}

impl Read {
    /// Construct a read, checking the length invariant.
    ///
    /// Panics if `quals.len() != seq.len()`.
    pub fn new(id: impl Into<String>, seq: DnaSeq, quals: Vec<QualScore>) -> Read {
        assert_eq!(seq.len(), quals.len(), "seq/qual length mismatch");
        Read { id: id.into(), seq, quals }
    }

    /// Construct with a uniform quality score.
    pub fn with_uniform_qual(id: impl Into<String>, seq: DnaSeq, q: QualScore) -> Read {
        let quals = vec![q; seq.len()];
        Read { id: id.into(), seq, quals }
    }

    /// Read length in bases.
    #[inline]
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// True for a zero-length read.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// Reverse complement: sequence is reverse-complemented and qualities
    /// reversed, preserving the base↔quality association.
    pub fn revcomp(&self) -> Read {
        let mut quals = self.quals.clone();
        quals.reverse();
        Read { id: self.id.clone(), seq: self.seq.revcomp(), quals }
    }

    /// Mean Phred quality (0 for an empty read).
    pub fn mean_qual(&self) -> f64 {
        if self.quals.is_empty() {
            return 0.0;
        }
        self.quals.iter().map(|&q| f64::from(q)).sum::<f64>() / self.quals.len() as f64
    }
}

/// A paired-end read (two mates sequenced from the ends of one fragment;
/// mate 2 is on the opposite strand).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PairedRead {
    pub r1: Read,
    pub r2: Read,
    /// Outer distance between the 5' ends of the mates on the source
    /// fragment, when known (used by scaffolding).
    pub insert_size: Option<u32>,
}

impl PairedRead {
    pub fn new(r1: Read, r2: Read) -> PairedRead {
        PairedRead { r1, r2, insert_size: None }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(seq: &str, quals: &[u8]) -> Read {
        Read::new("r", DnaSeq::from_str_strict(seq).unwrap(), quals.to_vec())
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_quals_panic() {
        mk("ACGT", &[30, 30]);
    }

    #[test]
    fn revcomp_reverses_quals() {
        let r = mk("ACGT", &[10, 20, 30, 40]);
        let rc = r.revcomp();
        assert_eq!(rc.seq.to_string(), "ACGT"); // ACGT is its own revcomp
        assert_eq!(rc.quals, vec![40, 30, 20, 10]);
    }

    #[test]
    fn revcomp_is_involution() {
        let r = mk("AACCGGTT", &[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(r.revcomp().revcomp(), r);
    }

    #[test]
    fn mean_qual() {
        let r = mk("ACGT", &[10, 20, 30, 40]);
        assert!((r.mean_qual() - 25.0).abs() < 1e-12);
        let e = Read::with_uniform_qual("e", DnaSeq::new(), 30);
        assert_eq!(e.mean_qual(), 0.0);
    }
}
