//! Unpacked DNA sequence: one 2-bit code per byte.
//!
//! [`DnaSeq`] trades memory for speed: every base occupies a full byte so the
//! hot inner loops of k-mer extraction and mer-walking index it directly with
//! no shifting. Use [`crate::PackedSeq`] where footprint matters.

use crate::base::Base;
use serde::{Deserialize, Serialize};

/// A DNA sequence stored as one 2-bit code (`0..=3`) per byte.
///
/// Invariant: every byte of the backing vector is `< 4`. All constructors
/// uphold this; `from_codes_unchecked` is the only way around it and is
/// `pub(crate)`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DnaSeq {
    codes: Vec<u8>,
}

impl DnaSeq {
    /// Empty sequence.
    pub fn new() -> DnaSeq {
        DnaSeq { codes: Vec::new() }
    }

    /// Empty sequence with reserved capacity.
    pub fn with_capacity(cap: usize) -> DnaSeq {
        DnaSeq { codes: Vec::with_capacity(cap) }
    }

    /// Parse from ASCII (`ACGT`, case-insensitive). Returns `None` if any
    /// character is not a concrete nucleotide.
    pub fn from_ascii(s: &[u8]) -> Option<DnaSeq> {
        let mut codes = Vec::with_capacity(s.len());
        for &ch in s {
            codes.push(Base::from_ascii(ch)?.code());
        }
        Some(DnaSeq { codes })
    }

    /// Parse from a `&str` of `ACGT`.
    pub fn from_str_strict(s: &str) -> Option<DnaSeq> {
        Self::from_ascii(s.as_bytes())
    }

    /// Build from raw 2-bit codes; any byte `>= 4` is masked to 2 bits.
    pub fn from_codes(codes: Vec<u8>) -> DnaSeq {
        let codes = codes.into_iter().map(|c| c & 3).collect();
        DnaSeq { codes }
    }

    /// Length in bases.
    #[inline]
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True if the sequence has no bases.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The 2-bit code at position `i`.
    #[inline]
    pub fn code(&self, i: usize) -> u8 {
        self.codes[i]
    }

    /// The base at position `i`.
    #[inline]
    pub fn base(&self, i: usize) -> Base {
        Base::from_code(self.codes[i])
    }

    /// Raw code slice (every byte `< 4`).
    #[inline]
    pub fn codes(&self) -> &[u8] {
        &self.codes
    }

    /// Append a base.
    #[inline]
    pub fn push(&mut self, b: Base) {
        self.codes.push(b.code());
    }

    /// Append a raw code (masked to 2 bits).
    #[inline]
    pub fn push_code(&mut self, c: u8) {
        self.codes.push(c & 3);
    }

    /// Append all bases of `other`.
    pub fn extend_from(&mut self, other: &DnaSeq) {
        self.codes.extend_from_slice(&other.codes);
    }

    /// Sub-sequence `[start, start+len)` as a new `DnaSeq`.
    pub fn subseq(&self, start: usize, len: usize) -> DnaSeq {
        DnaSeq { codes: self.codes[start..start + len].to_vec() }
    }

    /// Iterator over bases.
    pub fn iter(&self) -> impl Iterator<Item = Base> + '_ {
        self.codes.iter().map(|&c| Base::from_code(c))
    }

    /// Reverse complement as a new sequence.
    pub fn revcomp(&self) -> DnaSeq {
        DnaSeq { codes: self.codes.iter().rev().map(|&c| c ^ 3).collect() }
    }

    /// Reverse-complement in place.
    pub fn revcomp_in_place(&mut self) {
        self.codes.reverse();
        for c in &mut self.codes {
            *c ^= 3;
        }
    }

    /// ASCII rendering (`ACGT`).
    pub fn to_ascii(&self) -> Vec<u8> {
        self.codes.iter().map(|&c| Base::from_code(c).to_ascii()).collect()
    }

    /// Truncate to `len` bases.
    pub fn truncate(&mut self, len: usize) {
        self.codes.truncate(len);
    }

    /// True if `other` appears as a contiguous sub-sequence of `self`.
    pub fn contains(&self, other: &DnaSeq) -> bool {
        if other.is_empty() {
            return true;
        }
        self.codes.windows(other.len()).any(|w| w == other.codes.as_slice())
    }

    /// Hamming distance to another sequence of equal length.
    ///
    /// Panics if the lengths differ.
    pub fn hamming(&self, other: &DnaSeq) -> usize {
        assert_eq!(self.len(), other.len(), "hamming requires equal lengths");
        self.codes.iter().zip(&other.codes).filter(|(a, b)| a != b).count()
    }
}

impl std::fmt::Display for DnaSeq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for b in self.iter() {
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

impl FromIterator<Base> for DnaSeq {
    fn from_iter<T: IntoIterator<Item = Base>>(iter: T) -> DnaSeq {
        DnaSeq { codes: iter.into_iter().map(|b| b.code()).collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parse_and_render() {
        let s = DnaSeq::from_str_strict("ACGTacgt").unwrap();
        assert_eq!(s.to_string(), "ACGTACGT");
        assert_eq!(s.len(), 8);
    }

    #[test]
    fn parse_rejects_n() {
        assert!(DnaSeq::from_str_strict("ACGNT").is_none());
    }

    #[test]
    fn revcomp_known() {
        let s = DnaSeq::from_str_strict("AACGT").unwrap();
        assert_eq!(s.revcomp().to_string(), "ACGTT");
    }

    #[test]
    fn subseq_and_contains() {
        let s = DnaSeq::from_str_strict("ACGTACGT").unwrap();
        let sub = s.subseq(2, 4);
        assert_eq!(sub.to_string(), "GTAC");
        assert!(s.contains(&sub));
        assert!(!s.contains(&DnaSeq::from_str_strict("TTTT").unwrap()));
    }

    #[test]
    fn hamming_distance() {
        let a = DnaSeq::from_str_strict("ACGT").unwrap();
        let b = DnaSeq::from_str_strict("ACCA").unwrap();
        assert_eq!(a.hamming(&b), 2);
        assert_eq!(a.hamming(&a), 0);
    }

    #[test]
    fn empty_contains_empty() {
        let e = DnaSeq::new();
        assert!(e.contains(&DnaSeq::new()));
        assert!(DnaSeq::from_str_strict("A").unwrap().contains(&e));
    }

    fn arb_seq(max_len: usize) -> impl Strategy<Value = DnaSeq> {
        proptest::collection::vec(0u8..4, 0..max_len).prop_map(DnaSeq::from_codes)
    }

    proptest! {
        #[test]
        fn revcomp_is_involution(s in arb_seq(200)) {
            prop_assert_eq!(s.revcomp().revcomp(), s);
        }

        #[test]
        fn revcomp_preserves_len(s in arb_seq(200)) {
            prop_assert_eq!(s.revcomp().len(), s.len());
        }

        #[test]
        fn ascii_round_trip(s in arb_seq(200)) {
            let ascii = s.to_ascii();
            prop_assert_eq!(DnaSeq::from_ascii(&ascii).unwrap(), s);
        }

        #[test]
        fn in_place_matches_functional(s in arb_seq(200)) {
            let mut t = s.clone();
            t.revcomp_in_place();
            prop_assert_eq!(t, s.revcomp());
        }
    }
}
