//! Single-nucleotide type with the canonical 2-bit encoding.

use serde::{Deserialize, Serialize};

/// A single DNA nucleotide.
///
/// The discriminants are the standard 2-bit codes (`A=0, C=1, G=2, T=3`),
/// chosen so that complementation is `code ^ 3`:
///
/// ```
/// use bioseq::Base;
/// assert_eq!(Base::A.complement(), Base::T);
/// assert_eq!(Base::C.complement(), Base::G);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Base {
    A = 0,
    C = 1,
    G = 2,
    T = 3,
}

impl Base {
    /// All four bases in code order.
    pub const ALL: [Base; 4] = [Base::A, Base::C, Base::G, Base::T];

    /// Construct from a 2-bit code. Panics if `code > 3`.
    #[inline]
    pub fn from_code(code: u8) -> Base {
        match code & 3 {
            0 => Base::A,
            1 => Base::C,
            2 => Base::G,
            3 => Base::T,
            _ => unreachable!(),
        }
    }

    /// The 2-bit code of this base.
    #[inline]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Parse an ASCII nucleotide (case-insensitive). Returns `None` for
    /// anything outside `ACGTacgt` (including `N`).
    #[inline]
    pub fn from_ascii(ch: u8) -> Option<Base> {
        match ch {
            b'A' | b'a' => Some(Base::A),
            b'C' | b'c' => Some(Base::C),
            b'G' | b'g' => Some(Base::G),
            b'T' | b't' => Some(Base::T),
            _ => None,
        }
    }

    /// Upper-case ASCII representation.
    #[inline]
    pub fn to_ascii(self) -> u8 {
        const LUT: [u8; 4] = [b'A', b'C', b'G', b'T'];
        LUT[self as usize]
    }

    /// Watson–Crick complement (`A<->T`, `C<->G`).
    #[inline]
    pub fn complement(self) -> Base {
        Base::from_code(self.code() ^ 3)
    }
}

impl std::fmt::Display for Base {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_ascii() as char)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for code in 0..4u8 {
            assert_eq!(Base::from_code(code).code(), code);
        }
    }

    #[test]
    fn ascii_round_trip() {
        for &b in &Base::ALL {
            assert_eq!(Base::from_ascii(b.to_ascii()), Some(b));
            assert_eq!(Base::from_ascii(b.to_ascii().to_ascii_lowercase()), Some(b));
        }
    }

    #[test]
    fn rejects_non_acgt() {
        for ch in [b'N', b'n', b'X', b'-', b' ', 0u8] {
            assert_eq!(Base::from_ascii(ch), None);
        }
    }

    #[test]
    fn complement_is_involution() {
        for &b in &Base::ALL {
            assert_eq!(b.complement().complement(), b);
            assert_ne!(b.complement(), b);
        }
    }

    #[test]
    fn complement_pairs() {
        assert_eq!(Base::A.complement(), Base::T);
        assert_eq!(Base::T.complement(), Base::A);
        assert_eq!(Base::C.complement(), Base::G);
        assert_eq!(Base::G.complement(), Base::C);
    }
}
