//! FASTQ and FASTA parsing / writing.
//!
//! Parsing is line-oriented and allocation-light (a workhorse `String` per
//! record field). Reads containing `N` or other ambiguity codes are handled
//! per [`NPolicy`]: metagenome assemblers either drop such reads or split
//! them; MetaHipMer2 effectively ignores k-mers containing `N`, which at our
//! scale is well-approximated by dropping the read (the default) or
//! substituting a fixed base (useful for tests).

use crate::qual;
use crate::read::{PairedRead, Read};
use crate::seq::DnaSeq;
use std::io::{self, BufRead, Write};

/// What to do with reads whose sequence contains non-ACGT characters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NPolicy {
    /// Skip the whole read (MetaHipMer-like behaviour at k-mer level).
    #[default]
    Drop,
    /// Replace each ambiguous character with `A` at quality 0.
    SubstituteA,
    /// Return an error.
    Error,
}

/// How strictly to treat structurally malformed FASTQ records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParseMode {
    /// Any malformed record aborts the parse.
    #[default]
    Strict,
    /// Skip malformed records — bad header, missing `+`, quality/sequence
    /// length mismatch, truncation — count them, and resynchronize at the
    /// next `@` header. I/O errors still abort.
    Lenient,
}

/// Per-parse bookkeeping returned by [`parse_fastq_with`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FastqParseStats {
    /// Records dropped by [`NPolicy::Drop`] (ambiguous bases).
    pub dropped_ambiguous: usize,
    /// Structurally malformed records skipped ([`ParseMode::Lenient`]).
    pub skipped_malformed: usize,
}

/// FASTQ parse error.
#[derive(Debug)]
pub enum ParseError {
    Io(io::Error),
    /// Malformed record; the message includes the line number.
    Format(String),
    /// An ambiguous base was found and the policy is [`NPolicy::Error`].
    AmbiguousBase {
        record: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "I/O error: {e}"),
            ParseError::Format(m) => write!(f, "malformed FASTQ: {m}"),
            ParseError::AmbiguousBase { record } => {
                write!(f, "ambiguous base in record {record}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Parse all records from a FASTQ stream (strict mode).
///
/// Returns the parsed reads plus the number of records dropped by the
/// `NPolicy::Drop` policy.
pub fn parse_fastq<R: BufRead>(
    reader: R,
    policy: NPolicy,
) -> Result<(Vec<Read>, usize), ParseError> {
    let (reads, stats) = parse_fastq_with(reader, policy, ParseMode::Strict)?;
    Ok((reads, stats.dropped_ambiguous))
}

/// Parse all records from a FASTQ stream with an explicit [`ParseMode`].
///
/// In [`ParseMode::Lenient`], malformed records are skipped (counted in
/// [`FastqParseStats::skipped_malformed`]) and the parser resynchronizes at
/// the next `@` header, so one corrupt record never takes a whole lane's
/// worth of reads with it. [`NPolicy::Error`] violations and I/O errors
/// abort in either mode.
pub fn parse_fastq_with<R: BufRead>(
    reader: R,
    policy: NPolicy,
    mode: ParseMode,
) -> Result<(Vec<Read>, FastqParseStats), ParseError> {
    let mut reads = Vec::new();
    let mut stats = FastqParseStats::default();
    let mut lines = reader.lines();
    let mut lineno = 0usize;
    // A header found while resynchronizing after a malformed record.
    let mut pending: Option<String> = None;
    'records: loop {
        let header = if let Some(h) = pending.take() {
            h
        } else {
            match lines.next() {
                None => break,
                Some(h) => {
                    lineno += 1;
                    h?
                }
            }
        };
        if header.is_empty() {
            continue;
        }
        // One malformed record = one skip: count it, then scan forward to
        // the next header.
        let skip_and_resync = |lines: &mut std::io::Lines<R>,
                               lineno: &mut usize,
                               stats: &mut FastqParseStats|
         -> Result<Option<String>, ParseError> {
            stats.skipped_malformed += 1;
            for line in lines.by_ref() {
                *lineno += 1;
                let line = line?;
                if line.starts_with('@') {
                    return Ok(Some(line));
                }
            }
            Ok(None)
        };
        if !header.starts_with('@') {
            match mode {
                ParseMode::Strict => {
                    return Err(ParseError::Format(format!(
                        "line {lineno}: expected '@', got {:?}",
                        header.chars().next()
                    )))
                }
                ParseMode::Lenient => {
                    match skip_and_resync(&mut lines, &mut lineno, &mut stats)? {
                        Some(h) => pending = Some(h),
                        None => break,
                    }
                    continue 'records;
                }
            }
        }
        let id = header[1..].split_whitespace().next().unwrap_or("").to_string();
        let body = (|| -> Result<(String, String), ParseError> {
            let seq_line = next_line(&mut lines, &mut lineno)?;
            let plus = next_line(&mut lines, &mut lineno)?;
            if !plus.starts_with('+') {
                return Err(ParseError::Format(format!("line {lineno}: expected '+'")));
            }
            let qual_line = next_line(&mut lines, &mut lineno)?;
            if qual_line.len() != seq_line.len() {
                return Err(ParseError::Format(format!(
                    "line {lineno}: quality length {} != sequence length {}",
                    qual_line.len(),
                    seq_line.len()
                )));
            }
            Ok((seq_line, qual_line))
        })();
        match body {
            Ok((seq_line, qual_line)) => {
                match record_to_read(&id, seq_line.as_bytes(), qual_line.as_bytes(), policy)? {
                    Some(r) => reads.push(r),
                    None => stats.dropped_ambiguous += 1,
                }
            }
            Err(e @ ParseError::Io(_)) => return Err(e),
            Err(e) => match mode {
                ParseMode::Strict => return Err(e),
                ParseMode::Lenient => match skip_and_resync(&mut lines, &mut lineno, &mut stats)? {
                    Some(h) => pending = Some(h),
                    None => break,
                },
            },
        }
    }
    Ok((reads, stats))
}

fn next_line(
    lines: &mut std::io::Lines<impl BufRead>,
    lineno: &mut usize,
) -> Result<String, ParseError> {
    *lineno += 1;
    lines
        .next()
        .ok_or_else(|| ParseError::Format(format!("line {lineno}: unexpected end of file")))?
        .map_err(ParseError::Io)
}

fn record_to_read(
    id: &str,
    seq: &[u8],
    quals_ascii: &[u8],
    policy: NPolicy,
) -> Result<Option<Read>, ParseError> {
    let mut codes = Vec::with_capacity(seq.len());
    let mut quals = Vec::with_capacity(seq.len());
    for (&ch, &qa) in seq.iter().zip(quals_ascii) {
        match crate::base::Base::from_ascii(ch) {
            Some(b) => {
                codes.push(b.code());
                quals.push(qual::decode_ascii(qa));
            }
            None => match policy {
                NPolicy::Drop => return Ok(None),
                NPolicy::SubstituteA => {
                    codes.push(0);
                    quals.push(0);
                }
                NPolicy::Error => return Err(ParseError::AmbiguousBase { record: id.to_string() }),
            },
        }
    }
    Ok(Some(Read::new(id, DnaSeq::from_codes(codes), quals)))
}

/// Write reads in FASTQ format.
pub fn write_fastq<W: Write>(mut w: W, reads: &[Read]) -> io::Result<()> {
    for r in reads {
        writeln!(w, "@{}", r.id)?;
        w.write_all(&r.seq.to_ascii())?;
        writeln!(w)?;
        writeln!(w, "+")?;
        let q: Vec<u8> = r.quals.iter().map(|&q| qual::encode_ascii(q)).collect();
        w.write_all(&q)?;
        writeln!(w)?;
    }
    Ok(())
}

/// Interleave two mate files that were parsed separately into pairs.
///
/// Pairs mates positionally; returns an error if the lengths differ.
pub fn pair_up(r1: Vec<Read>, r2: Vec<Read>) -> Result<Vec<PairedRead>, ParseError> {
    if r1.len() != r2.len() {
        return Err(ParseError::Format(format!(
            "mate file length mismatch: {} vs {}",
            r1.len(),
            r2.len()
        )));
    }
    Ok(r1.into_iter().zip(r2).map(|(a, b)| PairedRead::new(a, b)).collect())
}

/// Write sequences in FASTA format with `width`-column wrapping.
pub fn write_fasta<W: Write>(
    mut w: W,
    records: impl IntoIterator<Item = (String, DnaSeq)>,
    width: usize,
) -> io::Result<()> {
    let width = width.max(1);
    for (id, seq) in records {
        writeln!(w, ">{id}")?;
        let ascii = seq.to_ascii();
        for chunk in ascii.chunks(width) {
            w.write_all(chunk)?;
            writeln!(w)?;
        }
    }
    Ok(())
}

/// Parse a FASTA stream into `(id, sequence)` pairs. Ambiguous bases follow
/// the same policy as FASTQ parsing, applied per-record.
pub fn parse_fasta<R: BufRead>(
    reader: R,
    policy: NPolicy,
) -> Result<(Vec<(String, DnaSeq)>, usize), ParseError> {
    let mut out: Vec<(String, DnaSeq)> = Vec::new();
    let mut dropped = 0usize;
    let mut cur_id: Option<String> = None;
    let mut cur_seq = String::new();
    let flush = |id: Option<String>,
                 seq: &str,
                 out: &mut Vec<(String, DnaSeq)>,
                 dropped: &mut usize|
     -> Result<(), ParseError> {
        let Some(id) = id else { return Ok(()) };
        match DnaSeq::from_ascii(seq.as_bytes()) {
            Some(s) => out.push((id, s)),
            None => match policy {
                NPolicy::Drop => *dropped += 1,
                NPolicy::SubstituteA => {
                    let codes = seq
                        .bytes()
                        .map(|ch| crate::base::Base::from_ascii(ch).map_or(0, |b| b.code()))
                        .collect();
                    out.push((id, DnaSeq::from_codes(codes)));
                }
                NPolicy::Error => return Err(ParseError::AmbiguousBase { record: id }),
            },
        }
        Ok(())
    };
    for line in reader.lines() {
        let line = line?;
        if let Some(rest) = line.strip_prefix('>') {
            flush(cur_id.take(), &cur_seq, &mut out, &mut dropped)?;
            cur_id = Some(rest.split_whitespace().next().unwrap_or("").to_string());
            cur_seq.clear();
        } else {
            cur_seq.push_str(line.trim());
        }
    }
    flush(cur_id.take(), &cur_seq, &mut out, &mut dropped)?;
    Ok((out, dropped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const SAMPLE: &str = "@r1 extra stuff\nACGT\n+\nIIII\n@r2\nTTTT\n+\n!!!!\n";

    #[test]
    fn parse_two_records() {
        let (reads, dropped) = parse_fastq(Cursor::new(SAMPLE), NPolicy::Drop).unwrap();
        assert_eq!(dropped, 0);
        assert_eq!(reads.len(), 2);
        assert_eq!(reads[0].id, "r1");
        assert_eq!(reads[0].seq.to_string(), "ACGT");
        assert_eq!(reads[0].quals, vec![40, 40, 40, 40]);
        assert_eq!(reads[1].quals, vec![0, 0, 0, 0]);
    }

    #[test]
    fn round_trip() {
        let (reads, _) = parse_fastq(Cursor::new(SAMPLE), NPolicy::Drop).unwrap();
        let mut buf = Vec::new();
        write_fastq(&mut buf, &reads).unwrap();
        let (reads2, _) = parse_fastq(Cursor::new(buf), NPolicy::Drop).unwrap();
        assert_eq!(reads, reads2);
    }

    #[test]
    fn n_policy_drop() {
        let s = "@r1\nACNT\n+\nIIII\n@r2\nACGT\n+\nIIII\n";
        let (reads, dropped) = parse_fastq(Cursor::new(s), NPolicy::Drop).unwrap();
        assert_eq!(reads.len(), 1);
        assert_eq!(dropped, 1);
        assert_eq!(reads[0].id, "r2");
    }

    #[test]
    fn n_policy_substitute() {
        let s = "@r1\nACNT\n+\nIIII\n";
        let (reads, _) = parse_fastq(Cursor::new(s), NPolicy::SubstituteA).unwrap();
        assert_eq!(reads[0].seq.to_string(), "ACAT");
        assert_eq!(reads[0].quals[2], 0);
    }

    #[test]
    fn n_policy_error() {
        let s = "@r1\nACNT\n+\nIIII\n";
        assert!(matches!(
            parse_fastq(Cursor::new(s), NPolicy::Error),
            Err(ParseError::AmbiguousBase { .. })
        ));
    }

    #[test]
    fn malformed_missing_plus() {
        let s = "@r1\nACGT\nIIII\nACGT\n";
        assert!(matches!(parse_fastq(Cursor::new(s), NPolicy::Drop), Err(ParseError::Format(_))));
    }

    #[test]
    fn malformed_qual_length() {
        let s = "@r1\nACGT\n+\nII\n";
        assert!(parse_fastq(Cursor::new(s), NPolicy::Drop).is_err());
    }

    #[test]
    fn truncated_record() {
        let s = "@r1\nACGT\n";
        assert!(parse_fastq(Cursor::new(s), NPolicy::Drop).is_err());
    }

    #[test]
    fn lenient_skips_malformed_and_resyncs() {
        // r1 ok, r2 missing '+', r3 ok, r4 qual-length mismatch, r5 ok.
        let s = "@r1\nACGT\n+\nIIII\n\
                 @r2\nACGT\nIIII\n\
                 @r3\nTTTT\n+\nIIII\n\
                 @r4\nACGT\n+\nII\n\
                 @r5\nGGGG\n+\nIIII\n";
        let (reads, stats) =
            parse_fastq_with(Cursor::new(s), NPolicy::Drop, ParseMode::Lenient).unwrap();
        let ids: Vec<&str> = reads.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, vec!["r1", "r3", "r5"]);
        assert_eq!(stats.skipped_malformed, 2);
        assert_eq!(stats.dropped_ambiguous, 0);
    }

    #[test]
    fn lenient_counts_truncated_tail() {
        let s = "@r1\nACGT\n+\nIIII\n@r2\nACGT\n";
        let (reads, stats) =
            parse_fastq_with(Cursor::new(s), NPolicy::Drop, ParseMode::Lenient).unwrap();
        assert_eq!(reads.len(), 1);
        assert_eq!(stats.skipped_malformed, 1);
    }

    #[test]
    fn lenient_still_counts_ambiguous_drops() {
        let s = "@r1\nACNT\n+\nIIII\n@r2\nACGT\n+\nIIII\n";
        let (reads, stats) =
            parse_fastq_with(Cursor::new(s), NPolicy::Drop, ParseMode::Lenient).unwrap();
        assert_eq!(reads.len(), 1);
        assert_eq!(stats.dropped_ambiguous, 1);
        assert_eq!(stats.skipped_malformed, 0);
    }

    #[test]
    fn strict_mode_matches_parse_fastq() {
        let s = "@r1\nACGT\nIIII\nACGT\n";
        assert!(matches!(
            parse_fastq_with(Cursor::new(s), NPolicy::Drop, ParseMode::Strict),
            Err(ParseError::Format(_))
        ));
    }

    #[test]
    fn fasta_round_trip() {
        let seqs = vec![
            ("c1".to_string(), DnaSeq::from_str_strict("ACGTACGTACGT").unwrap()),
            ("c2".to_string(), DnaSeq::from_str_strict("TT").unwrap()),
        ];
        let mut buf = Vec::new();
        write_fasta(&mut buf, seqs.clone(), 5).unwrap();
        let (parsed, dropped) = parse_fasta(Cursor::new(buf), NPolicy::Drop).unwrap();
        assert_eq!(dropped, 0);
        assert_eq!(parsed, seqs);
    }

    #[test]
    fn pair_up_checks_length() {
        let r = Read::with_uniform_qual("a", DnaSeq::from_str_strict("ACGT").unwrap(), 30);
        assert!(pair_up(vec![r.clone()], vec![r.clone(), r.clone()]).is_err());
        assert_eq!(pair_up(vec![r.clone()], vec![r]).unwrap().len(), 1);
    }
}
