//! DNA sequence primitives shared by every crate in the workspace.
//!
//! This crate provides the base-level vocabulary of the assembler:
//!
//! * [`Base`] — a single nucleotide with a 2-bit code,
//! * [`DnaSeq`] — an unpacked sequence of 2-bit codes, the workhorse type for
//!   hot algorithmic code,
//! * [`PackedSeq`] — a 2-bit-packed sequence (4 bases/byte) used when memory
//!   footprint matters (device buffers, read stores),
//! * [`Read`] / [`PairedRead`] — sequencing reads with Phred+33 qualities,
//! * FASTQ / FASTA parsing and writing ([`fastq`]).
//!
//! The representation choices mirror what MetaHipMer2 and the SC'21 GPU
//! local-assembly paper rely on: sequences are over the 4-letter alphabet
//! (reads containing `N` are handled at parse time by either rejecting or
//! substituting), reverse complement is a first-class operation, and packed
//! storage is word-addressable so a simulated GPU can load it in coalesced
//! 64-bit words.

pub mod base;
pub mod fastq;
pub mod packed;
pub mod qual;
pub mod read;
pub mod seq;

pub use base::Base;
pub use packed::PackedSeq;
pub use qual::{phred_to_prob, prob_to_phred, QualScore};
pub use read::{PairedRead, Read};
pub use seq::DnaSeq;
