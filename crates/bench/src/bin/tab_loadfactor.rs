//! §3.2 load-factor analysis: the paper sizes each extension's hash table
//! as `l × r` slots (sum of candidate-read lengths), bounding the load
//! factor at `(l − k + 1)/l` — worst case 0.93 for `l = 300, k = 21`.
//!
//! We print the analytic table and then verify it *empirically*: run the
//! v2 kernel on a real dump and measure achieved fill (occupied slots /
//! allocated slots) per extension.

use bench::{local_assembly_dump, DumpConfig};
use datagen::arcticsynth_like;
use kmer::Kmer;
use locassm::gpu::layout::{ht_slots_for, load_factor};
use mhm::report::render_table;
use std::collections::HashSet;

fn main() {
    println!("=== Load-factor analysis (paper §3.2) ===\n");
    println!("analytic bound (l-k+1)/l:");
    let mut rows = Vec::new();
    for (l, k) in [(300usize, 21usize), (300, 33), (300, 55), (150, 21), (150, 31), (250, 99)] {
        rows.push(vec![l.to_string(), k.to_string(), format!("{:.4}", load_factor(l, k))]);
    }
    println!("{}", render_table(&["read len l", "k", "max load factor"], &rows));
    println!("worst case (l=300, k=21): {:.3}  (paper: ~0.93)\n", load_factor(300, 21));

    // Empirical fill on a real dump.
    let dump = local_assembly_dump(&arcticsynth_like(0.03), &DumpConfig::default());
    let k = 21usize;
    // The bound depends on the longest read in the set; overlap-merged
    // pairs reach ~2x the raw 150 bp (the paper's l = 300 worst case).
    let max_l =
        dump.tasks.iter().flat_map(|t| t.reads.iter().map(|r| r.len())).max().unwrap_or(150);
    let mut worst = 0.0f64;
    let mut total_slots = 0u64;
    let mut total_filled = 0u64;
    let mut measured = 0usize;
    for task in dump.tasks.iter().filter(|t| !t.reads.is_empty()) {
        let slots = ht_slots_for(task.reads.iter().map(|r| r.len()));
        let mut distinct: HashSet<Kmer> = HashSet::new();
        for r in &task.reads {
            if r.len() < k + 1 {
                continue;
            }
            for pos in 0..r.len() - k {
                distinct.insert(Kmer::from_seq(&r.seq, pos, k));
            }
        }
        let fill = distinct.len() as f64 / slots as f64;
        worst = worst.max(fill);
        total_slots += slots;
        total_filled += distinct.len() as u64;
        measured += 1;
    }
    println!("empirical fill over {measured} extensions at k={k} (longest read {max_l} bp):");
    println!(
        "  mean {:.3}, worst {:.3}  — always under the analytic bound {:.3}",
        total_filled as f64 / total_slots as f64,
        worst,
        load_factor(max_l, k)
    );
    assert!(worst <= load_factor(max_l, k) + 1e-9, "bound violated");
    println!("\nnote: exact-size slab allocation means zero waste beyond the bound —");
    println!("the naive per-extension worst-case allocation the paper rejects would");
    println!("reserve the same memory for every extension regardless of r.");
}
