//! Figure 10: instruction-class breakdown of kernels v1 and v2.
//!
//! Paper observation: moving from v1 to v2 the global-memory instruction
//! count drops dramatically while the arithmetic (INT) work stays put,
//! because 32 lanes share coalesced word loads instead of each k-mer being
//! re-loaded by one thread.

use bench::{local_assembly_dump, DumpConfig};
use datagen::arcticsynth_like;
use gpusim::{Counters, DeviceConfig};
use locassm::gpu::{GpuLocalAssembler, KernelVersion};
use locassm::LocalAssemblyParams;
use mhm::report::render_table;

fn counters_for(version: KernelVersion, dump: &bench::Dump) -> Counters {
    let mut engine =
        GpuLocalAssembler::new(DeviceConfig::v100(), LocalAssemblyParams::for_tests(), version);
    let (_, stats) = engine.extend_tasks(&dump.tasks);
    stats.counters
}

fn main() {
    let dump = local_assembly_dump(&arcticsynth_like(0.05), &DumpConfig::default());
    let v1 = counters_for(KernelVersion::V1, &dump);
    let v2 = counters_for(KernelVersion::V2, &dump);

    println!("=== Figure 10: instruction breakdown, v1 vs v2 ===\n");
    let row = |name: &str, a: u64, b: u64| {
        vec![
            name.to_string(),
            a.to_string(),
            b.to_string(),
            format!("{:.2}x", b as f64 / a.max(1) as f64),
        ]
    };
    let rows = vec![
        row("global memory inst", v1.ldst_global_inst, v2.ldst_global_inst),
        row("local memory inst", v1.ldst_local_inst, v2.ldst_local_inst),
        row("INT inst", v1.int_inst, v2.int_inst),
        row("FP inst", v1.fp_inst, v2.fp_inst),
        row("atomic inst", v1.atomic_inst, v2.atomic_inst),
        row("shuffle/ballot inst", v1.shuffle_inst, v2.shuffle_inst),
        row("control inst", v1.control_inst, v2.control_inst),
        row("TOTAL warp inst", v1.warp_insts(), v2.warp_insts()),
    ];
    println!("{}", render_table(&["class", "v1", "v2", "v2/v1"], &rows));
    println!(
        "local-memory share of L1 transactions: v1 {:.0}%, v2 {:.0}%  (paper: ~70%)",
        100.0 * v1.local_transactions as f64 / v1.l1_transactions() as f64,
        100.0 * v2.local_transactions as f64 / v2.l1_transactions() as f64,
    );
    println!("paper: global-memory instructions drop sharply from v1 to v2.");
    assert!(v2.ldst_global_inst < v1.ldst_global_inst);
}
