//! §3.2 memory table: pointer-compressed k-mer keys vs materialized k-mers.
//!
//! The paper's example: a 77-mer stored as characters needs 77 bytes, while
//! a (pointer, length) reference into the stored read needs ~5 bytes —
//! about 15× less. We tabulate the ratio across k and then measure the
//! real effect on total device memory for a packed batch.

use bench::{local_assembly_dump, DumpConfig};
use datagen::arcticsynth_like;
use locassm::gpu::layout::{key_materialized_bytes, KEY_POINTER_BYTES};
use mhm::report::render_table;

fn main() {
    println!("=== K-mer key memory: pointer vs materialized (paper §3.2) ===\n");
    let mut rows = Vec::new();
    for k in [21usize, 33, 55, 77, 99] {
        let mat = key_materialized_bytes(k);
        // The paper counts 5 bytes for (start pointer, length); our entry
        // rounds the key to one 8-byte word.
        rows.push(vec![
            k.to_string(),
            format!("{mat}"),
            "5 (paper) / 8 (ours)".to_string(),
            format!("{:.1}x / {:.1}x", mat as f64 / 5.0, mat as f64 / KEY_POINTER_BYTES as f64),
        ]);
    }
    println!("{}", render_table(&["k", "materialized (B)", "pointer (B)", "savings"], &rows));
    println!("paper: ~15x at k=77 (5-byte pointer encoding).\n");

    // Whole-batch effect: compare slab key storage against what
    // materialized keys would need at the walk's largest k.
    let dump = local_assembly_dump(&arcticsynth_like(0.02), &DumpConfig::default());
    let k_max = 41usize; // largest k in the test schedule
    let mut pointer_bytes = 0u64;
    let mut materialized_bytes = 0u64;
    for t in dump.tasks.iter().filter(|t| !t.reads.is_empty()) {
        let slots: u64 = t.reads.iter().map(|r| r.len() as u64).sum();
        pointer_bytes += slots * KEY_POINTER_BYTES;
        materialized_bytes += slots * key_materialized_bytes(k_max);
    }
    println!(
        "batch key storage at k={k_max}: pointer {:.2} MB vs materialized {:.2} MB ({:.1}x less)",
        pointer_bytes as f64 / 1e6,
        materialized_bytes as f64 / 1e6,
        materialized_bytes as f64 / pointer_bytes as f64
    );
}
