//! Figure 3: distribution of contigs across the three bins for the
//! arcticsynth dataset, as a function of the assembly k-mer size.
//!
//! Paper claims: bin 3 consistently gets < 1% of contigs, bin 2 varies
//! between ~10% and ~30%, and larger k leads to more contigs with non-zero
//! candidate reads. We regenerate the distribution by running the real
//! upstream pipeline on the arcticsynth-like preset at several k and
//! binning the resulting extension tasks.

use align::{AlignParams, CandidateParams};
use bench::{local_assembly_dump, DumpConfig};
use datagen::arcticsynth_like;
use locassm::bin_tasks;
use mhm::report::render_table;

fn main() {
    let preset = arcticsynth_like(1.0);
    // MetaHipMer2's alignment phase only reports near-full-length read
    // alignments (ADEPT score cutoffs), so a read hanging far off a contig
    // end is NOT a candidate — which is why most contigs land in bin 1.
    // 130/150 mimics that cutoff.
    let candidates = CandidateParams {
        align: AlignParams { min_overlap: 130, ..Default::default() },
        ..Default::default()
    };
    println!("=== Figure 3: contig distribution across bins vs k ({}) ===\n", preset.name);

    let mut rows = Vec::new();
    for k in [21, 31, 41, 51, 61] {
        let dump = local_assembly_dump(
            &preset,
            &DumpConfig { k, candidates: candidates.clone(), ..Default::default() },
        );
        let stats = bin_tasks(&dump.tasks);
        let (b1, b2, b3) = stats.percentages();
        let (r1, r2, r3) = stats.read_totals(&dump.tasks);
        rows.push(vec![
            k.to_string(),
            stats.total().to_string(),
            format!("{b1:.1}%"),
            format!("{b2:.1}%"),
            format!("{b3:.2}%"),
            format!("{r1}/{r2}/{r3}"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["k", "tasks", "bin1 (0 reads)", "bin2 (<10)", "bin3 (>=10)", "reads b1/b2/b3"],
            &rows
        )
    );
    println!("paper: bin3 < 1% of contigs; bin2 10-30%; larger k => fewer zero-read contigs.");
    println!("note: bin3, though rare, can carry the bulk of the candidate reads (last column).");
}
