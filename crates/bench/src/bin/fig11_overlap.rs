//! Figure 11-style overlap study: static `cpu_bin2_fraction` split vs the
//! work-stealing scheduler on a size-skewed seeded workload, plus the
//! calibration ablation (oracle vs 10×-mis-seeded CPU rates, with and
//! without the EWMA feedback loop), the multi-GPU striping comparison
//! (round-robin vs LPT, homogeneous and mixed-fleet) and byte-identity
//! checks across scheduler × calibration × fault configurations.
//!
//! Emits `results/BENCH_overlap.json` (hand-rolled JSON; the workspace has
//! no serde_json) so CI can accumulate the perf trajectory. `--tiny` runs
//! a reduced workload for the CI smoke job. The acceptance thresholds are
//! asserted, so a scheduling regression fails the harness, not just the
//! numbers in a file.

use bioseq::{DnaSeq, Read};
use gpusim::{DeviceConfig, Fault, FaultPlan};
use locassm::gpu::pack::estimate_task_words;
use locassm::gpu::{KernelVersion, MultiGpuAssembler, StripePolicy};
use locassm::{
    extend_all_cpu, CalibrationConfig, ContigEnd, ExtTask, LocalAssemblyParams, OverlapDriver,
    SchedulePolicy, StealConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

fn random_seq(len: usize, rng: &mut StdRng) -> DnaSeq {
    (0..len).map(|_| bioseq::Base::from_code(rng.gen_range(0..4))).collect()
}

/// Size-skewed workload: a minority of heavy bin-3 tasks carry most of the
/// estimated words, and they sit at stride `n_devices` so round-robin
/// striping piles them all onto device 0. Light bin-2 tasks are emitted in
/// ascending size order, the worst case for a prefix split.
fn skewed_tasks(n: usize, heavy_stride: usize, seed: u64) -> Vec<ExtTask> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let genome = random_seq(600, &mut rng);
            // Heavy bin-3 tasks: ~4x the reads of a light task, so they
            // carry most of the words while a batch of them still has
            // enough warps to occupy the device.
            let n_reads = if i % heavy_stride == 0 { 18 + i % 5 } else { 1 + (i % 8) };
            let reads = (0..n_reads)
                .map(|r| {
                    Read::with_uniform_qual(
                        format!("t{i}r{r}"),
                        genome.subseq(60 + (r * 13) % 350, 90),
                        35,
                    )
                })
                .collect();
            ExtTask { contig: i, end: ContigEnd::Right, tail: genome.subseq(0, 140), reads }
        })
        .collect()
}

fn main() {
    let tiny = std::env::args().any(|a| a == "--tiny");
    let n_tasks = if tiny { 64 } else { 192 };
    const N_DEVICES: usize = 4;
    let tasks = skewed_tasks(n_tasks, N_DEVICES, 4242);
    let params = LocalAssemblyParams::for_tests();
    let total_words: u64 = tasks.iter().map(|t| estimate_task_words(t, &params)).sum();
    println!("=== Figure 11: CPU/GPU overlap scheduling on a skewed workload ===");
    println!(
        "tasks: {n_tasks}{}, est words total: {total_words}\n",
        if tiny { " (tiny preset)" } else { "" }
    );

    let reference = extend_all_cpu(&tasks, &params);

    // --- calibrate: effective GPU throughput (est words per wall second,
    // simulated), then model the CPU peer as a full many-core socket worth
    // 2x one GPU's rate — the node shape where a static split hurts most,
    // because it pins every bin-3 task on the GPU no matter how the rates
    // compare. All device runs use the deliberately small test device: 48+
    // warps saturate its occupancy, so kernel time scales with work
    // (throughput regime). On an under-occupied V100 the latency floor
    // dominates and no schedule can beat any other — a faithful effect,
    // but not the one Figure 11 is about.
    let device = DeviceConfig::tiny();
    let probe = OverlapDriver { device: device.clone(), ..OverlapDriver::static_split(0.0) }
        .run(&tasks, &params)
        .expect("probe runs");
    let probe_stats = probe.gpu_stats.as_ref().expect("probe uses the GPU");
    let gpu_rate = total_words as f64 / probe_stats.wall_s().max(1e-12);
    let cpu_rate = 2.0 * gpu_rate;
    println!("calibrated GPU rate: {gpu_rate:.3e} est words/s (CPU peer modeled at 2x)");

    // The CPU peer is *modeled* (host wall seconds here are simulator
    // driving cost, not the modeled socket), so pin the calibration loop's
    // observation source to the modeled rate: belief starts equal to truth
    // and the schedule matches the constant-rate scheduler exactly.
    let steal_cfg = StealConfig {
        batch_words: 32 * 1024,
        cpu_words_per_s: cpu_rate,
        calibration: CalibrationConfig {
            cpu_true_words_per_s: Some(cpu_rate),
            ..CalibrationConfig::default()
        },
        ..StealConfig::default()
    };

    // --- static 0.5 baseline: makespan is the slower of the two engine
    // models at the calibrated rate.
    let st = OverlapDriver { device: device.clone(), ..OverlapDriver::static_split(0.5) }
        .run(&tasks, &params)
        .expect("static runs");
    assert_eq!(st.results, reference, "static split must be byte-identical");
    let st_cpu_s = st.schedule.cpu_est_words as f64 / cpu_rate;
    let st_gpu_s = st.gpu_stats.as_ref().map_or(0.0, |s| s.wall_s());
    let static_makespan = st_cpu_s.max(st_gpu_s);

    // --- work-stealing scheduler.
    let ws = OverlapDriver {
        device: device.clone(),
        schedule: SchedulePolicy::WorkSteal(steal_cfg.clone()),
        ..Default::default()
    }
    .run(&tasks, &params)
    .expect("work-steal runs");
    assert_eq!(ws.results, reference, "work-steal must be byte-identical");
    let ws_makespan = ws.schedule.makespan_model_s();
    let improvement = 100.0 * (static_makespan - ws_makespan) / static_makespan.max(1e-12);

    println!(
        "\nstatic 0.5 split: cpu {} w / gpu {} w, model makespan {static_makespan:.6} s",
        st.schedule.cpu_est_words, st.schedule.gpu_est_words
    );
    println!(
        "work-steal:       cpu {} w / gpu {} w (balance {:.2}), model makespan {ws_makespan:.6} s",
        ws.schedule.cpu_est_words,
        ws.schedule.gpu_est_words,
        ws.schedule.word_balance()
    );
    println!(
        "improvement: {improvement:.1}% (bin-3 stolen by CPU: {}, bin-2 absorbed by GPU: {})",
        ws.schedule.cpu_stole_heavy, ws.schedule.gpu_absorbed_light
    );
    if let Some(g) = &ws.gpu_stats {
        println!("double-buffer: {:.6} s pack hidden of {:.6} s", g.overlap_saved_s, g.pack_s);
    }
    assert!(
        improvement >= 15.0,
        "work-steal must beat the static split by >= 15%, got {improvement:.1}%"
    );

    // --- calibration ablation: seed the CPU-rate model 10x off in either
    // direction and let the EWMA feedback loop recover. The CPU's "true"
    // rate is pinned (observations are modeled at `cpu_rate`, not host
    // wall), so every trajectory is deterministic and the *realized*
    // makespan — the sum of observed engine times, belief-independent in
    // its units — is comparable across runs. The fine 8 KiB granularity
    // gives the estimator enough batches to converge within the run.
    let ablate = |seed: f64, enabled: bool| {
        let out = OverlapDriver {
            device: device.clone(),
            schedule: SchedulePolicy::WorkSteal(StealConfig {
                batch_words: 8 * 1024,
                cpu_words_per_s: seed,
                calibration: CalibrationConfig {
                    enabled,
                    cpu_true_words_per_s: Some(cpu_rate),
                    ..CalibrationConfig::default()
                },
                ..StealConfig::default()
            }),
            ..Default::default()
        }
        .run(&tasks, &params)
        .expect("ablation run");
        assert_eq!(
            out.results, reference,
            "calibration (seed {seed:.3e}, enabled {enabled}) must stay byte-identical"
        );
        out.schedule.calibration.expect("work-steal always reports calibration")
    };
    let oracle = ablate(cpu_rate, true);
    let cal_hi = ablate(10.0 * cpu_rate, true);
    let cal_lo = ablate(cpu_rate / 10.0, true);
    let uncal_hi = ablate(10.0 * cpu_rate, false);
    let uncal_lo = ablate(cpu_rate / 10.0, false);
    let oracle_mk = oracle.realized_makespan_s();
    println!("\ncalibration ablation (realized makespan, oracle = correctly-seeded):");
    println!("  oracle seed:            {oracle_mk:.6} s ({} cpu updates)", oracle.cpu_updates);
    for (name, rep) in [("10x-high + EWMA", &cal_hi), ("10x-low  + EWMA", &cal_lo)] {
        let mk = rep.realized_makespan_s();
        println!(
            "  {name}: {mk:.6} s ({:.1}% of oracle, converged {:.3e} w/s)",
            100.0 * mk / oracle_mk,
            rep.cpu_words_per_s
        );
        assert!(
            mk <= 1.2 * oracle_mk,
            "{name} must converge within 20% of the oracle makespan: \
             {mk:.6} vs {oracle_mk:.6}"
        );
    }
    for (name, rep) in [("10x-high, no EWMA", &uncal_hi), ("10x-low,  no EWMA", &uncal_lo)] {
        let mk = rep.realized_makespan_s();
        println!("  {name}: {mk:.6} s ({:.1}% of oracle)", 100.0 * mk / oracle_mk);
    }
    // One mis-seed direction can luckily help (over-feeding the engine that
    // is genuinely faster), so the contrast claim is about the worst case:
    // without feedback, *some* 10x mis-seed blows the 20% budget that every
    // calibrated trajectory stays inside.
    let uncal_worst = uncal_hi.realized_makespan_s().max(uncal_lo.realized_makespan_s());
    assert!(
        uncal_worst > 1.2 * oracle_mk,
        "a 10x mis-seed without calibration must cost more than the 20% \
         convergence budget, got {uncal_worst:.6} vs oracle {oracle_mk:.6}"
    );

    // --- per-bin rate-model ablation: bins with genuinely different CPU
    // cost profiles (bin 2 scattered at 0.4x the pooled figure, bin 3
    // cache-friendly at 2.5x). The pooled EWMA must average the two and
    // mis-model the CPU clock; the per-bin model prices each bin at its
    // own converged rate, so its clock tracks the realized CPU time
    // tighter. Model error here is the CPU-clock error |model − realized|
    // / realized — the GPU clock advances by direct observation and never
    // contributes model error.
    let bin2_true = 0.4 * cpu_rate;
    let bin3_true = 2.5 * cpu_rate;
    let per_bin_run = |per_bin: bool| {
        let out = OverlapDriver {
            device: device.clone(),
            schedule: SchedulePolicy::WorkSteal(StealConfig {
                batch_words: 8 * 1024,
                cpu_words_per_s: cpu_rate,
                calibration: CalibrationConfig {
                    per_bin,
                    cpu_true_bin2_words_per_s: Some(bin2_true),
                    cpu_true_bin3_words_per_s: Some(bin3_true),
                    ..CalibrationConfig::default()
                },
                ..StealConfig::default()
            }),
            ..Default::default()
        }
        .run(&tasks, &params)
        .expect("per-bin ablation run");
        assert_eq!(
            out.results, reference,
            "per-bin model (per_bin {per_bin}) must stay byte-identical"
        );
        out.schedule
    };
    let cpu_model_err = |s: &locassm::ScheduleReport| {
        let cal = s.calibration.as_ref().expect("work-steal reports calibration");
        if cal.cpu_realized_s > 0.0 {
            (s.cpu_model_s - cal.cpu_realized_s).abs() / cal.cpu_realized_s
        } else {
            0.0
        }
    };
    let pooled_sched = per_bin_run(false);
    let perbin_sched = per_bin_run(true);
    let (pooled_err, perbin_err) = (cpu_model_err(&pooled_sched), cpu_model_err(&perbin_sched));
    let perbin_cal = perbin_sched.calibration.as_ref().expect("calibration report");
    println!("\nper-bin rate model (bin-2 true {bin2_true:.3e}, bin-3 true {bin3_true:.3e} w/s):");
    println!("  pooled EWMA:  cpu-clock model error {:.2}%", 100.0 * pooled_err);
    println!(
        "  per-bin:      cpu-clock model error {:.2}% (bin-2 {:.3e} w/s x{}, bin-3 {:.3e} w/s x{})",
        100.0 * perbin_err,
        perbin_cal.cpu_bin2_words_per_s,
        perbin_cal.cpu_bin2_updates,
        perbin_cal.cpu_bin3_words_per_s,
        perbin_cal.cpu_bin3_updates
    );
    assert!(
        perbin_err <= pooled_err + 1e-9,
        "per-bin model error must not exceed the pooled model's on a skewed mix: \
         {perbin_err:.4} vs {pooled_err:.4}"
    );

    // --- adaptive drain-point batch sizing: coarse granularity makes the
    // classic last-batch imbalance (one engine takes the final coarse
    // chunk while the other idles). Adaptive sizing halves the steal
    // granularity as the deque approaches `drain_factor x batch_words`,
    // so the tail is dealt in slivers both engines can share. The slow
    // engine here is the modeled CPU (a small host at half the GPU's
    // rate): its cost is linear in words, so the overshoot is purely the
    // last-batch effect with no launch-overhead confound, and rates are
    // pinned so realized makespans are deterministic and comparable.
    let coarse_words = (total_words / 4).max(1);
    let drain_cpu_rate = 0.5 * gpu_rate;
    let drain_run = |adaptive: bool| {
        let out = OverlapDriver {
            device: device.clone(),
            schedule: SchedulePolicy::WorkSteal(StealConfig {
                batch_words: coarse_words,
                cpu_words_per_s: drain_cpu_rate,
                adaptive_batch: adaptive,
                drain_factor: 4.0,
                min_batch_words: (coarse_words / 8).max(1),
                calibration: CalibrationConfig {
                    cpu_true_words_per_s: Some(drain_cpu_rate),
                    ..CalibrationConfig::default()
                },
                ..StealConfig::default()
            }),
            ..Default::default()
        }
        .run(&tasks, &params)
        .expect("drain ablation run");
        assert_eq!(
            out.results, reference,
            "adaptive sizing (adaptive {adaptive}) must stay byte-identical"
        );
        out.schedule
    };
    let drain_static = drain_run(false);
    let drain_adaptive = drain_run(true);
    let drain_static_mk = drain_static.calibration.as_ref().expect("report").realized_makespan_s();
    let drain_adaptive_mk =
        drain_adaptive.calibration.as_ref().expect("report").realized_makespan_s();
    let drain_gain = 100.0 * (drain_static_mk - drain_adaptive_mk) / drain_static_mk.max(1e-12);
    println!("\nadaptive drain sizing (coarse batch {coarse_words} w):");
    println!("  static granularity:   realized makespan {drain_static_mk:.6} s");
    println!(
        "  adaptive granularity: realized makespan {drain_adaptive_mk:.6} s \
         ({drain_gain:.1}% better, {} drain splits, min issued {} w)",
        drain_adaptive.drain_splits, drain_adaptive.min_issued_batch_words
    );
    assert!(drain_adaptive.drain_splits > 0, "the drain point must have fired");
    assert!(
        drain_adaptive.min_issued_batch_words >= 1,
        "adaptive sizing must never issue a zero-word batch"
    );
    assert!(
        drain_adaptive_mk < drain_static_mk,
        "adaptive drain sizing must improve the realized makespan on the \
         last-batch-imbalance scenario: {drain_adaptive_mk:.6} vs {drain_static_mk:.6}"
    );

    // --- multi-GPU striping: round-robin vs LPT on the same skew.
    let balance_of = |policy: StripePolicy| {
        let multi =
            MultiGpuAssembler::new(device.clone(), params.clone(), KernelVersion::V2, N_DEVICES)
                .with_stripe_policy(policy);
        let (results, stats) = multi.extend_tasks(&tasks);
        assert_eq!(results, reference, "{policy:?} striping must be byte-identical");
        stats.balance_efficiency()
    };
    let balance_rr = balance_of(StripePolicy::RoundRobin);
    let balance_lpt = balance_of(StripePolicy::WordsLpt);
    println!("\nmulti-GPU balance ({N_DEVICES} devices): round-robin {balance_rr:.3}, LPT {balance_lpt:.3}");
    assert!(balance_rr < 0.6, "skew must defeat round-robin striping, got {balance_rr:.3}");
    assert!(balance_lpt >= 0.9, "LPT striping must balance the skew, got {balance_lpt:.3}");

    // --- mixed fleet: device 3 runs at half clock and half memory
    // bandwidth (~0.5x throughput). Rate-blind LPT deals it a full-speed
    // share and it becomes the makespan; rate-aware LPT weighs its load by
    // the configured 0.5 rate and wins the balance back.
    let slow_device = DeviceConfig {
        clock_ghz: device.clock_ghz * 0.5,
        dram_gbps: device.dram_gbps * 0.5,
        ..device.clone()
    };
    let mixed_configs = || {
        let mut fleet = vec![device.clone(); N_DEVICES - 1];
        fleet.push(slow_device.clone());
        fleet
    };
    let mixed_balance_of = |rates: Option<Vec<f64>>| {
        let mut multi = MultiGpuAssembler::with_device_configs(
            mixed_configs(),
            params.clone(),
            KernelVersion::V2,
        );
        if let Some(r) = rates {
            multi = multi.with_device_rates(r);
        }
        let (results, stats) = multi.extend_tasks(&tasks);
        assert_eq!(results, reference, "mixed-fleet striping must be byte-identical");
        stats.balance_efficiency()
    };
    let mut aware_rates = vec![1.0; N_DEVICES - 1];
    aware_rates.push(0.5);
    let balance_mixed_blind = mixed_balance_of(None);
    let balance_mixed_aware = mixed_balance_of(Some(aware_rates));
    println!(
        "mixed fleet (device {} at 0.5x): rate-blind LPT {balance_mixed_blind:.3}, \
         rate-aware LPT {balance_mixed_aware:.3}",
        N_DEVICES - 1
    );
    assert!(
        balance_mixed_aware > balance_mixed_blind + 0.05,
        "rate-aware LPT must beat rate-blind LPT on a mixed fleet: \
         {balance_mixed_aware:.3} vs {balance_mixed_blind:.3}"
    );

    // --- byte-identity across scheduler × fault configurations.
    let fault_plans = [
        ("none", FaultPlan::default()),
        (
            "oom+hang",
            FaultPlan {
                faults: vec![
                    Fault::SlabOom { at_alloc: 0 },
                    Fault::KernelHang { at_launch: 1, after_cycles: 5_000 },
                ],
            },
        ),
        (
            "device-loss",
            FaultPlan {
                faults: (0..64)
                    .map(|i| Fault::KernelHang { at_launch: i, after_cycles: 100 })
                    .collect(),
            },
        ),
    ];
    let calibrated = |seed: f64| {
        SchedulePolicy::WorkSteal(StealConfig {
            cpu_words_per_s: seed,
            calibration: CalibrationConfig {
                cpu_true_words_per_s: Some(cpu_rate),
                ..CalibrationConfig::default()
            },
            ..steal_cfg.clone()
        })
    };
    let schedules: Vec<(&str, SchedulePolicy)> = vec![
        ("static-0.0", SchedulePolicy::Static { cpu_bin2_fraction: 0.0 }),
        ("static-0.5", SchedulePolicy::Static { cpu_bin2_fraction: 0.5 }),
        ("static-1.0", SchedulePolicy::Static { cpu_bin2_fraction: 1.0 }),
        ("ws-default", SchedulePolicy::WorkSteal(steal_cfg.clone())),
        (
            "ws-fine",
            SchedulePolicy::WorkSteal(StealConfig { batch_words: 8 * 1024, ..steal_cfg.clone() }),
        ),
        // Every calibration trajectory — correctly seeded and 10x off both
        // ways — must leave the assembled bytes untouched under every fault
        // plan: calibration moves work between engines, never results.
        ("ws-cal-oracle", calibrated(cpu_rate)),
        ("ws-cal-mis-hi", calibrated(10.0 * cpu_rate)),
        ("ws-cal-mis-lo", calibrated(cpu_rate / 10.0)),
        // PR 5 refinements: bin-resolved rate pricing and adaptive drain
        // sizing reshape the schedule, so they must also leave the bytes
        // untouched — alone and stacked.
        (
            "ws-perbin",
            SchedulePolicy::WorkSteal(StealConfig {
                calibration: CalibrationConfig {
                    per_bin: true,
                    cpu_true_bin2_words_per_s: Some(0.4 * cpu_rate),
                    cpu_true_bin3_words_per_s: Some(2.5 * cpu_rate),
                    ..CalibrationConfig::default()
                },
                ..steal_cfg.clone()
            }),
        ),
        (
            "ws-adaptive",
            SchedulePolicy::WorkSteal(StealConfig {
                adaptive_batch: true,
                drain_factor: 4.0,
                min_batch_words: 1024,
                ..steal_cfg.clone()
            }),
        ),
        (
            "ws-perbin-adaptive",
            SchedulePolicy::WorkSteal(StealConfig {
                adaptive_batch: true,
                drain_factor: 4.0,
                min_batch_words: 1024,
                calibration: CalibrationConfig {
                    per_bin: true,
                    cpu_true_bin2_words_per_s: Some(0.4 * cpu_rate),
                    cpu_true_bin3_words_per_s: Some(2.5 * cpu_rate),
                    ..CalibrationConfig::default()
                },
                ..steal_cfg.clone()
            }),
        ),
    ];
    let mut identical_configs = 0usize;
    for (fname, plan) in &fault_plans {
        for (sname, schedule) in &schedules {
            let driver = OverlapDriver {
                device: device.clone().with_fault_plan(plan.clone()),
                version: KernelVersion::V2,
                schedule: schedule.clone(),
            };
            let out = driver.run(&tasks, &params).expect("driver runs");
            assert_eq!(
                out.results, reference,
                "results must be byte-identical under {sname} x {fname}"
            );
            identical_configs += 1;
        }
    }
    println!("byte-identity: {identical_configs} scheduler x fault configurations verified");

    // --- emit BENCH_overlap.json (hand-rolled; no serde_json in tree).
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"name\": \"fig11_overlap\",");
    let _ = writeln!(json, "  \"tiny\": {tiny},");
    let _ = writeln!(json, "  \"tasks\": {n_tasks},");
    let _ = writeln!(json, "  \"est_words_total\": {total_words},");
    let _ = writeln!(json, "  \"gpu_rate_words_per_s\": {gpu_rate:.3},");
    let _ = writeln!(json, "  \"static_makespan_s\": {static_makespan:.9},");
    let _ = writeln!(json, "  \"worksteal_makespan_s\": {ws_makespan:.9},");
    let _ = writeln!(json, "  \"improvement_pct\": {improvement:.3},");
    let _ = writeln!(json, "  \"worksteal_word_balance\": {:.4},", ws.schedule.word_balance());
    let _ = writeln!(json, "  \"cpu_stole_heavy\": {},", ws.schedule.cpu_stole_heavy);
    let _ = writeln!(json, "  \"gpu_absorbed_light\": {},", ws.schedule.gpu_absorbed_light);
    let _ = writeln!(
        json,
        "  \"overlap_saved_s\": {:.9},",
        ws.gpu_stats.as_ref().map_or(0.0, |g| g.overlap_saved_s)
    );
    let _ = writeln!(json, "  \"balance_round_robin\": {balance_rr:.4},");
    let _ = writeln!(json, "  \"balance_lpt\": {balance_lpt:.4},");
    let _ = writeln!(json, "  \"balance_mixed_rate_blind\": {balance_mixed_blind:.4},");
    let _ = writeln!(json, "  \"balance_mixed_rate_aware\": {balance_mixed_aware:.4},");
    let _ = writeln!(json, "  \"calibration_oracle_makespan_s\": {oracle_mk:.9},");
    let _ =
        writeln!(json, "  \"calibration_mis_hi_makespan_s\": {:.9},", cal_hi.realized_makespan_s());
    let _ =
        writeln!(json, "  \"calibration_mis_lo_makespan_s\": {:.9},", cal_lo.realized_makespan_s());
    let _ = writeln!(
        json,
        "  \"uncalibrated_mis_hi_makespan_s\": {:.9},",
        uncal_hi.realized_makespan_s()
    );
    let _ = writeln!(
        json,
        "  \"uncalibrated_mis_lo_makespan_s\": {:.9},",
        uncal_lo.realized_makespan_s()
    );
    let _ = writeln!(json, "  \"calibration_cpu_updates\": {},", cal_hi.cpu_updates);
    let _ =
        writeln!(json, "  \"calibration_rel_err_vs_realized\": {:.6},", oracle.rel_err_vs_realized);
    let _ = writeln!(json, "  \"per_bin_pooled_model_err\": {pooled_err:.6},");
    let _ = writeln!(json, "  \"per_bin_model_err\": {perbin_err:.6},");
    let _ = writeln!(
        json,
        "  \"per_bin_cpu_bin2_words_per_s\": {:.3},",
        perbin_cal.cpu_bin2_words_per_s
    );
    let _ = writeln!(
        json,
        "  \"per_bin_cpu_bin3_words_per_s\": {:.3},",
        perbin_cal.cpu_bin3_words_per_s
    );
    let _ = writeln!(json, "  \"drain_static_makespan_s\": {drain_static_mk:.9},");
    let _ = writeln!(json, "  \"drain_adaptive_makespan_s\": {drain_adaptive_mk:.9},");
    let _ = writeln!(json, "  \"drain_splits\": {},", drain_adaptive.drain_splits);
    let _ = writeln!(
        json,
        "  \"drain_min_issued_batch_words\": {},",
        drain_adaptive.min_issued_batch_words
    );
    let _ = writeln!(json, "  \"byte_identical_configs\": {identical_configs}");
    json.push_str("}\n");
    let out_path = std::path::Path::new("results").join("BENCH_overlap.json");
    if let Some(dir) = out_path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("\nwrote {}", out_path.display()),
        Err(e) => println!("\ncould not write {}: {e}", out_path.display()),
    }
    println!("\nPASS: all overlap-scheduler acceptance thresholds hold");
}
