//! Figure 8: instruction roofline of the **v1** extension kernel
//! (single-thread hash-table construction) on the arcticsynth-like dump.
//!
//! Paper observations for v1: low instruction intensity and GIPS, close to
//! the stride-1 memory wall (random hash probing), a visible thread-
//! predication gap, and a large share of L1 traffic from local memory.

use bench::{local_assembly_dump, DumpConfig};
use datagen::arcticsynth_like;
use gpusim::DeviceConfig;
use locassm::gpu::{GpuLocalAssembler, KernelVersion};
use locassm::LocalAssemblyParams;

fn main() {
    let dump = local_assembly_dump(&arcticsynth_like(0.05), &DumpConfig::default());
    let cfg = DeviceConfig::v100();
    let mut engine =
        GpuLocalAssembler::new(cfg.clone(), LocalAssemblyParams::for_tests(), KernelVersion::V1);
    let (_, stats) = engine.extend_tasks(&dump.tasks);
    let report = stats.roofline("local-assembly extension kernel v1", &cfg);
    println!("=== Figure 8: instruction roofline, kernel v1 ===\n");
    println!("{}", report.render(&cfg));
    println!("paper: v1 sits low-left of v2 with heavy predication; peak line 489.6 warp GIPS.");
}
