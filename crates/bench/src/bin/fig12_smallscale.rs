//! Figure 12: small-scale (2-node, arcticsynth) run-time comparison with
//! CPU vs GPU local assembly.
//!
//! Two complementary reproductions:
//!
//! 1. **Measured**: the real pipeline runs twice on the arcticsynth-like
//!    preset, once per engine. Phase walls are laptop seconds; the GPU
//!    local-assembly entry is the simulated V100 time, so the interesting
//!    comparisons are the *shape* ones — the local-assembly share of total
//!    shrinks sharply, everything else is unchanged, and both engines
//!    produce identical contigs.
//! 2. **Model**: the paper-anchored scaling model evaluated at 2 nodes with
//!    the arcticsynth phase profile (local assembly ≈ 14% of total, paper
//!    §4.4), predicting the ~4.3× local-assembly and ~12% end-to-end gains.

use datagen::arcticsynth_like;
use gpusim::DeviceConfig;
use locassm::gpu::KernelVersion;
use mhm::report::render_breakdown;
use mhm::scaling::{PaperAnchors, PhaseScaling, ScalingModel};
use mhm::{run_pipeline, EngineChoice, Phase, PipelineConfig};

fn main() {
    let (_, pairs) = arcticsynth_like(0.05).generate();

    // --- measured runs ---
    let cpu_cfg = PipelineConfig::default();
    let gpu_cfg = PipelineConfig {
        engine: EngineChoice::Gpu { device: DeviceConfig::v100(), version: KernelVersion::V2 },
        ..PipelineConfig::default()
    };
    let cpu = run_pipeline(&pairs, &cpu_cfg).expect("pipeline runs");
    let gpu = run_pipeline(&pairs, &gpu_cfg).expect("pipeline runs");
    assert_eq!(cpu.contigs, gpu.contigs, "engines must agree on the assembly");

    println!("=== Figure 12 (measured, laptop-scale arcticsynth-like) ===\n");
    println!("{}", render_breakdown("CPU local assembly", &cpu.timings));
    println!("{}", render_breakdown("GPU local assembly (LA = simulated V100 time)", &gpu.timings));
    println!(
        "local assembly share of total: CPU {:.1}% -> GPU {:.1}%",
        100.0 * cpu.timings.get(Phase::LocalAssembly) / cpu.timings.total(),
        100.0 * gpu.timings.get(Phase::LocalAssembly) / gpu.timings.total(),
    );
    println!(
        "LA host wall {:.3}s vs simulated V100 kernel {:.4}s (units differ; see EXPERIMENTS.md)\n",
        cpu.stats.la_wall_seconds,
        gpu.stats.la_gpu_sim_seconds.unwrap(),
    );

    // --- model at 2 nodes with the arcticsynth profile ---
    // §4.4: "for the arcticsynth dataset the overall time spent in the
    // Local Assembly phase is about 14%". Rebalance the anchor fractions
    // around LA = 14% and a 460 s 2-node total (Fig. 12's y-axis scale).
    let mut anchors = PaperAnchors {
        nodes_anchor: 2.0,
        total_anchor_s: 460.0,
        nodes_far: 32.0,
        la_speedup_anchor: 4.3,
        la_speedup_far: 2.0,
        ..PaperAnchors::default()
    };
    let la = 0.14;
    let rest = (1.0 - la) / 0.66;
    for (p, f, _) in anchors.phases.iter_mut() {
        *f = if *p == Phase::LocalAssembly { la } else { *f * rest };
    }
    // FileIo fixed share is negligible at 2 nodes; keep classes as-is.
    let _ = PhaseScaling::Fixed;
    let model = ScalingModel::from_anchors(anchors);
    let c2 = model.pipeline_at(2.0, false).expect("anchored node count");
    let g2 = model.pipeline_at(2.0, true).expect("anchored node count");
    println!("=== Figure 12 (model, 2 Summit nodes) ===\n");
    println!(
        "total: CPU {:.0} s -> GPU {:.0} s   overall gain {:.1}% (paper: ~12%)",
        c2.total(),
        g2.total(),
        model.overall_speedup_pct(2.0).expect("anchored node count")
    );
    println!(
        "local assembly: CPU {:.0} s -> GPU {:.0} s   speedup {:.2}x (paper: ~4.3x)",
        c2.get(Phase::LocalAssembly),
        g2.get(Phase::LocalAssembly),
        model.la_speedup(2.0).expect("anchored node count")
    );
}
