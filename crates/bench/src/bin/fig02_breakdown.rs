//! Figure 2a/2b: MetaHipMer2 run-time breakdown on 64 Summit nodes (WA
//! dataset), with CPU vs GPU local assembly.
//!
//! The CPU breakdown (2a) is the paper-anchored profile; the GPU breakdown
//! (2b) is *predicted* by the scaling model (only the two Fig. 13 speedup
//! points were fitted) and compared against the paper's observed 2b values:
//! total 1495 s and local assembly at 6%.

use mhm::report::render_breakdown;
use mhm::scaling::{PaperAnchors, ScalingModel};
use mhm::Phase;

fn main() {
    let model = ScalingModel::from_anchors(PaperAnchors::default());

    let cpu = model.pipeline_at(64.0, false).expect("anchored node count");
    let gpu = model.pipeline_at(64.0, true).expect("anchored node count");

    println!("=== Figure 2a: 64-node WA breakdown, CPU local assembly ===\n");
    println!("{}", render_breakdown("CPU local assembly (anchored on paper)", &cpu));
    println!(
        "paper: total 2128 s, local assembly 34%  |  model: total {:.0} s, local assembly {:.1}%\n",
        cpu.total(),
        100.0 * cpu.get(Phase::LocalAssembly) / cpu.total()
    );

    println!("=== Figure 2b: 64-node WA breakdown, GPU local assembly ===\n");
    println!("{}", render_breakdown("GPU local assembly (model prediction)", &gpu));
    println!(
        "paper: total 1495 s, local assembly 6%   |  model: total {:.0} s, local assembly {:.1}%",
        gpu.total(),
        100.0 * gpu.get(Phase::LocalAssembly) / gpu.total()
    );
    println!(
        "\nend-to-end improvement at 64 nodes: paper ~42%, model {:.1}%",
        model.overall_speedup_pct(64.0).expect("anchored node count")
    );
}
