//! Figure 13: local-assembly module run time, CPU vs GPU, on 64–1024
//! Summit nodes (WA dataset), with the speedup triangles.
//!
//! The 64- and 1024-node speedups (7×, 2.65×) are the fitted anchors;
//! every other row is a model prediction. Absolute paper values for
//! comparison: CPU ≈ 723 s at 64 nodes (34% of 2128 s).

use mhm::report::render_table;
use mhm::scaling::{PaperAnchors, ScalingModel};

fn main() {
    let model = ScalingModel::from_anchors(PaperAnchors::default());
    println!("=== Figure 13: local assembly CPU vs GPU across Summit nodes ===\n");
    let mut rows = Vec::new();
    for nodes in [64.0, 128.0, 256.0, 512.0, 1024.0] {
        rows.push(vec![
            format!("{nodes:.0}"),
            format!("{:.1}", model.la_cpu_s(nodes).expect("anchored node count")),
            format!("{:.1}", model.la_gpu_s(nodes).expect("anchored node count")),
            format!("{:.2}x", model.la_speedup(nodes).expect("anchored node count")),
            match nodes as u32 {
                64 => "7.00x (anchor)".to_string(),
                1024 => "2.65x (anchor)".to_string(),
                _ => "predicted".to_string(),
            },
        ]);
    }
    println!(
        "{}",
        render_table(&["nodes", "LA CPU (s)", "LA GPU (s)", "speedup", "vs paper"], &rows)
    );
    println!("paper: >7x at 64 nodes, deteriorating to 2.65x at 1024 (strong scaling:");
    println!("per-GPU work shrinks while per-offload overheads stay fixed).");
    println!(
        "\nmodel internals: LA work {:.0} node-seconds on CPU, {:.0} on GPU, fixed GPU overhead {:.2} s/node",
        model.la_work_node_seconds, model.gpu_work_node_seconds, model.gpu_overhead_s
    );
}
