//! Figure 14: total MetaHipMer2 pipeline run time with and without GPU
//! local assembly, 64–1024 Summit nodes, with the speedup-percentage
//! triangles.
//!
//! Paper claims: ~42% peak improvement at up to 128 nodes, decaying as the
//! pipeline becomes communication-dominated and per-GPU work shrinks.

use mhm::report::render_table;
use mhm::scaling::{PaperAnchors, ScalingModel};

fn main() {
    let model = ScalingModel::from_anchors(PaperAnchors::default());
    println!("=== Figure 14: overall pipeline, with vs without GPU local assembly ===\n");
    let mut rows = Vec::new();
    for nodes in [64.0, 128.0, 256.0, 512.0, 1024.0] {
        let cpu = model.pipeline_at(nodes, false).expect("anchored node count").total();
        let gpu = model.pipeline_at(nodes, true).expect("anchored node count").total();
        rows.push(vec![
            format!("{nodes:.0}"),
            format!("{cpu:.0}"),
            format!("{gpu:.0}"),
            format!("{:.1}%", model.overall_speedup_pct(nodes).expect("anchored node count")),
        ]);
    }
    println!(
        "{}",
        render_table(&["nodes", "total CPU-LA (s)", "total GPU-LA (s)", "speedup"], &rows)
    );
    println!("paper: ~42% at 64-128 nodes (64-node totals 2128 s -> 1495 s), decaying");
    println!("with node count; the 512->1024 cliff in the paper is run-to-run variance");
    println!("in communication-heavy phases (single runs), which we model smoothly.");
}
