//! Figure 9: instruction roofline of the **v2** extension kernel
//! (warp-cooperative hash-table construction) on the arcticsynth-like dump,
//! printed side by side with v1 so the figure's key claim — the L1 dot
//! moves up and to the right — is directly visible.

use bench::{local_assembly_dump, DumpConfig};
use datagen::arcticsynth_like;
use gpusim::DeviceConfig;
use locassm::gpu::{GpuLocalAssembler, KernelVersion};
use locassm::LocalAssemblyParams;

fn main() {
    let dump = local_assembly_dump(&arcticsynth_like(0.05), &DumpConfig::default());
    let cfg = DeviceConfig::v100();

    let mut reports = Vec::new();
    for (name, version) in [("v1", KernelVersion::V1), ("v2", KernelVersion::V2)] {
        let mut engine =
            GpuLocalAssembler::new(cfg.clone(), LocalAssemblyParams::for_tests(), version);
        let (_, stats) = engine.extend_tasks(&dump.tasks);
        reports.push((name, stats.roofline(name, &cfg)));
    }

    println!("=== Figure 9: instruction roofline, kernel v2 (vs v1) ===\n");
    for (_, r) in &reports {
        println!("{}", r.render(&cfg));
    }
    let (v1, v2) = (&reports[0].1, &reports[1].1);
    println!("v2 / v1 ratios:");
    println!(
        "  warp GIPS:             {:.2}x (paper: higher for v2, peak 14.4 GIPS)",
        v2.gips / v1.gips
    );
    println!(
        "  instruction intensity: {:.2}x (paper: v2 moves right)",
        v2.intensity_l1 / v1.intensity_l1
    );
    println!(
        "  global ld/st insts:    {:.2}x (paper: significantly reduced)",
        v2.warp_insts as f64 / v1.warp_insts as f64
    );
    assert!(v2.gips > v1.gips, "v2 must beat v1 on GIPS");
    assert!(v2.intensity_l1 > v1.intensity_l1, "v2 must beat v1 on intensity");
}
