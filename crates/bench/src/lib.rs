//! Shared workload construction for the figure harnesses and benches.
//!
//! The paper's standalone kernel studies use "a data dump" of the contigs
//! and candidate reads flowing into local assembly (§4.1). [`local_assembly_dump`]
//! reproduces that: it runs the upstream pipeline (merge → k-mer analysis →
//! contig generation → alignment) on a preset and returns the extension
//! tasks, exactly what the GPU kernels consume.

use align::{collect_candidates, CandidateParams, SeedIndex};
use bioseq::{DnaSeq, Read};
use datagen::Preset;
use dbg::{count_kmers, generate_contigs, DbgGraph};
use locassm::{make_tasks, ExtTask, LocalAssemblyParams};
use mhm::{merge_reads, MergeParams};

/// The upstream dump feeding local assembly.
pub struct Dump {
    /// Contigs from the upstream pipeline.
    pub contigs: Vec<DnaSeq>,
    /// Normalized extension tasks (two per contig).
    pub tasks: Vec<ExtTask>,
    /// Reads used (post-merge).
    pub reads: Vec<Read>,
}

/// Parameters for dump generation.
pub struct DumpConfig {
    /// Contig-generation k.
    pub k: usize,
    /// Minimum contig length kept.
    pub min_contig_len: usize,
    /// Local-assembly parameter set used for task normalization.
    pub locassm: LocalAssemblyParams,
    /// Candidate-read selection criteria.
    pub candidates: CandidateParams,
}

impl Default for DumpConfig {
    fn default() -> Self {
        DumpConfig {
            k: 31,
            min_contig_len: 100,
            locassm: LocalAssemblyParams::for_tests(),
            candidates: CandidateParams::default(),
        }
    }
}

/// Run the upstream pipeline on a preset and dump local-assembly inputs.
pub fn local_assembly_dump(preset: &Preset, cfg: &DumpConfig) -> Dump {
    let (_, pairs) = preset.generate();
    let (reads, _) = merge_reads(&pairs, &MergeParams::default());
    let counts = count_kmers(&reads, cfg.k, 2);
    let graph = DbgGraph::new(cfg.k, counts);
    let contigs: Vec<DnaSeq> = generate_contigs(&graph, 2)
        .into_iter()
        .filter(|c| c.len() >= cfg.min_contig_len)
        .map(|c| c.seq)
        .collect();
    let idx = SeedIndex::build(&contigs, 17, 200);
    let cands = collect_candidates(&contigs, &reads, &idx, &cfg.candidates);
    let cand_pairs: Vec<(Vec<Read>, Vec<Read>)> =
        cands.into_iter().map(|c| (c.right, c.left)).collect();
    let tasks = make_tasks(&contigs, &cand_pairs, &cfg.locassm);
    Dump { contigs, tasks, reads }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::arcticsynth_like;

    #[test]
    fn dump_produces_tasks_with_reads() {
        let dump = local_assembly_dump(&arcticsynth_like(0.01), &DumpConfig::default());
        assert!(!dump.contigs.is_empty());
        assert_eq!(dump.tasks.len(), dump.contigs.len() * 2);
        assert!(
            dump.tasks.iter().any(|t| !t.reads.is_empty()),
            "some tasks must have candidate reads"
        );
    }
}
