//! Criterion bench: the local-assembly module itself — CPU engine wall
//! time and GPU engine simulation throughput on the arcticsynth-like dump.
//! (Backs Figures 12/13's module-level comparison.)

use bench::{local_assembly_dump, DumpConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use datagen::arcticsynth_like;
use gpusim::DeviceConfig;
use locassm::gpu::{GpuLocalAssembler, KernelVersion};
use locassm::{extend_all_cpu, LocalAssemblyParams};
use std::hint::black_box;
use std::time::Duration;

fn bench_local_assembly(c: &mut Criterion) {
    let dump = local_assembly_dump(&arcticsynth_like(0.02), &DumpConfig::default());
    let params = LocalAssemblyParams::for_tests();

    let mut group = c.benchmark_group("local_assembly");
    group.sample_size(10).measurement_time(Duration::from_secs(3));

    group.bench_function("cpu_engine", |b| {
        b.iter(|| black_box(extend_all_cpu(&dump.tasks, &params)))
    });

    group.bench_function("gpu_engine_v2_sim", |b| {
        b.iter(|| {
            let mut engine =
                GpuLocalAssembler::new(DeviceConfig::v100(), params.clone(), KernelVersion::V2);
            black_box(engine.extend_tasks(&dump.tasks))
        })
    });

    group.finish();

    // Report the simulated device time once (the figure-relevant number).
    let mut engine =
        GpuLocalAssembler::new(DeviceConfig::v100(), params.clone(), KernelVersion::V2);
    let (_, stats) = engine.extend_tasks(&dump.tasks);
    println!(
        "\n[local_assembly] simulated V100 time for {} device tasks: {:.6} s ({} launches)",
        stats.device_tasks, stats.seconds, stats.launches
    );
}

criterion_group!(benches, bench_local_assembly);
criterion_main!(benches);
