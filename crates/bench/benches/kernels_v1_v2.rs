//! Criterion bench: v1 vs v2 extension kernels (the Figures 8–10 contrast),
//! plus the simulated-device metrics printed after the timing runs.

use bench::{local_assembly_dump, DumpConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use datagen::arcticsynth_like;
use gpusim::{DeviceConfig, SanitizerConfig};
use locassm::gpu::{GpuLocalAssembler, KernelVersion};
use locassm::LocalAssemblyParams;
use std::hint::black_box;
use std::time::Duration;

fn bench_kernels(c: &mut Criterion) {
    let dump = local_assembly_dump(&arcticsynth_like(0.015), &DumpConfig::default());
    let params = LocalAssemblyParams::for_tests();

    let mut group = c.benchmark_group("extension_kernel");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for (name, version) in [("v1", KernelVersion::V1), ("v2", KernelVersion::V2)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut engine =
                    GpuLocalAssembler::new(DeviceConfig::v100(), params.clone(), version);
                black_box(engine.extend_tasks(&dump.tasks))
            })
        });
    }
    // Same workload under full gpucheck — the contrast with plain "v2"
    // quantifies the sanitizer's overhead (and "v2" itself is the evidence
    // that a sanitizer-off device pays nothing for the subsystem existing).
    group.bench_function("v2_gpucheck", |b| {
        b.iter(|| {
            let mut engine = GpuLocalAssembler::new(
                DeviceConfig::v100().with_sanitizer(SanitizerConfig::full()),
                params.clone(),
                KernelVersion::V2,
            );
            black_box(engine.extend_tasks(&dump.tasks))
        })
    });
    group.finish();

    for (name, version) in [("v1", KernelVersion::V1), ("v2", KernelVersion::V2)] {
        let cfg = DeviceConfig::v100();
        let mut engine = GpuLocalAssembler::new(cfg.clone(), params.clone(), version);
        let (_, stats) = engine.extend_tasks(&dump.tasks);
        let r = stats.roofline(name, &cfg);
        println!(
            "[{name}] simulated: {:.3} GIPS, intensity {:.3}, predication {:.0}%, global tx {}",
            r.gips,
            r.intensity_l1,
            r.predication_ratio * 100.0,
            r.global_transactions
        );
    }
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
