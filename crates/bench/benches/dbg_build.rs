//! Criterion bench: the upstream pipeline substrates — k-mer counting and
//! contig generation (the "k-mer analysis" / "contig generation" phases).

use criterion::{criterion_group, criterion_main, Criterion};
use datagen::arcticsynth_like;
use dbg::{count_kmers, generate_contigs, DbgGraph};
use mhm::{merge_reads, MergeParams};
use std::hint::black_box;
use std::time::Duration;

fn bench_dbg(c: &mut Criterion) {
    let (_, pairs) = arcticsynth_like(0.02).generate();
    let (reads, _) = merge_reads(&pairs, &MergeParams::default());

    let mut group = c.benchmark_group("dbg");
    group.sample_size(10).measurement_time(Duration::from_secs(3));

    for k in [21usize, 31, 41] {
        group.bench_function(format!("count_kmers_k{k}"), |b| {
            b.iter(|| black_box(count_kmers(&reads, k, 2)))
        });
    }

    let counts = count_kmers(&reads, 31, 2);
    group.bench_function("generate_contigs_k31", |b| {
        b.iter_batched(
            || DbgGraph::new(31, counts.clone()),
            |graph| black_box(generate_contigs(&graph, 2)),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_dbg);
criterion_main!(benches);
