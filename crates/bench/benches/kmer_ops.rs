//! Criterion micro-benchmarks of the k-mer primitives the kernels lean on:
//! extraction from packed words, murmur2 hashing, shift-walks, and the
//! pointer-key comparison (backs the §3.2 compact-key discussion).

use bioseq::{DnaSeq, PackedSeq};
use criterion::{criterion_group, criterion_main, Criterion};
use kmer::hash::{hash_kmer, murmur64a};
use kmer::Kmer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Duration;

fn random_seq(len: usize, sd: u64) -> DnaSeq {
    let mut rng = StdRng::seed_from_u64(sd);
    (0..len).map(|_| bioseq::Base::from_code(rng.gen_range(0..4))).collect()
}

fn bench_kmer_ops(c: &mut Criterion) {
    let seq = random_seq(10_000, 1);
    let packed = PackedSeq::from_seq(&seq);
    let mut group = c.benchmark_group("kmer_ops");
    group.sample_size(30).measurement_time(Duration::from_secs(2));

    for k in [21usize, 55, 99] {
        group.bench_function(format!("extract_from_packed_k{k}"), |b| {
            let mut pos = 0usize;
            b.iter(|| {
                pos = (pos + 37) % (seq.len() - k);
                black_box(Kmer::from_packed_words(packed.words(), pos, k))
            })
        });
        let km = Kmer::from_seq(&seq, 100, k);
        group.bench_function(format!("hash_k{k}"), |b| b.iter(|| black_box(hash_kmer(&km))));
        group.bench_function(format!("shift_right_k{k}"), |b| {
            let mut cur = km;
            b.iter(|| {
                cur = cur.shift_right(bioseq::Base::C);
                black_box(cur)
            })
        });
    }

    group.bench_function("murmur64a_32B", |b| {
        let data = [7u8; 32];
        b.iter(|| black_box(murmur64a(&data, 11)))
    });

    // Pointer-key comparison: re-extract + compare vs direct word compare.
    let k = 55;
    let a = Kmer::from_seq(&seq, 500, k);
    group.bench_function("key_compare_pointer_deref", |b| {
        b.iter(|| {
            let stored = Kmer::from_packed_words(packed.words(), 500, k);
            black_box(stored == a)
        })
    });
    group.bench_function("key_compare_materialized", |b| {
        let stored = Kmer::from_seq(&seq, 500, k);
        b.iter(|| black_box(stored == a))
    });
    group.finish();
}

criterion_group!(benches, bench_kmer_ops);
criterion_main!(benches);
