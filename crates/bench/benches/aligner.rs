//! Criterion bench: the alignment phase — seed-index build, read
//! alignment throughput, and the banded-SW "aln kernel".

use align::sw::{banded_sw, SwScoring};
use align::{align_read, AlignParams, SeedIndex};
use bioseq::{DnaSeq, Read};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Duration;

fn random_seq(len: usize, sd: u64) -> DnaSeq {
    let mut rng = StdRng::seed_from_u64(sd);
    (0..len).map(|_| bioseq::Base::from_code(rng.gen_range(0..4))).collect()
}

fn bench_aligner(c: &mut Criterion) {
    let contigs: Vec<DnaSeq> = (0..50).map(|i| random_seq(2_000, i)).collect();
    let reads: Vec<Read> = (0..200)
        .map(|i| {
            let ci = i % contigs.len();
            let start = (i * 31) % (contigs[ci].len() - 150);
            Read::with_uniform_qual(format!("r{i}"), contigs[ci].subseq(start, 150), 35)
        })
        .collect();

    let mut group = c.benchmark_group("aligner");
    group.sample_size(10).measurement_time(Duration::from_secs(3));

    group.bench_function("index_build_50x2kb", |b| {
        b.iter(|| black_box(SeedIndex::build(&contigs, 17, 200)))
    });

    let idx = SeedIndex::build(&contigs, 17, 200);
    let params = AlignParams::default();
    group.bench_function("align_200_reads", |b| {
        b.iter(|| {
            for r in &reads {
                black_box(align_read(&idx, &contigs, r, &params));
            }
        })
    });

    let q = random_seq(150, 999);
    let t = random_seq(300, 998);
    group.bench_function("banded_sw_150x300_band16", |b| {
        b.iter(|| black_box(banded_sw(&q, &t, SwScoring::default(), 16, 0)))
    });
    group.finish();
}

criterion_group!(benches, bench_aligner);
criterion_main!(benches);
