//! Ablation benches for the design choices called out in DESIGN.md §5:
//! per-bin cost structure (why bin-3-first scheduling pays), k-shift start
//! point, and the vote-viability threshold. Each prints the quality-side
//! effect (bases appended) next to the timing.

use bench::{local_assembly_dump, DumpConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use datagen::arcticsynth_like;
use gpusim::DeviceConfig;
use locassm::gpu::{GpuLocalAssembler, KernelVersion};
use locassm::{bin_tasks, extend_all_cpu, ExtTask, LocalAssemblyParams};
use std::hint::black_box;
use std::time::Duration;

fn bench_ablations(c: &mut Criterion) {
    let dump = local_assembly_dump(&arcticsynth_like(0.02), &DumpConfig::default());
    let params = LocalAssemblyParams::for_tests();

    // --- per-bin cost structure ---
    let bins = bin_tasks(&dump.tasks);
    let small: Vec<ExtTask> = bins.small.iter().map(|&i| dump.tasks[i].clone()).collect();
    let large: Vec<ExtTask> = bins.large.iter().map(|&i| dump.tasks[i].clone()).collect();
    let sim_secs = |tasks: &[ExtTask]| {
        if tasks.is_empty() {
            return 0.0;
        }
        let mut e = GpuLocalAssembler::new(DeviceConfig::v100(), params.clone(), KernelVersion::V2);
        let (_, s) = e.extend_tasks(tasks);
        s.seconds
    };
    let (ts, tl) = (sim_secs(&small), sim_secs(&large));
    println!(
        "[binning] bin2: {} tasks, {:.2} us sim/task | bin3: {} tasks, {:.2} us sim/task",
        small.len(),
        1e6 * ts / small.len().max(1) as f64,
        large.len(),
        1e6 * tl / large.len().max(1) as f64,
    );

    let mut group = c.benchmark_group("ablations");
    group.sample_size(10).measurement_time(Duration::from_secs(3));

    if !small.is_empty() {
        group.bench_function("cpu_bin2_only", |b| {
            b.iter(|| black_box(extend_all_cpu(&small, &params)))
        });
    }
    if !large.is_empty() {
        group.bench_function("cpu_bin3_only", |b| {
            b.iter(|| black_box(extend_all_cpu(&large, &params)))
        });
    }

    // --- k-shift start index ---
    for start in [0usize, 1, 2] {
        let p = LocalAssemblyParams { start_k_idx: start, ..params.clone() };
        let results = extend_all_cpu(&dump.tasks, &p);
        let appended: usize = results.iter().map(|r| r.appended.len()).sum();
        println!("[kshift] start_k_idx={start}: {appended} bases appended");
        group.bench_function(format!("kshift_start{start}"), |b| {
            b.iter(|| black_box(extend_all_cpu(&dump.tasks, &p)))
        });
    }

    // --- vote-viability threshold ---
    for mv in [1u16, 2, 3] {
        let p = LocalAssemblyParams { min_viable: mv, ..params.clone() };
        let results = extend_all_cpu(&dump.tasks, &p);
        let appended: usize = results.iter().map(|r| r.appended.len()).sum();
        println!("[min_viable] {mv}: {appended} bases appended");
    }

    // --- CPU/GPU overlap driver (DESIGN.md ablation 5) ---
    for frac in [0.0, 0.5, 1.0] {
        let driver = locassm::OverlapDriver::static_split(frac);
        let out = driver.run(&dump.tasks, &params).expect("driver runs");
        println!(
            "[overlap] cpu_bin2_fraction={frac}: cpu {} tasks / {:.4}s wall, gpu {} tasks / {:.4}s wall ({:.6}s sim)",
            out.cpu_tasks,
            out.cpu_wall_s,
            out.gpu_tasks,
            out.gpu_wall_s,
            out.gpu_stats.as_ref().map_or(0.0, |s| s.seconds),
        );
        group.bench_function(format!("overlap_driver_frac{frac}"), |b| {
            let d = locassm::OverlapDriver::static_split(frac);
            b.iter(|| black_box(d.run(&dump.tasks, &params)))
        });
    }
    {
        let driver = locassm::OverlapDriver::work_stealing();
        let out = driver.run(&dump.tasks, &params).expect("driver runs");
        println!(
            "[overlap] work-steal: cpu {} tasks / {} est words, gpu {} tasks / {} est words, model makespan {:.6}s",
            out.cpu_tasks,
            out.schedule.cpu_est_words,
            out.gpu_tasks,
            out.schedule.gpu_est_words,
            out.schedule.makespan_model_s(),
        );
        group.bench_function("overlap_driver_worksteal", |b| {
            let d = locassm::OverlapDriver::work_stealing();
            b.iter(|| black_box(d.run(&dump.tasks, &params)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
