//! Synthetic metagenome data generation.
//!
//! The paper evaluates on two datasets we cannot ship: **arcticsynth** (32 M
//! synthetic 150 bp reads from a controlled community) and **WA** (813 GB of
//! real Western-Arctic marine reads). What local assembly actually responds
//! to is the *statistics* of such data — the number of species, the skew of
//! their abundances (which drives coverage variance and therefore the
//! contig/candidate-read distribution across the paper's three bins), read
//! length, and sequencing error rate. This crate generates communities with
//! exactly those controls:
//!
//! * [`community::generate_community`] — random genomes with log-normal
//!   abundances (the canonical model for metagenome species abundance);
//! * [`reads::simulate_reads`] — Illumina-like paired-end reads:
//!   uniform sampling along genomes weighted by abundance, substitution
//!   errors driven by per-base Phred qualities;
//! * [`presets`] — "arcticsynth-like" and "WA-like" configurations scaled
//!   to workstation size, with the scale factors documented.

pub mod community;
pub mod presets;
pub mod reads;

pub use community::{generate_community, Community, CommunityConfig, Genome};
pub use presets::{arcticsynth_like, wa_like, Preset};
pub use reads::{simulate_reads, ReadSimConfig};
