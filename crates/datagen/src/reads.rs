//! Illumina-like paired-end read simulation.

use crate::community::Community;
use bioseq::{phred_to_prob, Base, DnaSeq, PairedRead, Read};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// Read-simulation parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReadSimConfig {
    /// Read length (paper datasets: 150 bp).
    pub read_len: usize,
    /// Number of read *pairs* to generate.
    pub n_pairs: usize,
    /// Mean insert (fragment) size.
    pub insert_mean: f64,
    /// Insert size standard deviation.
    pub insert_sd: f64,
    /// Mean Phred quality of good bases.
    pub qual_hi: u8,
    /// Phred quality of the degraded tail / bad cycles.
    pub qual_lo: u8,
    /// Fraction of bases that get the low quality (errors follow quality).
    pub lo_frac: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ReadSimConfig {
    fn default() -> Self {
        ReadSimConfig {
            read_len: 150,
            n_pairs: 10_000,
            insert_mean: 350.0,
            insert_sd: 30.0,
            qual_hi: 38,
            qual_lo: 8,
            lo_frac: 0.02,
            seed: 1,
        }
    }
}

/// Simulate paired-end reads from a community.
///
/// Fragments are drawn from genomes proportionally to abundance, positions
/// uniformly. Mate 1 is the fragment's 5' prefix; mate 2 is the reverse
/// complement of its 3' suffix. Each base receives a Phred score and then a
/// substitution error with probability `10^(-q/10)` — so low-quality bases
/// really are less trustworthy, which is what the extension objects'
/// quality tiers key on.
pub fn simulate_reads(community: &Community, cfg: &ReadSimConfig) -> Vec<PairedRead> {
    assert!(cfg.read_len >= 1);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let insert_dist = Normal::new(cfg.insert_mean, cfg.insert_sd).expect("valid insert");
    // Cumulative abundance for genome selection.
    let mut cum = Vec::with_capacity(community.abundances.len());
    let mut acc = 0.0;
    for &a in &community.abundances {
        acc += a;
        cum.push(acc);
    }
    let mut pairs = Vec::with_capacity(cfg.n_pairs);
    let mut pair_id = 0usize;
    while pairs.len() < cfg.n_pairs {
        let x: f64 = rng.gen_range(0.0..acc);
        let gi = cum.partition_point(|&c| c < x).min(community.genomes.len() - 1);
        let genome = &community.genomes[gi].seq;
        let insert =
            (insert_dist.sample(&mut rng).round() as usize).clamp(cfg.read_len, usize::MAX);
        if genome.len() < insert {
            continue; // genome too short for this fragment; resample
        }
        let start = rng.gen_range(0..=genome.len() - insert);
        let frag = genome.subseq(start, insert);
        let r1 = sample_read(&frag, cfg, &mut rng, false, format!("p{pair_id}/1"));
        let r2 = sample_read(&frag, cfg, &mut rng, true, format!("p{pair_id}/2"));
        let mut pr = PairedRead::new(r1, r2);
        pr.insert_size = Some(insert as u32);
        pairs.push(pr);
        pair_id += 1;
    }
    pairs
}

fn sample_read(
    frag: &DnaSeq,
    cfg: &ReadSimConfig,
    rng: &mut StdRng,
    from_3prime: bool,
    id: String,
) -> Read {
    let tmpl = if from_3prime {
        frag.subseq(frag.len() - cfg.read_len, cfg.read_len).revcomp()
    } else {
        frag.subseq(0, cfg.read_len)
    };
    let mut seq = DnaSeq::with_capacity(cfg.read_len);
    let mut quals = Vec::with_capacity(cfg.read_len);
    for i in 0..cfg.read_len {
        let q = if rng.gen_bool(cfg.lo_frac) { cfg.qual_lo } else { cfg.qual_hi };
        let mut code = tmpl.code(i);
        if rng.gen_bool(phred_to_prob(q)) {
            // Substitution: one of the three other bases.
            code = (code + rng.gen_range(1..4)) & 3;
        }
        seq.push(Base::from_code(code));
        quals.push(q);
    }
    Read::new(id, seq, quals)
}

/// Flatten pairs into single reads (both mates), as the assembler ingests.
pub fn flatten_pairs(pairs: &[PairedRead]) -> Vec<Read> {
    let mut out = Vec::with_capacity(pairs.len() * 2);
    for p in pairs {
        out.push(p.r1.clone());
        out.push(p.r2.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::community::{generate_community, CommunityConfig};

    fn small_community(seed: u64) -> Community {
        generate_community(&CommunityConfig {
            n_species: 3,
            genome_len: (5_000, 6_000),
            abundance_sigma: 0.5,
            seed,
            ..Default::default()
        })
    }

    fn sim_cfg(n: usize) -> ReadSimConfig {
        ReadSimConfig {
            n_pairs: n,
            read_len: 100,
            insert_mean: 250.0,
            insert_sd: 20.0,
            ..Default::default()
        }
    }

    #[test]
    fn deterministic() {
        let c = small_community(1);
        let a = simulate_reads(&c, &sim_cfg(100));
        let b = simulate_reads(&c, &sim_cfg(100));
        assert_eq!(a, b);
    }

    #[test]
    fn read_shape() {
        let c = small_community(2);
        let pairs = simulate_reads(&c, &sim_cfg(50));
        assert_eq!(pairs.len(), 50);
        for p in &pairs {
            assert_eq!(p.r1.len(), 100);
            assert_eq!(p.r2.len(), 100);
            assert!(p.insert_size.unwrap() >= 100);
        }
    }

    #[test]
    fn mate1_matches_genome_mostly() {
        // With errors ~ 1% (hi qual 38 + 2% low-qual bases) mate 1 should
        // be a near-substring of some genome.
        let c = small_community(3);
        let pairs = simulate_reads(&c, &sim_cfg(20));
        let mut matched = 0;
        for p in &pairs {
            for g in &c.genomes {
                // Check a 40-base error-free window exists in the genome.
                for start in [0usize, 30, 60] {
                    if g.seq.contains(&p.r1.seq.subseq(start, 40)) {
                        matched += 1;
                        break;
                    }
                }
            }
        }
        assert!(matched >= 15, "only {matched}/20 mate-1s matched a genome");
    }

    #[test]
    fn mate2_is_reverse_strand() {
        let c = small_community(4);
        let pairs = simulate_reads(&c, &sim_cfg(20));
        let mut matched = 0;
        for p in &pairs {
            let rc = p.r2.seq.revcomp();
            for g in &c.genomes {
                for start in [0usize, 30, 60] {
                    if g.seq.contains(&rc.subseq(start, 40)) {
                        matched += 1;
                        break;
                    }
                }
            }
        }
        assert!(matched >= 15, "only {matched}/20 mate-2s matched reverse strand");
    }

    #[test]
    fn abundance_drives_sampling() {
        let mut c = small_community(5);
        // Make species 0 dominate.
        c.abundances = vec![0.9, 0.05, 0.05];
        let pairs = simulate_reads(&c, &sim_cfg(200));
        let mut counts = [0usize; 3];
        for p in &pairs {
            for (gi, g) in c.genomes.iter().enumerate() {
                if g.seq.contains(&p.r1.seq.subseq(0, 30))
                    || g.seq.contains(&p.r1.seq.subseq(0, 30).revcomp())
                {
                    counts[gi] += 1;
                    break;
                }
            }
        }
        assert!(
            counts[0] > 5 * (counts[1] + counts[2]).max(1),
            "dominant species undersampled: {counts:?}"
        );
    }

    #[test]
    fn flatten_interleaves() {
        let c = small_community(6);
        let pairs = simulate_reads(&c, &sim_cfg(5));
        let flat = flatten_pairs(&pairs);
        assert_eq!(flat.len(), 10);
        assert_eq!(flat[0].id, "p0/1");
        assert_eq!(flat[1].id, "p0/2");
    }

    #[test]
    fn error_rate_tracks_quality() {
        // With all-low-quality reads, mismatches versus the template must
        // be much more frequent.
        let c = small_community(7);
        let hi = simulate_reads(
            &c,
            &ReadSimConfig { lo_frac: 0.0, n_pairs: 50, read_len: 100, ..Default::default() },
        );
        let lo = simulate_reads(
            &c,
            &ReadSimConfig {
                lo_frac: 1.0,
                n_pairs: 50,
                read_len: 100,
                seed: 1,
                ..Default::default()
            },
        );
        let err_frac = |pairs: &[PairedRead], comm: &Community| {
            let mut total = 0usize;
            let mut errs = 0usize;
            for p in pairs {
                // Find the best-matching genome window by brute force.
                let probe = &p.r1.seq;
                let mut best = usize::MAX;
                for g in &comm.genomes {
                    for s in 0..g.seq.len().saturating_sub(probe.len()) {
                        let d = g.seq.subseq(s, probe.len()).hamming(probe);
                        best = best.min(d);
                        if best == 0 {
                            break;
                        }
                    }
                }
                if best != usize::MAX {
                    total += probe.len();
                    errs += best;
                }
            }
            errs as f64 / total.max(1) as f64
        };
        // Sample a few pairs to keep the brute force cheap.
        let e_hi = err_frac(&hi[..6], &c);
        let e_lo = err_frac(&lo[..6], &c);
        assert!(e_lo > e_hi + 0.05, "low-qual reads must err more: {e_hi:.4} vs {e_lo:.4}");
    }
}
