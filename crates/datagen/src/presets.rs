//! Dataset presets standing in for the paper's arcticsynth and WA datasets.
//!
//! | preset | stands in for | paper size | our size | scale factor |
//! |--------|---------------|------------|----------|--------------|
//! | `arcticsynth_like(1.0)` | arcticsynth (synthetic community) | 32 M reads | 20 k pairs | ~1/800 |
//! | `wa_like(1.0)` | WA marine communities | 2.465 B reads | 60 k pairs | ~1/20 000 |
//!
//! The scale factor shrinks read count *and* genome sizes together so
//! per-base coverage — the statistic local assembly sees — stays in the
//! paper's regime (arcticsynth ≈ uniform synthetic coverage; WA ≈ skewed
//! community with long coverage tail). The `scale` argument multiplies the
//! default sizes for larger benchmark runs.

use crate::community::{generate_community, Community, CommunityConfig};
use crate::reads::{simulate_reads, ReadSimConfig};
use bioseq::PairedRead;
use serde::{Deserialize, Serialize};

/// A fully-specified dataset preset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Preset {
    pub name: String,
    pub community: CommunityConfig,
    pub reads: ReadSimConfig,
}

impl Preset {
    /// Materialize the preset: generate the community and its reads.
    pub fn generate(&self) -> (Community, Vec<PairedRead>) {
        let community = generate_community(&self.community);
        let pairs = simulate_reads(&community, &self.reads);
        (community, pairs)
    }
}

/// Arcticsynth-like: a modest synthetic community with mild skew and clean
/// reads — the paper's small-scale / standalone-kernel dataset.
pub fn arcticsynth_like(scale: f64) -> Preset {
    assert!(scale > 0.0);
    let n_pairs = ((20_000.0 * scale) as usize).max(200);
    Preset {
        name: format!("arcticsynth-like(x{scale})"),
        community: CommunityConfig {
            n_species: ((12.0 * scale.sqrt()) as usize).max(3),
            genome_len: (30_000, 80_000),
            abundance_sigma: 0.8,
            repeat_prob: 0.02,
            repeat_period: 97,
            seed: 0xA5C7,
        },
        reads: ReadSimConfig {
            read_len: 150,
            n_pairs,
            insert_mean: 350.0,
            insert_sd: 30.0,
            qual_hi: 38,
            qual_lo: 8,
            lo_frac: 0.02,
            seed: 0xA5C7_0001,
        },
    }
}

/// WA-like: many species, strong abundance skew, more repeats — the
/// paper's large-scale marine-communities dataset, scaled down.
pub fn wa_like(scale: f64) -> Preset {
    assert!(scale > 0.0);
    let n_pairs = ((60_000.0 * scale) as usize).max(500);
    Preset {
        name: format!("WA-like(x{scale})"),
        community: CommunityConfig {
            n_species: ((40.0 * scale.sqrt()) as usize).max(5),
            genome_len: (20_000, 120_000),
            abundance_sigma: 1.8,
            repeat_prob: 0.05,
            repeat_period: 131,
            seed: 0x3A11,
        },
        reads: ReadSimConfig {
            read_len: 150,
            n_pairs,
            insert_mean: 400.0,
            insert_sd: 40.0,
            qual_hi: 37,
            qual_lo: 6,
            lo_frac: 0.03,
            seed: 0x3A11_0001,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_generate() {
        let (community, pairs) = arcticsynth_like(0.02).generate();
        assert!(!community.genomes.is_empty());
        assert_eq!(pairs.len(), 400);
    }

    #[test]
    fn wa_is_more_skewed_than_arctic() {
        let a = generate_community(&arcticsynth_like(0.1).community);
        let w = generate_community(&wa_like(0.1).community);
        let skew = |c: &Community| {
            let max = c.abundances.iter().cloned().fold(0.0, f64::max);
            max * c.abundances.len() as f64
        };
        assert!(skew(&w) > skew(&a), "WA-like must be more skewed");
        assert!(w.genomes.len() > a.genomes.len());
    }

    #[test]
    fn scale_grows_pairs() {
        assert!(wa_like(2.0).reads.n_pairs > wa_like(1.0).reads.n_pairs);
        assert_eq!(arcticsynth_like(1.0).reads.n_pairs, 20_000);
    }

    #[test]
    fn deterministic_across_calls() {
        let (c1, p1) = arcticsynth_like(0.01).generate();
        let (c2, p2) = arcticsynth_like(0.01).generate();
        assert_eq!(c1.genomes, c2.genomes);
        assert_eq!(p1, p2);
    }
}
