//! Community generation: random genomes with log-normal abundances.

use bioseq::{Base, DnaSeq};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, LogNormal};
use serde::{Deserialize, Serialize};

/// One reference genome in the community.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Genome {
    pub id: String,
    pub seq: DnaSeq,
}

/// A synthetic community: genomes plus normalized relative abundances.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Community {
    pub genomes: Vec<Genome>,
    /// Relative abundances, sum = 1.
    pub abundances: Vec<f64>,
}

impl Community {
    /// Total bases across all genomes.
    pub fn total_bases(&self) -> usize {
        self.genomes.iter().map(|g| g.seq.len()).sum()
    }

    /// Expected coverage of genome `i` when sampling `n_reads` reads of
    /// `read_len` with abundance-weighted genome selection.
    pub fn expected_coverage(&self, i: usize, n_reads: usize, read_len: usize) -> f64 {
        self.abundances[i] * n_reads as f64 * read_len as f64 / self.genomes[i].seq.len() as f64
    }
}

/// Parameters for community generation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CommunityConfig {
    /// Number of species.
    pub n_species: usize,
    /// Genome length range (inclusive min, exclusive max).
    pub genome_len: (usize, usize),
    /// σ of the log-normal abundance distribution (0 = uniform community;
    /// real metagenomes are highly skewed, σ ≈ 1–2).
    pub abundance_sigma: f64,
    /// Order-2 Markov repetitiveness: probability that the next base copies
    /// the base `period` positions back (creates repeats that fork de
    /// Bruijn graphs, as real genomes do).
    pub repeat_prob: f64,
    /// Period of the copy-back process.
    pub repeat_period: usize,
    /// RNG seed — all generation is deterministic given the config.
    pub seed: u64,
}

impl Default for CommunityConfig {
    fn default() -> Self {
        CommunityConfig {
            n_species: 10,
            genome_len: (20_000, 60_000),
            abundance_sigma: 1.0,
            repeat_prob: 0.0,
            repeat_period: 97,
            seed: 42,
        }
    }
}

/// Generate a community deterministically from the config.
pub fn generate_community(cfg: &CommunityConfig) -> Community {
    assert!(cfg.n_species > 0, "need at least one species");
    assert!(cfg.genome_len.0 >= 1 && cfg.genome_len.1 > cfg.genome_len.0);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut genomes = Vec::with_capacity(cfg.n_species);
    for s in 0..cfg.n_species {
        let len = rng.gen_range(cfg.genome_len.0..cfg.genome_len.1);
        let mut seq = DnaSeq::with_capacity(len);
        for i in 0..len {
            let code = if i >= cfg.repeat_period && rng.gen_bool(cfg.repeat_prob) {
                seq.code(i - cfg.repeat_period)
            } else {
                rng.gen_range(0..4)
            };
            seq.push(Base::from_code(code));
        }
        genomes.push(Genome { id: format!("species_{s}"), seq });
    }
    let abundances = if cfg.abundance_sigma <= 0.0 {
        vec![1.0 / cfg.n_species as f64; cfg.n_species]
    } else {
        let dist = LogNormal::new(0.0, cfg.abundance_sigma).expect("valid sigma");
        let raw: Vec<f64> = (0..cfg.n_species).map(|_| dist.sample(&mut rng)).collect();
        let sum: f64 = raw.iter().sum();
        raw.into_iter().map(|x| x / sum).collect()
    };
    Community { genomes, abundances }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let cfg = CommunityConfig::default();
        let a = generate_community(&cfg);
        let b = generate_community(&cfg);
        assert_eq!(a.genomes, b.genomes);
        assert_eq!(a.abundances, b.abundances);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = CommunityConfig::default();
        let a = generate_community(&cfg);
        cfg.seed = 43;
        let b = generate_community(&cfg);
        assert_ne!(a.genomes[0].seq, b.genomes[0].seq);
    }

    #[test]
    fn abundances_normalized() {
        let cfg = CommunityConfig { n_species: 25, abundance_sigma: 1.5, ..Default::default() };
        let c = generate_community(&cfg);
        let sum: f64 = c.abundances.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(c.abundances.iter().all(|&a| a > 0.0));
    }

    #[test]
    fn uniform_when_sigma_zero() {
        let cfg = CommunityConfig { n_species: 4, abundance_sigma: 0.0, ..Default::default() };
        let c = generate_community(&cfg);
        for &a in &c.abundances {
            assert!((a - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn skewed_abundances_are_skewed() {
        let cfg =
            CommunityConfig { n_species: 40, abundance_sigma: 2.0, seed: 7, ..Default::default() };
        let c = generate_community(&cfg);
        let max = c.abundances.iter().cloned().fold(0.0, f64::max);
        let min = c.abundances.iter().cloned().fold(1.0, f64::min);
        assert!(max / min > 10.0, "σ=2 must produce strong skew (got {})", max / min);
    }

    #[test]
    fn genome_lengths_in_range() {
        let cfg = CommunityConfig { genome_len: (500, 700), n_species: 8, ..Default::default() };
        let c = generate_community(&cfg);
        for g in &c.genomes {
            assert!(g.seq.len() >= 500 && g.seq.len() < 700);
        }
    }

    #[test]
    fn repeats_increase_self_similarity() {
        let base = CommunityConfig {
            n_species: 1,
            genome_len: (8000, 8001),
            repeat_prob: 0.0,
            seed: 3,
            ..Default::default()
        };
        let plain = generate_community(&base);
        let repeaty = generate_community(&CommunityConfig { repeat_prob: 0.4, ..base });
        let self_match = |g: &DnaSeq, period: usize| {
            (period..g.len()).filter(|&i| g.code(i) == g.code(i - period)).count() as f64
                / (g.len() - period) as f64
        };
        let p = self_match(&plain.genomes[0].seq, 97);
        let r = self_match(&repeaty.genomes[0].seq, 97);
        assert!(r > p + 0.2, "repeat process must raise periodic self-match ({p:.2} -> {r:.2})");
    }

    #[test]
    fn expected_coverage_math() {
        let cfg = CommunityConfig {
            n_species: 1,
            genome_len: (10_000, 10_001),
            abundance_sigma: 0.0,
            ..Default::default()
        };
        let c = generate_community(&cfg);
        let cov = c.expected_coverage(0, 1000, 100);
        assert!((cov - 10.0).abs() < 1e-9);
    }
}
