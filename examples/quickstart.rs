//! Quickstart: assemble a small synthetic metagenome end to end.
//!
//! ```text
//! cargo run --release -p bench --example quickstart
//! ```
//!
//! Generates a 4-species community, simulates paired-end reads, runs the
//! full MetaHipMer-like pipeline (merge → k-mer analysis → contig
//! generation → alignment → local assembly → scaffolding), and prints the
//! assembly statistics and per-phase timing breakdown.

use datagen::{generate_community, simulate_reads, CommunityConfig, ReadSimConfig};
use mhm::report::render_breakdown;
use mhm::{run_pipeline, PipelineConfig};

fn main() {
    // 1. A small community: 4 species, 20-30 kb genomes, mild abundance skew.
    let community = generate_community(&CommunityConfig {
        n_species: 4,
        genome_len: (20_000, 30_000),
        abundance_sigma: 0.6,
        seed: 7,
        ..Default::default()
    });
    println!(
        "community: {} genomes, {} total bases",
        community.genomes.len(),
        community.total_bases()
    );
    for (g, a) in community.genomes.iter().zip(&community.abundances) {
        println!("  {:<12} {:>6} bp  abundance {:.3}", g.id, g.seq.len(), a);
    }

    // 2. Illumina-like paired reads at ~30x mean coverage.
    let pairs = simulate_reads(
        &community,
        &ReadSimConfig { n_pairs: 20_000, read_len: 150, ..Default::default() },
    );
    println!("\nsimulated {} read pairs of 150 bp", pairs.len());

    // 3. Assemble.
    let result = run_pipeline(&pairs, &PipelineConfig::default()).expect("pipeline runs");

    // 4. Report.
    let s = &result.stats;
    println!("\nassembly:");
    println!("  merged pairs:        {}/{}", s.merge.merged, s.merge.pairs_in);
    println!("  distinct k-mers:     {}", s.distinct_kmers);
    println!("  contigs:             {} (of {} raw)", s.contigs_kept, s.contigs_initial);
    println!("  local assembly:      {} tasks, {} bases appended", s.tasks, s.bases_appended);
    println!("  walk outcomes:       {}", s.ext_summary.render());
    let (b1, b2, b3) = s.bins.percentages();
    println!("  task bins:           {b1:.1}% zero-read, {b2:.1}% small, {b3:.2}% large");
    println!("  scaffolds:           {}", s.scaffolds);
    let longest = result.contigs.iter().map(|c| c.len()).max().unwrap_or(0);
    println!("  longest contig:      {longest} bp");
    println!();
    println!("{}", render_breakdown("pipeline wall-time breakdown", &result.timings));
}
