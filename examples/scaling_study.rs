//! Summit strong-scaling study: the model behind Figures 13 and 14.
//!
//! ```text
//! cargo run --release -p bench --example scaling_study
//! ```
//!
//! Prints the projected local-assembly and whole-pipeline times for 64-1024
//! Summit nodes, plus a sensitivity sweep over the fixed per-node GPU
//! overhead — the parameter that controls how fast the GPU advantage decays
//! under strong scaling.

use mhm::report::render_table;
use mhm::scaling::{PaperAnchors, ScalingModel};

fn main() {
    let model = ScalingModel::from_anchors(PaperAnchors::default());
    println!("=== Local assembly and pipeline across Summit node counts ===\n");
    let mut rows = Vec::new();
    for nodes in [64.0, 96.0, 128.0, 192.0, 256.0, 384.0, 512.0, 768.0, 1024.0] {
        rows.push(vec![
            format!("{nodes:.0}"),
            format!("{:.1}", model.la_cpu_s(nodes).expect("anchored node count")),
            format!("{:.1}", model.la_gpu_s(nodes).expect("anchored node count")),
            format!("{:.2}x", model.la_speedup(nodes).expect("anchored node count")),
            format!("{:.0}", model.pipeline_at(nodes, false).expect("anchored node count").total()),
            format!("{:.0}", model.pipeline_at(nodes, true).expect("anchored node count").total()),
            format!("{:.1}%", model.overall_speedup_pct(nodes).expect("anchored node count")),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "nodes",
                "LA cpu s",
                "LA gpu s",
                "LA speedup",
                "total cpu s",
                "total gpu s",
                "overall"
            ],
            &rows
        )
    );

    println!("\n=== Sensitivity: fixed per-node GPU overhead F ===\n");
    println!(
        "fitted F = {:.2} s/node (from the paper's 7x@64 and 2.65x@1024 anchors)\n",
        model.gpu_overhead_s
    );
    let mut rows = Vec::new();
    for scale in [0.5, 1.0, 2.0, 4.0] {
        let mut m = model.clone();
        m.gpu_overhead_s *= scale;
        rows.push(vec![
            format!("{:.2}", m.gpu_overhead_s),
            format!("{:.2}x", m.la_speedup(64.0).expect("anchored node count")),
            format!("{:.2}x", m.la_speedup(256.0).expect("anchored node count")),
            format!("{:.2}x", m.la_speedup(1024.0).expect("anchored node count")),
        ]);
    }
    println!(
        "{}",
        render_table(&["F (s/node)", "speedup@64", "speedup@256", "speedup@1024"], &rows)
    );
    println!("\nHalving the per-offload overhead would hold >4x to 1024 nodes;");
    println!("quadrupling it would erase the GPU win beyond ~512 nodes — the");
    println!("design pressure behind the paper's batching and bin-3-first driver.");
}
