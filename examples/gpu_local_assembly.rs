//! Standalone GPU local assembly — the paper's §4.1 workflow: dump the
//! contigs and candidate reads flowing into local assembly, then run the
//! GPU kernels on the dump and study them in isolation.
//!
//! ```text
//! cargo run --release -p bench --example gpu_local_assembly
//! ```
//!
//! Runs the CPU reference and both GPU kernel versions on the same dump,
//! verifies they agree base-for-base, and prints the roofline
//! characterization of each kernel (the Figures 8/9 data).

use bench::{local_assembly_dump, DumpConfig};
use datagen::arcticsynth_like;
use gpusim::DeviceConfig;
use locassm::gpu::{GpuLocalAssembler, KernelVersion};
use locassm::{bin_tasks, extend_all_cpu, LocalAssemblyParams};
use std::time::Instant;

fn main() {
    // Upstream pipeline → local-assembly input dump.
    let preset = arcticsynth_like(0.05);
    println!("generating dump from {} ...", preset.name);
    let dump = local_assembly_dump(&preset, &DumpConfig::default());
    let stats = bin_tasks(&dump.tasks);
    let (b1, b2, b3) = stats.percentages();
    println!(
        "{} contigs -> {} extension tasks (bins: {b1:.1}% / {b2:.1}% / {b3:.2}%)\n",
        dump.contigs.len(),
        dump.tasks.len()
    );

    let params = LocalAssemblyParams::for_tests();

    // CPU reference (all cores, rayon).
    let t = Instant::now();
    let cpu = extend_all_cpu(&dump.tasks, &params);
    let cpu_wall = t.elapsed().as_secs_f64();
    let appended: usize = cpu.iter().map(|r| r.appended.len()).sum();
    println!("CPU engine: {appended} bases appended in {cpu_wall:.3} s wall");

    // GPU kernels on the simulated V100.
    let cfg = DeviceConfig::v100();
    for (name, version) in [("v1", KernelVersion::V1), ("v2", KernelVersion::V2)] {
        let mut engine = GpuLocalAssembler::new(cfg.clone(), params.clone(), version);
        let (results, gstats) = engine.extend_tasks(&dump.tasks);
        assert_eq!(results, cpu, "{name} must match the CPU reference");
        println!(
            "\nGPU kernel {name}: identical output; simulated V100 time {:.6} s over {} launches",
            gstats.seconds, gstats.launches
        );
        println!("{}", gstats.roofline(name, &cfg).render(&cfg));
    }
    println!("(All three engines produced byte-identical extensions.)");
}
