//! A skewed "marine-community" assembly (WA-like preset): the workload the
//! paper's large-scale evaluation runs, scaled to a workstation.
//!
//! ```text
//! cargo run --release -p bench --example marine_metagenome
//! ```
//!
//! Assembles the WA-like dataset twice — once with the CPU local-assembly
//! engine and once with the simulated-GPU engine — and compares the phase
//! breakdowns (the laptop-scale analogue of Figures 2a/2b).

use datagen::wa_like;
use gpusim::DeviceConfig;
use locassm::gpu::KernelVersion;
use mhm::report::render_breakdown;
use mhm::{run_pipeline, EngineChoice, Phase, PipelineConfig};

fn main() {
    let preset = wa_like(0.2);
    println!("generating {} ...", preset.name);
    let (community, pairs) = preset.generate();
    println!(
        "{} species (abundance skew sigma=1.8), {} read pairs\n",
        community.genomes.len(),
        pairs.len()
    );

    let cpu_cfg = PipelineConfig::default();
    let gpu_cfg = PipelineConfig {
        engine: EngineChoice::Gpu { device: DeviceConfig::v100(), version: KernelVersion::V2 },
        ..PipelineConfig::default()
    };

    println!("assembling with CPU local assembly ...");
    let cpu = run_pipeline(&pairs, &cpu_cfg).expect("pipeline runs");
    println!("assembling with GPU local assembly ...");
    let gpu = run_pipeline(&pairs, &gpu_cfg).expect("pipeline runs");
    assert_eq!(cpu.contigs, gpu.contigs, "engines must agree");

    println!("\n{}", render_breakdown("with CPU local assembly", &cpu.timings));
    println!(
        "{}",
        render_breakdown(
            "with GPU local assembly (LA entry = simulated V100 seconds)",
            &gpu.timings
        )
    );
    println!(
        "local assembly share: {:.1}% -> {:.1}% of total (paper at Summit scale: 34% -> 6%)",
        100.0 * cpu.timings.get(Phase::LocalAssembly) / cpu.timings.total(),
        100.0 * gpu.timings.get(Phase::LocalAssembly) / gpu.timings.total(),
    );
    println!(
        "\nassembly: {} contigs, {} scaffolds, {} bases appended by local assembly",
        gpu.stats.contigs_kept, gpu.stats.scaffolds, gpu.stats.bases_appended
    );
    let gstats = gpu.stats.gpu.as_ref().expect("gpu stats");
    println!(
        "device: {} tasks in {} launches, peak {:.1} MB of 16 GB",
        gstats.device_tasks,
        gstats.launches,
        gstats.peak_mem_words as f64 * 8.0 / 1e6
    );
}
