//! Qualitative claims of the SC'21 paper, asserted against the simulator
//! and the scaling model. Each test names the paper section/figure whose
//! claim it checks.

use align::{collect_candidates, CandidateParams, SeedIndex};
use bioseq::{DnaSeq, Read};
use datagen::{arcticsynth_like, Preset};
use dbg::{count_kmers, generate_contigs, DbgGraph};
use gpusim::DeviceConfig;
use locassm::gpu::layout::load_factor;
use locassm::gpu::{GpuLocalAssembler, KernelVersion};
use locassm::{bin_tasks, make_tasks, ExtTask, LocalAssemblyParams};
use mhm::scaling::{PaperAnchors, ScalingModel};
use mhm::{merge_reads, MergeParams, Phase};

/// Shared small dump of local-assembly tasks from the arcticsynth-like
/// preset (built once; tests slice what they need).
fn dump_tasks(preset: &Preset, k: usize) -> Vec<ExtTask> {
    let (_, pairs) = preset.generate();
    let (reads, _) = merge_reads(&pairs, &MergeParams::default());
    let counts = count_kmers(&reads, k, 2);
    let graph = DbgGraph::new(k, counts);
    let contigs: Vec<DnaSeq> =
        generate_contigs(&graph, 2).into_iter().filter(|c| c.len() >= 100).map(|c| c.seq).collect();
    let idx = SeedIndex::build(&contigs, 17, 200);
    let cands = collect_candidates(&contigs, &reads, &idx, &CandidateParams::default());
    let cand_pairs: Vec<(Vec<Read>, Vec<Read>)> =
        cands.into_iter().map(|c| (c.right, c.left)).collect();
    make_tasks(&contigs, &cand_pairs, &LocalAssemblyParams::for_tests())
}

fn run_kernel(tasks: &[ExtTask], version: KernelVersion) -> locassm::gpu::GpuRunStats {
    let mut engine =
        GpuLocalAssembler::new(DeviceConfig::v100(), LocalAssemblyParams::for_tests(), version);
    engine.extend_tasks(tasks).1
}

#[test]
fn fig8_fig9_v2_moves_up_and_right() {
    // §4.2: "the L1 dot moves in the upper-right direction when moving
    // from v1 to v2".
    let tasks = dump_tasks(&arcticsynth_like(0.01), 31);
    let cfg = DeviceConfig::v100();
    let v1 = run_kernel(&tasks, KernelVersion::V1).roofline("v1", &cfg);
    let v2 = run_kernel(&tasks, KernelVersion::V2).roofline("v2", &cfg);
    assert!(v2.gips > v1.gips, "GIPS: v1 {} vs v2 {}", v1.gips, v2.gips);
    assert!(
        v2.intensity_l1 > v1.intensity_l1,
        "intensity: v1 {} vs v2 {}",
        v1.intensity_l1,
        v2.intensity_l1
    );
    // Neither version comes close to the theoretical peak (paper: "none of
    // the versions achieve close to peak performance").
    assert!(v2.gips < 0.2 * v2.peak_gips);
}

#[test]
fn fig10_global_memory_instructions_drop() {
    // §4.2 / Fig. 10: v2 sharply reduces global-memory instructions.
    let tasks = dump_tasks(&arcticsynth_like(0.01), 31);
    let v1 = run_kernel(&tasks, KernelVersion::V1);
    let v2 = run_kernel(&tasks, KernelVersion::V2);
    assert!(
        v2.counters.ldst_global_inst * 2 < v1.counters.ldst_global_inst,
        "v2 global ld/st {} should be well under half of v1's {}",
        v2.counters.ldst_global_inst,
        v1.counters.ldst_global_inst
    );
    // And v2 reduces global transactions (coalescing), not just counts.
    assert!(v2.counters.global_transactions() < v1.counters.global_transactions());
}

#[test]
fn both_kernels_suffer_thread_predication() {
    // §4.2: "both v1 and v2 kernels suffer from thread predication", with
    // v2 decreasing it moderately.
    let tasks = dump_tasks(&arcticsynth_like(0.01), 31);
    let v1 = run_kernel(&tasks, KernelVersion::V1);
    let v2 = run_kernel(&tasks, KernelVersion::V2);
    assert!(v1.counters.predication_ratio() > 0.4, "v1 {}", v1.counters.predication_ratio());
    assert!(v2.counters.predication_ratio() > 0.4, "v2 {}", v2.counters.predication_ratio());
    assert!(
        v2.counters.predication_ratio() < v1.counters.predication_ratio(),
        "v2 should predicate (moderately) less"
    );
}

#[test]
fn fig3_binning_shape() {
    // Fig. 3: bin 3 < 1% of contigs; most contigs carry few or no reads.
    let tasks = dump_tasks(&arcticsynth_like(0.05), 31);
    let stats = bin_tasks(&tasks);
    let (_b1, b2, b3) = stats.percentages();
    assert!(b3 < 1.5, "bin3 must stay rare, got {b3:.2}%");
    assert!(b2 > 5.0, "bin2 should be a visible minority, got {b2:.2}%");
    // Bin-3 tasks, though rare, must carry disproportionate work when they
    // exist (the paper's motivation for launching bin 3 first).
    let (_, r2, r3) = stats.read_totals(&tasks);
    if !stats.large.is_empty() {
        let per2 = r2 as f64 / stats.small.len().max(1) as f64;
        let per3 = r3 as f64 / stats.large.len() as f64;
        assert!(per3 > 3.0 * per2, "bin3 tasks must be much heavier");
    }
}

#[test]
fn section32_load_factor_bound() {
    // §3.2: the l×r sizing bounds the load factor by (l-k+1)/l ≤ ~0.93.
    assert!((load_factor(300, 21) - 0.9333).abs() < 1e-3);
    for l in [100usize, 150, 300] {
        for k in [21usize, 33, 55] {
            if k <= l {
                assert!(load_factor(l, k) <= load_factor(300, 21) + 1e-12);
            }
        }
    }
}

#[test]
fn fig13_fig14_scaling_model() {
    // Fig. 13: 7x at 64 nodes, 2.65x at 1024, monotone decay between.
    // Fig. 14: ~42% end-to-end at 64 nodes, collapsing at scale.
    let m = ScalingModel::from_anchors(PaperAnchors::default());
    assert!((m.la_speedup(64.0).unwrap() - 7.0).abs() < 1e-9);
    assert!((m.la_speedup(1024.0).unwrap() - 2.65).abs() < 1e-9);
    assert!(m.la_speedup(256.0).unwrap() > m.la_speedup(512.0).unwrap());
    let s64 = m.overall_speedup_pct(64.0).unwrap();
    assert!((s64 - 42.0).abs() < 6.0, "overall {s64:.1}% at 64 nodes");
    assert!(m.overall_speedup_pct(1024.0).unwrap() < 10.0);
    // The model answers only inside its anchored node range — 32 nodes is
    // below the 64-node anchor and must be rejected, not extrapolated.
    assert!(m.la_speedup(32.0).is_err());
    // Fig. 2b consistency: predicted GPU-LA breakdown matches the paper's
    // observed 1495 s total and ~6% LA share.
    let gpu64 = m.pipeline_at(64.0, true).unwrap();
    assert!((gpu64.total() - 1495.0).abs() / 1495.0 < 0.05);
    let la_frac = gpu64.get(Phase::LocalAssembly) / gpu64.total();
    assert!(la_frac > 0.04 && la_frac < 0.09);
}

#[test]
fn gpu_memory_stays_within_device() {
    // §3.2's point: exact ht_sizes packing keeps batches inside the 16 GB
    // device; the engine must never allocate beyond capacity.
    let tasks = dump_tasks(&arcticsynth_like(0.02), 31);
    let stats = run_kernel(&tasks, KernelVersion::V2);
    let cap = DeviceConfig::v100().capacity_words();
    assert!(stats.peak_mem_words <= cap);
    assert!(stats.peak_mem_words > 0);
}

#[test]
fn bin3_first_scheduling_order() {
    // §4.3: the driver launches bin 3 before bin 2. Verify via the engine's
    // observable batching: with a budget that forces one task per batch,
    // the first launches must be the large tasks.
    let mut tasks = dump_tasks(&arcticsynth_like(0.02), 31);
    // Ensure at least one large task exists by synthesizing one if needed.
    if bin_tasks(&tasks).large.is_empty() {
        let mut big = tasks.iter().find(|t| !t.reads.is_empty()).unwrap().clone();
        while big.reads.len() < 12 {
            let r = big.reads[0].clone();
            big.reads.push(r);
        }
        tasks.push(big);
    }
    let stats = bin_tasks(&tasks);
    assert!(!stats.large.is_empty());
    // The engine processes order = large ++ small; equality of results with
    // the CPU engine (tested elsewhere) plus this ordering property is what
    // the paper's overlap design needs.
    let order: Vec<usize> = stats.large.iter().chain(stats.small.iter()).copied().collect();
    for (i, &t) in order.iter().enumerate() {
        if i < stats.large.len() {
            assert!(tasks[t].reads.len() >= 10);
        }
    }
}
