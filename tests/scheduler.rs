//! Overlap-scheduler integration tests.
//!
//! The scheduler is a performance feature with a correctness contract: no
//! matter how tasks are split between the CPU and GPU engines — statically,
//! by work stealing, or mid-flight after an injected fault — the extension
//! results must be byte-identical to the pure-CPU reference, in task order.
//! These tests drive that contract across randomized task mixes and fault
//! plans, and pin the two load-balance claims: LPT striping must balance a
//! skew that defeats round-robin, and the static bin-2 split must deal
//! sizes instead of cutting a prefix.

use bioseq::{DnaSeq, Read};
use gpusim::{DeviceConfig, Fault, FaultPlan};
use locassm::gpu::pack::{estimate_task_cost, estimate_task_words};
use locassm::gpu::{KernelVersion, MultiGpuAssembler, StripePolicy};
use locassm::{
    bin_tasks, build_batches, extend_all_cpu, CalibrationConfig, ContigEnd, ExtTask,
    LocalAssemblyParams, OverlapDriver, SchedulePolicy, StealConfig,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_seq(len: usize, rng: &mut StdRng) -> DnaSeq {
    (0..len).map(|_| bioseq::Base::from_code(rng.gen_range(0..4))).collect()
}

/// Deterministic task list from a per-task read-count spec: count 0 lands in
/// bin 1, counts below `BIN2_LIMIT` in bin 2, the rest in bin 3.
fn tasks_from_counts(counts: &[usize], seed: u64) -> Vec<ExtTask> {
    let mut rng = StdRng::seed_from_u64(seed);
    counts
        .iter()
        .enumerate()
        .map(|(i, &n_reads)| {
            let genome = random_seq(560, &mut rng);
            let reads = (0..n_reads)
                .map(|r| {
                    Read::with_uniform_qual(
                        format!("t{i}r{r}"),
                        genome.subseq(55 + (r * 17) % 320, 90),
                        35,
                    )
                })
                .collect();
            ExtTask { contig: i, end: ContigEnd::Right, tail: genome.subseq(0, 130), reads }
        })
        .collect()
}

fn fault_plan(kind: usize) -> FaultPlan {
    match kind {
        0 => FaultPlan::default(),
        1 => FaultPlan {
            faults: vec![
                Fault::SlabOom { at_alloc: 0 },
                Fault::KernelHang { at_launch: 1, after_cycles: 5_000 },
            ],
        },
        // A hang storm that exhausts the reset budget: the device is lost
        // mid-schedule and the CPU must absorb the remaining batches.
        _ => FaultPlan {
            faults: (0..64)
                .map(|i| Fault::KernelHang { at_launch: i, after_cycles: 100 })
                .collect(),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Work stealing must reproduce the pure-CPU reference byte-for-byte
    /// across arbitrary bin mixes, steal granularities, and fault plans —
    /// including plans that kill the device partway through the deque.
    #[test]
    fn work_steal_is_byte_identical_across_mixes_and_faults(
        counts in proptest::collection::vec(0usize..=24, 1..=28),
        seed in 0u64..1_000,
        fault_kind in 0usize..3,
        batch_kib in (0usize..3).prop_map(|i| [2u64, 16, 64][i]),
    ) {
        let tasks = tasks_from_counts(&counts, seed);
        let params = LocalAssemblyParams::for_tests();
        let reference = extend_all_cpu(&tasks, &params);

        let driver = OverlapDriver {
            device: DeviceConfig::tiny().with_fault_plan(fault_plan(fault_kind)),
            version: KernelVersion::V2,
            schedule: SchedulePolicy::WorkSteal(StealConfig {
                batch_words: batch_kib * 1024,
                ..StealConfig::default()
            }),
        };
        let out = driver.run(&tasks, &params).expect("driver must not error");
        prop_assert_eq!(&out.results, &reference);
        // Every task is accounted for on exactly one engine (bin-1 tasks
        // are finished on the host before the deque is built).
        let binned = locassm::bin_tasks(&tasks);
        prop_assert_eq!(
            out.cpu_tasks + out.gpu_tasks,
            tasks.len() - binned.zero.len()
        );
    }

    /// The static split must also hold the identity contract under faults —
    /// the recovery ladder and the panic fallback both end at the same CPU
    /// reference code.
    #[test]
    fn static_split_is_byte_identical_across_fractions_and_faults(
        counts in proptest::collection::vec(0usize..=24, 1..=20),
        seed in 0u64..1_000,
        fault_kind in 0usize..3,
        frac in (0usize..3).prop_map(|i| [0.0f64, 0.3, 1.0][i]),
    ) {
        let tasks = tasks_from_counts(&counts, seed);
        let params = LocalAssemblyParams::for_tests();
        let reference = extend_all_cpu(&tasks, &params);

        let driver = OverlapDriver {
            device: DeviceConfig::tiny().with_fault_plan(fault_plan(fault_kind)),
            ..OverlapDriver::static_split(frac)
        };
        let out = driver.run(&tasks, &params).expect("driver must not error");
        prop_assert_eq!(&out.results, &reference);
    }
}

/// The multi-GPU LPT restripe must balance a size skew that round-robin
/// cannot: heavies sit at stride `n_devices`, so `i % n` piles them all on
/// device 0 while LPT spreads them by estimated words.
#[test]
fn lpt_striping_balances_skew_that_defeats_round_robin() {
    const N_DEVICES: usize = 4;
    let counts: Vec<usize> =
        (0..64).map(|i| if i % N_DEVICES == 0 { 18 + i % 5 } else { 1 + (i % 8) }).collect();
    let tasks = tasks_from_counts(&counts, 99);
    let params = LocalAssemblyParams::for_tests();
    let reference = extend_all_cpu(&tasks, &params);

    let balance_of = |policy: StripePolicy| {
        let multi = MultiGpuAssembler::new(
            DeviceConfig::tiny(),
            params.clone(),
            KernelVersion::V2,
            N_DEVICES,
        )
        .with_stripe_policy(policy);
        let (results, stats) = multi.extend_tasks(&tasks);
        assert_eq!(results, reference, "{policy:?} striping must be byte-identical");
        stats.balance_efficiency()
    };
    let rr = balance_of(StripePolicy::RoundRobin);
    let lpt = balance_of(StripePolicy::WordsLpt);
    assert!(rr < 0.6, "skew should defeat round-robin striping, got {rr:.3}");
    assert!(lpt >= 0.9, "LPT striping should balance the skew, got {lpt:.3}");
}

/// Regression for the prefix-bias bug: with bin-2 tasks arriving in
/// ascending size order, a `cpu_bin2_fraction=0.5` split must deal the
/// tasks so both engines get comparable estimated words — the old prefix
/// cut handed the CPU the smallest half of the work.
#[test]
fn static_split_deals_bin2_sizes_instead_of_prefix() {
    // 36 bin-2 tasks in ascending size order (1,..,9 read counts, blocked),
    // the adversarial input for a prefix cut. No bin-3 tasks, so the GPU's
    // scheduled words are purely its bin-2 share.
    let mut counts: Vec<usize> = (0..36).map(|i| 1 + i / 4).collect();
    counts.iter_mut().for_each(|c| *c = (*c).min(9));
    let tasks = tasks_from_counts(&counts, 7);
    let params = LocalAssemblyParams::for_tests();

    let out = OverlapDriver { device: DeviceConfig::tiny(), ..OverlapDriver::static_split(0.5) }
        .run(&tasks, &params)
        .expect("static split runs");
    assert_eq!(out.results, extend_all_cpu(&tasks, &params));

    let total: u64 = tasks.iter().map(|t| estimate_task_words(t, &params)).sum();
    let (cpu_w, gpu_w) = (out.schedule.cpu_est_words, out.schedule.gpu_est_words);
    assert_eq!(cpu_w + gpu_w, total, "every estimated word lands on exactly one engine");
    let (lo, hi) = (cpu_w.min(gpu_w), cpu_w.max(gpu_w));
    assert!(
        lo as f64 >= 0.8 * hi as f64,
        "half split must deal comparable est-words shares, got cpu {cpu_w} / gpu {gpu_w}"
    );

    // The prefix cut would have produced a far worse share: the smallest
    // half of the tasks carries well under 80% of the larger half's words.
    let sorted_words: Vec<u64> = tasks.iter().map(|t| estimate_task_words(t, &params)).collect();
    let prefix_cpu: u64 = sorted_words[..18].iter().sum();
    let prefix_gpu: u64 = sorted_words[18..].iter().sum();
    assert!(
        (prefix_cpu as f64) < 0.8 * prefix_gpu as f64,
        "workload no longer adversarial for a prefix cut: {prefix_cpu} vs {prefix_gpu}"
    );
}

/// The work-steal makespan model must beat a static half split on a skewed
/// workload when the CPU peer is fast enough to help with bin-3 — the
/// scheduler-level version of the Figure 11 harness claim.
#[test]
fn work_steal_model_beats_static_half_split_on_skew() {
    const STRIDE: usize = 4;
    let counts: Vec<usize> =
        (0..64).map(|i| if i % STRIDE == 0 { 18 + i % 5 } else { 1 + (i % 8) }).collect();
    let tasks = tasks_from_counts(&counts, 4242);
    let params = LocalAssemblyParams::for_tests();
    let total: u64 = tasks.iter().map(|t| estimate_task_words(t, &params)).sum();

    // Calibrate the GPU once (single amortized run), then model the CPU
    // peer at twice that rate, as in the fig11 harness.
    let probe = OverlapDriver { device: DeviceConfig::tiny(), ..OverlapDriver::static_split(0.0) }
        .run(&tasks, &params)
        .expect("probe runs");
    let gpu_rate = total as f64 / probe.gpu_stats.as_ref().unwrap().wall_s().max(1e-12);

    let st = OverlapDriver { device: DeviceConfig::tiny(), ..OverlapDriver::static_split(0.5) }
        .run(&tasks, &params)
        .expect("static runs");
    let static_makespan = (st.schedule.cpu_est_words as f64 / (2.0 * gpu_rate))
        .max(st.gpu_stats.as_ref().unwrap().wall_s());

    let ws = OverlapDriver {
        device: DeviceConfig::tiny(),
        schedule: SchedulePolicy::WorkSteal(StealConfig {
            batch_words: 32 * 1024,
            cpu_words_per_s: 2.0 * gpu_rate,
            // Deterministic observations at the seed rate: calibration is
            // a no-op on the schedule, and the model stays pinned to the
            // probe-derived CPU rate this test reasons about.
            calibration: CalibrationConfig {
                cpu_true_words_per_s: Some(2.0 * gpu_rate),
                ..Default::default()
            },
            ..StealConfig::default()
        }),
        ..Default::default()
    }
    .run(&tasks, &params)
    .expect("work-steal runs");
    assert_eq!(ws.results, st.results, "schedules must agree on results");

    let improvement = (static_makespan - ws.schedule.makespan_model_s()) / static_makespan;
    assert!(
        improvement >= 0.15,
        "work-steal should beat static 0.5 by >= 15%, got {:.1}%",
        100.0 * improvement
    );
    assert!(ws.schedule.cpu_stole_heavy > 0, "the win must come from stealing bin-3 work");
}

/// Regression for the bin-2 deal bias: `j % k` dealing in descending size
/// order handed batch 0 the larger item of every round, so the first-dealt
/// batch systematically outweighed the last. The lightest-batch deal must
/// keep max/min batch words tight even on an adversarial geometric size mix.
#[test]
fn light_batch_deal_balances_max_and_min_words() {
    // Heavy size spread (1..=9 reads, many repeats) with no bin-3 tasks, so
    // every scheduled batch is a light one.
    let counts: Vec<usize> = (0..54).map(|i| 1 + i % 9).collect();
    let tasks = tasks_from_counts(&counts, 11);
    let params = LocalAssemblyParams::for_tests();
    let bins = bin_tasks(&tasks);
    let batches = build_batches(&tasks, &bins, &params, 16 * 1024);
    let light: Vec<u64> = batches.iter().filter(|b| !b.heavy).map(|b| b.est_words).collect();
    assert!(light.len() >= 3, "want several light batches, got {}", light.len());
    let (min, max) = (*light.iter().min().unwrap(), *light.iter().max().unwrap());
    assert!(
        min as f64 >= 0.8 * max as f64,
        "lightest-batch deal must balance words: min {min} vs max {max} ({light:?})"
    );
}

/// The per-task cost the schedulers charge is clamped to >= 1 word even for
/// a degenerate empty task, so no batch (and no LPT bin) can be free.
#[test]
fn task_cost_is_clamped_to_at_least_one_word() {
    let params = LocalAssemblyParams::for_tests();
    let empty =
        ExtTask { contig: 0, end: ContigEnd::Right, tail: DnaSeq::new(), reads: Vec::new() };
    assert!(estimate_task_cost(&empty, &params) >= 1);
}

/// A device death mid-run must not poison the CPU rate estimate: the CPU
/// absorbs the rest of the deque, its observations keep arriving at the
/// (deterministic) true rate, and the EWMA keeps converging.
#[test]
fn gpu_death_does_not_poison_cpu_rate_estimate() {
    let counts: Vec<usize> = (0..64).map(|i| 1 + (i % 12)).collect();
    let tasks = tasks_from_counts(&counts, 321);
    let params = LocalAssemblyParams::for_tests();
    let reference = extend_all_cpu(&tasks, &params);

    let true_rate = 5.0e6;
    let out = OverlapDriver {
        device: DeviceConfig::tiny().with_fault_plan(fault_plan(2)), // hang storm → device lost
        version: KernelVersion::V2,
        schedule: SchedulePolicy::WorkSteal(StealConfig {
            batch_words: 2 * 1024,
            cpu_words_per_s: true_rate / 10.0, // 10× mis-seeded
            calibration: CalibrationConfig {
                cpu_true_words_per_s: Some(true_rate),
                ..Default::default()
            },
            ..StealConfig::default()
        }),
    }
    .run(&tasks, &params)
    .expect("driver runs");
    assert_eq!(out.results, reference, "device loss must not change results");

    let cal = out.schedule.calibration.expect("work-steal attaches a calibration report");
    assert!(cal.enabled);
    assert!(
        cal.cpu_updates >= 4,
        "CPU must have absorbed several batches, got {}",
        cal.cpu_updates
    );
    let ratio = cal.cpu_words_per_s / true_rate;
    assert!(
        (0.8..=1.25).contains(&ratio),
        "estimate must converge to the true rate despite the dead GPU: {:.3e} vs {true_rate:.3e}",
        cal.cpu_words_per_s
    );
    assert!(
        cal.cpu_words_per_s > cal.cpu_seed_words_per_s,
        "estimate must have moved off the low seed"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Calibration sweep: random true-rate × seed-rate mis-matches (up to
    /// 100× in either direction) under every fault plan. (a) results stay
    /// byte-identical to the CPU reference; (b) whenever the CPU engine ran
    /// at all, the converged estimate is no farther from the truth than the
    /// seed was (EWMA against constant-truth observations moves toward the
    /// truth monotonically, so this holds for every update count).
    #[test]
    fn calibration_is_identity_preserving_and_convergent(
        counts in proptest::collection::vec(0usize..=24, 1..=24),
        seed in 0u64..1_000,
        fault_kind in 0usize..3,
        true_exp in -1i32..=1,
        seed_exp in -1i32..=1,
    ) {
        let tasks = tasks_from_counts(&counts, seed);
        let params = LocalAssemblyParams::for_tests();
        let reference = extend_all_cpu(&tasks, &params);
        let true_rate = 5.0e6 * 100f64.powi(true_exp);
        let seed_rate = 5.0e6 * 100f64.powi(seed_exp);

        let out = OverlapDriver {
            device: DeviceConfig::tiny().with_fault_plan(fault_plan(fault_kind)),
            version: KernelVersion::V2,
            schedule: SchedulePolicy::WorkSteal(StealConfig {
                batch_words: 8 * 1024,
                cpu_words_per_s: seed_rate,
                calibration: CalibrationConfig {
                    cpu_true_words_per_s: Some(true_rate),
                    ..Default::default()
                },
                ..StealConfig::default()
            }),
        }
        .run(&tasks, &params)
        .expect("driver runs");
        prop_assert_eq!(&out.results, &reference);

        let cal = out.schedule.calibration.as_ref().expect("calibration report attached");
        prop_assert_eq!(cal.cpu_seed_words_per_s, seed_rate);
        if cal.cpu_updates > 0 {
            let err_final = (cal.cpu_words_per_s / true_rate).ln().abs();
            let err_seed = (seed_rate / true_rate).ln().abs();
            prop_assert!(
                err_final <= err_seed + 1e-9,
                "estimate {:.3e} drifted farther from truth {:.3e} than seed {:.3e}",
                cal.cpu_words_per_s, true_rate, seed_rate
            );
        }
    }

    /// Per-bin calibration: with bin-2 and bin-3 truths set 10x apart, each
    /// bin's estimate must converge to *its own* truth — independently of
    /// the skew of the mix — and results stay byte-identical. Observations
    /// arrive at a constant per-bin truth and the bin estimators start
    /// unseeded, so any bin that fired at all must sit exactly on its truth.
    #[test]
    fn per_bin_estimates_converge_independently_under_skewed_mixes(
        light in proptest::collection::vec(1usize..=6, 0..=20),
        heavy in proptest::collection::vec(12usize..=24, 0..=12),
        seed in 0u64..1_000,
        fault_kind in 0usize..3,
    ) {
        // Arbitrary skew: anywhere from all-bin-2 to all-bin-3.
        let mut counts: Vec<usize> = light.iter().chain(heavy.iter()).copied().collect();
        if counts.is_empty() {
            counts.push(3);
        }
        let tasks = tasks_from_counts(&counts, seed);
        let params = LocalAssemblyParams::for_tests();
        let reference = extend_all_cpu(&tasks, &params);
        let (bin2_true, bin3_true) = (2.0e6, 2.0e7);

        let out = OverlapDriver {
            device: DeviceConfig::tiny().with_fault_plan(fault_plan(fault_kind)),
            version: KernelVersion::V2,
            schedule: SchedulePolicy::WorkSteal(StealConfig {
                batch_words: 4 * 1024,
                cpu_words_per_s: 5.0e6,
                calibration: CalibrationConfig {
                    per_bin: true,
                    min_bin_obs: 2,
                    cpu_true_bin2_words_per_s: Some(bin2_true),
                    cpu_true_bin3_words_per_s: Some(bin3_true),
                    ..Default::default()
                },
                ..StealConfig::default()
            }),
        }
        .run(&tasks, &params)
        .expect("driver runs");
        prop_assert_eq!(&out.results, &reference);

        let cal = out.schedule.calibration.as_ref().expect("calibration report attached");
        prop_assert!(cal.per_bin);
        if cal.cpu_bin2_updates > 0 {
            let rel = (cal.cpu_bin2_words_per_s / bin2_true - 1.0).abs();
            prop_assert!(rel < 1e-9, "bin-2 estimate {:.6e} != truth {bin2_true:.6e}",
                cal.cpu_bin2_words_per_s);
        }
        if cal.cpu_bin3_updates > 0 {
            let rel = (cal.cpu_bin3_words_per_s / bin3_true - 1.0).abs();
            prop_assert!(rel < 1e-9, "bin-3 estimate {:.6e} != truth {bin3_true:.6e}",
                cal.cpu_bin3_words_per_s);
        }
        // Every CPU observation landed in exactly one bin.
        prop_assert_eq!(cal.cpu_bin2_updates + cal.cpu_bin3_updates, cal.cpu_updates);
    }

    /// Adaptive drain sizing must never issue a zero-word batch, for any
    /// combination of granularity, drain factor, and floor — and the split
    /// bookkeeping must conserve both results and estimated words.
    #[test]
    fn adaptive_sizing_never_issues_a_zero_word_batch(
        counts in proptest::collection::vec(0usize..=24, 1..=24),
        seed in 0u64..1_000,
        fault_kind in 0usize..3,
        batch_kib in (0usize..3).prop_map(|i| [2u64, 8, 64][i]),
        drain_factor in (0usize..3).prop_map(|i| [1.5f64, 4.0, 16.0][i]),
        min_batch_words in (0usize..3).prop_map(|i| [1u64, 512, 1 << 20][i]),
    ) {
        let tasks = tasks_from_counts(&counts, seed);
        let params = LocalAssemblyParams::for_tests();
        let reference = extend_all_cpu(&tasks, &params);
        // Bin-1 tasks (no reads) are answered host-side before the deque is
        // built, so only read-bearing tasks contribute scheduled words.
        let total: u64 = tasks
            .iter()
            .filter(|t| !t.reads.is_empty())
            .map(|t| estimate_task_words(t, &params))
            .sum();

        let out = OverlapDriver {
            device: DeviceConfig::tiny().with_fault_plan(fault_plan(fault_kind)),
            version: KernelVersion::V2,
            schedule: SchedulePolicy::WorkSteal(StealConfig {
                batch_words: batch_kib * 1024,
                adaptive_batch: true,
                drain_factor,
                min_batch_words,
                ..StealConfig::default()
            }),
        }
        .run(&tasks, &params)
        .expect("driver runs");
        prop_assert_eq!(&out.results, &reference);
        let sched = &out.schedule;
        prop_assert!(sched.adaptive_batch);
        if sched.batches > 0 {
            prop_assert!(
                sched.min_issued_batch_words >= 1,
                "issued a zero-word batch (drain_splits {})", sched.drain_splits
            );
        }
        prop_assert_eq!(sched.cpu_est_words + sched.gpu_est_words, total);
    }

    /// Off-switch contract: with `per_bin` and `adaptive_batch` both off,
    /// the schedule must be identical to the PR 4 scheduler no matter what
    /// the (inert) new knobs are set to — same batch counts, same steal
    /// decisions, bit-identical virtual clocks — under every fault plan.
    #[test]
    fn disabled_features_reproduce_the_baseline_schedule(
        counts in proptest::collection::vec(0usize..=24, 1..=24),
        seed in 0u64..1_000,
        fault_kind in 0usize..3,
        drain_factor in (0usize..3).prop_map(|i| [1.5f64, 7.0, 64.0][i]),
        min_batch_words in (0usize..3).prop_map(|i| [1u64, 4096, 1 << 20][i]),
        min_bin_obs in 1u64..=9,
    ) {
        let tasks = tasks_from_counts(&counts, seed);
        let params = LocalAssemblyParams::for_tests();
        let reference = extend_all_cpu(&tasks, &params);
        let run = |cfg: StealConfig| {
            OverlapDriver {
                device: DeviceConfig::tiny().with_fault_plan(fault_plan(fault_kind)),
                version: KernelVersion::V2,
                schedule: SchedulePolicy::WorkSteal(cfg),
            }
            .run(&tasks, &params)
            .expect("driver runs")
        };
        // Pin the observation source: without a configured truth the
        // calibration loop observes host wall seconds, and the CPU clock
        // would not be reproducible across the two runs being compared.
        let base = run(StealConfig {
            calibration: CalibrationConfig {
                cpu_true_words_per_s: Some(5.0e6),
                ..Default::default()
            },
            ..StealConfig::default()
        });
        let knobbed = run(StealConfig {
            adaptive_batch: false,
            drain_factor,
            min_batch_words,
            calibration: CalibrationConfig {
                per_bin: false,
                min_bin_obs,
                cpu_true_words_per_s: Some(5.0e6),
                ..Default::default()
            },
            ..StealConfig::default()
        });
        prop_assert_eq!(&base.results, &reference);
        prop_assert_eq!(&knobbed.results, &reference);

        let (a, b) = (&base.schedule, &knobbed.schedule);
        prop_assert_eq!(a.batches, b.batches);
        prop_assert_eq!(a.gpu_batches, b.gpu_batches);
        prop_assert_eq!(a.cpu_batches, b.cpu_batches);
        prop_assert_eq!(a.cpu_stole_heavy, b.cpu_stole_heavy);
        prop_assert_eq!(a.gpu_absorbed_light, b.gpu_absorbed_light);
        prop_assert_eq!(a.cpu_est_words, b.cpu_est_words);
        prop_assert_eq!(a.gpu_est_words, b.gpu_est_words);
        // The CPU clock is fully modeled, so it must agree to the bit. The
        // GPU clock includes host-measured pack seconds and is not
        // bit-reproducible run-to-run, so it is not compared here.
        prop_assert_eq!(a.cpu_model_s.to_bits(), b.cpu_model_s.to_bits());
        prop_assert_eq!(a.min_issued_batch_words, b.min_issued_batch_words);
        prop_assert_eq!(a.drain_splits, 0);
        prop_assert_eq!(b.drain_splits, 0);
        prop_assert!(!b.adaptive_batch);
        let bc = b.calibration.as_ref().expect("calibration report attached");
        prop_assert!(!bc.per_bin);
    }

    /// All-empty-tasks degenerate input: every task is bin 1 (answered
    /// host-side), nothing reaches the deque, and the run stays
    /// byte-identical with a well-formed report under any policy.
    #[test]
    fn all_empty_tasks_never_wedge_the_scheduler(
        n in 1usize..=20,
        work_steal in any::<bool>(),
    ) {
        let counts = vec![0usize; n];
        let tasks = tasks_from_counts(&counts, 5);
        let params = LocalAssemblyParams::for_tests();
        let reference = extend_all_cpu(&tasks, &params);
        let driver = if work_steal {
            OverlapDriver::default()
        } else {
            OverlapDriver::static_split(0.5)
        };
        let out = OverlapDriver { device: DeviceConfig::tiny(), ..driver }
            .run(&tasks, &params)
            .expect("driver runs");
        prop_assert_eq!(&out.results, &reference);
        prop_assert_eq!(out.zero_tasks, n);
        prop_assert_eq!(out.cpu_tasks + out.gpu_tasks, 0);
    }
}
