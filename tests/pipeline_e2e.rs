//! End-to-end pipeline integration tests: generate a community, assemble
//! it, and check correctness and quality across phase boundaries.

use bioseq::DnaSeq;
use datagen::{generate_community, simulate_reads, Community, CommunityConfig, ReadSimConfig};
use gpusim::DeviceConfig;
use locassm::gpu::KernelVersion;
use mhm::{run_pipeline, EngineChoice, Phase, PipelineConfig};

fn community(n_species: usize, seed: u64) -> Community {
    generate_community(&CommunityConfig {
        n_species,
        genome_len: (8_000, 12_000),
        abundance_sigma: 0.4,
        seed,
        ..Default::default()
    })
}

fn reads_for(c: &Community, n_pairs: usize, seed: u64) -> Vec<bioseq::PairedRead> {
    simulate_reads(
        c,
        &ReadSimConfig {
            n_pairs,
            read_len: 100,
            insert_mean: 260.0,
            insert_sd: 20.0,
            lo_frac: 0.01,
            seed,
            ..Default::default()
        },
    )
}

/// N50: the contig length at which half the assembled bases are in contigs
/// at least that long.
fn n50(contigs: &[DnaSeq]) -> usize {
    let mut lens: Vec<usize> = contigs.iter().map(DnaSeq::len).collect();
    lens.sort_unstable_by(|a, b| b.cmp(a));
    let total: usize = lens.iter().sum();
    let mut acc = 0;
    for l in lens {
        acc += l;
        if acc * 2 >= total {
            return l;
        }
    }
    0
}

/// Does `seq` match some window of a genome (either strand) within a small
/// error tolerance? Checks via exact 32-mers at a few probe points.
fn matches_some_genome(seq: &DnaSeq, community: &Community) -> bool {
    if seq.len() < 40 {
        return true; // too short to judge
    }
    let probes = [0usize, seq.len() / 2, seq.len() - 33];
    for g in &community.genomes {
        let mut hit = 0;
        for &p in &probes {
            let probe = seq.subseq(p, 32);
            if g.seq.contains(&probe) || g.seq.contains(&probe.revcomp()) {
                hit += 1;
            }
        }
        if hit >= 2 {
            return true;
        }
    }
    false
}

#[test]
fn assembles_multi_species_community() {
    let c = community(3, 100);
    let pairs = reads_for(&c, 6_000, 101);
    let result = run_pipeline(&pairs, &PipelineConfig::default()).expect("pipeline runs");

    assert!(result.stats.contigs_kept >= 3, "too few contigs");
    // The bulk of assembled sequence must be genuine genome sequence.
    let good = result.contigs.iter().filter(|ctg| matches_some_genome(ctg, &c)).count();
    assert!(
        good * 10 >= result.contigs.len() * 9,
        "{good}/{} contigs match a source genome",
        result.contigs.len()
    );
    // Coverage of the community: assembled bases within 3x of genome bases
    // (no runaway duplication).
    let assembled: usize = result.contigs.iter().map(DnaSeq::len).sum();
    assert!(assembled < 3 * c.total_bases(), "assembly blew up: {assembled}");
    assert!(assembled > c.total_bases() / 4, "assembly too sparse: {assembled}");
}

#[test]
fn local_assembly_improves_contiguity() {
    let c = community(2, 200);
    let pairs = reads_for(&c, 4_000, 201);

    // Run with local assembly disabled (zero extension budget) vs enabled.
    let mut no_la = PipelineConfig::default();
    no_la.locassm.max_total_extension = 0;
    let mut with_la = PipelineConfig::default();
    with_la.locassm.max_total_extension = 300;

    let base = run_pipeline(&pairs, &no_la).expect("pipeline runs");
    let ext = run_pipeline(&pairs, &with_la).expect("pipeline runs");
    assert!(ext.stats.bases_appended > 0, "extension appended nothing");
    let (n50_base, n50_ext) = (n50(&base.contigs), n50(&ext.contigs));
    assert!(
        n50_ext >= n50_base,
        "local assembly must not reduce contiguity ({n50_base} -> {n50_ext})"
    );
    let total_base: usize = base.contigs.iter().map(DnaSeq::len).sum();
    let total_ext: usize = ext.contigs.iter().map(DnaSeq::len).sum();
    assert_eq!(total_ext, total_base + ext.stats.bases_appended);
}

#[test]
fn extensions_are_correct_sequence() {
    // Extended contigs must still match the source genomes — local assembly
    // may not hallucinate sequence. Repeat-bearing genomes guarantee the
    // global graph forks (so there is something to extend) while the local
    // candidate reads resolve the entry into each repeat.
    let c = generate_community(&CommunityConfig {
        n_species: 2,
        genome_len: (8_000, 12_000),
        abundance_sigma: 0.4,
        repeat_prob: 0.3,
        repeat_period: 97,
        seed: 300,
    });
    // The default (wider) insert distribution leaves coverage dips at the
    // repeat boundaries, so the global assembly fragments and local
    // assembly has ends to extend.
    let pairs = simulate_reads(
        &c,
        &ReadSimConfig { n_pairs: 5_000, read_len: 100, seed: 301, ..Default::default() },
    );
    let result = run_pipeline(&pairs, &PipelineConfig::default()).expect("pipeline runs");
    assert!(result.stats.bases_appended > 0);
    let long_contigs: Vec<&DnaSeq> = result.contigs.iter().filter(|c| c.len() >= 150).collect();
    assert!(!long_contigs.is_empty());
    let good = long_contigs.iter().filter(|ctg| matches_some_genome(ctg, &c)).count();
    assert!(
        good * 10 >= long_contigs.len() * 9,
        "{good}/{} extended contigs match genomes",
        long_contigs.len()
    );
}

#[test]
fn gpu_engine_is_drop_in() {
    let c = community(2, 400);
    let pairs = reads_for(&c, 3_000, 401);
    let cpu = run_pipeline(&pairs, &PipelineConfig::default()).expect("pipeline runs");
    for version in [KernelVersion::V1, KernelVersion::V2] {
        let gpu = run_pipeline(
            &pairs,
            &PipelineConfig {
                engine: EngineChoice::Gpu { device: DeviceConfig::v100(), version },
                ..PipelineConfig::default()
            },
        )
        .expect("pipeline runs");
        assert_eq!(cpu.contigs, gpu.contigs, "{version:?} diverged from CPU");
        assert_eq!(cpu.scaffolds.len(), gpu.scaffolds.len());
    }
}

#[test]
fn scaffolding_joins_contigs() {
    let c = community(1, 500);
    let pairs = reads_for(&c, 5_000, 501);
    let result = run_pipeline(&pairs, &PipelineConfig::default()).expect("pipeline runs");
    // Each contig appears in exactly one scaffold.
    let member_count: usize = result.scaffolds.iter().map(|s| s.members.len()).sum();
    assert_eq!(member_count, result.contigs.len());
    assert!(result.stats.scaffolds <= result.stats.contigs_kept);
}

#[test]
fn deterministic_end_to_end() {
    let c = community(2, 600);
    let pairs = reads_for(&c, 2_000, 601);
    let a = run_pipeline(&pairs, &PipelineConfig::default()).expect("pipeline runs");
    let b = run_pipeline(&pairs, &PipelineConfig::default()).expect("pipeline runs");
    assert_eq!(a.contigs, b.contigs);
    assert_eq!(a.scaffolds, b.scaffolds);
    assert_eq!(a.stats.bases_appended, b.stats.bases_appended);
}

#[test]
fn phase_timings_all_positive_total() {
    let c = community(1, 700);
    let pairs = reads_for(&c, 1_500, 701);
    let result = run_pipeline(&pairs, &PipelineConfig::default()).expect("pipeline runs");
    assert!(result.timings.total() > 0.0);
    for p in Phase::ALL {
        assert!(result.timings.get(p) >= 0.0, "{p:?} negative");
    }
}
