//! The central invariant of this reproduction: the CPU reference engine and
//! both simulated-GPU kernels produce **bit-identical** extensions for the
//! same input, across randomized workloads, parameter settings, and batch
//! splits — which is what lets MetaHipMer2 switch engines freely.

use bioseq::{DnaSeq, Read};
use gpusim::DeviceConfig;
use locassm::gpu::{GpuLocalAssembler, KernelVersion};
use locassm::{extend_all_cpu, ContigEnd, ExtTask, LocalAssemblyParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_seq(rng: &mut StdRng, len: usize) -> DnaSeq {
    (0..len).map(|_| bioseq::Base::from_code(rng.gen_range(0..4))).collect()
}

/// Random task: a genome window as tail plus reads tiling beyond it, with
/// random per-base qualities and occasional substitution errors.
fn random_task(rng: &mut StdRng, id: usize) -> ExtTask {
    let genome_len = rng.gen_range(200..600);
    let genome = random_seq(rng, genome_len);
    let tail_len = rng.gen_range(60..150.min(genome.len()));
    let n_reads = match rng.gen_range(0..10) {
        0..=2 => 0,
        3..=7 => rng.gen_range(1..10),
        _ => rng.gen_range(10..60),
    };
    let mut reads = Vec::new();
    for r in 0..n_reads {
        let rl = rng.gen_range(50..90);
        let start = rng.gen_range(0..genome.len().saturating_sub(rl).max(1));
        let mut codes = genome.subseq(start, rl.min(genome.len() - start)).codes().to_vec();
        let mut quals = Vec::with_capacity(codes.len());
        for c in codes.iter_mut() {
            let q = if rng.gen_bool(0.1) { rng.gen_range(0..20) } else { rng.gen_range(20..41) };
            if rng.gen_bool(0.01) {
                *c = (*c + rng.gen_range(1..4)) & 3;
            }
            quals.push(q);
        }
        reads.push(Read::new(format!("t{id}r{r}"), DnaSeq::from_codes(codes), quals));
    }
    ExtTask {
        contig: id,
        end: if rng.gen_bool(0.5) { ContigEnd::Right } else { ContigEnd::Left },
        tail: genome.subseq(0, tail_len),
        reads,
    }
}

fn gpu_results(
    tasks: &[ExtTask],
    params: &LocalAssemblyParams,
    version: KernelVersion,
) -> Vec<locassm::ExtResult> {
    let mut engine = GpuLocalAssembler::new(DeviceConfig::v100(), params.clone(), version);
    engine.extend_tasks(tasks).0
}

#[test]
fn randomized_tasks_all_engines_agree() {
    let mut rng = StdRng::seed_from_u64(20260705);
    let tasks: Vec<ExtTask> = (0..40).map(|i| random_task(&mut rng, i)).collect();
    let params = LocalAssemblyParams::for_tests();
    let cpu = extend_all_cpu(&tasks, &params);
    let v2 = gpu_results(&tasks, &params, KernelVersion::V2);
    let v1 = gpu_results(&tasks, &params, KernelVersion::V1);
    for i in 0..tasks.len() {
        assert_eq!(cpu[i], v2[i], "task {i}: CPU vs v2");
        assert_eq!(cpu[i], v1[i], "task {i}: CPU vs v1");
    }
}

#[test]
fn agreement_across_parameter_settings() {
    let mut rng = StdRng::seed_from_u64(777);
    let tasks: Vec<ExtTask> = (0..12).map(|i| random_task(&mut rng, i)).collect();
    for (k_list, start, walk, total, viable) in [
        (vec![11, 15, 21], 0usize, 16usize, 40usize, 1u16),
        (vec![15, 21, 31, 41], 2, 64, 200, 2),
        (vec![21], 0, 100, 300, 3),
        (vec![15, 17, 19, 21, 23, 25], 3, 8, 24, 2),
    ] {
        let params = LocalAssemblyParams {
            k_list,
            start_k_idx: start,
            max_walk_len: walk,
            max_total_extension: total,
            min_viable: viable,
        };
        let cpu = extend_all_cpu(&tasks, &params);
        let v2 = gpu_results(&tasks, &params, KernelVersion::V2);
        assert_eq!(cpu, v2, "params {params:?}");
    }
}

#[test]
fn v1_lockstep_handles_mixed_lane_lifetimes() {
    // Stress the per-lane interpreter: a warp's 32 lanes carrying wildly
    // different task sizes (including zero-read lanes interleaved).
    let mut rng = StdRng::seed_from_u64(4242);
    let mut tasks = Vec::new();
    for i in 0..64 {
        let mut t = random_task(&mut rng, i);
        if i % 3 == 0 {
            t.reads.clear();
        }
        if i % 7 == 0 {
            // Tiny tail shorter than the smallest k.
            t.tail = t.tail.subseq(0, 10.min(t.tail.len()));
        }
        tasks.push(t);
    }
    let params = LocalAssemblyParams::for_tests();
    let cpu = extend_all_cpu(&tasks, &params);
    let v1 = gpu_results(&tasks, &params, KernelVersion::V1);
    assert_eq!(cpu, v1);
}

#[test]
fn batch_split_invariance() {
    // Results must be identical whether tasks fit one batch or many.
    let mut rng = StdRng::seed_from_u64(99);
    let tasks: Vec<ExtTask> = (0..20).map(|i| random_task(&mut rng, i)).collect();
    let params = LocalAssemblyParams::for_tests();
    let one = gpu_results(&tasks, &params, KernelVersion::V2);

    let mut small_dev = GpuLocalAssembler::new(
        DeviceConfig {
            // Small memory forces many batches.
            global_mem_bytes: 256 << 10,
            ..DeviceConfig::v100()
        },
        params.clone(),
        KernelVersion::V2,
    );
    let (many, stats) = small_dev.extend_tasks(&tasks);
    assert!(stats.batches >= 2, "expected multiple batches, got {}", stats.batches);
    assert_eq!(one, many);
}

#[test]
fn reads_shorter_than_k_are_ignored_consistently() {
    let mut rng = StdRng::seed_from_u64(5);
    let genome = random_seq(&mut rng, 300);
    let mut reads = vec![
        Read::with_uniform_qual("tiny", random_seq(&mut rng, 8), 30),
        Read::with_uniform_qual("short", random_seq(&mut rng, 14), 30),
    ];
    for i in 0..6 {
        reads.push(Read::with_uniform_qual(format!("r{i}"), genome.subseq(40 + i * 10, 70), 35));
    }
    let task = ExtTask { contig: 0, end: ContigEnd::Right, tail: genome.subseq(0, 100), reads };
    let params = LocalAssemblyParams::for_tests();
    let cpu = extend_all_cpu(std::slice::from_ref(&task), &params);
    let v2 = gpu_results(std::slice::from_ref(&task), &params, KernelVersion::V2);
    let v1 = gpu_results(std::slice::from_ref(&task), &params, KernelVersion::V1);
    assert_eq!(cpu, v2);
    assert_eq!(cpu, v1);
}

#[test]
fn homopolymer_and_repeat_edge_cases() {
    // Degenerate sequences: homopolymers force immediate loops; perfect
    // repeats force loops after one period; all engines must agree.
    let params = LocalAssemblyParams::for_tests();
    let mut tasks = Vec::new();
    let homo: DnaSeq = (0..120).map(|_| bioseq::Base::A).collect();
    tasks.push(ExtTask {
        contig: 0,
        end: ContigEnd::Right,
        tail: homo.clone(),
        reads: (0..4)
            .map(|i| Read::with_uniform_qual(format!("h{i}"), homo.subseq(0, 80), 35))
            .collect(),
    });
    let unit = DnaSeq::from_str_strict("ACGGTCATTG").unwrap();
    let mut rep = DnaSeq::new();
    for _ in 0..12 {
        rep.extend_from(&unit);
    }
    tasks.push(ExtTask {
        contig: 1,
        end: ContigEnd::Right,
        tail: rep.subseq(0, 40),
        reads: (0..4)
            .map(|i| Read::with_uniform_qual(format!("r{i}"), rep.subseq(0, 90), 35))
            .collect(),
    });
    let cpu = extend_all_cpu(&tasks, &params);
    let v2 = gpu_results(&tasks, &params, KernelVersion::V2);
    let v1 = gpu_results(&tasks, &params, KernelVersion::V1);
    assert_eq!(cpu, v2);
    assert_eq!(cpu, v1);
}
