//! Fault-injection integration tests: an injected device fault must never
//! change assembly output, only how it was computed. The recovery ladder
//! (retry → shrink batch → reset device → CPU fallback → skip) is exercised
//! end to end, and the resulting extensions are compared byte-for-byte
//! against a fault-free run.

use align::{collect_candidates, CandidateParams, SeedIndex};
use bioseq::{DnaSeq, Read};
use datagen::{
    arcticsynth_like, generate_community, simulate_reads, CommunityConfig, ReadSimConfig,
};
use dbg::{count_kmers, generate_contigs, DbgGraph};
use gpusim::{DeviceConfig, Fault, FaultPlan};
use locassm::gpu::{GpuLocalAssembler, KernelVersion};
use locassm::{extend_all_cpu, make_tasks, ExtTask, LocalAssemblyParams};
use mhm::{merge_reads, run_pipeline, EngineChoice, MergeParams, PipelineConfig};
use proptest::prelude::*;

/// Local-assembly tasks from the small arcticsynth-like preset.
fn dump_tasks() -> Vec<ExtTask> {
    let (_, pairs) = arcticsynth_like(0.01).generate();
    let (reads, _) = merge_reads(&pairs, &MergeParams::default());
    let counts = count_kmers(&reads, 31, 2);
    let graph = DbgGraph::new(31, counts);
    let contigs: Vec<DnaSeq> =
        generate_contigs(&graph, 2).into_iter().filter(|c| c.len() >= 100).map(|c| c.seq).collect();
    let idx = SeedIndex::build(&contigs, 17, 200);
    let cands = collect_candidates(&contigs, &reads, &idx, &CandidateParams::default());
    let cand_pairs: Vec<(Vec<Read>, Vec<Read>)> =
        cands.into_iter().map(|c| (c.right, c.left)).collect();
    make_tasks(&contigs, &cand_pairs, &LocalAssemblyParams::for_tests())
}

fn run_with_plan(
    tasks: &[ExtTask],
    plan: FaultPlan,
) -> (Vec<locassm::ExtResult>, locassm::gpu::GpuRunStats) {
    let mut engine = GpuLocalAssembler::new(
        DeviceConfig::v100().with_fault_plan(plan),
        LocalAssemblyParams::for_tests(),
        KernelVersion::V2,
    );
    engine.extend_tasks(tasks)
}

#[test]
fn injected_oom_yields_byte_identical_extensions() {
    let tasks = dump_tasks();
    assert!(!tasks.is_empty(), "preset must produce extension tasks");

    let (clean, clean_stats) = run_with_plan(&tasks, FaultPlan::none());
    assert!(!clean_stats.recovery.any_recovery(), "clean run must not recover");

    let (faulty, stats) = run_with_plan(&tasks, FaultPlan::single(Fault::SlabOom { at_alloc: 0 }));
    assert!(
        stats.recovery.batch_splits >= 1 || stats.recovery.launch_retries >= 1,
        "OOM must trip the ladder: {:?}",
        stats.recovery
    );
    assert_eq!(stats.recovery.failed_tasks, 0, "nothing may be skipped");
    assert_eq!(clean, faulty, "recovered extensions must be byte-identical");

    // CPU fallback is the ladder's last functional rung; its output is the
    // reference both engines must match.
    let cpu = extend_all_cpu(&tasks, &LocalAssemblyParams::for_tests());
    assert_eq!(cpu, faulty);
}

#[test]
fn hang_storm_degrades_to_cpu_with_identical_output() {
    let tasks = dump_tasks();
    let storm = FaultPlan {
        faults: (0..64).map(|i| Fault::KernelHang { at_launch: i, after_cycles: 1_000 }).collect(),
    };
    let (clean, _) = run_with_plan(&tasks, FaultPlan::none());
    let (faulty, stats) = run_with_plan(&tasks, storm);
    assert!(stats.recovery.device_lost, "storm must exhaust resets");
    assert!(stats.recovery.cpu_fallback_tasks > 0);
    assert_eq!(clean, faulty, "CPU fallback must reproduce device output");
}

#[test]
fn pipeline_with_faulty_device_matches_cpu_contigs() {
    let c = generate_community(&CommunityConfig {
        n_species: 2,
        genome_len: (8_000, 10_000),
        abundance_sigma: 0.4,
        seed: 900,
        ..Default::default()
    });
    let pairs = simulate_reads(
        &c,
        &ReadSimConfig { n_pairs: 3_000, read_len: 100, seed: 901, ..Default::default() },
    );
    let cpu = run_pipeline(&pairs, &PipelineConfig::default()).expect("pipeline runs");
    let faulty_dev = DeviceConfig::v100().with_fault_plan(FaultPlan {
        faults: vec![
            Fault::SlabOom { at_alloc: 0 },
            Fault::KernelHang { at_launch: 1, after_cycles: 5_000 },
        ],
    });
    let gpu = run_pipeline(
        &pairs,
        &PipelineConfig {
            engine: EngineChoice::Gpu { device: faulty_dev, version: KernelVersion::V2 },
            ..PipelineConfig::default()
        },
    )
    .expect("faulty pipeline must still complete");
    assert_eq!(cpu.contigs, gpu.contigs, "faults must not change contigs");
    assert!(gpu.degraded(), "recovery must be visible in the result");
    let recovery = gpu.stats.recovery.as_ref().expect("gpu run records recovery");
    assert!(recovery.any_recovery());
}

#[test]
fn seeded_plan_replays_identically_through_the_engine() {
    // Same seed ⇒ same plan ⇒ same recovery path ⇒ same stats and output.
    let tasks = dump_tasks();
    for seed in [3u64, 17, 4242] {
        let plan = FaultPlan::from_seed(seed, 3, 16);
        let (a, sa) = run_with_plan(&tasks, plan.clone());
        let (b, sb) = run_with_plan(&tasks, plan);
        assert_eq!(a, b, "seed {seed}: outputs diverged");
        assert_eq!(sa.recovery, sb.recovery, "seed {seed}: recovery diverged");
    }
}

proptest! {
    #[test]
    fn fault_plan_from_seed_is_pure(
        seed in any::<u64>(),
        n in 0usize..8,
        horizon in 1u64..1_000,
    ) {
        let a = FaultPlan::from_seed(seed, n, horizon);
        let b = FaultPlan::from_seed(seed, n, horizon);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.faults.len(), n);
        for f in &a.faults {
            match *f {
                Fault::SlabOom { at_alloc } => prop_assert!(at_alloc < horizon),
                Fault::KernelHang { at_launch, after_cycles } => {
                    prop_assert!(at_launch < horizon);
                    prop_assert!(after_cycles >= 1);
                }
                Fault::BitFlip { at_launch, .. } => prop_assert!(at_launch < horizon),
            }
        }
    }

    #[test]
    fn fault_plan_seeds_decorrelate(seed in any::<u64>()) {
        // Adjacent seeds must not alias to the same plan (SplitMix64 mixing).
        let a = FaultPlan::from_seed(seed, 6, 1 << 20);
        let b = FaultPlan::from_seed(seed.wrapping_add(1), 6, 1 << 20);
        prop_assert_ne!(a, b);
    }
}
