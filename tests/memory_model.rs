//! Randomized invariants of the gpusim memory/coalescing model and its
//! interaction with the local-assembly kernels, plus `gpucheck` sanitizer
//! regressions: each defect class is seeded deliberately and must be
//! caught, and the fault-free kernels must stay finding-free.

use gpusim::{Device, DeviceConfig, WARP};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Coalescing bound: a warp load of n participating lanes generates
    /// between 1 and n transactions, and exactly
    /// #distinct-sectors transactions.
    #[test]
    fn load_transactions_match_distinct_sectors(addrs in proptest::collection::vec(0u64..1024, 1..32)) {
        let mut dev = Device::new(DeviceConfig::tiny());
        dev.alloc(2048).unwrap();
        let n = addrs.len();
        let stats = dev.launch(1, 0, |ctx| {
            let a = ctx.lanes_from(|l| addrs.get(l).copied());
            ctx.ld_global(&a);
        }).expect("healthy device");
        let mut sectors: Vec<u64> = addrs.iter().map(|a| a / 4).collect();
        sectors.sort_unstable();
        sectors.dedup();
        prop_assert_eq!(stats.counters.global_ld_transactions, sectors.len() as u64);
        prop_assert!(stats.counters.global_ld_transactions >= 1);
        prop_assert!(stats.counters.global_ld_transactions <= n as u64);
    }

    /// Atomic adds from all lanes to one address serialize: the final value
    /// is the sum regardless of lane values.
    #[test]
    fn atomic_add_sums_all_lanes(vals in proptest::collection::vec(0u64..1000, 32)) {
        let mut dev = Device::new(DeviceConfig::tiny());
        let buf = dev.alloc(16).unwrap();
        let vals2 = vals.clone();
        dev.launch(1, 0, move |ctx| {
            let ops = ctx.lanes_from(|l| Some((buf.addr + 3, vals2[l])));
            ctx.atomic_add(&ops);
        }).expect("healthy device");
        prop_assert_eq!(dev.d2h_word(buf, 3), vals.iter().sum::<u64>());
    }

    /// CAS claim semantics: when all lanes CAS the same slot from the same
    /// expected value, exactly one succeeds.
    #[test]
    fn cas_exactly_one_winner(news in proptest::collection::vec(1u64..u64::MAX, 32)) {
        let mut dev = Device::new(DeviceConfig::tiny());
        let buf = dev.alloc(4).unwrap();
        let news2 = news.clone();
        let mut winner_val = 0u64;
        dev.launch(1, 0, |ctx| {
            let ops = ctx.lanes_from(|l| Some((buf.addr, 0u64, news2[l])));
            let old = ctx.atomic_cas(&ops);
            let winners: Vec<usize> = (0..WARP).filter(|&l| old[l] == 0).collect();
            assert_eq!(winners.len(), 1);
            winner_val = news2[winners[0]];
        }).expect("healthy device");
        prop_assert_eq!(dev.d2h_word(buf, 0), winner_val);
    }
}

#[test]
fn timing_monotone_in_work() {
    // More transactions can never make the estimated kernel faster.
    let cfg = DeviceConfig::v100();
    let mut prev = 0.0;
    for scale in [1usize, 4, 16, 64] {
        let mut dev = Device::new(cfg.clone());
        dev.alloc(1 << 20).unwrap();
        let stats = dev
            .launch(64, 0, |ctx| {
                let mut rng = StdRng::seed_from_u64(ctx.warp_id as u64);
                for _ in 0..scale * 10 {
                    let a = ctx.lanes_from(|_| Some(rng.gen_range(0..(1 << 20))));
                    ctx.ld_global(&a);
                }
            })
            .expect("healthy device");
        let t = stats.timing.kernel_seconds;
        assert!(t >= prev, "time decreased with more work");
        prev = t;
    }
}

#[test]
fn scattered_slower_than_coalesced() {
    // The same number of load instructions costs more when scattered —
    // the mechanism behind the v1/v2 gap.
    let cfg = DeviceConfig::v100();
    let run = |stride: u64| {
        let mut dev = Device::new(cfg.clone());
        dev.alloc(1 << 22).unwrap();
        // Enough warps that resident parallelism hides latency and the
        // launch is bandwidth-bound (the regime where coalescing matters).
        let stats = dev
            .launch(5120, 0, |ctx| {
                for i in 0..50u64 {
                    let a = ctx.lanes_from(|l| Some((i * 32 + l as u64) * stride % (1 << 22)));
                    ctx.ld_global(&a);
                }
            })
            .expect("healthy device");
        stats.timing.kernel_seconds
    };
    let coalesced = run(1);
    let scattered = run(97); // co-prime stride: every lane its own sector
    assert!(scattered > 2.0 * coalesced, "scattered {scattered} vs coalesced {coalesced}");
}

#[test]
fn local_memory_isolated_per_lane() {
    let mut dev = Device::new(DeviceConfig::tiny());
    dev.launch(1, 8, |ctx| {
        // Each lane stores its id at offset 0 of its own local slice.
        let offs = ctx.lanes_from(|_| Some(0u64));
        let vals = ctx.lanes_from(|l| l as u64 * 11);
        ctx.st_local(&offs, &vals);
        let out = ctx.ld_local(&offs);
        for (l, &v) in out.iter().enumerate() {
            assert_eq!(v, l as u64 * 11, "lane {l} saw another lane's local");
        }
    })
    .expect("healthy device");
}

#[test]
fn device_oom_is_clean_error() {
    let mut dev = Device::new(DeviceConfig::tiny());
    let cap = dev.config().capacity_words();
    assert!(dev.alloc(cap / 2).is_ok());
    let err = dev.alloc(cap).unwrap_err();
    assert!(err.free_words < cap);
    // Device stays usable after the failed allocation.
    assert!(dev.alloc(cap / 4).is_ok());
}

#[test]
fn overflowing_allocation_is_oom_not_wraparound() {
    // A length that would wrap the bump pointer must surface as OOM with
    // the allocator untouched, never as a bogus low address.
    let mut dev = Device::new(DeviceConfig::tiny());
    let used_before = dev.mem_used_words();
    assert!(dev.alloc(u64::MAX - 2).is_err());
    assert_eq!(dev.mem_used_words(), used_before);
    assert!(dev.alloc(64).is_ok());
}

/// Seeded-defect regressions for the `gpucheck` sanitizer: every class the
/// paper's real counterpart (`compute-sanitizer`) catches on the CUDA code
/// must be caught here, with the defect contained rather than fatal.
mod sanitized {
    use gpusim::{Device, DeviceConfig, SanitizerConfig, SanitizerKind, SanitizerSummary, WARP};

    fn device() -> Device {
        Device::new(DeviceConfig::tiny().with_sanitizer(SanitizerConfig::full()))
    }

    fn summary(dev: &mut Device) -> SanitizerSummary {
        dev.take_sanitizer_summary().expect("sanitizer configured")
    }

    #[test]
    fn seeded_oob_write_is_reported_and_contained() {
        let mut dev = device();
        let buf = dev.alloc(64).unwrap();
        dev.h2d(buf, 0, &[7; 64]);
        // Lane 0 stores one word past the allocator's high-water mark — the
        // classic off-by-one the paper debugged with compute-sanitizer.
        dev.launch(1, 0, |ctx| {
            ctx.st_global_lane(0, buf.addr + 100, 0xdead);
        })
        .expect("sanitized launch still succeeds");
        let s = summary(&mut dev);
        assert_eq!(s.count(SanitizerKind::OutOfBounds), 1, "{}", s.render());
        assert!(!s.is_clean());
        // The invalid store was dropped: live memory is unharmed and the
        // device stays usable.
        assert_eq!(dev.d2h(buf, 0, 64), vec![7; 64]);
        assert!(dev.alloc(16).is_ok());
    }

    #[test]
    fn use_after_reset_through_stale_buf_is_flagged() {
        let mut dev = device();
        let stale = dev.alloc(64).unwrap();
        dev.reset_mem();
        // `stale` now dangles into freed arena; a load through it must be
        // classified as use-after-reset, not out-of-bounds.
        dev.launch(1, 0, |ctx| {
            let v = ctx.ld_global_lane(3, stale.at(12));
            assert_eq!(v, 0, "invalid load reads as zero");
        })
        .expect("sanitized launch still succeeds");
        let s = summary(&mut dev);
        assert_eq!(s.count(SanitizerKind::UseAfterReset), 1, "{}", s.render());
        assert_eq!(s.count(SanitizerKind::OutOfBounds), 0);
        assert_eq!(s.reports[0].lanes, vec![3]);
    }

    #[test]
    fn uninit_read_flagged_until_first_store() {
        let mut dev = device();
        let buf = dev.alloc_uninit(32).unwrap();
        dev.launch(1, 0, |ctx| {
            // Store defines word 4; word 5 is read while still undefined.
            ctx.st_global_lane(0, buf.at(4), 1);
            ctx.ld_global_lane(0, buf.at(4));
            ctx.ld_global_lane(0, buf.at(5));
        })
        .expect("sanitized launch still succeeds");
        let s = summary(&mut dev);
        assert_eq!(s.count(SanitizerKind::UninitRead), 1, "{}", s.render());
        assert_eq!(s.reports[0].addr, Some(buf.at(5)));
    }

    #[test]
    fn scattered_insert_lane_race_names_both_lanes() {
        let mut dev = device();
        let table = dev.alloc(64).unwrap();
        // A v1-style scattered insert where two lanes hash to the same slot
        // and plain-store their payloads: last writer silently wins, which
        // is exactly the bug racecheck exists for.
        dev.launch(1, 0, |ctx| {
            let slots: [u64; 3] = [9, 17, 9]; // lanes 0 and 2 collide
            let addrs = ctx.lanes_from(|l| slots.get(l).map(|&s| table.at(s)));
            let vals = ctx.lanes_from(|l| l as u64 + 1);
            ctx.st_global(&addrs, &vals);
        })
        .expect("sanitized launch still succeeds");
        let s = summary(&mut dev);
        assert_eq!(s.count(SanitizerKind::LaneRace), 1, "{}", s.render());
        assert_eq!(s.reports[0].lanes, vec![0, 2], "both racing lanes must be named");
        assert_eq!(s.reports[0].addr, Some(table.at(9)));
    }

    #[test]
    fn syncwarp_separates_write_then_read_phases() {
        let run = |sync: bool| {
            let mut dev = device();
            let buf = dev.alloc(64).unwrap();
            dev.launch(1, 0, move |ctx| {
                ctx.st_global_lane(1, buf.at(0), 42);
                if sync {
                    ctx.syncwarp();
                }
                ctx.ld_global_lane(5, buf.at(0));
            })
            .expect("sanitized launch still succeeds");
            summary(&mut dev)
        };
        let racy = run(false);
        assert_eq!(racy.count(SanitizerKind::LaneRace), 1, "{}", racy.render());
        let clean = run(true);
        assert!(clean.is_clean(), "{}", clean.render());
    }

    #[test]
    fn atomic_contention_is_not_a_race() {
        let mut dev = device();
        let buf = dev.alloc(16).unwrap();
        dev.launch(1, 0, |ctx| {
            let ops = ctx.lanes_from(|_| Some((buf.at(3), 1u64)));
            ctx.atomic_add(&ops);
        })
        .expect("sanitized launch still succeeds");
        assert_eq!(dev.d2h_word(buf, 3), WARP as u64);
        let s = summary(&mut dev);
        assert!(s.is_clean(), "{}", s.render());
    }

    #[test]
    fn unbalanced_mask_stack_flagged_at_kernel_exit() {
        let mut dev = device();
        dev.alloc(16).unwrap();
        dev.launch(1, 0, |ctx| {
            ctx.push_mask(0b1); // never popped
        })
        .expect("sanitized launch still succeeds");
        let s = summary(&mut dev);
        assert_eq!(s.count(SanitizerKind::MaskStackImbalance), 1, "{}", s.render());
    }

    #[test]
    fn shuffle_from_masked_out_lane_flagged() {
        let mut dev = device();
        dev.alloc(16).unwrap();
        dev.launch(1, 0, |ctx| {
            ctx.push_mask(0b10);
            let vals = ctx.lanes_from(|l| l as u64);
            // Source lane 0 is excluded by the active mask: on hardware its
            // register is undefined for this shuffle.
            ctx.shfl(&vals, 0);
            ctx.pop_mask();
        })
        .expect("sanitized launch still succeeds");
        let s = summary(&mut dev);
        assert_eq!(s.count(SanitizerKind::ShuffleInactiveSrc), 1, "{}", s.render());
    }

    #[test]
    fn inter_warp_same_word_write_is_a_warp_race() {
        let mut dev = device();
        let buf = dev.alloc(16).unwrap();
        dev.launch(2, 0, |ctx| {
            ctx.st_global_lane(0, buf.at(7), ctx.warp_id as u64);
        })
        .expect("sanitized launch still succeeds");
        let s = summary(&mut dev);
        assert_eq!(s.count(SanitizerKind::WarpRace), 1, "{}", s.render());
        assert_eq!(s.count(SanitizerKind::LaneRace), 0, "same lane id, different warps");
    }

    #[test]
    fn collectives_clean_under_divergent_masks() {
        use gpusim::{warp_aggregated_add, warp_inclusive_scan, warp_reduce, ReduceOp};
        let mut dev = device();
        let buf = dev.alloc(64).unwrap();
        dev.launch(1, 0, |ctx| {
            // Mask excluding lane 0 — the shape that trips naive shuffle
            // ladders sourcing from a fixed lane.
            ctx.push_mask(0xffff_fff0);
            let vals = ctx.lanes_from(|l| l as u64);
            warp_reduce(ctx, &vals, ReduceOp::Add);
            warp_inclusive_scan(ctx, &vals, ReduceOp::Max);
            let ops = ctx.lanes_from(|l| ctx.lane_active(l).then(|| (buf.at(l as u64 % 3), 1u64)));
            warp_aggregated_add(ctx, &ops);
            ctx.pop_mask();
        })
        .expect("sanitized launch still succeeds");
        let s = summary(&mut dev);
        assert!(s.is_clean(), "{}", s.render());
    }

    #[test]
    fn clean_proptest_style_workload_has_no_findings() {
        // The fault-free access patterns of the unsanitized tests above
        // must not light up any analysis (no false positives).
        let mut dev = device();
        let buf = dev.alloc(2048).unwrap();
        dev.launch(4, 8, |ctx| {
            let a = ctx.lanes_from(|l| Some(buf.at((ctx.warp_id * WARP + l) as u64)));
            let vals = ctx.lanes_from(|l| l as u64);
            ctx.st_global(&a, &vals);
            ctx.syncwarp();
            ctx.ld_global(&a);
            let offs = ctx.lanes_from(|_| Some(0u64));
            ctx.st_local(&offs, &vals);
            ctx.ld_local(&offs);
        })
        .expect("sanitized launch still succeeds");
        let s = summary(&mut dev);
        assert!(s.is_clean(), "{}", s.render());
    }
}
