//! Randomized invariants of the gpusim memory/coalescing model and its
//! interaction with the local-assembly kernels.

use gpusim::{Device, DeviceConfig, WARP};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Coalescing bound: a warp load of n participating lanes generates
    /// between 1 and n transactions, and exactly
    /// #distinct-sectors transactions.
    #[test]
    fn load_transactions_match_distinct_sectors(addrs in proptest::collection::vec(0u64..1024, 1..32)) {
        let mut dev = Device::new(DeviceConfig::tiny());
        dev.alloc(2048).unwrap();
        let n = addrs.len();
        let stats = dev.launch(1, 0, |ctx| {
            let a = ctx.lanes_from(|l| addrs.get(l).copied());
            ctx.ld_global(&a);
        }).expect("healthy device");
        let mut sectors: Vec<u64> = addrs.iter().map(|a| a / 4).collect();
        sectors.sort_unstable();
        sectors.dedup();
        prop_assert_eq!(stats.counters.global_ld_transactions, sectors.len() as u64);
        prop_assert!(stats.counters.global_ld_transactions >= 1);
        prop_assert!(stats.counters.global_ld_transactions <= n as u64);
    }

    /// Atomic adds from all lanes to one address serialize: the final value
    /// is the sum regardless of lane values.
    #[test]
    fn atomic_add_sums_all_lanes(vals in proptest::collection::vec(0u64..1000, 32)) {
        let mut dev = Device::new(DeviceConfig::tiny());
        let buf = dev.alloc(16).unwrap();
        let vals2 = vals.clone();
        dev.launch(1, 0, move |ctx| {
            let ops = ctx.lanes_from(|l| Some((buf.addr + 3, vals2[l])));
            ctx.atomic_add(&ops);
        }).expect("healthy device");
        prop_assert_eq!(dev.d2h_word(buf, 3), vals.iter().sum::<u64>());
    }

    /// CAS claim semantics: when all lanes CAS the same slot from the same
    /// expected value, exactly one succeeds.
    #[test]
    fn cas_exactly_one_winner(news in proptest::collection::vec(1u64..u64::MAX, 32)) {
        let mut dev = Device::new(DeviceConfig::tiny());
        let buf = dev.alloc(4).unwrap();
        let news2 = news.clone();
        let mut winner_val = 0u64;
        dev.launch(1, 0, |ctx| {
            let ops = ctx.lanes_from(|l| Some((buf.addr, 0u64, news2[l])));
            let old = ctx.atomic_cas(&ops);
            let winners: Vec<usize> = (0..WARP).filter(|&l| old[l] == 0).collect();
            assert_eq!(winners.len(), 1);
            winner_val = news2[winners[0]];
        }).expect("healthy device");
        prop_assert_eq!(dev.d2h_word(buf, 0), winner_val);
    }
}

#[test]
fn timing_monotone_in_work() {
    // More transactions can never make the estimated kernel faster.
    let cfg = DeviceConfig::v100();
    let mut prev = 0.0;
    for scale in [1usize, 4, 16, 64] {
        let mut dev = Device::new(cfg.clone());
        dev.alloc(1 << 20).unwrap();
        let stats = dev
            .launch(64, 0, |ctx| {
                let mut rng = StdRng::seed_from_u64(ctx.warp_id as u64);
                for _ in 0..scale * 10 {
                    let a = ctx.lanes_from(|_| Some(rng.gen_range(0..(1 << 20))));
                    ctx.ld_global(&a);
                }
            })
            .expect("healthy device");
        let t = stats.timing.kernel_seconds;
        assert!(t >= prev, "time decreased with more work");
        prev = t;
    }
}

#[test]
fn scattered_slower_than_coalesced() {
    // The same number of load instructions costs more when scattered —
    // the mechanism behind the v1/v2 gap.
    let cfg = DeviceConfig::v100();
    let run = |stride: u64| {
        let mut dev = Device::new(cfg.clone());
        dev.alloc(1 << 22).unwrap();
        // Enough warps that resident parallelism hides latency and the
        // launch is bandwidth-bound (the regime where coalescing matters).
        let stats = dev
            .launch(5120, 0, |ctx| {
                for i in 0..50u64 {
                    let a = ctx.lanes_from(|l| Some((i * 32 + l as u64) * stride % (1 << 22)));
                    ctx.ld_global(&a);
                }
            })
            .expect("healthy device");
        stats.timing.kernel_seconds
    };
    let coalesced = run(1);
    let scattered = run(97); // co-prime stride: every lane its own sector
    assert!(scattered > 2.0 * coalesced, "scattered {scattered} vs coalesced {coalesced}");
}

#[test]
fn local_memory_isolated_per_lane() {
    let mut dev = Device::new(DeviceConfig::tiny());
    dev.launch(1, 8, |ctx| {
        // Each lane stores its id at offset 0 of its own local slice.
        let offs = ctx.lanes_from(|_| Some(0u64));
        let vals = ctx.lanes_from(|l| l as u64 * 11);
        ctx.st_local(&offs, &vals);
        let out = ctx.ld_local(&offs);
        for (l, &v) in out.iter().enumerate() {
            assert_eq!(v, l as u64 * 11, "lane {l} saw another lane's local");
        }
    })
    .expect("healthy device");
}

#[test]
fn device_oom_is_clean_error() {
    let mut dev = Device::new(DeviceConfig::tiny());
    let cap = dev.config().capacity_words();
    assert!(dev.alloc(cap / 2).is_ok());
    let err = dev.alloc(cap).unwrap_err();
    assert!(err.free_words < cap);
    // Device stays usable after the failed allocation.
    assert!(dev.alloc(cap / 4).is_ok());
}
