//! Offline stub of `serde` (see `vendor/README.md`).
//!
//! The workspace uses serde only for `#[derive(Serialize, Deserialize)]`
//! annotations on config/stat structs; no code path serializes. The stub
//! keeps those annotations compiling: the derive macros (re-exported from
//! the stub `serde_derive`) expand to nothing, and the traits carry blanket
//! impls so generic bounds like `T: Serialize` remain satisfiable.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Owned-deserialization marker, mirroring `serde::de::DeserializeOwned`.
pub mod de {
    pub trait DeserializeOwned {}
    impl<T> DeserializeOwned for T {}
}
