//! Offline stub of `rayon` (see `vendor/README.md`).
//!
//! Implements the subset of rayon's API this workspace uses — `par_iter`,
//! `par_chunks`, `into_par_iter`, `join`, `current_num_threads`, and the
//! combinators chained on them — with **sequential** execution. Results are
//! bit-identical to real rayon for the deterministic pipelines here (every
//! call site collects in input order or folds with associative ops); only
//! wall-clock parallelism is lost. Swap the workspace dependency back to
//! crates.io rayon when a registry is available.

/// Run two closures and return both results. Real rayon may run them on
/// different threads; the stub runs them in order, which is an allowed
/// schedule of the same contract.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    (a(), b())
}

/// Logical threads rayon would use (the host's available parallelism).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// A "parallel" iterator: a thin wrapper over a sequential iterator that
/// exposes rayon's combinator names as inherent methods (inherent so that
/// `reduce(identity, op)` does not collide with `Iterator::reduce(op)`).
pub struct Par<I>(I);

impl<I: Iterator> Par<I> {
    pub fn map<O, F: FnMut(I::Item) -> O>(self, f: F) -> Par<std::iter::Map<I, F>> {
        Par(self.0.map(f))
    }

    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> Par<std::iter::Filter<I, F>> {
        Par(self.0.filter(f))
    }

    pub fn filter_map<O, F: FnMut(I::Item) -> Option<O>>(
        self,
        f: F,
    ) -> Par<std::iter::FilterMap<I, F>> {
        Par(self.0.filter_map(f))
    }

    /// rayon's `flat_map_iter`: flat-map with a sequential inner iterator.
    pub fn flat_map_iter<U: IntoIterator, F: FnMut(I::Item) -> U>(
        self,
        f: F,
    ) -> Par<std::iter::FlatMap<I, U, F>> {
        Par(self.0.flat_map(f))
    }

    pub fn flatten(self) -> Par<std::iter::Flatten<I>>
    where
        I::Item: IntoIterator,
    {
        Par(self.0.flatten())
    }

    pub fn enumerate(self) -> Par<std::iter::Enumerate<I>> {
        Par(self.0.enumerate())
    }

    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f);
    }

    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    pub fn count(self) -> usize {
        self.0.count()
    }

    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    pub fn max(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.max()
    }

    pub fn min(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.min()
    }

    /// rayon-style reduce: fold from `identity()` with an associative op.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }
}

pub trait IntoParallelRefIterator<'data> {
    type Iter: Iterator;
    fn par_iter(&'data self) -> Par<Self::Iter>;
}

impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for [T] {
    type Iter = std::slice::Iter<'data, T>;
    fn par_iter(&'data self) -> Par<Self::Iter> {
        Par(self.iter())
    }
}

impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for Vec<T> {
    type Iter = std::slice::Iter<'data, T>;
    fn par_iter(&'data self) -> Par<Self::Iter> {
        Par(self.iter())
    }
}

pub trait IntoParallelRefMutIterator<'data> {
    type Iter: Iterator;
    fn par_iter_mut(&'data mut self) -> Par<Self::Iter>;
}

impl<'data, T: 'data + Send> IntoParallelRefMutIterator<'data> for [T] {
    type Iter = std::slice::IterMut<'data, T>;
    fn par_iter_mut(&'data mut self) -> Par<Self::Iter> {
        Par(self.iter_mut())
    }
}

impl<'data, T: 'data + Send> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Iter = std::slice::IterMut<'data, T>;
    fn par_iter_mut(&'data mut self) -> Par<Self::Iter> {
        Par(self.iter_mut())
    }
}

pub trait IntoParallelIterator {
    type Iter: Iterator;
    fn into_par_iter(self) -> Par<Self::Iter>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = std::vec::IntoIter<T>;
    fn into_par_iter(self) -> Par<Self::Iter> {
        Par(self.into_iter())
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = std::ops::Range<usize>;
    fn into_par_iter(self) -> Par<Self::Iter> {
        Par(self)
    }
}

pub trait ParallelSlice<T> {
    fn par_chunks(&self, chunk_size: usize) -> Par<std::slice::Chunks<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> Par<std::slice::Chunks<'_, T>> {
        Par(self.chunks(chunk_size))
    }
}

pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSlice,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_collect_preserves_order() {
        let v = vec![3, 1, 2];
        let out: Vec<i32> = v.par_iter().map(|x| x * 10).collect();
        assert_eq!(out, vec![30, 10, 20]);
    }

    #[test]
    fn reduce_with_identity() {
        let v = vec![1u64, 2, 3, 4];
        let s = v.par_iter().map(|&x| x).reduce(|| 0, |a, b| a + b);
        assert_eq!(s, 10);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1, || "x");
        assert_eq!((a, b), (1, "x"));
    }

    #[test]
    fn par_chunks_matches_chunks() {
        let v: Vec<u32> = (0..10).collect();
        let n: usize = v.par_chunks(3).map(|c| c.len()).sum();
        assert_eq!(n, 10);
    }
}
