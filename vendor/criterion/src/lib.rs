//! Offline stub of `criterion` 0.5 (see `vendor/README.md`).
//!
//! Keeps `cargo bench` compiling and producing *indicative* timings without
//! the real crate: each benchmark runs a fixed warm-up plus a handful of
//! timed iterations and prints mean wall-clock time per iteration. No
//! statistical analysis, outlier detection, or HTML reports.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Batch sizing hints for [`Bencher::iter_batched`]. The stub runs one
/// setup per timed iteration regardless of the hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Per-benchmark timing driver handed to `bench_function` closures.
pub struct Bencher {
    samples: u64,
    /// Mean seconds per iteration, recorded for the group's report line.
    mean_s: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.mean_s = start.elapsed().as_secs_f64() / self.samples as f64;
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.mean_s = total.as_secs_f64() / self.samples as f64;
    }
}

/// A named set of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self // the stub samples a fixed count; wall-clock budget is ignored
    }

    pub fn bench_function<N: std::fmt::Display, F>(&mut self, id: N, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: self.sample_size as u64, mean_s: 0.0 };
        f(&mut b);
        println!(
            "{}/{}: {:>12} per iter ({} samples)",
            self.name,
            id,
            format_seconds(b.mean_s),
            self.sample_size,
        );
        self
    }

    pub fn finish(&mut self) {}
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Top-level benchmark context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, _criterion: self }
    }

    pub fn bench_function<N: std::fmt::Display, F>(&mut self, id: N, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Collect benchmark functions into a runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        let mut ran = 0u32;
        group.sample_size(3).measurement_time(Duration::from_millis(1));
        group.bench_function("count", |b| b.iter(|| ran += 1));
        group.finish();
        assert!(ran >= 3);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        let mut setups = 0u32;
        group.sample_size(4);
        group.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 8]
                },
                |v| v.len(),
                BatchSize::LargeInput,
            )
        });
        assert!(setups >= 4);
    }
}
