//! Offline stub of `serde_derive`.
//!
//! The containerized build environment has no network access to crates.io,
//! so the workspace vendors API-compatible stubs for its external
//! dependencies (see `vendor/README.md`). Nothing in this repository
//! actually serializes through serde — the derives exist so config structs
//! stay forward-compatible — so the stub derive macros expand to nothing
//! and the stub `serde` crate provides blanket trait impls.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
