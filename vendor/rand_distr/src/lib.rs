//! Offline stub of `rand_distr` 0.4 (see `vendor/README.md`).
//!
//! Implements the distributions this workspace samples — `Normal` and
//! `LogNormal` — via the Box–Muller transform over the stub `rand` crate.

use rand::Rng;

/// Types that can be sampled with an RNG.
pub trait Distribution<T> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Parameter error for distribution constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// A scale/shape parameter was negative, NaN, or otherwise invalid.
    BadParam,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter")
    }
}

impl std::error::Error for Error {}

/// Standard-normal variate via Box–Muller (one of the pair is discarded;
/// simplicity over speed is the right trade for a test-data generator).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen_range(0.0..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        if u1 > 0.0 {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// Normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    pub fn new(mean: f64, std_dev: f64) -> Result<Normal, Error> {
        if !std_dev.is_finite() || std_dev < 0.0 || !mean.is_finite() {
            return Err(Error::BadParam);
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    pub fn new(mu: f64, sigma: f64) -> Result<LogNormal, Error> {
        if !sigma.is_finite() || sigma < 0.0 || !mu.is_finite() {
            return Err(Error::BadParam);
        }
        Ok(LogNormal { mu, sigma })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Normal::new(10.0, 2.0).unwrap();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "sd {}", var.sqrt());
    }

    #[test]
    fn lognormal_positive() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = LogNormal::new(0.0, 1.5).unwrap();
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn bad_params_rejected() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(LogNormal::new(0.0, f64::INFINITY).is_err());
    }
}
