//! Offline stub of `proptest` 1.x (see `vendor/README.md`).
//!
//! Implements the subset this workspace uses: range/tuple strategies,
//! `any`, `collection::vec`, `array::uniform4`, `Strategy::prop_map`, the
//! `proptest!` macro with optional `#![proptest_config(..)]` header, and
//! `prop_assert!`/`prop_assert_eq!`. Differences from real proptest: cases
//! are pure random sampling (no shrinking on failure, no persisted failure
//! seeds) and the per-test seed is a stable hash of the test name, so runs
//! are fully deterministic.

use rand::Rng;

pub mod test_runner {
    pub use rand::rngs::StdRng as TestRng;
    use rand::SeedableRng;

    /// Deterministic per-test RNG: FNV-1a over the test's name.
    pub fn rng_for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::seed_from_u64(h)
    }

    /// Runner configuration. Only `cases` is honoured by the stub.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            // Real proptest defaults to 256; the stub runs sequentially in
            // CI so a leaner default keeps the suite fast while still
            // exercising each property broadly.
            ProptestConfig { cases: 64 }
        }
    }
}

use test_runner::TestRng;

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// `Strategy::prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T: rand::SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: rand::SampleUniform> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_strategy_for_tuple {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_for_tuple! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Accepted length arguments for [`vec()`](vec()): a fixed size or a half-open
    /// range of sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi_exclusive: *r.end() + 1 }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy with element strategy and length (fixed or ranged).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod array {
    use super::{Strategy, TestRng};

    pub struct Uniform4<S>(S);

    impl<S: Strategy> Strategy for Uniform4<S> {
        type Value = [S::Value; 4];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; 4] {
            [self.0.generate(rng), self.0.generate(rng), self.0.generate(rng), self.0.generate(rng)]
        }
    }

    /// `[T; 4]` strategy drawing each element from `strategy`.
    pub fn uniform4<S: Strategy>(strategy: S) -> Uniform4<S> {
        Uniform4(strategy)
    }
}

/// Define property tests. Supports the standard form used in this repo:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0u8..4, v in proptest::collection::vec(0u64..10, 1..9)) {
///         prop_assert!(x < 4);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut proptest_rng = $crate::test_runner::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
                for proptest_case in 0..config.cases {
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $(let $arg = $crate::Strategy::generate(&($strat), &mut proptest_rng);)*
                        $body
                    }));
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest stub: property {} failed at case {}/{} (no shrinking)",
                            stringify!($name), proptest_case + 1, config.cases,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Stub `prop_assert!`: plain `assert!` (failures abort the case via panic
/// rather than returning `TestCaseError`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Stub `prop_assert_eq!`: plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Stub `prop_assert_ne!`: plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_deterministic_per_test_name() {
        let mut a = crate::test_runner::rng_for_test("x");
        let mut b = crate::test_runner::rng_for_test("x");
        let s = crate::collection::vec(0u64..100, 5..9);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_respects_bounds(v in crate::collection::vec(0u8..4, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 4));
        }

        #[test]
        fn tuples_and_any(pair in (0u8..4, 0u8..45), x in any::<u16>()) {
            prop_assert!(pair.0 < 4 && pair.1 < 45);
            let _ = x;
        }

        #[test]
        fn uniform4_and_map(arr in crate::array::uniform4(0u16..256), s in (1usize..10).prop_map(|n| n * 2)) {
            prop_assert!(arr.iter().all(|&x| x < 256));
            prop_assert!(s % 2 == 0 && s < 20);
        }
    }
}
