//! Offline stub of `rand` 0.8 (see `vendor/README.md`).
//!
//! Provides the API surface this workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::{gen_range, gen_bool}`. The
//! generator is xoshiro256++ seeded through SplitMix64 — deterministic and
//! statistically solid, but its stream differs from crates.io rand's
//! ChaCha-based `StdRng`. All in-repo consumers treat seeded RNG output as
//! arbitrary-but-fixed data (synthetic genomes, read errors), so the suite
//! is agnostic to the specific stream.

/// Low-level generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a (half-open or inclusive) range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Map a u64 to [0, 1) with 53 bits of precision.
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types uniformly sampleable from a range.
pub trait SampleUniform: PartialOrd + Copy {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty inclusive range");
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T: SampleUniform> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the stub's stand-in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_splitmix(mut seed: u64) -> StdRng {
            let mut next = || {
                seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = seed;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            StdRng::from_splitmix(state)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the stub offers one generator quality tier.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1 << 40), b.gen_range(0u64..1 << 40));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u8 = rng.gen_range(0..4);
            assert!(v < 4);
            let f: f64 = rng.gen_range(0.0..2.5);
            assert!((0.0..2.5).contains(&f));
            let i: usize = rng.gen_range(10..=12);
            assert!((10..=12).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[rng.gen_range(0usize..4)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed: {counts:?}");
        }
    }
}
